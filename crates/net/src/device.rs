//! Device compute model.

use serde::{Deserialize, Serialize};

use s2m3_models::module::{ModuleKind, ModuleSpec};

use crate::calibration as cal;

/// Relative per-kind throughput multipliers of a device.
///
/// Real hardware is not uniformly fast across workloads: the paper's
/// measurements imply its desktop is relatively stronger on convolutional
/// vision towers than on transformer text batches (Table X's observed
/// placement — vision on desktop, text on laptop — only emerges from
/// Eq. 5 if so). A factor of 1.0 means "runs at the device's base
/// GFLOP/s"; higher is faster for that module kind.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KindEfficiency {
    /// Vision encoders.
    pub vision: f64,
    /// Text encoders.
    pub text: f64,
    /// Audio encoders.
    pub audio: f64,
    /// Language models.
    pub llm: f64,
}

impl Default for KindEfficiency {
    fn default() -> Self {
        KindEfficiency {
            vision: 1.0,
            text: 1.0,
            audio: 1.0,
            llm: 1.0,
        }
    }
}

impl KindEfficiency {
    /// The multiplier for `kind` (heads run at base speed).
    pub fn factor(&self, kind: ModuleKind) -> f64 {
        match kind {
            ModuleKind::VisionEncoder => self.vision,
            ModuleKind::TextEncoder => self.text,
            ModuleKind::AudioEncoder => self.audio,
            ModuleKind::LanguageModel => self.llm,
            ModuleKind::DistanceHead | ModuleKind::ClassifierHead => 1.0,
        }
    }
}

/// Stable device identity (`"server"`, `"desktop"`, `"laptop"`,
/// `"jetson-a"`, `"jetson-b"`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeviceId(String);

impl DeviceId {
    /// Creates a device id.
    pub fn new(name: impl Into<String>) -> Self {
        DeviceId(name.into())
    }

    /// The canonical name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for DeviceId {
    fn from(s: &str) -> Self {
        DeviceId::new(s)
    }
}

/// One device of the testbed: the compute/memory half of Table III.
///
/// The latency model for running module `m` with `u` work units is
///
/// ```text
/// t_comp(m, n, u) = exec_overhead + unit_overhead · u + gflops(m, u) / speed
/// ```
///
/// — a fixed per-execution serving cost, a per-unit (per-prompt /
/// per-token) dispatch cost, and the FLOP time. The split captures why a
/// GPU server is barely faster than a laptop for single-image requests
/// (overhead-bound) yet crushes it on 101-prompt retrieval batches
/// (FLOP-bound), which is exactly the contrast in the paper's Table VI
/// VQA vs retrieval rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Identity.
    pub id: DeviceId,
    /// Human-readable description (CPU/GPU of Table III).
    pub description: String,
    /// Effective compute speed, GFLOP/s.
    pub speed_gflops: f64,
    /// Fixed serving overhead per module execution, seconds.
    pub exec_overhead_s: f64,
    /// Serving overhead per work unit, seconds.
    pub unit_overhead_s: f64,
    /// Usable memory for hosting modules, bytes (`R_n`).
    pub memory_bytes: u64,
    /// Concurrent module executions the device sustains (GPU streams = 2,
    /// edge CPUs = 1). S2M3's routing may overlap up to this many module
    /// runs; a centralized monolith is always sequential.
    pub parallelism: usize,
    /// Model-loading: fixed setup seconds.
    pub load_fixed_s: f64,
    /// Model-loading: streaming rate, MB/s.
    pub load_rate_mbps: f64,
    /// Whether this device has a GPU (report formatting only).
    pub has_gpu: bool,
    /// Per-module-kind throughput multipliers.
    pub efficiency: KindEfficiency,
}

impl DeviceSpec {
    /// Time to execute module `m` with `units` work units on this device,
    /// in seconds.
    pub fn compute_time(&self, m: &ModuleSpec, units: f64) -> f64 {
        let speed = self.speed_gflops * self.efficiency.factor(m.kind);
        self.exec_overhead_s + self.unit_overhead_s * units + m.gflops(units) / speed
    }

    /// Usable memory budget `R_n`, bytes.
    pub fn usable_memory_bytes(&self) -> u64 {
        self.memory_bytes
    }

    /// Whether module `m` fits in `remaining` bytes of this device.
    pub fn fits(&self, m: &ModuleSpec, remaining: u64) -> bool {
        m.memory_bytes() <= remaining
    }

    /// Time to load module `m`'s weights into this device's memory,
    /// seconds (the end-to-end latency component of Table VII / Fig. 3).
    pub fn load_time(&self, m: &ModuleSpec) -> f64 {
        if m.params == 0 {
            // Non-parametric heads (cosine/InfoNCE) need no weight load.
            return 0.0;
        }
        self.load_fixed_s + (m.weight_bytes() as f64 / 1.0e6) / self.load_rate_mbps
    }

    /// The Tesla P40 server (GPU path), one MAN hop away.
    pub fn server() -> Self {
        DeviceSpec {
            id: "server".into(),
            description: "Intel Xeon Gold 5115 (33.7 GB) + Tesla P40 (23.9 GB)".into(),
            speed_gflops: cal::SERVER_GPU_GFLOPS,
            exec_overhead_s: cal::SERVER_EXEC_OVERHEAD_S,
            unit_overhead_s: cal::SERVER_UNIT_OVERHEAD_S,
            memory_bytes: cal::SERVER_MEM_BYTES,
            parallelism: cal::SERVER_PARALLELISM,
            load_fixed_s: cal::SERVER_LOAD.0,
            load_rate_mbps: cal::SERVER_LOAD.1,
            has_gpu: true,
            efficiency: KindEfficiency::default(),
        }
    }

    /// The server running on its CPU only (Table VII "Server (w/o GPU)").
    pub fn server_without_gpu() -> Self {
        DeviceSpec {
            speed_gflops: cal::SERVER_CPU_GFLOPS,
            parallelism: cal::EDGE_PARALLELISM,
            has_gpu: false,
            description: "Intel Xeon Gold 5115 (33.7 GB), GPU disabled".into(),
            ..Self::server()
        }
    }

    /// The i7-13700 desktop (wired PAN).
    pub fn desktop() -> Self {
        DeviceSpec {
            id: "desktop".into(),
            description: "Intel i7-13700 (31.7 GB)".into(),
            speed_gflops: cal::DESKTOP_GFLOPS,
            exec_overhead_s: cal::EDGE_EXEC_OVERHEAD_S,
            unit_overhead_s: cal::EDGE_UNIT_OVERHEAD_S,
            memory_bytes: cal::DESKTOP_MEM_BYTES,
            parallelism: cal::EDGE_PARALLELISM,
            load_fixed_s: cal::DESKTOP_LOAD.0,
            load_rate_mbps: cal::DESKTOP_LOAD.1,
            has_gpu: false,
            efficiency: KindEfficiency {
                vision: cal::DESKTOP_VISION_EFFICIENCY,
                ..KindEfficiency::default()
            },
        }
    }

    /// The Apple M3 Pro laptop (Wi-Fi PAN).
    pub fn laptop() -> Self {
        DeviceSpec {
            id: "laptop".into(),
            description: "Apple M3 Pro (18.0 GB)".into(),
            speed_gflops: cal::LAPTOP_GFLOPS,
            exec_overhead_s: cal::EDGE_EXEC_OVERHEAD_S,
            unit_overhead_s: cal::EDGE_UNIT_OVERHEAD_S,
            memory_bytes: cal::LAPTOP_MEM_BYTES,
            parallelism: cal::EDGE_PARALLELISM,
            load_fixed_s: cal::LAPTOP_LOAD.0,
            load_rate_mbps: cal::LAPTOP_LOAD.1,
            has_gpu: false,
            efficiency: KindEfficiency::default(),
        }
    }

    /// A 4 GB Jetson Nano; `name` distinguishes the paper's wireless
    /// Jetson A (the default requester) from the wired Jetson B.
    pub fn jetson(name: &str) -> Self {
        DeviceSpec {
            id: name.into(),
            description: "Jetson Nano P-3450, ARMv8 (4.1 GB)".into(),
            speed_gflops: cal::JETSON_GFLOPS,
            exec_overhead_s: cal::EDGE_EXEC_OVERHEAD_S,
            unit_overhead_s: cal::EDGE_UNIT_OVERHEAD_S,
            memory_bytes: cal::JETSON_MEM_BYTES,
            parallelism: cal::EDGE_PARALLELISM,
            load_fixed_s: cal::JETSON_LOAD.0,
            load_rate_mbps: cal::JETSON_LOAD.1,
            has_gpu: false,
            efficiency: KindEfficiency::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2m3_models::catalog::Catalog;

    fn module(name: &str) -> ModuleSpec {
        Catalog::standard().get_by_name(name).unwrap().clone()
    }

    #[test]
    fn jetson_text_encoding_matches_footnote_two() {
        // Footnote 2: ~3 s on the laptop, ~43 s on a Jetson for CLIP
        // ViT-B/16 text encoding (101 Food-101 prompts).
        let text = module("text/CLIP-B-16");
        let jetson = DeviceSpec::jetson("jetson-a").compute_time(&text, 101.0);
        let laptop = DeviceSpec::laptop().compute_time(&text, 101.0);
        assert!((38.0..48.0).contains(&jetson), "jetson text = {jetson:.2}");
        assert!((2.0..3.5).contains(&laptop), "laptop text = {laptop:.2}");
    }

    #[test]
    fn gpu_server_is_overhead_bound_for_single_units() {
        let vision = module("vision/ViT-B-16");
        let server = DeviceSpec::server();
        let t = server.compute_time(&vision, 1.0);
        // FLOP time (~5 ms) is dwarfed by serving overhead (~0.38 s).
        assert!(t < 0.5, "{t}");
        assert!(t > 10.0 * (vision.gflops(1.0) / server.speed_gflops));
    }

    #[test]
    fn device_speed_ordering_matches_table_iii() {
        // Transformer (text) workloads order server < laptop < desktop <
        // jetson, matching Table VII's centralized column (the text batch
        // dominates CLIP retrieval latency).
        let text = module("text/CLIP-RN50x64");
        let t = |d: &DeviceSpec| d.compute_time(&text, 101.0);
        let server = DeviceSpec::server();
        let laptop = DeviceSpec::laptop();
        let desktop = DeviceSpec::desktop();
        let jetson = DeviceSpec::jetson("jetson-a");
        assert!(t(&server) < t(&laptop));
        assert!(t(&laptop) < t(&desktop));
        assert!(t(&desktop) < t(&jetson));
        assert!(t(&DeviceSpec::server()) < t(&DeviceSpec::server_without_gpu()));
        // On convolutional vision towers the desktop out-runs the laptop
        // (the Eq. 5 anchor for the paper's observed placement).
        let vision = module("vision/RN50x64");
        assert!(desktop.compute_time(&vision, 1.0) < laptop.compute_time(&vision, 1.0));
    }

    #[test]
    fn jetson_memory_excludes_rn50x16_but_not_rn50x4() {
        // Table VI: Jetson can run RN50x4 centralized but not RN50x16.
        let jetson = DeviceSpec::jetson("jetson-a");
        let small: u64 = [module("vision/RN50x4"), module("text/CLIP-RN50x4")]
            .iter()
            .map(|m| m.memory_bytes())
            .sum();
        let big: u64 = [module("vision/RN50x16"), module("text/CLIP-RN50x16")]
            .iter()
            .map(|m| m.memory_bytes())
            .sum();
        assert!(
            small <= jetson.usable_memory_bytes(),
            "RN50x4 must fit: {small}"
        );
        assert!(
            big > jetson.usable_memory_bytes(),
            "RN50x16 must not fit: {big}"
        );
    }

    #[test]
    fn load_times_match_table_vii_end_to_end_column() {
        // End-to-end minus inference: server ~11 s, desktop ~1.5 s,
        // laptop ~2.3 s, Jetson ~15.2 s for CLIP ViT-B/16 (496 MB).
        let vision = module("vision/ViT-B-16");
        let text = module("text/CLIP-B-16");
        let full = |d: &DeviceSpec| {
            d.load_time(&vision) + (text.weight_bytes() as f64 / 1.0e6) / d.load_rate_mbps
        };
        assert!((9.0..13.0).contains(&full(&DeviceSpec::server())));
        assert!((1.0..2.5).contains(&full(&DeviceSpec::desktop())));
        assert!((1.8..3.0).contains(&full(&DeviceSpec::laptop())));
        assert!((13.0..18.0).contains(&full(&DeviceSpec::jetson("jetson-a"))));
    }

    #[test]
    fn nonparametric_heads_load_instantly() {
        let head = module("head/cosine");
        assert_eq!(DeviceSpec::jetson("jetson-b").load_time(&head), 0.0);
    }

    #[test]
    fn fits_is_a_simple_budget_check() {
        let vision = module("vision/ViT-B-16");
        let d = DeviceSpec::desktop();
        assert!(d.fits(&vision, vision.memory_bytes()));
        assert!(!d.fits(&vision, vision.memory_bytes() - 1));
    }

    #[test]
    fn server_parallelism_exceeds_edge() {
        assert_eq!(DeviceSpec::server().parallelism, 2);
        assert_eq!(DeviceSpec::laptop().parallelism, 1);
        assert_eq!(DeviceSpec::server_without_gpu().parallelism, 1);
    }
}
