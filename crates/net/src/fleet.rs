//! The assembled testbed: devices + topology + default requester.

use serde::{Deserialize, Serialize};

use crate::calibration as cal;
use crate::device::{DeviceId, DeviceSpec};
use crate::link::LinkSpec;
use crate::topology::Topology;

/// A concrete deployment environment: the device set `N`, the network
/// connecting it, and the device that originates requests (`n_q`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fleet {
    devices: Vec<DeviceSpec>,
    topology: Topology,
    requester: DeviceId,
}

impl Fleet {
    /// Builds a fleet from parts.
    ///
    /// # Errors
    ///
    /// Returns a message if the requester is not among the devices or a
    /// device is missing from the topology.
    pub fn new(
        devices: Vec<DeviceSpec>,
        topology: Topology,
        requester: DeviceId,
    ) -> Result<Self, String> {
        if !devices.iter().any(|d| d.id == requester) {
            return Err(format!("requester {requester} is not in the fleet"));
        }
        for d in &devices {
            if !topology.contains(&d.id) {
                return Err(format!("device {} missing from topology", d.id));
            }
        }
        Ok(Fleet {
            devices,
            topology,
            requester,
        })
    }

    /// The paper's five-device testbed (Table III): GPU server over MAN,
    /// wired desktop, Wi-Fi laptop, wired Jetson B, Wi-Fi Jetson A.
    /// Jetson A is the default requester.
    pub fn standard_testbed() -> Self {
        let devices = vec![
            DeviceSpec::server(),
            DeviceSpec::desktop(),
            DeviceSpec::laptop(),
            DeviceSpec::jetson("jetson-b"),
            DeviceSpec::jetson("jetson-a"),
        ];
        let mut topology = Topology::new();
        topology.set_access(
            "server".into(),
            LinkSpec::new(cal::MAN_ACCESS.0, cal::MAN_ACCESS.1),
        );
        topology.set_access(
            "desktop".into(),
            LinkSpec::new(cal::PAN_WIRED.0, cal::PAN_WIRED.1),
        );
        topology.set_access(
            "laptop".into(),
            LinkSpec::new(cal::PAN_WIFI.0, cal::PAN_WIFI.1),
        );
        topology.set_access(
            "jetson-b".into(),
            LinkSpec::new(cal::PAN_WIRED.0, cal::PAN_WIRED.1),
        );
        topology.set_access(
            "jetson-a".into(),
            LinkSpec::new(cal::PAN_WIFI.0, cal::PAN_WIFI.1),
        );
        Fleet::new(devices, topology, "jetson-a".into()).expect("standard testbed is valid")
    }

    /// The edge-only fleet (no server) the paper uses for its headline
    /// S2M3 results: desktop, laptop, both Jetsons; requester Jetson A.
    pub fn edge_testbed() -> Self {
        Self::standard_testbed().without(&["server"])
    }

    /// A copy of this fleet without the named devices.
    ///
    /// Used for Table IX's device-availability sweeps. Keeps the same
    /// requester; panics in `Fleet::new` are avoided by validating.
    pub fn without(&self, names: &[&str]) -> Self {
        let devices: Vec<_> = self
            .devices
            .iter()
            .filter(|d| !names.contains(&d.id.as_str()))
            .cloned()
            .collect();
        Fleet::new(devices, self.topology.clone(), self.requester.clone())
            .expect("subset fleet must retain the requester")
    }

    /// A copy restricted to exactly the named devices.
    ///
    /// # Errors
    ///
    /// Returns a message if the requester would be excluded or a name is
    /// unknown.
    pub fn restricted_to(&self, names: &[&str]) -> Result<Self, String> {
        for n in names {
            if !self.devices.iter().any(|d| d.id.as_str() == *n) {
                return Err(format!("unknown device {n}"));
            }
        }
        let devices: Vec<_> = self
            .devices
            .iter()
            .filter(|d| names.contains(&d.id.as_str()))
            .cloned()
            .collect();
        Fleet::new(devices, self.topology.clone(), self.requester.clone())
    }

    /// A copy with a different requester.
    ///
    /// # Errors
    ///
    /// Returns a message if `requester` is not in the fleet.
    pub fn with_requester(&self, requester: &str) -> Result<Self, String> {
        Fleet::new(
            self.devices.clone(),
            self.topology.clone(),
            requester.into(),
        )
    }

    /// The device set `N`.
    pub fn devices(&self) -> &[DeviceSpec] {
        &self.devices
    }

    /// Looks up a device by name.
    pub fn device(&self, name: &str) -> Option<&DeviceSpec> {
        self.devices.iter().find(|d| d.id.as_str() == name)
    }

    /// The network topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The request-originating device `n_q`.
    pub fn requester(&self) -> &DeviceId {
        &self.requester
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the fleet has no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_testbed_matches_table_iii() {
        let f = Fleet::standard_testbed();
        assert_eq!(f.len(), 5);
        for name in ["server", "desktop", "laptop", "jetson-a", "jetson-b"] {
            assert!(f.device(name).is_some(), "missing {name}");
        }
        assert_eq!(f.requester().as_str(), "jetson-a");
        assert!(f.device("server").unwrap().has_gpu);
    }

    #[test]
    fn edge_testbed_excludes_server() {
        let f = Fleet::edge_testbed();
        assert_eq!(f.len(), 4);
        assert!(f.device("server").is_none());
        assert_eq!(f.requester().as_str(), "jetson-a");
    }

    #[test]
    fn requester_must_be_member() {
        let f = Fleet::standard_testbed();
        assert!(f.with_requester("desktop").is_ok());
        assert!(f.with_requester("ghost").is_err());
        assert!(f.restricted_to(&["desktop", "laptop"]).is_err()); // loses jetson-a
        assert!(f.restricted_to(&["jetson-a", "laptop"]).is_ok());
    }

    #[test]
    fn topology_covers_all_devices() {
        let f = Fleet::standard_testbed();
        for d in f.devices() {
            for e in f.devices() {
                assert!(f.topology().transfer_time(&d.id, &e.id, 1024).is_ok());
            }
        }
    }

    #[test]
    fn restricted_to_rejects_unknown_names() {
        let f = Fleet::standard_testbed();
        assert!(f.restricted_to(&["jetson-a", "mainframe"]).is_err());
    }
}
