//! Point-to-point link model.

use serde::{Deserialize, Serialize};

/// A (directed-symmetric) link: one-way latency plus bandwidth.
///
/// Transfer time for `b` bytes is `latency + 8·b / bandwidth` — the
/// standard first-order model; the paper's own measurements (Fig. 3) show
/// communication is latency-dominated and negligible next to computation,
/// and the same conclusion emerges here.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// One-way latency in seconds.
    pub latency_s: f64,
}

impl LinkSpec {
    /// Creates a link from bandwidth (bit/s) and one-way latency (s).
    pub fn new(bandwidth_bps: f64, latency_s: f64) -> Self {
        LinkSpec {
            bandwidth_bps,
            latency_s,
        }
    }

    /// The zero-cost loopback link (same-device transfers).
    pub fn loopback() -> Self {
        LinkSpec {
            bandwidth_bps: f64::INFINITY,
            latency_s: 0.0,
        }
    }

    /// Seconds to move `bytes` across this link.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return self.latency_s.min(f64::MAX);
        }
        self.latency_s + (bytes as f64 * 8.0) / self.bandwidth_bps
    }

    /// Composes two access links into an end-to-end path (through the home
    /// router / MAN gateway): latencies add, bandwidth is the bottleneck.
    pub fn compose(&self, other: &LinkSpec) -> LinkSpec {
        LinkSpec {
            bandwidth_bps: self.bandwidth_bps.min(other.bandwidth_bps),
            latency_s: self.latency_s + other.latency_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_latency_plus_serialization() {
        let l = LinkSpec::new(100.0e6, 0.005);
        // 1 MB over 100 Mbit/s = 0.08 s + 5 ms latency.
        let t = l.transfer_time(1_000_000);
        assert!((t - 0.085).abs() < 1e-9, "{t}");
    }

    #[test]
    fn zero_bytes_costs_only_latency() {
        let l = LinkSpec::new(100.0e6, 0.003);
        assert_eq!(l.transfer_time(0), 0.003);
    }

    #[test]
    fn loopback_is_free() {
        assert_eq!(LinkSpec::loopback().transfer_time(10_000_000), 0.0);
    }

    #[test]
    fn compose_bottlenecks_bandwidth_and_adds_latency() {
        let wifi = LinkSpec::new(120.0e6, 0.003);
        let wired = LinkSpec::new(940.0e6, 0.0015);
        let path = wifi.compose(&wired);
        assert_eq!(path.bandwidth_bps, 120.0e6);
        assert!((path.latency_s - 0.0045).abs() < 1e-12);
    }

    #[test]
    fn wifi_image_upload_is_tens_of_ms() {
        // A 500 KB image over composed Wi-Fi links: small next to any
        // encoder computation — the Fig. 3 observation.
        let path = LinkSpec::new(120.0e6, 0.003).compose(&LinkSpec::new(120.0e6, 0.003));
        let t = path.transfer_time(500 * 1024);
        assert!((0.02..0.06).contains(&t), "{t}");
    }
}
