//! Property-based tests for links and topology.

use proptest::prelude::*;

use crate::device::DeviceId;
use crate::link::LinkSpec;
use crate::topology::Topology;

fn arb_link() -> impl Strategy<Value = LinkSpec> {
    (1.0e6..1.0e9f64, 1.0e-4..0.05f64).prop_map(|(bw, lat)| LinkSpec::new(bw, lat))
}

proptest! {
    /// Transfer time is monotone in payload size.
    #[test]
    fn transfer_time_monotone(link in arb_link(), a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(link.transfer_time(lo) <= link.transfer_time(hi) + 1e-12);
    }

    /// Composition bottlenecks bandwidth and adds latency, symmetrically.
    #[test]
    fn compose_properties(a in arb_link(), b in arb_link()) {
        let ab = a.compose(&b);
        let ba = b.compose(&a);
        prop_assert_eq!(ab, ba);
        prop_assert!(ab.bandwidth_bps <= a.bandwidth_bps.min(b.bandwidth_bps) + 1e-9);
        prop_assert!((ab.latency_s - (a.latency_s + b.latency_s)).abs() < 1e-12);
        // A composed path is never faster than either hop alone.
        prop_assert!(ab.transfer_time(4096) + 1e-12 >= a.transfer_time(4096));
    }

    /// Topology paths are symmetric and loopback-free for every pair.
    #[test]
    fn topology_symmetry(links in proptest::collection::vec(arb_link(), 2..6)) {
        let mut topo = Topology::new();
        let ids: Vec<DeviceId> = (0..links.len())
            .map(|i| DeviceId::new(format!("dev-{i}")))
            .collect();
        for (id, l) in ids.iter().zip(&links) {
            topo.set_access(id.clone(), *l);
        }
        for a in &ids {
            prop_assert_eq!(topo.transfer_time(a, a, 1 << 20).unwrap(), 0.0);
            for b in &ids {
                let ab = topo.transfer_time(a, b, 9999).unwrap();
                let ba = topo.transfer_time(b, a, 9999).unwrap();
                prop_assert!((ab - ba).abs() < 1e-12);
            }
        }
    }
}
