//! Calibration constants for the simulated Table III testbed.
//!
//! Each constant is pinned to an observation in the paper; the goal is not
//! to reproduce every cell exactly (the authors' wall-clock includes
//! framework noise we do not model) but to place every device and link in
//! the right *regime* so that placement decisions, who-wins orderings, and
//! crossover points match. `EXPERIMENTS.md` records the residual
//! paper-vs-measured gaps per table cell.
//!
//! Anchors used:
//! - Footnote 2: CLIP ViT-B/16 text encoding (101 Food-101 prompts) takes
//!   ~3 s on the laptop, ~43 s on a Jetson Nano → Jetson ≈ 14 effective
//!   GFLOP/s, laptop ≈ 260.
//! - Table VII: desktop centralized 3.46 s, laptop 3.02 s, Jetson 45.19 s,
//!   cloud 2.44 s for the same model → desktop ≈ 200 GFLOP/s; the GPU
//!   server's latency is dominated by per-execution and per-prompt serving
//!   overheads (0.37 s + 7.5 ms/prompt), not FLOPs.
//! - Table VI's VQA rows (cloud 1.23 s vs retrieval 2.44 s for the same
//!   backbone) pin the per-work-unit overhead: 101 prompts vs 1.
//! - Table IX's "+ Server" row (1.74 s < cloud's 2.44 s) pins GPU
//!   parallelism = 2: S2M3 overlaps vision and text module executions on
//!   the same GPU, while the centralized monolith runs them sequentially.
//! - Footnote 1 / Fig. 3 / Table VII end-to-end column pin model-loading:
//!   ~11 s to load CLIP ViT-B/16 on the Tesla P40 host, ~15 s on a Jetson,
//!   ~1.5 s on the desktop, ~2.3 s on the laptop.

/// Effective compute speed of the Tesla P40 server (GPU path), GFLOP/s.
pub const SERVER_GPU_GFLOPS: f64 = 3500.0;
/// Effective compute speed of the server CPU path (Table VII
/// "Server (w/o GPU)"), GFLOP/s.
pub const SERVER_CPU_GFLOPS: f64 = 95.0;
/// Effective compute speed of the i7-13700 desktop, GFLOP/s.
/// Slightly below the M3 Pro (Table VII: desktop centralized 3.46 s vs
/// laptop 3.02 s) but close enough that Eq. 5's accumulation term spreads
/// a CLIP pair across both devices rather than stacking the laptop.
pub const DESKTOP_GFLOPS: f64 = 250.0;
/// Effective compute speed of the Apple M3 Pro laptop, GFLOP/s.
pub const LAPTOP_GFLOPS: f64 = 260.0;
/// Effective compute speed of a 4 GB Jetson Nano, GFLOP/s.
pub const JETSON_GFLOPS: f64 = 14.0;

/// The desktop's relative throughput advantage on convolutional vision
/// towers (AVX-heavy convs) over its transformer baseline. Required to
/// reproduce the paper's observed placement (vision on desktop, text on
/// laptop — Table X) from Eq. 5, and keeps the greedy optimal on the
/// default instance as the paper reports.
pub const DESKTOP_VISION_EFFICIENCY: f64 = 1.5;

/// Per-module-execution serving overhead on the server (kernel launches,
/// Python dispatch, batch assembly), seconds.
pub const SERVER_EXEC_OVERHEAD_S: f64 = 0.37;
/// Per-work-unit overhead on the server (tokenization & per-prompt
/// dispatch), seconds.
pub const SERVER_UNIT_OVERHEAD_S: f64 = 0.0075;
/// Per-module-execution overhead on edge devices, seconds.
pub const EDGE_EXEC_OVERHEAD_S: f64 = 0.05;
/// Per-work-unit overhead on edge devices, seconds.
pub const EDGE_UNIT_OVERHEAD_S: f64 = 0.002;

/// Concurrent module executions the GPU server sustains (CUDA streams).
pub const SERVER_PARALLELISM: usize = 2;
/// Concurrent module executions an edge CPU sustains.
pub const EDGE_PARALLELISM: usize = 1;

/// Usable memory budgets (beyond OS/runtime reserves), bytes.
/// Table III: server 23.9 GB VRAM, desktop 31.7 GB RAM (≈24 GB usable),
/// laptop 18 GB unified (≈14 GB usable), Jetson 4.1 GB (≈1.1 GB usable
/// once the OS and the inference runtime are resident — which is what
/// makes RN50x16 infeasible there, as in Table VI).
pub const SERVER_MEM_BYTES: u64 = 23_900_000_000;
/// Desktop usable memory, bytes.
pub const DESKTOP_MEM_BYTES: u64 = 24_000_000_000;
/// Laptop usable memory, bytes.
pub const LAPTOP_MEM_BYTES: u64 = 14_000_000_000;
/// Jetson usable memory, bytes.
pub const JETSON_MEM_BYTES: u64 = 1_100_000_000;

/// Model-loading: fixed setup seconds + MB/s streaming rate, per device.
/// (fixed, rate) pairs anchored to Table VII's end-to-end column.
pub const SERVER_LOAD: (f64, f64) = (9.0, 250.0);
/// Desktop model-loading profile.
pub const DESKTOP_LOAD: (f64, f64) = (0.5, 500.0);
/// Laptop model-loading profile.
pub const LAPTOP_LOAD: (f64, f64) = (1.8, 1000.0);
/// Jetson model-loading profile.
pub const JETSON_LOAD: (f64, f64) = (12.0, 150.0);

/// Wired home-PAN access link: 940 Mbit/s, 1.5 ms one-way.
pub const PAN_WIRED: (f64, f64) = (940.0e6, 0.0015);
/// Wi-Fi (IEEE 802.11) home-PAN access link: 120 Mbit/s, 3 ms one-way.
pub const PAN_WIFI: (f64, f64) = (120.0e6, 0.003);
/// MAN access of the dedicated server: 200 Mbit/s, 5 ms one-way
/// (the paper measured 4–5 ms per packet to its dedicated server).
pub const MAN_ACCESS: (f64, f64) = (200.0e6, 0.005);
