//! Wire envelopes: the framing the distributed runtime exchanges.
//!
//! The payload is opaque bytes (the runtime serializes its own message
//! enum with serde); the envelope carries addressing and enough metadata
//! for the transport to account transfer costs.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::device::DeviceId;

/// A routed message between two devices.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Sender.
    pub src: DeviceId,
    /// Receiver.
    pub dst: DeviceId,
    /// Application-level tag (e.g. `"raw-input"`, `"embedding"`).
    pub tag: String,
    /// Serialized payload.
    pub payload: Bytes,
}

impl Envelope {
    /// Creates an envelope, serializing `value` with JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialization failure.
    pub fn encode<T: Serialize>(
        src: DeviceId,
        dst: DeviceId,
        tag: impl Into<String>,
        value: &T,
    ) -> Result<Self, serde_json::Error> {
        Ok(Envelope {
            src,
            dst,
            tag: tag.into(),
            payload: Bytes::from(serde_json::to_vec(value)?),
        })
    }

    /// Deserializes the payload.
    ///
    /// # Errors
    ///
    /// Propagates deserialization failure.
    pub fn decode<'a, T: Deserialize<'a>>(&'a self) -> Result<T, serde_json::Error> {
        serde_json::from_slice(&self.payload)
    }

    /// Wire size in bytes (payload plus a small framing overhead).
    pub fn wire_bytes(&self) -> u64 {
        self.payload.len() as u64 + 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Ping {
        seq: u32,
        note: String,
    }

    #[test]
    fn encode_decode_roundtrip() {
        let msg = Ping {
            seq: 7,
            note: "hello".into(),
        };
        let env = Envelope::encode("jetson-a".into(), "laptop".into(), "ping", &msg).unwrap();
        assert_eq!(env.tag, "ping");
        assert_eq!(env.decode::<Ping>().unwrap(), msg);
        assert!(env.wire_bytes() > 64);
    }

    #[test]
    fn decode_wrong_type_errors() {
        let env = Envelope::encode("a".into(), "b".into(), "t", &42u32).unwrap();
        assert!(env.decode::<Ping>().is_err());
    }
}
