//! Network topology: per-device access links composed into end-to-end
//! paths, mirroring the paper's home-PAN + MAN layout.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::device::DeviceId;
use crate::link::LinkSpec;

/// The network half of the testbed.
///
/// Every device has an *access link* into the home network (wired
/// Ethernet, Wi-Fi, or a MAN uplink for the out-of-home server). The
/// end-to-end path between two devices composes their access links;
/// a device reaching itself is free.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    access: BTreeMap<DeviceId, LinkSpec>,
    /// Optional explicit overrides for specific pairs (stored with the
    /// lexicographically smaller id first).
    overrides: BTreeMap<(DeviceId, DeviceId), LinkSpec>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a device's access link.
    pub fn set_access(&mut self, device: DeviceId, link: LinkSpec) {
        self.access.insert(device, link);
    }

    /// Overrides the path between a specific pair (symmetric).
    pub fn set_override(&mut self, a: DeviceId, b: DeviceId, link: LinkSpec) {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.overrides.insert(key, link);
    }

    /// Whether `device` is known to the topology.
    pub fn contains(&self, device: &DeviceId) -> bool {
        self.access.contains_key(device)
    }

    /// The end-to-end path between two devices.
    ///
    /// # Errors
    ///
    /// Returns the unknown device id if either endpoint is unregistered.
    pub fn path(&self, a: &DeviceId, b: &DeviceId) -> Result<LinkSpec, DeviceId> {
        if a == b {
            return Ok(LinkSpec::loopback());
        }
        let key = if a <= b {
            (a.clone(), b.clone())
        } else {
            (b.clone(), a.clone())
        };
        if let Some(l) = self.overrides.get(&key) {
            return Ok(*l);
        }
        let la = self.access.get(a).ok_or_else(|| a.clone())?;
        let lb = self.access.get(b).ok_or_else(|| b.clone())?;
        Ok(la.compose(lb))
    }

    /// Seconds to move `bytes` from `a` to `b` (0 when `a == b`).
    ///
    /// # Errors
    ///
    /// Returns the unknown device id if either endpoint is unregistered.
    pub fn transfer_time(&self, a: &DeviceId, b: &DeviceId, bytes: u64) -> Result<f64, DeviceId> {
        Ok(self.path(a, b)?.transfer_time(bytes))
    }

    /// Registered devices in stable order.
    pub fn devices(&self) -> impl Iterator<Item = &DeviceId> {
        self.access.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration as cal;

    fn topo() -> Topology {
        let mut t = Topology::new();
        t.set_access(
            "desktop".into(),
            LinkSpec::new(cal::PAN_WIRED.0, cal::PAN_WIRED.1),
        );
        t.set_access(
            "laptop".into(),
            LinkSpec::new(cal::PAN_WIFI.0, cal::PAN_WIFI.1),
        );
        t.set_access(
            "server".into(),
            LinkSpec::new(cal::MAN_ACCESS.0, cal::MAN_ACCESS.1),
        );
        t
    }

    #[test]
    fn same_device_transfer_is_free() {
        let t = topo();
        assert_eq!(
            t.transfer_time(&"laptop".into(), &"laptop".into(), 1 << 30)
                .unwrap(),
            0.0
        );
    }

    #[test]
    fn paths_compose_access_links_symmetrically() {
        let t = topo();
        let ab = t.path(&"desktop".into(), &"laptop".into()).unwrap();
        let ba = t.path(&"laptop".into(), &"desktop".into()).unwrap();
        assert_eq!(ab, ba);
        assert_eq!(ab.bandwidth_bps, cal::PAN_WIFI.0);
        assert!((ab.latency_s - (cal::PAN_WIRED.1 + cal::PAN_WIFI.1)).abs() < 1e-12);
    }

    #[test]
    fn unknown_device_is_reported() {
        let t = topo();
        let err = t.path(&"desktop".into(), &"ghost".into()).unwrap_err();
        assert_eq!(err.as_str(), "ghost");
    }

    #[test]
    fn overrides_take_precedence() {
        let mut t = topo();
        t.set_override(
            "desktop".into(),
            "laptop".into(),
            LinkSpec::new(1.0e9, 0.0001),
        );
        let p = t.path(&"laptop".into(), &"desktop".into()).unwrap();
        assert_eq!(p.latency_s, 0.0001);
    }

    #[test]
    fn man_hop_is_slowest_path() {
        let t = topo();
        let to_server = t
            .transfer_time(&"laptop".into(), &"server".into(), 500 * 1024)
            .unwrap();
        let in_pan = t
            .transfer_time(&"laptop".into(), &"desktop".into(), 500 * 1024)
            .unwrap();
        assert!(to_server > in_pan);
    }
}
