//! # s2m3-net
//!
//! The platform substrate for S2M3: the **device fleet** of the paper's
//! Table III, the **home-PAN / MAN network** connecting it, and an
//! in-process **transport** used by the distributed runtime.
//!
//! The paper's testbed is five physical machines (GPU server, desktop,
//! laptop, two 4 GB Jetson Nanos) in a home network with the server one
//! MAN hop away. None of that hardware exists here, so this crate models
//! it: each device carries a calibrated compute profile (effective
//! GFLOP/s, per-module-execution overhead, per-work-unit overhead, memory
//! budget, model-loading speed) and each link a latency + bandwidth pair.
//! The calibration constants (see [`device`] and [`calibration`]) were
//! chosen so the headline cells of the paper's Tables VI/VII land in the
//! right regime — e.g. CLIP ViT-B/16 retrieval ≈ 45 s on a Jetson, ≈ 2.4 s
//! on the GPU server including the MAN hop, ≈ 3 s on the M3 laptop.
//!
//! What placement and routing consume is only the *interface*:
//! `t_comp(m, n)` ([`DeviceSpec::compute_time`]), `r_m ≤ R_n`
//! ([`DeviceSpec::usable_memory_bytes`]), and `t_comm`
//! ([`Topology::transfer_time`]).
//!
//! ## Example
//!
//! ```
//! use s2m3_net::fleet::Fleet;
//! use s2m3_models::zoo::Zoo;
//!
//! let fleet = Fleet::standard_testbed();
//! let zoo = Zoo::standard();
//! let vision = zoo.catalog().get_by_name("vision/ViT-B-16").unwrap();
//! let jetson = fleet.device("jetson-a").unwrap();
//! let laptop = fleet.device("laptop").unwrap();
//! // The Jetson is an order of magnitude slower than the laptop.
//! assert!(jetson.compute_time(vision, 1.0) > 5.0 * laptop.compute_time(vision, 1.0));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calibration;
pub mod device;
pub mod envelope;
pub mod fleet;
pub mod link;
pub mod tcp;
pub mod topology;
pub mod transport;

#[cfg(test)]
mod proptests;

pub use device::{DeviceId, DeviceSpec, KindEfficiency};
pub use fleet::Fleet;
pub use link::LinkSpec;
pub use topology::Topology;
