//! Real-socket transport: length-prefixed frames over localhost TCP.
//!
//! The paper's implementation "used socket programming for transmitting
//! input data and embeddings among devices" — this module provides the
//! same mechanism for the runtime. Every registered device binds a
//! listener on `127.0.0.1:0`; senders look the port up in a shared
//! registry and write one frame per envelope:
//!
//! ```text
//! [u32 LE frame length][JSON { src, dst, tag, payload }]
//! ```
//!
//! All registrations share one in-process registry (the analogue of the
//! paper's static device address book), so this transport demonstrates
//! the real wire path end-to-end while remaining test-friendly. Listener
//! threads run for the life of the process; see [`TcpNetwork::shutdown`]
//! for cooperative teardown.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::device::DeviceId;
use crate::envelope::Envelope;
use crate::transport::{Mailbox, NetworkBus, TransportError};

#[derive(Serialize, Deserialize)]
struct WireFrame {
    src: String,
    dst: String,
    tag: String,
    #[serde(with = "serde_bytes_compat")]
    payload: Vec<u8>,
}

/// serde helper: Vec<u8> as a JSON array is wasteful but dependency-free;
/// keep it behind a module so a binary codec can swap in later.
mod serde_bytes_compat {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(v: &[u8], s: S) -> Result<S::Ok, S::Error> {
        v.serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Vec<u8>, D::Error> {
        Vec::<u8>::deserialize(d)
    }
}

struct Inner {
    registry: RwLock<std::collections::HashMap<DeviceId, SocketAddr>>,
    stop: AtomicBool,
}

/// Localhost-TCP message bus.
#[derive(Clone)]
pub struct TcpNetwork {
    inner: Arc<Inner>,
}

impl Default for TcpNetwork {
    fn default() -> Self {
        Self::new()
    }
}

impl TcpNetwork {
    /// Creates an empty bus.
    pub fn new() -> Self {
        TcpNetwork {
            inner: Arc::new(Inner {
                registry: RwLock::new(std::collections::HashMap::new()),
                stop: AtomicBool::new(false),
            }),
        }
    }

    /// Requests listener threads to exit after their next accepted (or
    /// self-poked) connection.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        // Poke every listener so blocked accepts wake up.
        let addrs: Vec<_> = self.inner.registry.read().values().copied().collect();
        for addr in addrs {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
        }
    }

    /// The socket address a device listens on, if registered.
    pub fn address_of(&self, device: &DeviceId) -> Option<SocketAddr> {
        self.inner.registry.read().get(device).copied()
    }

    fn accept_loop(inner: Arc<Inner>, listener: TcpListener, tx: Sender<Envelope>) {
        for stream in listener.incoming() {
            if inner.stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(mut stream) = stream else { continue };
            let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
            loop {
                let mut len_buf = [0u8; 4];
                if stream.read_exact(&mut len_buf).is_err() {
                    break;
                }
                let len = u32::from_le_bytes(len_buf) as usize;
                if len == 0 || len > 64 * 1024 * 1024 {
                    break; // malformed or poke frame
                }
                let mut body = vec![0u8; len];
                if stream.read_exact(&mut body).is_err() {
                    break;
                }
                let Ok(frame) = serde_json::from_slice::<WireFrame>(&body) else {
                    continue;
                };
                let env = Envelope {
                    src: DeviceId::new(frame.src),
                    dst: DeviceId::new(frame.dst),
                    tag: frame.tag,
                    payload: Bytes::from(frame.payload),
                };
                if tx.send(env).is_err() {
                    return; // mailbox dropped
                }
            }
        }
    }
}

impl NetworkBus for TcpNetwork {
    fn register(&self, device: DeviceId) -> Mailbox {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind localhost listener");
        let addr = listener.local_addr().expect("listener has an address");
        let (tx, rx) = unbounded();
        self.inner.registry.write().insert(device, addr);
        let inner = Arc::clone(&self.inner);
        std::thread::spawn(move || TcpNetwork::accept_loop(inner, listener, tx));
        rx
    }

    fn send(&self, env: Envelope) -> Result<(), TransportError> {
        let addr = self
            .address_of(&env.dst)
            .ok_or_else(|| TransportError::UnknownDevice(env.dst.clone()))?;
        let frame = WireFrame {
            src: env.src.as_str().to_string(),
            dst: env.dst.as_str().to_string(),
            tag: env.tag.clone(),
            payload: env.payload.to_vec(),
        };
        let body = serde_json::to_vec(&frame)
            .map_err(|_| TransportError::Disconnected(env.dst.clone()))?;
        let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))
            .map_err(|_| TransportError::Disconnected(env.dst.clone()))?;
        let mut buf = Vec::with_capacity(4 + body.len());
        buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
        buf.extend_from_slice(&body);
        stream
            .write_all(&buf)
            .map_err(|_| TransportError::Disconnected(env.dst.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_roundtrip() {
        let net = TcpNetwork::new();
        let rx = net.register("b".into());
        let env = Envelope::encode("a".into(), "b".into(), "ping", &42u32).unwrap();
        net.send(env.clone()).unwrap();
        let got = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got, env);
        net.shutdown();
    }

    #[test]
    fn unknown_destination_errors() {
        let net = TcpNetwork::new();
        let env = Envelope::encode("a".into(), "ghost".into(), "ping", &1u32).unwrap();
        assert!(matches!(
            net.send(env),
            Err(TransportError::UnknownDevice(_))
        ));
    }

    #[test]
    fn many_messages_in_order_per_connection() {
        let net = TcpNetwork::new();
        let rx = net.register("sink".into());
        for i in 0..20u32 {
            let env = Envelope::encode("src".into(), "sink".into(), "seq", &i).unwrap();
            net.send(env).unwrap();
        }
        let mut got: Vec<u32> = (0..20)
            .map(|_| {
                rx.recv_timeout(Duration::from_secs(5))
                    .unwrap()
                    .decode()
                    .unwrap()
            })
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
        net.shutdown();
    }

    #[test]
    fn binary_payloads_survive() {
        let net = TcpNetwork::new();
        let rx = net.register("b".into());
        let blob: Vec<u8> = (0..=255u8).collect();
        let env = Envelope {
            src: "a".into(),
            dst: "b".into(),
            tag: "blob".into(),
            payload: Bytes::from(blob.clone()),
        };
        net.send(env).unwrap();
        let got = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got.payload.to_vec(), blob);
        net.shutdown();
    }
}
