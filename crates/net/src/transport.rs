//! Transports: how envelopes move between device workers.
//!
//! The paper's implementation uses socket programming between physical
//! machines. The runtime here hosts every "device" as a thread in one
//! process, so the default transport is an in-process message bus built on
//! crossbeam channels. It can optionally *shape* traffic — injecting real
//! sleeps proportional to the modeled transfer time — when the runtime is
//! used to observe wall-clock behaviour rather than just correctness.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;

use crate::device::DeviceId;
use crate::envelope::Envelope;
use crate::topology::Topology;

/// Transport errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// Destination device is not registered.
    UnknownDevice(DeviceId),
    /// The destination's receiver has been dropped.
    Disconnected(DeviceId),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::UnknownDevice(d) => write!(f, "unknown device {d}"),
            TransportError::Disconnected(d) => write!(f, "device {d} disconnected"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A device's mailbox.
pub type Mailbox = Receiver<Envelope>;

/// Anything that can move envelopes between registered devices.
///
/// Implemented by [`InMemoryNetwork`] (crossbeam channels, default) and
/// [`crate::tcp::TcpNetwork`] (length-prefixed frames over localhost
/// sockets, the paper's own mechanism). The runtime in `s2m3-runtime` is
/// generic over this trait.
pub trait NetworkBus: Clone + Send + Sync + 'static {
    /// Registers a device and returns its mailbox. Re-registering
    /// replaces the previous mailbox.
    fn register(&self, device: DeviceId) -> Mailbox;

    /// Sends an envelope to its destination.
    ///
    /// # Errors
    ///
    /// [`TransportError`] when the destination is unknown or gone.
    fn send(&self, env: Envelope) -> Result<(), TransportError>;
}

/// In-process message bus with optional traffic shaping.
///
/// Cloneable handle; all clones share the same registry.
#[derive(Clone)]
pub struct InMemoryNetwork {
    inner: Arc<Inner>,
}

struct Inner {
    topology: Topology,
    /// Fraction of the modeled transfer time to actually sleep before
    /// delivery (0.0 = deliver immediately; 1.0 = real-time shaping).
    shaping: f64,
    registry: RwLock<HashMap<DeviceId, Sender<Envelope>>>,
}

impl InMemoryNetwork {
    /// Creates a bus over `topology`. `shaping` scales modeled transfer
    /// times into real sleeps (use `0.0` in tests).
    pub fn new(topology: Topology, shaping: f64) -> Self {
        InMemoryNetwork {
            inner: Arc::new(Inner {
                topology,
                shaping,
                registry: RwLock::new(HashMap::new()),
            }),
        }
    }

    /// Registers a device and returns its mailbox.
    ///
    /// Re-registering replaces the previous mailbox.
    pub fn register(&self, device: DeviceId) -> Mailbox {
        let (tx, rx) = unbounded();
        self.inner.registry.write().insert(device, tx);
        rx
    }

    /// The modeled transfer time for an envelope, seconds.
    pub fn modeled_transfer_time(&self, env: &Envelope) -> f64 {
        self.inner
            .topology
            .transfer_time(&env.src, &env.dst, env.wire_bytes())
            .unwrap_or(0.0)
    }

    /// Sends an envelope to its destination.
    ///
    /// # Errors
    ///
    /// [`TransportError::UnknownDevice`] if the destination never
    /// registered; [`TransportError::Disconnected`] if its mailbox is gone.
    pub fn send(&self, env: Envelope) -> Result<(), TransportError> {
        if self.inner.shaping > 0.0 {
            let t = self.modeled_transfer_time(&env) * self.inner.shaping;
            if t > 0.0 {
                std::thread::sleep(Duration::from_secs_f64(t));
            }
        }
        let registry = self.inner.registry.read();
        let tx = registry
            .get(&env.dst)
            .ok_or_else(|| TransportError::UnknownDevice(env.dst.clone()))?;
        tx.send(env.clone())
            .map_err(|_| TransportError::Disconnected(env.dst.clone()))
    }

    /// Devices currently registered.
    pub fn registered(&self) -> Vec<DeviceId> {
        let mut v: Vec<_> = self.inner.registry.read().keys().cloned().collect();
        v.sort();
        v
    }
}

impl NetworkBus for InMemoryNetwork {
    fn register(&self, device: DeviceId) -> Mailbox {
        InMemoryNetwork::register(self, device)
    }

    fn send(&self, env: Envelope) -> Result<(), TransportError> {
        InMemoryNetwork::send(self, env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;

    fn net() -> InMemoryNetwork {
        let mut topo = Topology::new();
        topo.set_access("a".into(), LinkSpec::new(100.0e6, 0.001));
        topo.set_access("b".into(), LinkSpec::new(100.0e6, 0.001));
        InMemoryNetwork::new(topo, 0.0)
    }

    #[test]
    fn send_and_receive() {
        let net = net();
        let rx = net.register("b".into());
        let env = Envelope::encode("a".into(), "b".into(), "ping", &1u32).unwrap();
        net.send(env.clone()).unwrap();
        let got = rx.recv().unwrap();
        assert_eq!(got, env);
    }

    #[test]
    fn unknown_destination_errors() {
        let net = net();
        let env = Envelope::encode("a".into(), "ghost".into(), "ping", &1u32).unwrap();
        assert!(matches!(
            net.send(env),
            Err(TransportError::UnknownDevice(_))
        ));
    }

    #[test]
    fn dropped_mailbox_reports_disconnected() {
        let net = net();
        let rx = net.register("b".into());
        drop(rx);
        let env = Envelope::encode("a".into(), "b".into(), "ping", &1u32).unwrap();
        assert!(matches!(
            net.send(env),
            Err(TransportError::Disconnected(_))
        ));
    }

    #[test]
    fn registry_lists_devices() {
        let net = net();
        let _rx1 = net.register("b".into());
        let _rx2 = net.register("a".into());
        let names: Vec<_> = net
            .registered()
            .iter()
            .map(|d| d.as_str().to_string())
            .collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn cross_thread_delivery() {
        let net = net();
        let rx = net.register("b".into());
        let sender = net;
        let handle = std::thread::spawn(move || {
            for i in 0..16u32 {
                let env = Envelope::encode("a".into(), "b".into(), "seq", &i).unwrap();
                sender.send(env).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..16 {
            got.push(rx.recv().unwrap().decode::<u32>().unwrap());
        }
        handle.join().unwrap();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn modeled_time_uses_topology() {
        let net = net();
        let env = Envelope::encode("a".into(), "b".into(), "big", &vec![0u8; 10_000]).unwrap();
        let t = net.modeled_transfer_time(&env);
        assert!(t > 0.002, "{t}"); // two 1 ms access hops + serialization
    }
}
