//! # s2m3-models
//!
//! The S2M3 model zoo: functional-level modules and the multi-modal model
//! architectures the paper evaluates (Tables II, IV, V).
//!
//! S2M3's core observation is that multi-modal models decompose into
//! *functional-level* modules — modality-wise encoders plus one task-specific
//! head — and that modules with identical weights recur across models and
//! tasks (Insights 1–4 of the paper). This crate provides:
//!
//! - [`module`]: [`ModuleSpec`] — identity, kind, parameter count, memory
//!   footprint, FLOP cost, and output dimension of one functional module.
//!   Module **identity** is what sharing keys on: two models that both use
//!   `ViT-B/16` reference the *same* [`ModuleId`] and therefore the same
//!   placement slot.
//! - [`catalog`]: every functional module of Table V (ten vision encoders,
//!   the per-variant CLIP text transformers, the OpenCLIP text transformer,
//!   the ViT-B audio encoder, four language models, and the distance /
//!   classifier heads).
//! - [`zoo`]: the 14+ [`ModelSpec`]s of Table II across the five tasks of
//!   Table IV, assembled from catalog modules.
//! - [`exec`]: *executable* synthetic instances of each module built on
//!   [`s2m3_tensor`]. They perform real (small) deterministic computation so
//!   that any deployment — centralized or split — produces bit-identical
//!   outputs, the property behind the paper's Table VIII.
//! - [`input`]: modality payload descriptions (byte sizes for the network
//!   model, plus synthetic content for executable inference).
//!
//! ## Example: look up a model and inspect its split
//!
//! ```
//! use s2m3_models::zoo::Zoo;
//!
//! let zoo = Zoo::standard();
//! let clip = zoo.model("CLIP ViT-B/16").unwrap();
//! // CLIP splits into a vision encoder, a text encoder and a similarity head.
//! assert_eq!(clip.encoders().len(), 2);
//! // The split-architecture worst single-device cost is the largest module,
//! // not the sum (Sec. IV-A of the paper).
//! assert!(clip.max_module_params() < clip.total_params());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod catalog;
pub mod exec;
pub mod input;
pub mod module;
pub mod zoo;

pub use input::{Modality, ModalityInput};
pub use module::{ModuleId, ModuleKind, ModuleSpec};
pub use zoo::{ModelSpec, Task, Zoo};
