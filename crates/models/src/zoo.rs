//! The model zoo: Table II's multi-modal architectures across the five
//! tasks of Table IV, assembled from catalog modules.
//!
//! A [`ModelSpec`] is a *composition* of functional modules: a set of
//! modality-wise encoders plus exactly one task head. Models own copies of
//! their module specs for convenience; module **identity** (the sharing
//! key) is carried by [`ModuleId`] equality across models.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::catalog::Catalog;
use crate::module::{ModuleId, ModuleSpec};

/// The five multi-modal task families of Table IV (captioning folded in as
/// the paper's sixth architecture family).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Task {
    /// Zero-shot image-text retrieval (CLIP-style): image + candidate
    /// prompts → cosine ranking. Parallelizable across two encoders.
    ImageTextRetrieval,
    /// Encoder-only VQA: image + question through encoders, classifier
    /// head. Parallelizable.
    EncoderVqa,
    /// Decoder-only VQA (LLaVA-style): vision encoder + LLM head. The LLM
    /// consumes the question directly; only one encoder, no parallelism.
    DecoderVqa,
    /// Cross-modal alignment (ImageBind-style): three encoders + InfoNCE.
    /// Parallelizable.
    CrossModalAlignment,
    /// Image classification: vision encoder + linear classifier.
    ImageClassification,
    /// Image captioning: vision encoder + GPT-2 generative head.
    ImageCaptioning,
}

impl Task {
    /// Whether this task has ≥2 encoders and thus benefits from S2M3's
    /// per-request parallel routing (Table IV's `||` markers).
    pub fn is_parallelizable(self) -> bool {
        matches!(
            self,
            Task::ImageTextRetrieval | Task::EncoderVqa | Task::CrossModalAlignment
        )
    }

    /// All tasks in stable order.
    pub fn all() -> [Task; 6] {
        [
            Task::ImageTextRetrieval,
            Task::EncoderVqa,
            Task::DecoderVqa,
            Task::CrossModalAlignment,
            Task::ImageClassification,
            Task::ImageCaptioning,
        ]
    }
}

impl std::fmt::Display for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Task::ImageTextRetrieval => "image-text-retrieval",
            Task::EncoderVqa => "encoder-vqa",
            Task::DecoderVqa => "decoder-vqa",
            Task::CrossModalAlignment => "cross-modal-alignment",
            Task::ImageClassification => "image-classification",
            Task::ImageCaptioning => "image-captioning",
        })
    }
}

/// One multi-modal model: a named composition of encoder modules and a
/// single task head (Insight 1's split).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Human-readable model name as the paper uses it.
    pub name: String,
    /// Task family.
    pub task: Task,
    encoders: Vec<ModuleSpec>,
    head: ModuleSpec,
}

impl ModelSpec {
    /// Assembles a model, validating the composition.
    ///
    /// # Errors
    ///
    /// Returns a message if any "encoder" is actually a head, the head is
    /// an encoder, or the encoder list is empty.
    pub fn new(
        name: impl Into<String>,
        task: Task,
        encoders: Vec<ModuleSpec>,
        head: ModuleSpec,
    ) -> Result<Self, String> {
        let name = name.into();
        if encoders.is_empty() {
            return Err(format!("model {name}: no encoders"));
        }
        if let Some(bad) = encoders.iter().find(|m| !m.kind.is_encoder()) {
            return Err(format!("model {name}: {} is not an encoder", bad.id));
        }
        if !head.kind.is_head() {
            return Err(format!("model {name}: {} is not a head", head.id));
        }
        Ok(ModelSpec {
            name,
            task,
            encoders,
            head,
        })
    }

    /// The modality-wise encoder modules.
    pub fn encoders(&self) -> &[ModuleSpec] {
        &self.encoders
    }

    /// The task head module.
    pub fn head(&self) -> &ModuleSpec {
        &self.head
    }

    /// All modules (encoders then head) — `M_k` in the paper.
    pub fn modules(&self) -> impl Iterator<Item = &ModuleSpec> {
        self.encoders.iter().chain(std::iter::once(&self.head))
    }

    /// All module ids.
    pub fn module_ids(&self) -> Vec<ModuleId> {
        self.modules().map(|m| m.id.clone()).collect()
    }

    /// Total parameter count — the *centralized* deployment cost
    /// `Σ_m r_m` of Sec. IV-A.
    pub fn total_params(&self) -> u64 {
        self.modules().map(|m| m.params).sum()
    }

    /// Largest single module — the *split* worst-case per-device cost
    /// `max_m r_m` of Sec. IV-A.
    pub fn max_module_params(&self) -> u64 {
        self.modules().map(|m| m.params).max().unwrap_or(0)
    }

    /// Total resident memory of a centralized deployment, in bytes.
    pub fn total_memory_bytes(&self) -> u64 {
        self.modules().map(|m| m.memory_bytes()).sum()
    }

    /// Whether this model can exploit per-request parallel routing.
    pub fn is_parallelizable(&self) -> bool {
        self.encoders.len() >= 2
    }
}

/// The assembled zoo.
#[derive(Debug, Clone)]
pub struct Zoo {
    catalog: Catalog,
    models: Vec<ModelSpec>,
}

impl Zoo {
    /// Builds the paper's standard zoo (Table II plus the shared-CLIP
    /// tri-modal alignment model used in the multi-task experiments).
    ///
    /// # Panics
    ///
    /// Never panics for the standard catalog; composition is validated at
    /// construction and covered by tests.
    pub fn standard() -> Self {
        let c = Catalog::standard();
        let g = |name: &str| {
            c.get_by_name(name)
                .expect("standard catalog module")
                .clone()
        };
        let mut models = Vec::new();
        let mut push = |m: Result<ModelSpec, String>| models.push(m.expect("valid standard model"));

        // --- Image-text retrieval: the nine CLIP variants.
        let clips = [
            ("CLIP ResNet-50", "vision/RN50", "text/CLIP-RN50"),
            ("CLIP ResNet-101", "vision/RN101", "text/CLIP-RN101"),
            ("CLIP ResNet-50x4", "vision/RN50x4", "text/CLIP-RN50x4"),
            ("CLIP ResNet-50x16", "vision/RN50x16", "text/CLIP-RN50x16"),
            ("CLIP ResNet-50x64", "vision/RN50x64", "text/CLIP-RN50x64"),
            ("CLIP ViT-B/32", "vision/ViT-B-32", "text/CLIP-B-32"),
            ("CLIP ViT-B/16", "vision/ViT-B-16", "text/CLIP-B-16"),
            ("CLIP ViT-L/14", "vision/ViT-L-14", "text/CLIP-L-14"),
            (
                "CLIP ViT-L/14@336",
                "vision/ViT-L-14-336",
                "text/CLIP-L-14-336",
            ),
        ];
        for (name, v, t) in clips {
            push(ModelSpec::new(
                name,
                Task::ImageTextRetrieval,
                vec![g(v), g(t)],
                g("head/cosine"),
            ));
        }

        // --- Encoder-only VQA. "Small" totals 124M (ViT-B/16 CLIP pair),
        //     "Large" 389M (ViT-L/14@336 pair), matching Table VI.
        push(ModelSpec::new(
            "Encoder-only VQA (Small)",
            Task::EncoderVqa,
            vec![g("vision/ViT-B-16"), g("text/CLIP-B-16")],
            g("head/classifier-vqa-coco-s"),
        ));
        push(ModelSpec::new(
            "Encoder-only VQA (Large)",
            Task::EncoderVqa,
            vec![g("vision/ViT-L-14-336"), g("text/CLIP-L-14-336")],
            g("head/classifier-vqa-coco-l"),
        ));

        // --- Decoder-only VQA: LLaVA family (Table II).
        let llavas = [
            ("LLaVA-v1.5-7B", "vision/ViT-L-14-336", "llm/Vicuna-7B"),
            ("LLaVA-Next-7B", "vision/ViT-L-14-336", "llm/Vicuna-7B"),
            ("LLaVA-v1.5-13B", "vision/ViT-L-14-336", "llm/Vicuna-13B"),
            ("LLaVA-Next-13B", "vision/ViT-L-14-336", "llm/Vicuna-13B"),
            ("xtuner-Phi-3-Mini", "vision/ViT-L-14-336", "llm/Phi-3-Mini"),
            ("Flint-v0.5-1B", "vision/ViT-L-14-336", "llm/TinyLlama-1.1B"),
            ("LLaVA-v1.5-7B (S)", "vision/ViT-B-16", "llm/Vicuna-7B"),
            ("Flint-v0.5-1B (S)", "vision/ViT-B-16", "llm/TinyLlama-1.1B"),
        ];
        for (name, v, l) in llavas {
            push(ModelSpec::new(name, Task::DecoderVqa, vec![g(v)], g(l)));
        }

        // --- Cross-modal alignment. Full ImageBind (Table II), plus the
        //     shared-CLIP tri-modal model the multi-task experiments
        //     deploy (vision ViT-B/16 + text CLIP TRF + audio ViT-B =
        //     209M, matching Tables X and XI).
        push(ModelSpec::new(
            "ImageBind",
            Task::CrossModalAlignment,
            vec![
                g("vision/OpenCLIP-ViT-H-14"),
                g("text/OpenCLIP-TRF"),
                g("audio/ViT-B"),
            ],
            g("head/infonce"),
        ));
        push(ModelSpec::new(
            "AlignBind-B",
            Task::CrossModalAlignment,
            vec![g("vision/ViT-B-16"), g("text/CLIP-B-16"), g("audio/ViT-B")],
            g("head/infonce"),
        ));

        // --- Image classification (Food-101 over the shared ViT-B/16).
        push(ModelSpec::new(
            "CLIP-Classifier Food-101",
            Task::ImageClassification,
            vec![g("vision/ViT-B-16")],
            g("head/classifier-food101"),
        ));

        // --- Image captioning (NLP Connect ViT-GPT2).
        push(ModelSpec::new(
            "NLP Connect ViT-GPT2",
            Task::ImageCaptioning,
            vec![g("vision/ViT-B-16")],
            g("llm/GPT2"),
        ));

        Zoo { catalog: c, models }
    }

    /// The underlying module catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// All models.
    pub fn models(&self) -> &[ModelSpec] {
        &self.models
    }

    /// Looks up a model by its paper name.
    pub fn model(&self, name: &str) -> Option<&ModelSpec> {
        self.models.iter().find(|m| m.name == name)
    }

    /// Models of one task family.
    pub fn models_for_task(&self, task: Task) -> Vec<&ModelSpec> {
        self.models.iter().filter(|m| m.task == task).collect()
    }

    /// Distinct module ids across a set of models — the shared module set
    /// `M = ∪_k M_k` of Sec. IV-B. Its size `c` is what the shared
    /// deployment pays for; without sharing the cost is `Σ_k |M_k|`.
    pub fn distinct_modules<'a>(
        models: impl IntoIterator<Item = &'a ModelSpec>,
    ) -> BTreeSet<ModuleId> {
        let mut set = BTreeSet::new();
        for m in models {
            set.extend(m.module_ids());
        }
        set
    }

    /// Total parameters of a *shared* deployment of `models` (each
    /// distinct module counted once).
    pub fn shared_params<'a>(&self, models: impl IntoIterator<Item = &'a ModelSpec>) -> u64 {
        Self::distinct_modules(models)
            .iter()
            .filter_map(|id| self.catalog.get(id))
            .map(|m| m.params)
            .sum()
    }

    /// Total parameters of a *dedicated* (non-shared) deployment of
    /// `models` (duplicates counted per model).
    pub fn dedicated_params<'a>(models: impl IntoIterator<Item = &'a ModelSpec>) -> u64 {
        models.into_iter().map(|m| m.total_params()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_covers_all_tasks_and_paper_scale() {
        let zoo = Zoo::standard();
        assert!(zoo.models().len() >= 14, "only {}", zoo.models().len());
        for t in Task::all() {
            assert!(!zoo.models_for_task(t).is_empty(), "no models for {t}");
        }
    }

    #[test]
    fn model_totals_match_table_vi() {
        let zoo = Zoo::standard();
        let total = |n: &str| zoo.model(n).unwrap().total_params() / 1_000_000;
        assert_eq!(total("CLIP ResNet-50"), 76);
        assert_eq!(total("CLIP ResNet-50x64"), 572);
        assert_eq!(total("CLIP ViT-B/16"), 124);
        assert_eq!(total("CLIP ViT-L/14@336"), 389);
        // Encoder-only rows of Table VI: 124M / 389M (+ ~1K head).
        assert_eq!(total("Encoder-only VQA (Small)"), 124);
        assert_eq!(total("Encoder-only VQA (Large)"), 389);
        // ImageBind: ~1.0B.
        assert_eq!(total("ImageBind"), 1017);
        // Shared tri-modal alignment: 209M (Table X/XI).
        assert_eq!(total("AlignBind-B"), 209);
    }

    #[test]
    fn split_cost_is_max_module_table_vi_s2m3_column() {
        let zoo = Zoo::standard();
        let max = |n: &str| zoo.model(n).unwrap().max_module_params() / 1_000_000;
        assert_eq!(max("CLIP ResNet-50"), 38);
        assert_eq!(max("CLIP ResNet-101"), 56);
        assert_eq!(max("CLIP ResNet-50x4"), 87);
        assert_eq!(max("CLIP ResNet-50x16"), 168);
        assert_eq!(max("CLIP ResNet-50x64"), 421);
        assert_eq!(max("CLIP ViT-B/32"), 88);
        assert_eq!(max("CLIP ViT-B/16"), 86);
        assert_eq!(max("CLIP ViT-L/14"), 304);
        assert_eq!(max("ImageBind"), 630);
    }

    #[test]
    fn retrieval_models_are_parallelizable_decoder_vqa_not() {
        let zoo = Zoo::standard();
        assert!(zoo.model("CLIP ViT-B/16").unwrap().is_parallelizable());
        assert!(zoo.model("ImageBind").unwrap().is_parallelizable());
        assert!(!zoo.model("LLaVA-v1.5-7B").unwrap().is_parallelizable());
        assert!(!zoo
            .model("NLP Connect ViT-GPT2")
            .unwrap()
            .is_parallelizable());
        assert!(Task::ImageTextRetrieval.is_parallelizable());
        assert!(!Task::DecoderVqa.is_parallelizable());
    }

    #[test]
    fn sharing_matches_table_x_progression() {
        // Retrieval → +EncoderVQA → +AlignBind-B → +Classification:
        // shared params 124M → 124M(+1K) → 209M → 209M(+52K).
        let zoo = Zoo::standard();
        let seq = [
            "CLIP ViT-B/16",
            "Encoder-only VQA (Small)",
            "AlignBind-B",
            "CLIP-Classifier Food-101",
        ];
        let models: Vec<_> = seq.iter().map(|n| zoo.model(n).unwrap()).collect();
        let shared_m = |k: usize| zoo.shared_params(models[..k].iter().copied()) / 1_000_000;
        assert_eq!(shared_m(1), 124);
        assert_eq!(shared_m(2), 124); // +1K classifier only
        assert_eq!(shared_m(3), 209); // +85M audio encoder
        assert_eq!(shared_m(4), 209); // +52K classifier only
                                      // Dedicated deployment grows with every task instead.
        let dedicated = Zoo::dedicated_params(models.iter().copied()) / 1_000_000;
        assert_eq!(dedicated, 124 + 124 + 209 + 86);
    }

    #[test]
    fn module_identity_shared_across_tasks() {
        // ViT-B/16 appears in retrieval, VQA, alignment, classification,
        // captioning — Insight 4's reuse.
        let zoo = Zoo::standard();
        let users: Vec<_> = zoo
            .models()
            .iter()
            .filter(|m| {
                m.module_ids()
                    .iter()
                    .any(|id| id.as_str() == "vision/ViT-B-16")
            })
            .collect();
        assert!(users.len() >= 5, "ViT-B/16 used by {} models", users.len());
        let tasks: BTreeSet<_> = users.iter().map(|m| m.task).collect();
        assert!(tasks.len() >= 4);
    }

    #[test]
    fn composition_validation_rejects_bad_models() {
        let c = Catalog::standard();
        let vision = c.get_by_name("vision/ViT-B-16").unwrap().clone();
        let head = c.get_by_name("head/cosine").unwrap().clone();
        // Head in encoder position.
        assert!(ModelSpec::new(
            "bad",
            Task::ImageTextRetrieval,
            vec![head.clone()],
            head.clone()
        )
        .is_err());
        // Encoder in head position.
        assert!(ModelSpec::new(
            "bad",
            Task::ImageTextRetrieval,
            vec![vision.clone()],
            vision
        )
        .is_err());
        // Empty encoders.
        assert!(ModelSpec::new("bad", Task::ImageTextRetrieval, vec![], head).is_err());
    }

    #[test]
    fn table_iv_functional_module_grid() {
        // Table IV: which module kinds each task family uses, and which
        // families are parallelizable ('||').
        use crate::module::ModuleKind as K;
        let zoo = Zoo::standard();
        let kinds = |name: &str| -> std::collections::BTreeSet<String> {
            zoo.model(name)
                .unwrap()
                .modules()
                .map(|m| m.kind.to_string())
                .collect()
        };
        // Image-text retrieval (||): vision + text + distance.
        let r = kinds("CLIP ViT-B/16");
        assert!(r.contains(&K::VisionEncoder.to_string()));
        assert!(r.contains(&K::TextEncoder.to_string()));
        assert!(r.contains(&K::DistanceHead.to_string()));
        // Encoder-only VQA (||): vision + text + classifier.
        let v = kinds("Encoder-only VQA (Small)");
        assert!(v.contains(&K::ClassifierHead.to_string()));
        // Decoder-only VQA: vision + LLM, no text encoder, NOT parallel.
        let d = kinds("LLaVA-v1.5-7B");
        assert!(d.contains(&K::LanguageModel.to_string()));
        assert!(!d.contains(&K::TextEncoder.to_string()));
        // Cross-modal alignment (||): vision + text + audio + distance.
        let a = kinds("ImageBind");
        assert!(a.contains(&K::AudioEncoder.to_string()));
        // Image classification: vision + classifier only.
        let c = kinds("CLIP-Classifier Food-101");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn quantized_modules_compose_into_models() {
        // Sec. IV-A compatibility: swap a quantized tower into a model.
        let zoo = Zoo::standard();
        let clip = zoo.model("CLIP ViT-B/16").unwrap();
        let qvision = clip.encoders()[0].quantized();
        let model = ModelSpec::new(
            "CLIP ViT-B/16 (int-quantized vision)",
            Task::ImageTextRetrieval,
            vec![qvision, clip.encoders()[1].clone()],
            clip.head().clone(),
        )
        .unwrap();
        assert!(model.total_memory_bytes() < clip.total_memory_bytes());
        // Quantized module has a distinct identity: it is NOT shared with
        // the fp32 tower (different weights after quantization).
        assert_ne!(model.encoders()[0].id, clip.encoders()[0].id);
    }

    #[test]
    fn modules_iterator_yields_encoders_then_head() {
        let zoo = Zoo::standard();
        let m = zoo.model("CLIP ViT-B/16").unwrap();
        let ids: Vec<_> = m.modules().map(|s| s.id.as_str().to_string()).collect();
        assert_eq!(
            ids,
            vec!["vision/ViT-B-16", "text/CLIP-B-16", "head/cosine"]
        );
    }
}
