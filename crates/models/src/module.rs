//! Functional-level module identity and specification.
//!
//! A *module* in S2M3 is one functional block of a multi-modal model — a
//! modality-wise encoder or a task-specific head (Insight 1). Placement,
//! routing, sharing, and memory accounting all operate on [`ModuleSpec`]s;
//! the actual computation lives in [`crate::exec`].

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::input::Modality;

/// Stable identity of a functional module.
///
/// Two models that reference the same `ModuleId` use *the same weights*
/// (e.g. the frozen `ViT-B/16` vision tower reused by CLIP retrieval,
/// encoder-only VQA, and image captioning). Sharing across tasks — the
/// "share" half of split-and-share — keys on this identity.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ModuleId(String);

impl ModuleId {
    /// Creates an id from a canonical module name (e.g. `"vision/ViT-B-16"`).
    pub fn new(name: impl Into<String>) -> Self {
        ModuleId(name.into())
    }

    /// The canonical name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ModuleId {
    fn from(s: &str) -> Self {
        ModuleId::new(s)
    }
}

/// The functional role of a module (Table IV of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModuleKind {
    /// Image understanding tower (ResNet / ViT variants).
    VisionEncoder,
    /// Text understanding tower (CLIP/OpenCLIP transformers).
    TextEncoder,
    /// Audio understanding tower (ImageBind-style ViT-B over spectrograms).
    AudioEncoder,
    /// Autoregressive language model acting as a generative task head
    /// (Vicuna, Phi-3-Mini, TinyLlama, GPT-2).
    LanguageModel,
    /// Non-parametric similarity head (cosine similarity / InfoNCE).
    DistanceHead,
    /// Linear classification head.
    ClassifierHead,
}

impl ModuleKind {
    /// Whether this module is a modality-wise encoder (can run in parallel
    /// with other encoders of the same request — Insight 2).
    pub fn is_encoder(self) -> bool {
        matches!(
            self,
            ModuleKind::VisionEncoder | ModuleKind::TextEncoder | ModuleKind::AudioEncoder
        )
    }

    /// Whether this module is a task head (runs after all encoders).
    pub fn is_head(self) -> bool {
        !self.is_encoder()
    }

    /// The input modality consumed by an encoder, or `None` for heads.
    pub fn modality(self) -> Option<Modality> {
        match self {
            ModuleKind::VisionEncoder => Some(Modality::Image),
            ModuleKind::TextEncoder => Some(Modality::Text),
            ModuleKind::AudioEncoder => Some(Modality::Audio),
            _ => None,
        }
    }

    /// All kinds, in a stable order.
    pub fn all() -> [ModuleKind; 6] {
        [
            ModuleKind::VisionEncoder,
            ModuleKind::TextEncoder,
            ModuleKind::AudioEncoder,
            ModuleKind::LanguageModel,
            ModuleKind::DistanceHead,
            ModuleKind::ClassifierHead,
        ]
    }
}

impl fmt::Display for ModuleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ModuleKind::VisionEncoder => "vision-encoder",
            ModuleKind::TextEncoder => "text-encoder",
            ModuleKind::AudioEncoder => "audio-encoder",
            ModuleKind::LanguageModel => "language-model",
            ModuleKind::DistanceHead => "distance-head",
            ModuleKind::ClassifierHead => "classifier-head",
        };
        f.write_str(s)
    }
}

/// Numeric precision the module's weights are stored in, which determines
/// its memory footprint. Mirrors common deployment practice: encoders ship
/// fp32, billion-parameter language models ship fp16.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// 4 bytes per parameter.
    Fp32,
    /// 2 bytes per parameter.
    Fp16,
}

impl Precision {
    /// Bytes occupied by one parameter.
    pub fn bytes_per_param(self) -> u64 {
        match self {
            Precision::Fp32 => 4,
            Precision::Fp16 => 2,
        }
    }
}

/// Specification of one functional module: everything placement, routing,
/// and cost accounting need to know, but none of the weights.
///
/// The *work unit* of `flops_per_unit` depends on the kind:
/// one image for vision encoders, one (77-token) prompt for text encoders,
/// one clip for audio encoders, one token processed for language models,
/// and one candidate comparison / one classification for heads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleSpec {
    /// Stable identity (sharing key).
    pub id: ModuleId,
    /// Functional role.
    pub kind: ModuleKind,
    /// Number of parameters.
    pub params: u64,
    /// Output embedding dimension (logit count for classifier heads).
    pub embed_dim: usize,
    /// GFLOPs per work unit (see type-level docs for the unit definition).
    pub gflops_per_unit: f64,
    /// Weight storage precision.
    pub precision: Precision,
}

impl ModuleSpec {
    /// Weight memory footprint in bytes.
    pub fn weight_bytes(&self) -> u64 {
        self.params * self.precision.bytes_per_param()
    }

    /// Total resident memory requirement `r_m` in bytes: weights plus an
    /// activation/workspace share proportional to compute intensity.
    ///
    /// The activation share matters for reproducing the paper's feasibility
    /// results (a 4 GB Jetson cannot host `RN50x16` even though its weights
    /// alone would fit — activations at 384 px push it over).
    pub fn memory_bytes(&self) -> u64 {
        // ~12 MB of workspace per GFLOP of per-unit compute, capped below by
        // a small fixed buffer. Calibrated so that RN50x16 (61 GFLOP/img)
        // carries ~0.7 GB of workspace while ViT-B/16 (17.6) carries ~0.2 GB.
        let activation = (self.gflops_per_unit * 12.0 * 1024.0 * 1024.0) as u64;
        self.weight_bytes() + activation.max(8 * 1024 * 1024)
    }

    /// GFLOPs for `units` work units.
    pub fn gflops(&self, units: f64) -> f64 {
        self.gflops_per_unit * units
    }

    /// Size in bytes of this module's output for `units` work units
    /// (embeddings at fp32), used to cost the encoder→head transfer.
    pub fn output_bytes(&self, units: f64) -> u64 {
        (self.embed_dim as f64 * 4.0 * units.max(1.0)) as u64
    }

    /// Parameter count in millions, as the paper reports it.
    pub fn mparams(&self) -> f64 {
        self.params as f64 / 1.0e6
    }

    /// A quantized variant of this module: same architecture and FLOPs,
    /// halved weight storage (fp16), derived identity. S2M3 is explicitly
    /// *compatible* with compression (Sec. IV-A: intra-module techniques
    /// are orthogonal and composable) — a quantized module is just
    /// another interchangeable module in the catalog, placeable wherever
    /// the smaller footprint now fits.
    pub fn quantized(&self) -> ModuleSpec {
        let mut q = self.clone();
        q.id = ModuleId::new(format!("{}@fp16", self.id));
        q.precision = Precision::Fp16;
        q
    }
}

impl fmt::Display for ModuleSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {:.0}M params, {:.1} GFLOP/unit",
            self.id,
            self.kind,
            self.mparams(),
            self.gflops_per_unit
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: ModuleKind, params: u64, gflops: f64) -> ModuleSpec {
        ModuleSpec {
            id: ModuleId::new("test/mod"),
            kind,
            params,
            embed_dim: 512,
            gflops_per_unit: gflops,
            precision: Precision::Fp32,
        }
    }

    #[test]
    fn kind_classification() {
        assert!(ModuleKind::VisionEncoder.is_encoder());
        assert!(ModuleKind::AudioEncoder.is_encoder());
        assert!(!ModuleKind::LanguageModel.is_encoder());
        assert!(ModuleKind::DistanceHead.is_head());
        assert!(ModuleKind::ClassifierHead.is_head());
        assert_eq!(ModuleKind::TextEncoder.modality(), Some(Modality::Text));
        assert_eq!(ModuleKind::ClassifierHead.modality(), None);
        // Every kind is either an encoder or a head, never both.
        for k in ModuleKind::all() {
            assert!(k.is_encoder() != k.is_head());
        }
    }

    #[test]
    fn memory_includes_weights_and_activations() {
        let s = spec(ModuleKind::VisionEncoder, 86_000_000, 17.6);
        assert_eq!(s.weight_bytes(), 86_000_000 * 4);
        assert!(s.memory_bytes() > s.weight_bytes());
        // Activation share ~ 12 MB/GFLOP.
        let act = s.memory_bytes() - s.weight_bytes();
        assert!((200..250).contains(&(act / (1024 * 1024))), "act = {act}");
    }

    #[test]
    fn fp16_halves_weight_bytes() {
        let mut s = spec(ModuleKind::LanguageModel, 7_000_000_000, 14.0);
        let fp32 = s.weight_bytes();
        s.precision = Precision::Fp16;
        assert_eq!(s.weight_bytes() * 2, fp32);
    }

    #[test]
    fn gflops_scale_with_units() {
        let s = spec(ModuleKind::TextEncoder, 38_000_000, 5.9);
        assert!((s.gflops(101.0) - 595.9).abs() < 1e-6);
        assert_eq!(s.gflops(0.0), 0.0);
    }

    #[test]
    fn output_bytes_floor_at_one_unit() {
        let s = spec(ModuleKind::VisionEncoder, 1, 1.0);
        assert_eq!(s.output_bytes(0.0), 512 * 4);
        assert_eq!(s.output_bytes(3.0), 3 * 512 * 4);
    }

    #[test]
    fn quantized_variant_halves_weights_keeps_flops() {
        let s = spec(ModuleKind::VisionEncoder, 86_000_000, 17.6);
        let q = s.quantized();
        assert_eq!(q.weight_bytes() * 2, s.weight_bytes());
        assert_eq!(q.gflops_per_unit, s.gflops_per_unit);
        assert_ne!(q.id, s.id);
        assert!(q.id.as_str().ends_with("@fp16"));
        assert!(q.memory_bytes() < s.memory_bytes());
    }

    #[test]
    fn module_id_roundtrip_and_display() {
        let id: ModuleId = "vision/ViT-B-16".into();
        assert_eq!(id.as_str(), "vision/ViT-B-16");
        assert_eq!(format!("{id}"), "vision/ViT-B-16");
        let s = spec(ModuleKind::VisionEncoder, 86_000_000, 17.6);
        assert!(format!("{s}").contains("86M params"));
    }
}
