//! Modality payloads: what a request carries into each encoder.
//!
//! Payloads have two faces:
//! - a **wire size** in bytes, consumed by the network model when the raw
//!   input must travel from the requester to the device hosting the encoder;
//! - **synthetic content** (a small feature matrix), consumed by the
//!   executable modules in [`crate::exec`] so that split and centralized
//!   deployments can be checked for bit-identical outputs.

use serde::{Deserialize, Serialize};

use s2m3_tensor::Matrix;

/// Dimensionality of the synthetic raw-feature space all inputs live in.
/// Small on purpose: the runtime's compute must be real but cheap.
pub const RAW_FEATURE_DIM: usize = 64;

/// An input data modality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Modality {
    /// A single image (JPEG-sized payload).
    Image,
    /// One or more text prompts (tiny payload).
    Text,
    /// An audio clip (compressed waveform payload).
    Audio,
}

impl Modality {
    /// Typical wire size of one raw item of this modality, matching the
    /// magnitudes of the paper's testbed (224 px JPEG, short prompt,
    /// ~10 s audio clip).
    pub fn typical_item_bytes(self) -> u64 {
        match self {
            Modality::Image => 500 * 1024,
            Modality::Text => 256,
            Modality::Audio => 320 * 1024,
        }
    }

    /// All modalities, in a stable order.
    pub fn all() -> [Modality; 3] {
        [Modality::Image, Modality::Text, Modality::Audio]
    }
}

impl std::fmt::Display for Modality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Modality::Image => "image",
            Modality::Text => "text",
            Modality::Audio => "audio",
        })
    }
}

/// One modality's worth of input for a single inference request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModalityInput {
    /// Which modality this is.
    pub modality: Modality,
    /// Wire size in bytes when shipped raw to a remote encoder.
    pub bytes: u64,
    /// Work units the encoder will perform (1 image; `n` prompts for
    /// zero-shot retrieval against `n` candidate classes; 1 audio clip).
    pub units: f64,
    /// Synthetic content: `units x RAW_FEATURE_DIM` features.
    pub content: Matrix,
}

impl ModalityInput {
    /// A single image, with content derived deterministically from `label`.
    pub fn image(label: &str) -> Self {
        ModalityInput {
            modality: Modality::Image,
            bytes: Modality::Image.typical_item_bytes(),
            units: 1.0,
            content: Matrix::seeded_gaussian(
                &format!("input/image/{label}"),
                1,
                RAW_FEATURE_DIM,
                1.0,
            ),
        }
    }

    /// `n` text prompts (e.g. one per candidate class in zero-shot
    /// retrieval), derived deterministically from `label`.
    pub fn text_prompts(label: &str, n: usize) -> Self {
        ModalityInput {
            modality: Modality::Text,
            bytes: Modality::Text.typical_item_bytes() * n as u64,
            units: n as f64,
            content: Matrix::seeded_gaussian(
                &format!("input/text/{label}"),
                n.max(1),
                RAW_FEATURE_DIM,
                1.0,
            ),
        }
    }

    /// A single audio clip derived deterministically from `label`.
    pub fn audio(label: &str) -> Self {
        ModalityInput {
            modality: Modality::Audio,
            bytes: Modality::Audio.typical_item_bytes(),
            units: 1.0,
            content: Matrix::seeded_gaussian(
                &format!("input/audio/{label}"),
                1,
                RAW_FEATURE_DIM,
                1.0,
            ),
        }
    }

    /// Builds an input with explicit content (used by the benchmark
    /// datasets, which synthesize class-structured samples).
    pub fn with_content(modality: Modality, content: Matrix) -> Self {
        let units = content.rows() as f64;
        ModalityInput {
            modality,
            bytes: modality.typical_item_bytes() * content.rows().max(1) as u64,
            units,
            content,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_sizes_ordered_sensibly() {
        assert!(Modality::Text.typical_item_bytes() < Modality::Audio.typical_item_bytes());
        assert!(Modality::Audio.typical_item_bytes() <= Modality::Image.typical_item_bytes());
    }

    #[test]
    fn image_input_is_deterministic_single_unit() {
        let a = ModalityInput::image("cat");
        let b = ModalityInput::image("cat");
        assert_eq!(a, b);
        assert_eq!(a.units, 1.0);
        assert_eq!(a.content.shape(), (1, RAW_FEATURE_DIM));
        assert_ne!(a.content, ModalityInput::image("dog").content);
    }

    #[test]
    fn text_prompts_scale_units_and_bytes() {
        let t = ModalityInput::text_prompts("food101", 101);
        assert_eq!(t.units, 101.0);
        assert_eq!(t.content.rows(), 101);
        assert_eq!(t.bytes, 256 * 101);
    }

    #[test]
    fn with_content_infers_units() {
        let m = Matrix::zeros(7, RAW_FEATURE_DIM);
        let i = ModalityInput::with_content(Modality::Audio, m);
        assert_eq!(i.units, 7.0);
        assert_eq!(i.bytes, Modality::Audio.typical_item_bytes() * 7);
    }

    #[test]
    fn modality_display_and_all() {
        assert_eq!(format!("{}", Modality::Image), "image");
        assert_eq!(Modality::all().len(), 3);
    }
}
