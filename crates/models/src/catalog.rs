//! The functional-module catalog: every module of Table V.
//!
//! Parameter counts follow the paper. Where Table V gives a range
//! ("CLIP TRF 38–85M"), the per-variant text-encoder sizes are recovered
//! from the Table VI totals (e.g. CLIP RN50x64 = 572M total, 421M vision
//! → 151M text, matching the prose in Sec. VI-A). Per-unit GFLOP figures
//! are the published per-image/per-prompt costs of the architectures,
//! which drive the calibrated latency model in `s2m3-sim`.

use std::collections::BTreeMap;

use crate::module::{ModuleId, ModuleKind, ModuleSpec, Precision};

/// GFLOPs to encode one 77-token text prompt with a text tower of
/// `params` parameters (2 FLOPs per parameter per token).
fn text_gflops(params: u64) -> f64 {
    2.0 * params as f64 * 77.0 / 1.0e9
}

/// GFLOPs for a language model to process one token (2 FLOPs/param).
fn llm_gflops_per_token(params: u64) -> f64 {
    2.0 * params as f64 / 1.0e9
}

fn vision(name: &str, params_m: u64, gflops_per_image: f64, dim: usize) -> ModuleSpec {
    ModuleSpec {
        id: ModuleId::new(format!("vision/{name}")),
        kind: ModuleKind::VisionEncoder,
        params: params_m * 1_000_000,
        embed_dim: dim,
        gflops_per_unit: gflops_per_image,
        precision: Precision::Fp32,
    }
}

fn text(name: &str, params_m: u64, dim: usize) -> ModuleSpec {
    let params = params_m * 1_000_000;
    ModuleSpec {
        id: ModuleId::new(format!("text/{name}")),
        kind: ModuleKind::TextEncoder,
        params,
        embed_dim: dim,
        gflops_per_unit: text_gflops(params),
        precision: Precision::Fp32,
    }
}

fn llm(name: &str, params_m: u64, dim: usize, precision: Precision) -> ModuleSpec {
    let params = params_m * 1_000_000;
    ModuleSpec {
        id: ModuleId::new(format!("llm/{name}")),
        kind: ModuleKind::LanguageModel,
        params,
        embed_dim: dim,
        gflops_per_unit: llm_gflops_per_token(params),
        precision,
    }
}

/// Builds the complete Table V catalog.
///
/// The catalog is a value type (cheap to clone) indexed by [`ModuleId`];
/// iteration order is stable (BTreeMap) so every run enumerates modules
/// identically.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    modules: BTreeMap<ModuleId, ModuleSpec>,
}

impl Catalog {
    /// The standard catalog with every module the paper's zoo references.
    pub fn standard() -> Self {
        let mut c = Catalog::default();

        // --- Vision encoders (Table V) with per-image GFLOPs of the
        //     published architectures at their native resolutions.
        c.insert(vision("RN50", 38, 9.0, 1024));
        c.insert(vision("RN101", 56, 12.5, 512));
        c.insert(vision("RN50x4", 87, 23.0, 640));
        c.insert(vision("RN50x16", 168, 61.0, 768));
        c.insert(vision("RN50x64", 421, 271.0, 1024));
        c.insert(vision("ViT-B-32", 88, 4.4, 512));
        c.insert(vision("ViT-B-16", 86, 17.6, 512));
        c.insert(vision("ViT-L-14", 304, 80.7, 768));
        c.insert(vision("ViT-L-14-336", 304, 191.0, 768));
        c.insert(vision("OpenCLIP-ViT-H-14", 630, 335.0, 1024));

        // --- Text encoders. Sizes recovered from Table VI totals.
        c.insert(text("CLIP-RN50", 38, 1024));
        c.insert(text("CLIP-RN101", 38, 512));
        c.insert(text("CLIP-RN50x4", 59, 640));
        c.insert(text("CLIP-RN50x16", 85, 768));
        c.insert(text("CLIP-RN50x64", 151, 1024));
        c.insert(text("CLIP-B-32", 38, 512));
        c.insert(text("CLIP-B-16", 38, 512));
        c.insert(text("CLIP-L-14", 85, 768));
        c.insert(text("CLIP-L-14-336", 85, 768));
        c.insert(text("OpenCLIP-TRF", 302, 1024));

        // --- Audio encoder (ImageBind's ViT-B over mel-spectrograms;
        //     ~229 patch tokens per 10 s clip).
        c.insert(ModuleSpec {
            id: ModuleId::new("audio/ViT-B"),
            kind: ModuleKind::AudioEncoder,
            params: 85_000_000,
            embed_dim: 1024,
            gflops_per_unit: 38.9,
            precision: Precision::Fp32,
        });

        // --- Language models (generative task heads). fp16 like common
        //     deployments; per-token cost, the request defines token count.
        c.insert(llm("Vicuna-7B", 7_000, 4096, Precision::Fp16));
        c.insert(llm("Vicuna-13B", 13_000, 5120, Precision::Fp16));
        c.insert(llm("Phi-3-Mini", 3_800, 3072, Precision::Fp16));
        c.insert(llm("TinyLlama-1.1B", 1_100, 2048, Precision::Fp16));
        c.insert(llm("GPT2", 124, 768, Precision::Fp32));

        // --- Non-parametric similarity heads. embed_dim 0: they pass
        //     scores through rather than re-embedding.
        c.insert(ModuleSpec {
            id: ModuleId::new("head/cosine"),
            kind: ModuleKind::DistanceHead,
            params: 0,
            embed_dim: 0,
            gflops_per_unit: 1.0e-4,
            precision: Precision::Fp32,
        });
        c.insert(ModuleSpec {
            id: ModuleId::new("head/infonce"),
            kind: ModuleKind::DistanceHead,
            params: 0,
            embed_dim: 0,
            gflops_per_unit: 1.0e-4,
            precision: Precision::Fp32,
        });

        // --- Classifier heads. Parameter counts match the Table X deltas:
        //     encoder-only VQA adds ~1K, Food-101 classification adds ~52K.
        c.insert(ModuleSpec {
            id: ModuleId::new("head/classifier-vqa-coco-s"),
            kind: ModuleKind::ClassifierHead,
            params: 512 * 2,
            embed_dim: 2,
            gflops_per_unit: 1.0e-5,
            precision: Precision::Fp32,
        });
        c.insert(ModuleSpec {
            id: ModuleId::new("head/classifier-vqa-coco-l"),
            kind: ModuleKind::ClassifierHead,
            params: 768 * 2,
            embed_dim: 2,
            gflops_per_unit: 1.0e-5,
            precision: Precision::Fp32,
        });
        c.insert(ModuleSpec {
            id: ModuleId::new("head/classifier-food101"),
            kind: ModuleKind::ClassifierHead,
            params: 512 * 101,
            embed_dim: 101,
            gflops_per_unit: 1.0e-4,
            precision: Precision::Fp32,
        });

        c
    }

    /// Inserts (or replaces) a module spec.
    pub fn insert(&mut self, spec: ModuleSpec) {
        self.modules.insert(spec.id.clone(), spec);
    }

    /// Looks up a module by id.
    pub fn get(&self, id: &ModuleId) -> Option<&ModuleSpec> {
        self.modules.get(id)
    }

    /// Looks up by canonical name string.
    pub fn get_by_name(&self, name: &str) -> Option<&ModuleSpec> {
        self.modules.get(&ModuleId::new(name))
    }

    /// All modules, in stable id order.
    pub fn iter(&self) -> impl Iterator<Item = &ModuleSpec> {
        self.modules.values()
    }

    /// Number of modules in the catalog.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_all_table_v_families() {
        let c = Catalog::standard();
        // 10 vision + 10 text + 1 audio + 5 LLM + 2 distance + 3 classifiers.
        assert_eq!(c.len(), 31);
        assert_eq!(
            c.iter()
                .filter(|m| m.kind == ModuleKind::VisionEncoder)
                .count(),
            10
        );
        assert_eq!(
            c.iter()
                .filter(|m| m.kind == ModuleKind::TextEncoder)
                .count(),
            10
        );
        assert_eq!(
            c.iter()
                .filter(|m| m.kind == ModuleKind::AudioEncoder)
                .count(),
            1
        );
        assert_eq!(
            c.iter()
                .filter(|m| m.kind == ModuleKind::LanguageModel)
                .count(),
            5
        );
    }

    #[test]
    fn param_counts_match_table_v() {
        let c = Catalog::standard();
        let check = |name: &str, mparams: f64| {
            let m = c
                .get_by_name(name)
                .unwrap_or_else(|| panic!("missing {name}"));
            assert!(
                (m.mparams() - mparams).abs() < 1e-6,
                "{name}: {}",
                m.mparams()
            );
        };
        check("vision/RN50", 38.0);
        check("vision/RN50x64", 421.0);
        check("vision/ViT-B-16", 86.0);
        check("vision/ViT-L-14-336", 304.0);
        check("vision/OpenCLIP-ViT-H-14", 630.0);
        check("text/CLIP-B-16", 38.0);
        check("text/CLIP-RN50x64", 151.0);
        check("text/OpenCLIP-TRF", 302.0);
        check("audio/ViT-B", 85.0);
        check("llm/Vicuna-7B", 7000.0);
        check("llm/TinyLlama-1.1B", 1100.0);
        check("llm/GPT2", 124.0);
    }

    #[test]
    fn clip_totals_match_table_vi() {
        // Table VI "Centralized # Param" column: vision + text totals.
        let c = Catalog::standard();
        let total = |v: &str, t: &str| {
            c.get_by_name(v).unwrap().mparams() + c.get_by_name(t).unwrap().mparams()
        };
        assert_eq!(total("vision/RN50", "text/CLIP-RN50"), 76.0);
        assert_eq!(total("vision/RN101", "text/CLIP-RN101"), 94.0);
        assert_eq!(total("vision/RN50x4", "text/CLIP-RN50x4"), 146.0);
        assert_eq!(total("vision/RN50x16", "text/CLIP-RN50x16"), 253.0);
        assert_eq!(total("vision/RN50x64", "text/CLIP-RN50x64"), 572.0);
        assert_eq!(total("vision/ViT-B-32", "text/CLIP-B-32"), 126.0);
        assert_eq!(total("vision/ViT-B-16", "text/CLIP-B-16"), 124.0);
        assert_eq!(total("vision/ViT-L-14", "text/CLIP-L-14"), 389.0);
        assert_eq!(total("vision/ViT-L-14-336", "text/CLIP-L-14-336"), 389.0);
    }

    #[test]
    fn classifier_head_sizes_match_table_x_deltas() {
        let c = Catalog::standard();
        // Encoder VQA adds ~1K params; Food-101 classification ~52K.
        let vqa = c.get_by_name("head/classifier-vqa-coco-s").unwrap();
        assert!((900..1200).contains(&vqa.params), "{}", vqa.params);
        let food = c.get_by_name("head/classifier-food101").unwrap();
        assert!((50_000..55_000).contains(&food.params), "{}", food.params);
    }

    #[test]
    fn text_gflops_scale_with_params() {
        let c = Catalog::standard();
        let small = c.get_by_name("text/CLIP-B-16").unwrap();
        let large = c.get_by_name("text/CLIP-RN50x64").unwrap();
        assert!(large.gflops_per_unit > small.gflops_per_unit * 3.0);
        // 2 * 38e6 * 77 / 1e9 = 5.852
        assert!((small.gflops_per_unit - 5.852).abs() < 1e-3);
    }

    #[test]
    fn llms_are_fp16_and_memory_reflects_it() {
        let c = Catalog::standard();
        let vicuna = c.get_by_name("llm/Vicuna-7B").unwrap();
        assert_eq!(vicuna.precision, Precision::Fp16);
        assert_eq!(vicuna.weight_bytes(), 14_000_000_000);
        let gpt2 = c.get_by_name("llm/GPT2").unwrap();
        assert_eq!(gpt2.precision, Precision::Fp32);
    }

    #[test]
    fn lookup_missing_returns_none() {
        let c = Catalog::standard();
        assert!(c.get_by_name("vision/nonexistent").is_none());
        assert!(!c.is_empty());
    }
}
