//! Builder API for custom modules and models.
//!
//! The standard zoo covers the paper's Table II, but S2M3's whole point is
//! that functional modules are *interchangeable* (Insight 3): a deployment
//! should be able to register its own encoder variants (compressed,
//! fine-tuned, partitioned) and compose new models from them. This module
//! provides validated builders for both.
//!
//! ```
//! use s2m3_models::builder::{ModelBuilder, ModuleBuilder};
//! use s2m3_models::module::ModuleKind;
//! use s2m3_models::zoo::Task;
//!
//! // A hypothetical distilled vision tower…
//! let tiny_vit = ModuleBuilder::new("vision/TinyViT", ModuleKind::VisionEncoder)
//!     .params(22_000_000)
//!     .gflops_per_unit(4.8)
//!     .embed_dim(512)
//!     .build()
//!     .unwrap();
//! // …composed with the stock CLIP text tower into a retrieval model.
//! let model = ModelBuilder::new("TinyCLIP", Task::ImageTextRetrieval)
//!     .encoder(tiny_vit)
//!     .encoder_from_catalog("text/CLIP-B-16")
//!     .unwrap()
//!     .head_from_catalog("head/cosine")
//!     .unwrap()
//!     .build()
//!     .unwrap();
//! assert_eq!(model.total_params(), 60_000_000);
//! ```

use crate::catalog::Catalog;
use crate::module::{ModuleId, ModuleKind, ModuleSpec, Precision};
use crate::zoo::{ModelSpec, Task};

/// Errors from the builders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A required field was never set.
    Missing(&'static str),
    /// A referenced catalog module does not exist.
    UnknownCatalogModule(String),
    /// The composition is invalid (from [`ModelSpec::new`]'s validation).
    InvalidComposition(String),
    /// A numeric field is out of range.
    OutOfRange {
        /// Offending field.
        field: &'static str,
        /// Human-readable constraint.
        constraint: &'static str,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Missing(field) => write!(f, "missing required field '{field}'"),
            BuildError::UnknownCatalogModule(m) => write!(f, "catalog has no module '{m}'"),
            BuildError::InvalidComposition(m) => write!(f, "invalid model: {m}"),
            BuildError::OutOfRange { field, constraint } => {
                write!(f, "field '{field}' out of range: {constraint}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Builder for a custom [`ModuleSpec`].
#[derive(Debug, Clone)]
pub struct ModuleBuilder {
    id: ModuleId,
    kind: ModuleKind,
    params: Option<u64>,
    embed_dim: usize,
    gflops_per_unit: Option<f64>,
    precision: Precision,
}

impl ModuleBuilder {
    /// Starts a module with its identity and kind.
    pub fn new(id: impl Into<String>, kind: ModuleKind) -> Self {
        ModuleBuilder {
            id: ModuleId::new(id),
            kind,
            params: None,
            embed_dim: 512,
            gflops_per_unit: None,
            precision: Precision::Fp32,
        }
    }

    /// Parameter count (required).
    pub fn params(mut self, params: u64) -> Self {
        self.params = Some(params);
        self
    }

    /// GFLOPs per work unit (required; see [`ModuleSpec`] for the unit).
    pub fn gflops_per_unit(mut self, gflops: f64) -> Self {
        self.gflops_per_unit = Some(gflops);
        self
    }

    /// Output embedding dimension (default 512).
    pub fn embed_dim(mut self, dim: usize) -> Self {
        self.embed_dim = dim;
        self
    }

    /// Weight precision (default fp32).
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Validates and builds the spec.
    ///
    /// # Errors
    ///
    /// [`BuildError::Missing`] / [`BuildError::OutOfRange`] on bad input.
    pub fn build(self) -> Result<ModuleSpec, BuildError> {
        let params = self.params.ok_or(BuildError::Missing("params"))?;
        let gflops = self
            .gflops_per_unit
            .ok_or(BuildError::Missing("gflops_per_unit"))?;
        if !(gflops >= 0.0 && gflops.is_finite()) {
            return Err(BuildError::OutOfRange {
                field: "gflops_per_unit",
                constraint: "must be finite and non-negative",
            });
        }
        if self.embed_dim == 0 && self.kind.is_encoder() {
            return Err(BuildError::OutOfRange {
                field: "embed_dim",
                constraint: "encoders need a positive embedding dimension",
            });
        }
        Ok(ModuleSpec {
            id: self.id,
            kind: self.kind,
            params,
            embed_dim: self.embed_dim,
            gflops_per_unit: gflops,
            precision: self.precision,
        })
    }
}

/// Builder for a custom [`ModelSpec`], mixing custom and catalog modules.
#[derive(Debug, Clone)]
pub struct ModelBuilder {
    name: String,
    task: Task,
    catalog: Catalog,
    encoders: Vec<ModuleSpec>,
    head: Option<ModuleSpec>,
}

impl ModelBuilder {
    /// Starts a model with its name and task (uses the standard catalog
    /// for `*_from_catalog` lookups).
    pub fn new(name: impl Into<String>, task: Task) -> Self {
        ModelBuilder {
            name: name.into(),
            task,
            catalog: Catalog::standard(),
            encoders: Vec::new(),
            head: None,
        }
    }

    /// Replaces the lookup catalog (e.g. one extended with custom modules).
    pub fn with_catalog(mut self, catalog: Catalog) -> Self {
        self.catalog = catalog;
        self
    }

    /// Adds a custom encoder.
    pub fn encoder(mut self, spec: ModuleSpec) -> Self {
        self.encoders.push(spec);
        self
    }

    /// Adds an encoder from the catalog by name.
    ///
    /// # Errors
    ///
    /// [`BuildError::UnknownCatalogModule`] on a bad name.
    pub fn encoder_from_catalog(mut self, name: &str) -> Result<Self, BuildError> {
        let spec = self
            .catalog
            .get_by_name(name)
            .ok_or_else(|| BuildError::UnknownCatalogModule(name.to_string()))?
            .clone();
        self.encoders.push(spec);
        Ok(self)
    }

    /// Sets a custom head.
    pub fn head(mut self, spec: ModuleSpec) -> Self {
        self.head = Some(spec);
        self
    }

    /// Sets the head from the catalog by name.
    ///
    /// # Errors
    ///
    /// [`BuildError::UnknownCatalogModule`] on a bad name.
    pub fn head_from_catalog(mut self, name: &str) -> Result<Self, BuildError> {
        let spec = self
            .catalog
            .get_by_name(name)
            .ok_or_else(|| BuildError::UnknownCatalogModule(name.to_string()))?
            .clone();
        self.head = Some(spec);
        Ok(self)
    }

    /// Validates and builds the model.
    ///
    /// # Errors
    ///
    /// [`BuildError::Missing`] without a head;
    /// [`BuildError::InvalidComposition`] for kind violations.
    pub fn build(self) -> Result<ModelSpec, BuildError> {
        let head = self.head.ok_or(BuildError::Missing("head"))?;
        ModelSpec::new(self.name, self.task, self.encoders, head)
            .map_err(BuildError::InvalidComposition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_vision() -> ModuleSpec {
        ModuleBuilder::new("vision/TinyViT", ModuleKind::VisionEncoder)
            .params(22_000_000)
            .gflops_per_unit(4.8)
            .build()
            .unwrap()
    }

    #[test]
    fn module_builder_requires_core_fields() {
        let e = ModuleBuilder::new("x", ModuleKind::VisionEncoder)
            .gflops_per_unit(1.0)
            .build()
            .unwrap_err();
        assert_eq!(e, BuildError::Missing("params"));
        let e = ModuleBuilder::new("x", ModuleKind::VisionEncoder)
            .params(1)
            .build()
            .unwrap_err();
        assert_eq!(e, BuildError::Missing("gflops_per_unit"));
        let e = ModuleBuilder::new("x", ModuleKind::VisionEncoder)
            .params(1)
            .gflops_per_unit(f64::NAN)
            .build()
            .unwrap_err();
        assert!(matches!(
            e,
            BuildError::OutOfRange {
                field: "gflops_per_unit",
                ..
            }
        ));
    }

    #[test]
    fn custom_model_composes_with_catalog_modules() {
        let model = ModelBuilder::new("TinyCLIP", Task::ImageTextRetrieval)
            .encoder(tiny_vision())
            .encoder_from_catalog("text/CLIP-B-16")
            .unwrap()
            .head_from_catalog("head/cosine")
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(model.encoders().len(), 2);
        assert_eq!(model.total_params(), 60_000_000);
        assert!(model.is_parallelizable());
    }

    #[test]
    fn composition_errors_are_surfaced() {
        // Head in encoder position.
        let head = Catalog::standard()
            .get_by_name("head/cosine")
            .unwrap()
            .clone();
        let e = ModelBuilder::new("bad", Task::ImageTextRetrieval)
            .encoder(head.clone())
            .head(head)
            .build()
            .unwrap_err();
        assert!(matches!(e, BuildError::InvalidComposition(_)));
        // Missing head.
        let e = ModelBuilder::new("bad", Task::ImageTextRetrieval)
            .encoder(tiny_vision())
            .build()
            .unwrap_err();
        assert_eq!(e, BuildError::Missing("head"));
        // Unknown catalog name.
        let e = ModelBuilder::new("bad", Task::ImageTextRetrieval)
            .encoder_from_catalog("vision/DoesNotExist")
            .unwrap_err();
        assert!(matches!(e, BuildError::UnknownCatalogModule(_)));
    }

    #[test]
    fn custom_models_flow_through_placement_and_execution() {
        // End-to-end sanity: a custom model is placeable and executable —
        // Insight 3's interchangeability, demonstrated.
        let model = ModelBuilder::new("TinyCLIP", Task::ImageTextRetrieval)
            .encoder(tiny_vision())
            .encoder_from_catalog("text/CLIP-B-16")
            .unwrap()
            .head_from_catalog("head/cosine")
            .unwrap()
            .build()
            .unwrap();
        // Executable instances build for every module.
        for m in model.modules() {
            crate::exec::Executable::for_spec(m).unwrap();
        }
    }
}
