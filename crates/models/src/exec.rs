//! Executable synthetic instances of the functional modules.
//!
//! The paper plugs in *pretrained, frozen* modules and never touches their
//! weights; its accuracy claim (Table VIII) is that splitting a model across
//! devices cannot change its outputs. We reproduce that property
//! structurally: every module here is a **pure deterministic function** of
//! (module id, input), built from seeded weights, so any deployment — one
//! device or five — produces bit-identical outputs.
//!
//! ## Semantic alignment
//!
//! Real CLIP-style encoder pairs map matching image/text inputs to nearby
//! embeddings because they were trained contrastively. The synthetic
//! analogue: all encoders that share an embedding width `d` also share a
//! **semantic core** projection (raw 64-d feature space → `d`), plus a
//! module-specific *distortion* term whose magnitude encodes the encoder's
//! quality (larger/better towers distort less — how ViT-L out-scores
//! ViT-B in Table VIII). Benchmark datasets (in `s2m3-data`) synthesize
//! class-structured raw features, and zero-shot accuracy emerges from the
//! interplay of dataset noise and module distortion.

use s2m3_tensor::{ops, Matrix, TensorError};

use crate::input::{ModalityInput, RAW_FEATURE_DIM};
use crate::module::{ModuleId, ModuleKind, ModuleSpec};

/// Number of candidate answers in the synthetic generative answer space
/// (decoder VQA / captioning heads score these candidates).
pub const ANSWER_SPACE: usize = 32;

/// Relative weight of the image embedding inside a generative head's
/// combined representation (questions dominate, as in VQA language bias).
const IMAGE_BLEND: f32 = 0.3;

/// Internal decision-space width of synthetic generative heads. Fixed and
/// small: the real model's hidden width matters for memory/FLOPs (carried
/// by [`ModuleSpec`]), not for the synthetic decision computation.
const LLM_SPACE_DIM: usize = 128;

/// Errors from executing synthetic modules.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// `encode` was called on a head module.
    NotAnEncoder(ModuleId),
    /// `run_head` was called on an encoder module.
    NotAHead(ModuleId),
    /// The input modality does not match the encoder's modality.
    WrongModality {
        /// Module that rejected the input.
        module: ModuleId,
        /// Modality it received.
        got: crate::input::Modality,
    },
    /// A head required an encoding of this kind but none was provided.
    MissingEncoding(ModuleKind),
    /// A generative head required the raw query but none was provided.
    MissingQuery(ModuleId),
    /// An underlying tensor operation failed (shape bug).
    Tensor(TensorError),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::NotAnEncoder(id) => write!(f, "{id} is not an encoder"),
            ExecError::NotAHead(id) => write!(f, "{id} is not a head"),
            ExecError::WrongModality { module, got } => {
                write!(f, "{module}: wrong input modality {got}")
            }
            ExecError::MissingEncoding(kind) => write!(f, "missing encoding from {kind}"),
            ExecError::MissingQuery(id) => write!(f, "{id}: generative head needs the query"),
            ExecError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<TensorError> for ExecError {
    fn from(e: TensorError) -> Self {
        ExecError::Tensor(e)
    }
}

/// The shared semantic projection for embedding width `dim`
/// (raw `RAW_FEATURE_DIM` → `dim`). All encoder towers of the same width
/// share it — the synthetic analogue of contrastive co-training.
pub fn semantic_core(dim: usize) -> Matrix {
    Matrix::seeded_gaussian(&format!("semantic-core/{dim}"), RAW_FEATURE_DIM, dim, 1.0)
}

/// Raw-space prototype of class `class` in `benchmark` — the ground-truth
/// structure benchmark datasets are synthesized around.
pub fn class_prototype(benchmark: &str, class: usize) -> Matrix {
    Matrix::seeded_gaussian(
        &format!("proto/{benchmark}/{class}"),
        1,
        RAW_FEATURE_DIM,
        1.0,
    )
}

/// Projects embedding rows into `dim` when widths differ, via a seeded
/// bridge matrix — the synthetic analogue of ImageBind-style per-modality
/// projection heads that map every tower into one joint space. Identity
/// when the width already matches.
pub fn bridge_to(m: &Matrix, dim: usize) -> Matrix {
    if m.cols() == dim {
        return m.clone();
    }
    let proj = Matrix::seeded_gaussian(
        &format!("dim-bridge/{}x{dim}", m.cols()),
        m.cols(),
        dim,
        (1.0 / m.cols() as f32).sqrt(),
    );
    ops::l2_normalize(&ops::matmul(m, &proj).expect("bridge dims"))
}

/// Raw-space prototype of answer `a` in the shared generative answer space.
pub fn answer_prototype(a: usize) -> Matrix {
    Matrix::seeded_gaussian(&format!("answer-proto/{a}"), 1, RAW_FEATURE_DIM, 1.0)
}

/// Per-module distortion level: the synthetic encoder-quality knob.
/// Smaller is better; values are calibrated so Table VIII's ordering
/// (ViT-L > ViT-B, 13B > 7B > 1B) is reproduced by `s2m3-data`.
pub fn distortion_for(id: &ModuleId) -> f32 {
    match id.as_str() {
        "vision/RN50" => 1.05,
        "vision/RN101" => 1.0,
        "vision/RN50x4" => 0.95,
        "vision/RN50x16" => 0.85,
        "vision/RN50x64" => 0.70,
        "vision/ViT-B-32" => 0.95,
        "vision/ViT-B-16" => 0.90,
        "vision/ViT-L-14" => 0.55,
        "vision/ViT-L-14-336" => 0.42,
        "vision/OpenCLIP-ViT-H-14" => 0.38,
        "llm/Vicuna-13B" => 0.45,
        "llm/Vicuna-7B" => 0.50,
        "llm/Phi-3-Mini" => 0.90,
        "llm/TinyLlama-1.1B" => 1.50,
        "llm/GPT2" => 1.70,
        s if s.starts_with("text/") => 0.25,
        s if s.starts_with("audio/") => 0.60,
        _ => 0.50,
    }
}

/// A modality-wise encoder tower.
///
/// `encode(x) = l2norm(l2norm(x·C_d) + q·l2norm(gelu(x·W1)·W2))` where
/// `C_d` is the shared semantic core for the tower's width and `q` the
/// module's distortion (junk-to-signal ratio).
#[derive(Debug, Clone)]
pub struct SyntheticEncoder {
    spec: ModuleSpec,
    core: Matrix,
    w1: Matrix,
    w2: Matrix,
    distortion: f32,
}

impl SyntheticEncoder {
    /// Builds the encoder for `spec` (weights seeded from the module id).
    ///
    /// # Errors
    ///
    /// [`ExecError::NotAnEncoder`] if `spec` is a head.
    pub fn new(spec: ModuleSpec) -> Result<Self, ExecError> {
        if !spec.kind.is_encoder() {
            return Err(ExecError::NotAnEncoder(spec.id));
        }
        let d = spec.embed_dim;
        let id = spec.id.as_str();
        Ok(SyntheticEncoder {
            core: semantic_core(d),
            w1: Matrix::seeded_gaussian(
                &format!("{id}/w1"),
                RAW_FEATURE_DIM,
                RAW_FEATURE_DIM,
                (1.0 / RAW_FEATURE_DIM as f32).sqrt(),
            ),
            w2: Matrix::seeded_gaussian(
                &format!("{id}/w2"),
                RAW_FEATURE_DIM,
                d,
                (1.0 / RAW_FEATURE_DIM as f32).sqrt(),
            ),
            distortion: distortion_for(&spec.id),
            spec,
        })
    }

    /// The module spec.
    pub fn spec(&self) -> &ModuleSpec {
        &self.spec
    }

    /// Encodes one modality input into `units x embed_dim` unit-norm rows.
    ///
    /// # Errors
    ///
    /// [`ExecError::WrongModality`] if the input modality does not match
    /// this encoder's kind; tensor errors on malformed content.
    pub fn encode(&self, input: &ModalityInput) -> Result<Matrix, ExecError> {
        if self.spec.kind.modality() != Some(input.modality) {
            return Err(ExecError::WrongModality {
                module: self.spec.id.clone(),
                got: input.modality,
            });
        }
        let x = &input.content;
        // Both paths are row-normalized so `distortion` is a true
        // signal-to-junk ratio: out = l2norm(sem + q . res) mixes the
        // class-bearing semantic projection with module-specific
        // deterministic distortion at relative weight q.
        let sem = ops::l2_normalize(&ops::matmul(x, &self.core)?);
        let hidden = ops::gelu(&ops::matmul(x, &self.w1)?);
        let res = ops::l2_normalize(&ops::matmul(&hidden, &self.w2)?);
        let mixed = ops::add(&sem, &ops::scale(&res, self.distortion))?;
        Ok(ops::l2_normalize(&mixed))
    }
}

/// A generative (language-model) task head: scores the shared candidate
/// answer space given the vision embedding and the raw question.
#[derive(Debug, Clone)]
pub struct SyntheticLlm {
    spec: ModuleSpec,
    /// Question projection: raw 64-d → embed_dim ("the tokenizer+tower").
    q_core: Matrix,
    /// Candidate answer directions in embed space (`embed_dim x ANSWER_SPACE`).
    answer_dirs: Matrix,
    /// Question-conditioned pseudo-noise weights.
    w1: Matrix,
    w2: Matrix,
    distortion: f32,
}

impl SyntheticLlm {
    /// Builds the LLM head for `spec`.
    ///
    /// # Errors
    ///
    /// [`ExecError::NotAHead`] unless `spec` is a [`ModuleKind::LanguageModel`].
    pub fn new(spec: ModuleSpec) -> Result<Self, ExecError> {
        if spec.kind != ModuleKind::LanguageModel {
            return Err(ExecError::NotAHead(spec.id));
        }
        let d = LLM_SPACE_DIM;
        let id = spec.id.as_str();
        let q_core = Matrix::seeded_gaussian(&format!("llm-q-core/{d}"), RAW_FEATURE_DIM, d, 1.0);
        // Answer directions live in the same space the question core maps
        // into: dir_a = l2norm(answer_prototype(a) · q_core).
        let mut dirs = Matrix::zeros(d, ANSWER_SPACE);
        for a in 0..ANSWER_SPACE {
            let row = ops::l2_normalize(&ops::matmul(&answer_prototype(a), &q_core).expect("dims"));
            for j in 0..d {
                *dirs.at_mut(j, a) = row.at(0, j);
            }
        }
        Ok(SyntheticLlm {
            q_core,
            answer_dirs: dirs,
            w1: Matrix::seeded_gaussian(
                &format!("{id}/w1"),
                RAW_FEATURE_DIM,
                RAW_FEATURE_DIM,
                (1.0 / RAW_FEATURE_DIM as f32).sqrt(),
            ),
            w2: Matrix::seeded_gaussian(
                &format!("{id}/w2"),
                RAW_FEATURE_DIM,
                d,
                (1.0 / RAW_FEATURE_DIM as f32).sqrt(),
            ),
            distortion: distortion_for(&spec.id),
            spec,
        })
    }

    /// The module spec.
    pub fn spec(&self) -> &ModuleSpec {
        &self.spec
    }

    /// Scores the answer space: `1 x ANSWER_SPACE` logits.
    ///
    /// `vision` is the (possibly multi-row) vision-encoder output; `query`
    /// is the raw question/prompt (captioning passes `None` and scores
    /// candidate captions from the image alone).
    ///
    /// # Errors
    ///
    /// Tensor errors on malformed shapes.
    pub fn generate(
        &self,
        vision: &Matrix,
        query: Option<&ModalityInput>,
    ) -> Result<Matrix, ExecError> {
        let d = LLM_SPACE_DIM;
        // Project the vision embedding into the LLM's space via a seeded
        // multimodal projector (LLaVA's mm-projector analogue).
        let v_mean = ops::mean_rows(vision)?;
        let proj = Matrix::seeded_gaussian(
            &format!("mmproj/{d}/{}", vision.cols()),
            vision.cols(),
            d,
            (1.0 / vision.cols() as f32).sqrt(),
        );
        let v_emb = ops::l2_normalize(&ops::matmul(&v_mean, &proj)?);

        let combined = match query {
            Some(q) => {
                let q_mean = ops::mean_rows(&q.content)?;
                let q_emb = ops::matmul(&q_mean, &self.q_core)?;
                let hidden = ops::gelu(&ops::matmul(&q_mean, &self.w1)?);
                let noise = ops::matmul(&hidden, &self.w2)?;
                let mut acc = ops::l2_normalize(&q_emb);
                acc = ops::add(&acc, &ops::scale(&v_emb, IMAGE_BLEND))?;
                acc = ops::add(
                    &acc,
                    &ops::scale(&ops::l2_normalize(&noise), self.distortion),
                )?;
                ops::l2_normalize(&acc)
            }
            None => v_emb,
        };
        Ok(ops::matmul(&combined, &self.answer_dirs)?)
    }
}

/// Cosine-similarity retrieval head: ranks text candidates against the
/// (mean) image embedding.
#[derive(Debug, Clone)]
pub struct DistanceHead {
    spec: ModuleSpec,
}

/// InfoNCE-style alignment head: ranks text candidates against the mean of
/// all non-text modality embeddings.
#[derive(Debug, Clone)]
pub struct InfoNceHead {
    spec: ModuleSpec,
}

/// Linear classifier head whose class directions are derived from the
/// benchmark's class prototypes through the semantic core — the synthetic
/// analogue of a probe trained on frozen features.
#[derive(Debug, Clone)]
pub struct ClassifierHead {
    spec: ModuleSpec,
    benchmark: String,
}

fn find_encoding(
    encodings: &[(ModuleKind, Matrix)],
    kind: ModuleKind,
) -> Result<&Matrix, ExecError> {
    encodings
        .iter()
        .find(|(k, _)| *k == kind)
        .map(|(_, m)| m)
        .ok_or(ExecError::MissingEncoding(kind))
}

impl DistanceHead {
    /// Ranks text candidates: `1 x C` cosine scores.
    ///
    /// # Errors
    ///
    /// [`ExecError::MissingEncoding`] without both a vision and a text
    /// encoding.
    pub fn score(&self, encodings: &[(ModuleKind, Matrix)]) -> Result<Matrix, ExecError> {
        let image = find_encoding(encodings, ModuleKind::VisionEncoder)?;
        let text = find_encoding(encodings, ModuleKind::TextEncoder)?;
        let anchor = bridge_to(&ops::mean_rows(image)?, text.cols());
        Ok(ops::cosine_similarity(&anchor, text)?)
    }
}

impl InfoNceHead {
    /// Ranks text candidates against the fused non-text anchor.
    ///
    /// # Errors
    ///
    /// [`ExecError::MissingEncoding`] without a text encoding plus at
    /// least one other modality.
    pub fn score(&self, encodings: &[(ModuleKind, Matrix)]) -> Result<Matrix, ExecError> {
        let text = find_encoding(encodings, ModuleKind::TextEncoder)?;
        let mut anchor: Option<Matrix> = None;
        for (kind, enc) in encodings {
            if *kind == ModuleKind::TextEncoder {
                continue;
            }
            let m = ops::l2_normalize(&bridge_to(&ops::mean_rows(enc)?, text.cols()));
            anchor = Some(match anchor {
                None => m,
                Some(a) => ops::add(&a, &m)?,
            });
        }
        let anchor = anchor.ok_or(ExecError::MissingEncoding(ModuleKind::VisionEncoder))?;
        Ok(ops::cosine_similarity(&ops::l2_normalize(&anchor), text)?)
    }
}

impl ClassifierHead {
    /// Class-direction weight matrix (`input_dim x n_classes`), derived
    /// from the benchmark prototypes through the semantic core.
    fn weights(&self, input_dim: usize) -> Matrix {
        let core = semantic_core(input_dim);
        let n = self.spec.embed_dim;
        let mut w = Matrix::zeros(input_dim, n);
        for c in 0..n {
            let dir = ops::l2_normalize(
                &ops::matmul(&class_prototype(&self.benchmark, c), &core).expect("dims"),
            );
            for j in 0..input_dim {
                *w.at_mut(j, c) = dir.at(0, j);
            }
        }
        w
    }

    /// Class logits: `1 x n_classes`.
    ///
    /// Fuses all available encodings (image-only classification uses just
    /// the vision tower; encoder-only VQA fuses vision + question).
    ///
    /// # Errors
    ///
    /// [`ExecError::MissingEncoding`] if no encodings were supplied.
    pub fn classify(&self, encodings: &[(ModuleKind, Matrix)]) -> Result<Matrix, ExecError> {
        let target = encodings
            .first()
            .ok_or(ExecError::MissingEncoding(ModuleKind::VisionEncoder))?
            .1
            .cols();
        let mut anchor: Option<Matrix> = None;
        for (_, enc) in encodings {
            let m = ops::l2_normalize(&bridge_to(&ops::mean_rows(enc)?, target));
            anchor = Some(match anchor {
                None => m,
                Some(a) => ops::add(&a, &m)?,
            });
        }
        let anchor = ops::l2_normalize(
            &anchor.ok_or(ExecError::MissingEncoding(ModuleKind::VisionEncoder))?,
        );
        let w = self.weights(anchor.cols());
        Ok(ops::matmul(&anchor, &w)?)
    }
}

/// Any executable module, dispatched by its catalog spec.
#[derive(Debug, Clone)]
pub enum Executable {
    /// A modality encoder.
    Encoder(SyntheticEncoder),
    /// A generative LLM head.
    Llm(SyntheticLlm),
    /// A cosine-similarity retrieval head.
    Distance(DistanceHead),
    /// An InfoNCE alignment head.
    InfoNce(InfoNceHead),
    /// A linear classifier head.
    Classifier(ClassifierHead),
}

impl Executable {
    /// Instantiates the executable form of a catalog module.
    ///
    /// Classifier heads derive their benchmark from the module id
    /// (`head/classifier-food101` → benchmark `food101`).
    ///
    /// # Errors
    ///
    /// Propagates constructor validation errors.
    pub fn for_spec(spec: &ModuleSpec) -> Result<Self, ExecError> {
        match spec.kind {
            ModuleKind::VisionEncoder | ModuleKind::TextEncoder | ModuleKind::AudioEncoder => {
                Ok(Executable::Encoder(SyntheticEncoder::new(spec.clone())?))
            }
            ModuleKind::LanguageModel => Ok(Executable::Llm(SyntheticLlm::new(spec.clone())?)),
            ModuleKind::DistanceHead => {
                if spec.id.as_str().contains("infonce") {
                    Ok(Executable::InfoNce(InfoNceHead { spec: spec.clone() }))
                } else {
                    Ok(Executable::Distance(DistanceHead { spec: spec.clone() }))
                }
            }
            ModuleKind::ClassifierHead => {
                let benchmark = spec
                    .id
                    .as_str()
                    .rsplit("classifier-")
                    .next()
                    .unwrap_or("generic")
                    .to_string();
                Ok(Executable::Classifier(ClassifierHead {
                    spec: spec.clone(),
                    benchmark,
                }))
            }
        }
    }

    /// The module spec.
    pub fn spec(&self) -> &ModuleSpec {
        match self {
            Executable::Encoder(e) => e.spec(),
            Executable::Llm(l) => l.spec(),
            Executable::Distance(d) => &d.spec,
            Executable::InfoNce(i) => &i.spec,
            Executable::Classifier(c) => &c.spec,
        }
    }

    /// Runs an encoder module.
    ///
    /// # Errors
    ///
    /// [`ExecError::NotAnEncoder`] on head modules; encoder errors
    /// otherwise.
    pub fn encode(&self, input: &ModalityInput) -> Result<Matrix, ExecError> {
        match self {
            Executable::Encoder(e) => e.encode(input),
            other => Err(ExecError::NotAnEncoder(other.spec().id.clone())),
        }
    }

    /// Runs a head module over the tagged encoder outputs.
    ///
    /// `query` carries the raw text input for generative heads (decoder
    /// VQA); retrieval/alignment/classification heads ignore it.
    ///
    /// # Errors
    ///
    /// [`ExecError::NotAHead`] on encoder modules; head-specific errors
    /// otherwise.
    pub fn run_head(
        &self,
        encodings: &[(ModuleKind, Matrix)],
        query: Option<&ModalityInput>,
    ) -> Result<Matrix, ExecError> {
        match self {
            Executable::Encoder(e) => Err(ExecError::NotAHead(e.spec().id.clone())),
            Executable::Llm(l) => {
                let vision = find_encoding(encodings, ModuleKind::VisionEncoder)?;
                l.generate(vision, query)
            }
            Executable::Distance(d) => d.score(encodings),
            Executable::InfoNce(i) => i.score(encodings),
            Executable::Classifier(c) => c.classify(encodings),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::input::Modality;

    fn encoder(name: &str) -> SyntheticEncoder {
        let c = Catalog::standard();
        SyntheticEncoder::new(c.get_by_name(name).unwrap().clone()).unwrap()
    }

    #[test]
    fn encoder_rejects_head_specs_and_wrong_modality() {
        let c = Catalog::standard();
        let head = c.get_by_name("head/cosine").unwrap().clone();
        assert!(matches!(
            SyntheticEncoder::new(head),
            Err(ExecError::NotAnEncoder(_))
        ));
        let v = encoder("vision/ViT-B-16");
        let text_in = ModalityInput::text_prompts("q", 3);
        assert!(matches!(
            v.encode(&text_in),
            Err(ExecError::WrongModality { .. })
        ));
    }

    #[test]
    fn encoding_is_deterministic_and_unit_norm() {
        let v = encoder("vision/ViT-B-16");
        let img = ModalityInput::image("cat-42");
        let a = v.encode(&img).unwrap();
        let b = encoder("vision/ViT-B-16").encode(&img).unwrap();
        assert_eq!(a, b, "same module id must produce identical bits");
        assert_eq!(a.shape(), (1, 512));
        let norm: f32 = a.row(0).unwrap().iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4);
    }

    #[test]
    fn paired_towers_align_matching_classes() {
        // Image of class c and prompt c should out-score prompt c' != c:
        // the semantic-core sharing at work.
        let v = encoder("vision/ViT-B-16");
        let t = encoder("text/CLIP-B-16");
        let n_classes = 8;
        let mut prompts = Matrix::zeros(n_classes, RAW_FEATURE_DIM);
        for cl in 0..n_classes {
            let p = class_prototype("unit-bench", cl);
            prompts
                .row_mut(cl)
                .unwrap()
                .copy_from_slice(p.row(0).unwrap());
        }
        let text_emb = t
            .encode(&ModalityInput::with_content(Modality::Text, prompts))
            .unwrap();
        let mut correct = 0;
        for cl in 0..n_classes {
            let img =
                ModalityInput::with_content(Modality::Image, class_prototype("unit-bench", cl));
            let img_emb = v.encode(&img).unwrap();
            let scores = ops::cosine_similarity(&img_emb, &text_emb).unwrap();
            if ops::argmax_rows(&scores).unwrap()[0] == cl {
                correct += 1;
            }
        }
        assert!(correct >= 7, "only {correct}/8 clean prototypes matched");
    }

    #[test]
    fn better_towers_distort_less() {
        assert!(
            distortion_for(&ModuleId::new("vision/ViT-L-14-336"))
                < distortion_for(&ModuleId::new("vision/ViT-B-16"))
        );
        assert!(
            distortion_for(&ModuleId::new("llm/Vicuna-13B"))
                < distortion_for(&ModuleId::new("llm/TinyLlama-1.1B"))
        );
    }

    #[test]
    fn distance_head_requires_both_modalities() {
        let c = Catalog::standard();
        let head = Executable::for_spec(c.get_by_name("head/cosine").unwrap()).unwrap();
        let v = encoder("vision/ViT-B-16");
        let img_emb = v.encode(&ModalityInput::image("x")).unwrap();
        let err = head
            .run_head(&[(ModuleKind::VisionEncoder, img_emb)], None)
            .unwrap_err();
        assert_eq!(err, ExecError::MissingEncoding(ModuleKind::TextEncoder));
    }

    #[test]
    fn llm_head_scores_answer_space() {
        let c = Catalog::standard();
        let llm = Executable::for_spec(c.get_by_name("llm/TinyLlama-1.1B").unwrap()).unwrap();
        let v = encoder("vision/ViT-B-16");
        let img_emb = v.encode(&ModalityInput::image("vqa-img")).unwrap();
        let q = ModalityInput::text_prompts("what color", 1);
        let logits = llm
            .run_head(&[(ModuleKind::VisionEncoder, img_emb)], Some(&q))
            .unwrap();
        assert_eq!(logits.shape(), (1, ANSWER_SPACE));
    }

    #[test]
    fn llm_answers_track_question_prototype() {
        // A question built on answer-prototype a should rank answer a first
        // for a low-distortion LLM.
        let c = Catalog::standard();
        let llm = Executable::for_spec(c.get_by_name("llm/Vicuna-13B").unwrap()).unwrap();
        let v = encoder("vision/ViT-L-14-336");
        let img_emb = v.encode(&ModalityInput::image("scene")).unwrap();
        let mut correct = 0;
        for a in 0..8 {
            let q = ModalityInput::with_content(Modality::Text, answer_prototype(a));
            let logits = llm
                .run_head(&[(ModuleKind::VisionEncoder, img_emb.clone())], Some(&q))
                .unwrap();
            if ops::argmax_rows(&logits).unwrap()[0] == a {
                correct += 1;
            }
        }
        assert!(correct >= 6, "only {correct}/8 clean questions answered");
    }

    #[test]
    fn infonce_fuses_extra_modalities() {
        let c = Catalog::standard();
        let head = Executable::for_spec(c.get_by_name("head/infonce").unwrap()).unwrap();
        let v = encoder("vision/ViT-B-16");
        let t = encoder("text/CLIP-B-16");
        // audio/ViT-B has embed_dim 1024 which mismatches 512 anchors; use
        // matching-width towers for the unit test.
        let img = v.encode(&ModalityInput::image("a")).unwrap();
        let prompts = t.encode(&ModalityInput::text_prompts("cands", 5)).unwrap();
        let scores = head
            .run_head(
                &[
                    (ModuleKind::VisionEncoder, img),
                    (ModuleKind::TextEncoder, prompts),
                ],
                None,
            )
            .unwrap();
        assert_eq!(scores.shape(), (1, 5));
    }

    #[test]
    fn classifier_head_classifies_prototypes() {
        let c = Catalog::standard();
        let head = Executable::for_spec(c.get_by_name("head/classifier-food101").unwrap()).unwrap();
        let v = encoder("vision/ViT-B-16");
        let mut correct = 0;
        for cl in [0usize, 17, 50, 100] {
            let img = ModalityInput::with_content(Modality::Image, class_prototype("food101", cl));
            let emb = v.encode(&img).unwrap();
            let logits = head
                .run_head(&[(ModuleKind::VisionEncoder, emb)], None)
                .unwrap();
            assert_eq!(logits.cols(), 101);
            if ops::argmax_rows(&logits).unwrap()[0] == cl {
                correct += 1;
            }
        }
        assert!(correct >= 3, "only {correct}/4 prototypes classified");
    }

    #[test]
    fn executable_dispatch_covers_all_kinds() {
        let c = Catalog::standard();
        for spec in c.iter() {
            let e = Executable::for_spec(spec).unwrap();
            assert_eq!(&e.spec().id, &spec.id);
            match spec.kind {
                k if k.is_encoder() => assert!(matches!(e, Executable::Encoder(_))),
                ModuleKind::LanguageModel => assert!(matches!(e, Executable::Llm(_))),
                _ => {}
            }
        }
    }

    #[test]
    fn encode_on_head_and_head_on_encoder_error() {
        let c = Catalog::standard();
        let head = Executable::for_spec(c.get_by_name("head/cosine").unwrap()).unwrap();
        assert!(matches!(
            head.encode(&ModalityInput::image("x")),
            Err(ExecError::NotAnEncoder(_))
        ));
        let enc = Executable::for_spec(c.get_by_name("vision/ViT-B-16").unwrap()).unwrap();
        assert!(matches!(
            enc.run_head(&[], None),
            Err(ExecError::NotAHead(_))
        ));
    }
}
