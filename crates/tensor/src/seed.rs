//! Stable, platform-independent seeding.
//!
//! Every synthetic weight matrix, dataset sample, and randomized trial in the
//! workspace is keyed by a human-readable label (`"vision/ViT-B-16/proj"`,
//! `"bench/food101/sample/42"`, ...). This module turns such labels into
//! 256-bit ChaCha seeds via an FNV-1a / SplitMix64 expansion — no external
//! hashing crates, no reliance on `std::hash` (whose output is not guaranteed
//! stable across Rust releases).

/// FNV-1a 64-bit hash of a byte string. Stable by construction.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// SplitMix64 step: a high-quality 64-bit mixer used to expand one hash
/// word into a full seed.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Expands a label into a 32-byte ChaCha seed.
///
/// Deterministic across platforms, endianness-stable (little-endian byte
/// order is fixed explicitly).
pub fn seed_from_label(label: &str) -> [u8; 32] {
    let mut state = fnv1a(label.as_bytes());
    let mut seed = [0u8; 32];
    for chunk in seed.chunks_mut(8) {
        chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
    }
    seed
}

/// Combines a label with a numeric index (e.g. a sample id) into a seed.
pub fn seed_from_label_index(label: &str, index: u64) -> [u8; 32] {
    let mut state = fnv1a(label.as_bytes()) ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut seed = [0u8; 32];
    for chunk in seed.chunks_mut(8) {
        chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
    }
    seed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_known_vectors() {
        // Reference values for FNV-1a 64-bit.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        let a = seed_from_label("alpha");
        let b = seed_from_label("alpha");
        let c = seed_from_label("beta");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, [0u8; 32]);
    }

    #[test]
    fn indexed_seeds_differ_per_index() {
        let s0 = seed_from_label_index("ds", 0);
        let s1 = seed_from_label_index("ds", 1);
        assert_ne!(s0, s1);
        assert_eq!(s0, seed_from_label_index("ds", 0));
    }

    #[test]
    fn splitmix_sequence_is_well_distributed() {
        let mut state = 1u64;
        let mut ones = 0u32;
        for _ in 0..64 {
            ones += splitmix64(&mut state).count_ones();
        }
        // 64 draws x 64 bits: expect ~2048 set bits; allow a wide band.
        assert!((1800..2300).contains(&ones), "ones = {ones}");
    }
}
