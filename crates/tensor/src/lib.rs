//! # s2m3-tensor
//!
//! Minimal, dependency-light, fully deterministic `f32` tensor kernels.
//!
//! This crate is the computational substrate for the synthetic functional
//! modules in [`s2m3-models`]. The S2M3 paper never modifies model weights —
//! its contribution is *where* modules run, not *what* they compute — so the
//! reproduction only needs module computation that is:
//!
//! 1. **Deterministic**: the same module must produce bit-identical outputs
//!    regardless of which device or deployment executes it. This is the
//!    property behind Table VIII ("no accuracy loss from splitting").
//! 2. **Seedable**: module weights are derived from a stable label
//!    (e.g. `"vision/ViT-B-16"`) so every process reconstructs the same
//!    weights without shipping checkpoint files.
//! 3. **Cheap but real**: encoders genuinely compute (projections, layer
//!    norms, attention-shaped mixing), so the runtime's parallel routing is
//!    exercised by real work rather than sleeps.
//!
//! The crate deliberately implements only what the zoo needs: a dense
//! row-major [`Matrix`], the handful of kernels in [`ops`], and stable
//! seeding utilities in [`seed`].
//!
//! ## Example
//!
//! ```
//! use s2m3_tensor::{Matrix, ops};
//!
//! let w = Matrix::seeded_gaussian("demo/weight", 4, 3, 0.5);
//! let x = Matrix::seeded_gaussian("demo/input", 2, 4, 1.0);
//! let y = ops::matmul(&x, &w).unwrap();
//! assert_eq!(y.shape(), (2, 3));
//! // Determinism: rebuilding from the same labels yields identical bits.
//! let y2 = ops::matmul(
//!     &Matrix::seeded_gaussian("demo/input", 2, 4, 1.0),
//!     &Matrix::seeded_gaussian("demo/weight", 4, 3, 0.5),
//! ).unwrap();
//! assert_eq!(y, y2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod matrix;
pub mod ops;
pub mod seed;

pub use matrix::{Matrix, TensorError};

/// Convenience result alias for fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;

#[cfg(test)]
mod proptests;
