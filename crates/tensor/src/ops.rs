//! Kernels used by the synthetic functional modules.
//!
//! All row-oriented: a `batch x dim` matrix holds one sample per row.
//! Every fallible operation validates shapes and returns
//! [`TensorError`](crate::TensorError) instead of panicking
//! (guideline C-VALIDATE).

use crate::{Matrix, Result, TensorError};

/// Matrix product `a * b`.
///
/// # Errors
///
/// [`TensorError::ShapeMismatch`] unless `a.cols() == b.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    // i-k-j loop order: streams through b's rows, cache-friendly for
    // row-major layout.
    for i in 0..m {
        for p in 0..k {
            let aip = a.at(i, p);
            if aip == 0.0 {
                continue;
            }
            let brow = &b.as_slice()[p * n..(p + 1) * n];
            let orow = &mut out.as_mut_slice()[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += aip * bv;
            }
        }
    }
    Ok(out)
}

/// Element-wise sum `a + b`.
///
/// # Errors
///
/// [`TensorError::ShapeMismatch`] unless shapes are equal.
pub fn add(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "add",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut out = a.clone();
    for (o, &v) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *o += v;
    }
    Ok(out)
}

/// Adds a `1 x dim` bias row to every row of `a`.
///
/// # Errors
///
/// [`TensorError::ShapeMismatch`] unless `bias` is `1 x a.cols()`.
pub fn add_bias(a: &Matrix, bias: &Matrix) -> Result<Matrix> {
    if bias.rows() != 1 || bias.cols() != a.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "add_bias",
            lhs: a.shape(),
            rhs: bias.shape(),
        });
    }
    let mut out = a.clone();
    let n = a.cols();
    for r in 0..a.rows() {
        let row = &mut out.as_mut_slice()[r * n..(r + 1) * n];
        for (o, &b) in row.iter_mut().zip(bias.as_slice()) {
            *o += b;
        }
    }
    Ok(out)
}

/// Scales every element by `s`.
pub fn scale(a: &Matrix, s: f32) -> Matrix {
    let mut out = a.clone();
    for v in out.as_mut_slice() {
        *v *= s;
    }
    out
}

/// GELU activation (tanh approximation), element-wise.
pub fn gelu(a: &Matrix) -> Matrix {
    let mut out = a.clone();
    for v in out.as_mut_slice() {
        let x = *v;
        let inner = 0.797_884_6 * (x + 0.044_715 * x * x * x);
        *v = 0.5 * x * (1.0 + inner.tanh());
    }
    out
}

/// ReLU activation, element-wise.
pub fn relu(a: &Matrix) -> Matrix {
    let mut out = a.clone();
    for v in out.as_mut_slice() {
        *v = v.max(0.0);
    }
    out
}

/// Row-wise layer normalization (zero mean, unit variance per row, eps
/// for stability). Rows of length zero are left untouched.
pub fn layer_norm(a: &Matrix) -> Matrix {
    const EPS: f32 = 1e-5;
    let mut out = a.clone();
    let n = a.cols();
    if n == 0 {
        return out;
    }
    for r in 0..a.rows() {
        let row = &mut out.as_mut_slice()[r * n..(r + 1) * n];
        let mean = row.iter().sum::<f32>() / n as f32;
        let var = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n as f32;
        let inv = 1.0 / (var + EPS).sqrt();
        for v in row.iter_mut() {
            *v = (*v - mean) * inv;
        }
    }
    out
}

/// Row-wise softmax with the usual max-subtraction for stability.
pub fn softmax(a: &Matrix) -> Matrix {
    let mut out = a.clone();
    let n = a.cols();
    if n == 0 {
        return out;
    }
    for r in 0..a.rows() {
        let row = &mut out.as_mut_slice()[r * n..(r + 1) * n];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
    out
}

/// Normalizes each row to unit L2 norm. Zero rows stay zero.
pub fn l2_normalize(a: &Matrix) -> Matrix {
    let mut out = a.clone();
    let n = a.cols();
    for r in 0..a.rows() {
        let row = &mut out.as_mut_slice()[r * n..(r + 1) * n];
        let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt();
        if norm > 0.0 {
            for v in row.iter_mut() {
                *v /= norm;
            }
        }
    }
    out
}

/// Cosine similarity between every row of `a` and every row of `b`:
/// output is `a.rows() x b.rows()`.
///
/// # Errors
///
/// [`TensorError::ShapeMismatch`] unless `a.cols() == b.cols()`.
pub fn cosine_similarity(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "cosine_similarity",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let an = l2_normalize(a);
    let bn = l2_normalize(b);
    matmul(&an, &bn.transposed())
}

/// Index of the maximum value in each row. Ties resolve to the lowest index.
///
/// # Errors
///
/// [`TensorError::Empty`] if the matrix has zero columns.
pub fn argmax_rows(a: &Matrix) -> Result<Vec<usize>> {
    if a.cols() == 0 {
        return Err(TensorError::Empty { op: "argmax_rows" });
    }
    let mut out = Vec::with_capacity(a.rows());
    for r in 0..a.rows() {
        let row = a.row(r)?;
        let mut best = 0usize;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        out.push(best);
    }
    Ok(out)
}

/// Mean over rows, producing a `1 x cols` matrix.
///
/// # Errors
///
/// [`TensorError::Empty`] if the matrix has zero rows.
pub fn mean_rows(a: &Matrix) -> Result<Matrix> {
    if a.rows() == 0 {
        return Err(TensorError::Empty { op: "mean_rows" });
    }
    let mut out = Matrix::zeros(1, a.cols());
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            *out.at_mut(0, c) += a.at(r, c);
        }
    }
    let inv = 1.0 / a.rows() as f32;
    for v in out.as_mut_slice() {
        *v *= inv;
    }
    Ok(out)
}

/// Concatenates matrices with equal column counts by stacking rows.
///
/// # Errors
///
/// [`TensorError::Empty`] on an empty input list;
/// [`TensorError::ShapeMismatch`] if column counts differ.
pub fn vstack(parts: &[&Matrix]) -> Result<Matrix> {
    let first = parts.first().ok_or(TensorError::Empty { op: "vstack" })?;
    let cols = first.cols();
    let mut data = Vec::new();
    let mut rows = 0;
    for p in parts {
        if p.cols() != cols {
            return Err(TensorError::ShapeMismatch {
                op: "vstack",
                lhs: (rows, cols),
                rhs: p.shape(),
            });
        }
        data.extend_from_slice(p.as_slice());
        rows += p.rows();
    }
    Matrix::from_vec(rows, cols, data)
}

/// Concatenates matrices with equal row counts side-by-side.
///
/// # Errors
///
/// [`TensorError::Empty`] on an empty input list;
/// [`TensorError::ShapeMismatch`] if row counts differ.
pub fn hstack(parts: &[&Matrix]) -> Result<Matrix> {
    let first = parts.first().ok_or(TensorError::Empty { op: "hstack" })?;
    let rows = first.rows();
    for p in parts {
        if p.rows() != rows {
            return Err(TensorError::ShapeMismatch {
                op: "hstack",
                lhs: first.shape(),
                rhs: p.shape(),
            });
        }
    }
    let cols: usize = parts.iter().map(|p| p.cols()).sum();
    let mut out = Matrix::zeros(rows, cols);
    for r in 0..rows {
        let mut offset = 0;
        for p in parts {
            let src = p.row(r)?;
            out.as_mut_slice()[r * cols + offset..r * cols + offset + src.len()]
                .copy_from_slice(src);
            offset += src.len();
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec()).unwrap()
    }

    #[test]
    fn matmul_small_known_product() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::seeded_gaussian("mm", 4, 4, 1.0);
        let id = Matrix::identity(4);
        assert!(matmul(&a, &id).unwrap().approx_eq(&a, 1e-6));
        assert!(matmul(&id, &a).unwrap().approx_eq(&a, 1e-6));
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn add_and_add_bias() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 2, &[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(add(&a, &b).unwrap().as_slice(), &[11.0, 22.0, 33.0, 44.0]);
        let bias = m(1, 2, &[0.5, -0.5]);
        assert_eq!(
            add_bias(&a, &bias).unwrap().as_slice(),
            &[1.5, 1.5, 3.5, 3.5]
        );
        assert!(add_bias(&a, &m(1, 3, &[0.0; 3])).is_err());
        assert!(add(&a, &Matrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn gelu_relu_fixed_points() {
        let a = m(1, 3, &[-1.0, 0.0, 2.0]);
        let g = gelu(&a);
        assert!(g.at(0, 1).abs() < 1e-6);
        assert!((g.at(0, 2) - 1.954_5).abs() < 1e-3);
        assert!(g.at(0, 0) < 0.0 && g.at(0, 0) > -0.2);
        let r = relu(&a);
        assert_eq!(r.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn layer_norm_rows_have_zero_mean_unit_var() {
        let a = Matrix::seeded_gaussian("ln", 3, 64, 3.0);
        let n = layer_norm(&a);
        for r in 0..3 {
            let row = n.row(r).unwrap();
            let mean: f32 = row.iter().sum::<f32>() / 64.0;
            let var: f32 = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let a = m(1, 3, &[1.0, 3.0, 2.0]);
        let s = softmax(&a);
        let sum: f32 = s.row(0).unwrap().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(s.at(0, 1) > s.at(0, 2) && s.at(0, 2) > s.at(0, 0));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = m(1, 4, &[0.0, 1.0, 2.0, 3.0]);
        let b = m(1, 4, &[100.0, 101.0, 102.0, 103.0]);
        assert!(softmax(&a).approx_eq(&softmax(&b), 1e-6));
    }

    #[test]
    fn l2_normalize_unit_rows_and_zero_rows() {
        let a = m(2, 2, &[3.0, 4.0, 0.0, 0.0]);
        let n = l2_normalize(&a);
        assert!((n.at(0, 0) - 0.6).abs() < 1e-6);
        assert!((n.at(0, 1) - 0.8).abs() < 1e-6);
        assert_eq!(n.row(1).unwrap(), &[0.0, 0.0]);
    }

    #[test]
    fn cosine_similarity_self_is_one() {
        let a = Matrix::seeded_gaussian("cos", 3, 16, 1.0);
        let c = cosine_similarity(&a, &a).unwrap();
        for r in 0..3 {
            assert!((c.at(r, r) - 1.0).abs() < 1e-5);
        }
        assert!(c.max_abs() <= 1.0 + 1e-5);
    }

    #[test]
    fn cosine_similarity_orthogonal_is_zero() {
        let a = m(1, 2, &[1.0, 0.0]);
        let b = m(1, 2, &[0.0, 1.0]);
        assert!(cosine_similarity(&a, &b).unwrap().at(0, 0).abs() < 1e-6);
    }

    #[test]
    fn argmax_rows_picks_first_of_ties() {
        let a = m(2, 3, &[1.0, 5.0, 5.0, 7.0, 2.0, 7.0]);
        assert_eq!(argmax_rows(&a).unwrap(), vec![1, 0]);
        assert!(argmax_rows(&Matrix::zeros(2, 0)).is_err());
    }

    #[test]
    fn mean_rows_averages() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let mr = mean_rows(&a).unwrap();
        assert_eq!(mr.as_slice(), &[2.0, 3.0]);
        assert!(mean_rows(&Matrix::zeros(0, 2)).is_err());
    }

    #[test]
    fn stack_operations() {
        let a = m(1, 2, &[1.0, 2.0]);
        let b = m(2, 2, &[3.0, 4.0, 5.0, 6.0]);
        let v = vstack(&[&a, &b]).unwrap();
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let c = m(1, 1, &[9.0]);
        let h = hstack(&[&a, &m(1, 1, &[7.0]), &c]).unwrap();
        assert_eq!(h.as_slice(), &[1.0, 2.0, 7.0, 9.0]);
        assert!(vstack(&[]).is_err());
        assert!(hstack(&[&a, &b]).is_err());
    }

    #[test]
    fn scale_multiplies_everything() {
        let a = m(1, 3, &[1.0, -2.0, 3.0]);
        assert_eq!(scale(&a, -2.0).as_slice(), &[-2.0, 4.0, -6.0]);
    }
}
