//! Property-based tests for the tensor kernels.

use proptest::prelude::*;

use crate::{ops, Matrix};

fn arb_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |v| Matrix::from_vec(r, c, v).unwrap())
    })
}

proptest! {
    #[test]
    fn matmul_associates_with_identity(m in arb_matrix(8)) {
        let id = Matrix::identity(m.cols());
        let out = ops::matmul(&m, &id).unwrap();
        prop_assert!(out.approx_eq(&m, 1e-4));
    }

    #[test]
    fn transpose_is_involutive(m in arb_matrix(8)) {
        prop_assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn matmul_transpose_identity((a, b) in (arb_matrix(6), arb_matrix(6))) {
        // (A B)^T == B^T A^T whenever shapes line up; build B to match A.
        let b2 = Matrix::from_fn(a.cols(), b.rows(), |r, c| b.at(c % b.rows(), r % b.cols()));
        let ab_t = ops::matmul(&a, &b2).unwrap().transposed();
        let bt_at = ops::matmul(&b2.transposed(), &a.transposed()).unwrap();
        prop_assert!(ab_t.approx_eq(&bt_at, 1e-3));
    }

    #[test]
    fn softmax_rows_are_distributions(m in arb_matrix(8)) {
        let s = ops::softmax(&m);
        for r in 0..s.rows() {
            let row = s.row(r).unwrap();
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
        }
    }

    #[test]
    fn l2_normalized_rows_have_unit_or_zero_norm(m in arb_matrix(8)) {
        let n = ops::l2_normalize(&m);
        for r in 0..n.rows() {
            let norm: f32 = n.row(r).unwrap().iter().map(|v| v * v).sum::<f32>().sqrt();
            prop_assert!(norm < 1e-6 || (norm - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn cosine_similarity_bounded(m in arb_matrix(6)) {
        let c = ops::cosine_similarity(&m, &m).unwrap();
        prop_assert!(c.max_abs() <= 1.0 + 1e-4);
    }

    #[test]
    fn add_commutes((a, b) in (arb_matrix(6), arb_matrix(6))) {
        let b2 = Matrix::from_fn(a.rows(), a.cols(), |r, c| b.at(r % b.rows(), c % b.cols()));
        let x = ops::add(&a, &b2).unwrap();
        let y = ops::add(&b2, &a).unwrap();
        prop_assert!(x.approx_eq(&y, 1e-6));
    }

    #[test]
    fn layer_norm_idempotent_up_to_eps(m in arb_matrix(8)) {
        // layer_norm(layer_norm(x)) ~= layer_norm(x) for rows whose
        // variance is not eps-dominated; near-constant rows legitimately
        // renormalize (the stability epsilon swamps their variance), so
        // exclude them.
        let n = m.cols() as f32;
        let degenerate = (0..m.rows()).any(|r| {
            let row = m.row(r).unwrap();
            let mean: f32 = row.iter().sum::<f32>() / n;
            let var: f32 = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n;
            var < 1e-3
        });
        prop_assume!(!degenerate);
        let once = ops::layer_norm(&m);
        let twice = ops::layer_norm(&once);
        prop_assert!(once.approx_eq(&twice, 5e-2));
    }

    #[test]
    fn argmax_within_bounds(m in arb_matrix(8)) {
        let idx = ops::argmax_rows(&m).unwrap();
        prop_assert_eq!(idx.len(), m.rows());
        prop_assert!(idx.iter().all(|&i| i < m.cols()));
    }

    #[test]
    fn vstack_preserves_rows((a, b) in (arb_matrix(5), arb_matrix(5))) {
        let b2 = Matrix::from_fn(b.rows(), a.cols(), |r, c| b.at(r, c % b.cols()));
        let v = ops::vstack(&[&a, &b2]).unwrap();
        prop_assert_eq!(v.rows(), a.rows() + b2.rows());
        prop_assert_eq!(v.row(0).unwrap(), a.row(0).unwrap());
    }

    #[test]
    fn seeded_gaussian_label_determinism(label in "[a-z]{1,12}", r in 1usize..6, c in 1usize..6) {
        let a = Matrix::seeded_gaussian(&label, r, c, 1.0);
        let b = Matrix::seeded_gaussian(&label, r, c, 1.0);
        prop_assert_eq!(a, b);
    }
}
