//! Dense row-major `f32` matrix.

use std::fmt;

use rand_chacha::rand_core::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::seed;

/// Error type for tensor operations.
///
/// Carries enough context to debug a shape mismatch without a debugger:
/// the operation name and the offending dimensions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TensorError {
    /// Two operands had incompatible shapes for the named operation.
    ShapeMismatch {
        /// Operation that failed (e.g. `"matmul"`).
        op: &'static str,
        /// Shape of the left operand.
        lhs: (usize, usize),
        /// Shape of the right operand.
        rhs: (usize, usize),
    },
    /// A constructor was given a buffer whose length does not match
    /// `rows * cols`.
    BadBuffer {
        /// Requested number of rows.
        rows: usize,
        /// Requested number of columns.
        cols: usize,
        /// Actual buffer length supplied.
        len: usize,
    },
    /// An operation required a non-empty matrix but got zero rows/cols.
    Empty {
        /// Operation that failed.
        op: &'static str,
    },
    /// An index was out of bounds.
    OutOfBounds {
        /// Operation that failed.
        op: &'static str,
        /// The offending index.
        index: usize,
        /// The bound it violated.
        bound: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "{op}: shape mismatch {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::BadBuffer { rows, cols, len } => write!(
                f,
                "buffer length {len} does not match {rows}x{cols} = {}",
                rows * cols
            ),
            TensorError::Empty { op } => write!(f, "{op}: empty matrix"),
            TensorError::OutOfBounds { op, index, bound } => {
                write!(f, "{op}: index {index} out of bounds {bound}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

/// Dense row-major matrix of `f32`.
///
/// The only tensor type in the workspace. A "vector" is a `1 x n` matrix;
/// a batch of embeddings is a `batch x dim` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix from a row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BadBuffer`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> crate::Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::BadBuffer {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix with i.i.d. Gaussian-ish entries derived
    /// deterministically from `label`.
    ///
    /// The entries are produced by a ChaCha8 stream seeded from
    /// [`seed::seed_from_label`], then shaped by a 4-sample Irwin–Hall sum
    /// (a cheap, branch-free normal approximation adequate for synthetic
    /// weights). The same `(label, rows, cols, std)` always produces the
    /// same bits on every platform — the determinism Table VIII relies on.
    pub fn seeded_gaussian(label: &str, rows: usize, cols: usize, std: f32) -> Self {
        let mut rng = ChaCha8Rng::from_seed(seed::seed_from_label(label));
        // Uniform f32 in [0, 1) from the top 24 bits of a ChaCha word.
        let mut uniform = move || (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            // Irwin-Hall(4) centered: sum of 4 U(0,1) has mean 2, var 1/3.
            let s: f32 = uniform() + uniform() + uniform() + uniform();
            let z = (s - 2.0) * 1.732_050_8; // scale to unit variance
            data.push(z * std);
        }
        Matrix { rows, cols, data }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element accessor. Panics on out-of-bounds (use in hot inner loops
    /// only with trusted indices).
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// Borrow a row as a slice.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::OutOfBounds`] if `r >= rows`.
    pub fn row(&self, r: usize) -> crate::Result<&[f32]> {
        if r >= self.rows {
            return Err(TensorError::OutOfBounds {
                op: "row",
                index: r,
                bound: self.rows,
            });
        }
        Ok(&self.data[r * self.cols..(r + 1) * self.cols])
    }

    /// Mutable row slice.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::OutOfBounds`] if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> crate::Result<&mut [f32]> {
        if r >= self.rows {
            return Err(TensorError::OutOfBounds {
                op: "row_mut",
                index: r,
                bound: self.rows,
            });
        }
        Ok(&mut self.data[r * self.cols..(r + 1) * self.cols])
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the transpose.
    pub fn transposed(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.at(c, r))
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Maximum absolute element, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, v| m.max(v.abs()))
    }

    /// Approximate equality within `eps`, used by tests comparing
    /// mathematically-equal but differently-ordered computations.
    pub fn approx_eq(&self, other: &Matrix, eps: f32) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= eps)
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(6) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>9.4} ", self.at(r, c))?;
            }
            if self.cols > 8 {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > 6 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        let err = Matrix::from_vec(2, 2, vec![1.0; 5]).unwrap_err();
        assert!(matches!(err, TensorError::BadBuffer { len: 5, .. }));
    }

    #[test]
    fn from_fn_is_row_major() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.at(1, 2), 12.0);
    }

    #[test]
    fn seeded_gaussian_is_deterministic() {
        let a = Matrix::seeded_gaussian("x", 5, 7, 1.0);
        let b = Matrix::seeded_gaussian("x", 5, 7, 1.0);
        assert_eq!(a, b);
        let c = Matrix::seeded_gaussian("y", 5, 7, 1.0);
        assert_ne!(a, c);
    }

    #[test]
    fn seeded_gaussian_respects_std() {
        let a = Matrix::seeded_gaussian("x", 50, 50, 1.0);
        let b = Matrix::seeded_gaussian("x", 50, 50, 0.5);
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x * 0.5 - y).abs() < 1e-6);
        }
        // Sample std should be near 1 for 2500 samples.
        let n = a.len() as f32;
        let mean = a.sum() / n;
        let var = a.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n;
        assert!((var.sqrt() - 1.0).abs() < 0.1, "std = {}", var.sqrt());
    }

    #[test]
    fn identity_and_transpose() {
        let id = Matrix::identity(4);
        assert_eq!(id, id.transposed());
        let m = Matrix::from_fn(2, 3, |r, c| (r + c) as f32);
        let t = m.transposed();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.at(2, 1), m.at(1, 2));
    }

    #[test]
    fn row_accessors_bounds_checked() {
        let m = Matrix::zeros(2, 3);
        assert!(m.row(1).is_ok());
        assert!(matches!(
            m.row(2),
            Err(TensorError::OutOfBounds {
                index: 2,
                bound: 2,
                ..
            })
        ));
    }

    #[test]
    fn approx_eq_tolerates_small_differences() {
        let a = Matrix::full(2, 2, 1.0);
        let mut b = a.clone();
        *b.at_mut(0, 0) = 1.0 + 1e-7;
        assert!(a.approx_eq(&b, 1e-6));
        assert!(!a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&Matrix::zeros(2, 3), 1.0));
    }

    #[test]
    fn display_does_not_panic_on_large() {
        let m = Matrix::seeded_gaussian("big", 20, 20, 1.0);
        let s = format!("{m}");
        assert!(s.contains("Matrix 20x20"));
    }

    #[test]
    fn error_display_is_informative() {
        let e = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert_eq!(format!("{e}"), "matmul: shape mismatch 2x3 vs 4x5");
    }
}
