//! Model-loading accounting (footnote 1 / Table VII end-to-end column).

use s2m3_core::plan::Plan;
use s2m3_core::problem::Instance;
use s2m3_net::device::DeviceId;
use std::collections::BTreeMap;

/// Per-device loading time for a placement: each device streams its
/// placed modules' weights sequentially.
pub fn loading_times(instance: &Instance, plan: &Plan) -> BTreeMap<DeviceId, f64> {
    let specs: BTreeMap<_, _> = instance
        .distinct_modules()
        .into_iter()
        .map(|m| (m.id.clone(), m.clone()))
        .collect();
    let mut out: BTreeMap<DeviceId, f64> = BTreeMap::new();
    for (m, n) in plan.placement.iter() {
        let Some(spec) = specs.get(m) else { continue };
        let Some(dev) = instance.fleet().device(n.as_str()) else {
            continue;
        };
        *out.entry(n.clone()).or_default() += dev.load_time(spec);
    }
    out
}

/// The loading critical path: devices load in parallel, so end-to-end
/// serving readiness is the slowest device.
pub fn loading_critical_path(instance: &Instance, plan: &Plan) -> f64 {
    loading_times(instance, plan)
        .values()
        .copied()
        .fold(0.0, f64::max)
}

/// Loading time of a *centralized* deployment of one model on one device
/// (every module streams onto that device).
pub fn centralized_loading(instance: &Instance, model: &str, device: &str) -> Option<f64> {
    let d = instance.fleet().device(device)?;
    let dep = instance.deployment(model)?;
    // One fixed setup plus streaming of all weights (a monolithic
    // checkpoint loads once, not per module).
    let bytes: u64 = dep.model.modules().map(|m| m.weight_bytes()).sum();
    Some(d.load_fixed_s + (bytes as f64 / 1.0e6) / d.load_rate_mbps)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Instance, Plan) {
        let i = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
        let q = i.request(0, "CLIP ViT-B/16").unwrap();
        let plan = Plan::greedy(&i, vec![q]).unwrap();
        (i, plan)
    }

    #[test]
    fn split_loading_beats_jetson_centralized() {
        // Table VII: S2M3's end-to-end overhead (~2.3 s) is far below the
        // Jetson's (~15 s): split loading parallelizes across devices and
        // avoids the slow device entirely.
        let (i, plan) = setup();
        let split = loading_critical_path(&i, &plan);
        let jetson = centralized_loading(&i, "CLIP ViT-B/16", "jetson-a").unwrap();
        assert!(split < 3.5, "split loading {split:.2}");
        assert!(jetson > 13.0, "jetson loading {jetson:.2}");
    }

    #[test]
    fn per_device_times_cover_placement() {
        let (i, plan) = setup();
        let times = loading_times(&i, &plan);
        // Only devices that actually host parametric modules appear with
        // nonzero cost.
        for (dev, t) in &times {
            assert!(*t >= 0.0, "{dev}: {t}");
        }
        assert!(!times.is_empty());
    }

    #[test]
    fn centralized_loading_unknown_names() {
        let (i, _) = setup();
        assert!(centralized_loading(&i, "CLIP ViT-B/16", "ghost").is_none());
        assert!(centralized_loading(&i, "ghost", "laptop").is_none());
    }
}
