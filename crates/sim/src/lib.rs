//! # s2m3-sim
//!
//! Discrete-event execution of S2M3 [`Plan`](s2m3_core::plan::Plan)s in
//! virtual time.
//!
//! The analytic objective in `s2m3-core` evaluates one request in
//! isolation (Eqs. 1–3). This simulator executes *sequences* of requests
//! against the same placement, which is where the paper's dynamic effects
//! live:
//!
//! - **queuing** on shared modules — the Table X observation that sharing
//!   trades memory for latency when simultaneous requests collide on a
//!   module (constraint (4b)'s capacity term, enforced here as FIFO device
//!   lanes);
//! - **pipelining** — the next request enters an encoder as soon as it
//!   frees (Sec. V-B);
//! - **model loading** — the end-to-end latency component of Table VII and
//!   the loading bars of Fig. 3;
//! - **per-request Gantt timelines** — the data behind Fig. 3, exportable
//!   as text or JSON.
//!
//! ## Example
//!
//! ```
//! use s2m3_core::prelude::*;
//! use s2m3_sim::{simulate, SimConfig};
//!
//! let instance = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
//! let request = instance.request(0, "CLIP ViT-B/16").unwrap();
//! let plan = Plan::greedy(&instance, vec![request]).unwrap();
//! let report = simulate(&instance, &plan, &SimConfig::default()).unwrap();
//! // One-request simulated latency agrees with the analytic objective
//! // within the scheduler's resolution.
//! let analytic = total_latency(&instance, &plan.routed[0].1, &plan.routed[0].0).unwrap();
//! assert!((report.request_latency(0).unwrap() - analytic).abs() < 0.15);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batching;
pub mod energy;
pub mod engine;
pub mod kernel;
pub mod loading;
pub mod report;
pub mod workload;

#[cfg(test)]
mod proptests;

pub use engine::{simulate, simulate_shared, SimConfig, SimError};
pub use report::{GanttSpan, Phase, SimReport};
pub use workload::{
    ArrivalProcess, ClassShare, ModelMix, ModelWeight, SourceSpec, WorkloadError, WorkloadRequest,
    WorkloadSpec,
};
