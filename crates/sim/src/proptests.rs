//! Property-based tests for the simulator's scheduling invariants.

use proptest::prelude::*;

use s2m3_core::plan::Plan;
use s2m3_core::problem::Instance;

use crate::workload::{latency_stats, mixed_stream, ArrivalProcess};
use crate::{simulate, SimConfig};

fn instance() -> Instance {
    Instance::single_model("CLIP ViT-B/16", 32).unwrap()
}

fn arb_arrival_process() -> impl Strategy<Value = ArrivalProcess> {
    prop_oneof![
        Just(ArrivalProcess::Simultaneous),
        (0.01f64..10.0).prop_map(|interval_s| ArrivalProcess::Uniform { interval_s }),
        (0.01f64..20.0).prop_map(|rate_per_s| ArrivalProcess::Poisson { rate_per_s }),
        (proptest::collection::vec(0.01f64..20.0, 1..4), 0.1f64..60.0).prop_map(
            |(rates_per_s, mean_dwell_s)| ArrivalProcess::Mmpp {
                rates_per_s,
                mean_dwell_s,
            }
        ),
        (0.01f64..2.0, 0.01f64..20.0, 1.0f64..500.0).prop_map(|(base, extra, period_s)| {
            ArrivalProcess::Diurnal {
                base_rate_per_s: base,
                peak_rate_per_s: base + extra,
                period_s,
            }
        }),
        proptest::collection::vec(-1.0f64..5.0, 0..8)
            .prop_map(|inter_arrival_s| ArrivalProcess::Trace { inter_arrival_s }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every arrival-process variant yields sorted, non-negative,
    /// zero-based, deterministic arrival times of the requested length.
    #[test]
    fn all_arrival_variants_sorted_nonnegative_deterministic(
        process in arb_arrival_process(),
        n in 1usize..200,
        label in "[a-z]{1,8}",
    ) {
        let a = process.arrivals(n, &label);
        let b = process.arrivals(n, &label);
        prop_assert_eq!(&a, &b, "same label must reproduce the stream");
        prop_assert_eq!(a.len(), n);
        prop_assert_eq!(a[0], 0.0);
        prop_assert!(a.iter().all(|t| t.is_finite() && *t >= 0.0), "{a:?}");
        prop_assert!(a.windows(2).all(|w| w[0] <= w[1]), "unsorted: {a:?}");
    }

    /// Batching never increases the burst makespan (it only merges queued
    /// work, amortizing per-execution overhead).
    #[test]
    fn batching_never_hurts_makespan(n in 1usize..10, cap in 1usize..8) {
        let i = instance();
        let requests = mixed_stream(&i, n).unwrap();
        let plan = Plan::greedy(&i, requests).unwrap();
        let plain = simulate(&i, &plan, &SimConfig::default()).unwrap();
        let batched = simulate(
            &i,
            &plan,
            &SimConfig { max_batch: Some(cap), ..SimConfig::default() },
        )
        .unwrap();
        prop_assert!(batched.makespan <= plain.makespan + 1e-6,
            "batched {} vs plain {}", batched.makespan, plain.makespan);
        prop_assert_eq!(batched.requests.len(), n);
    }

    /// Later arrivals never finish before they arrive, and all requests
    /// complete.
    #[test]
    fn arrivals_respected(n in 1usize..8, interval in 0.01f64..5.0) {
        let i = instance();
        let requests = mixed_stream(&i, n).unwrap();
        let plan = Plan::greedy(&i, requests).unwrap();
        let arrivals = ArrivalProcess::Uniform { interval_s: interval }.arrivals(n, "prop");
        let r = simulate(
            &i,
            &plan,
            &SimConfig { arrivals: Some(arrivals.clone()), ..SimConfig::default() },
        )
        .unwrap();
        prop_assert_eq!(r.requests.len(), n);
        for (k, t) in &r.requests {
            prop_assert!((t.arrival - arrivals[*k as usize]).abs() < 1e-9);
            prop_assert!(t.completion > t.arrival);
        }
    }

    /// Slower arrival rates never increase mean latency (less queuing).
    #[test]
    fn load_monotonicity(n in 4usize..10) {
        let i = instance();
        let requests = mixed_stream(&i, n).unwrap();
        let plan = Plan::greedy(&i, requests).unwrap();
        let run = |interval: f64, tag: &str| {
            let arrivals = ArrivalProcess::Uniform { interval_s: interval }.arrivals(n, tag);
            latency_stats(
                &simulate(
                    &i,
                    &plan,
                    &SimConfig { arrivals: Some(arrivals), ..SimConfig::default() },
                )
                .unwrap(),
            )
        };
        let fast = run(0.05, "fast");
        let slow = run(60.0, "slow");
        prop_assert!(slow.mean <= fast.mean + 1e-6,
            "slow mean {} vs fast mean {}", slow.mean, fast.mean);
    }

    /// Spans never overlap beyond a device's lane count (no phantom
    /// parallelism), checking compute spans only.
    #[test]
    fn lane_capacity_respected(n in 1usize..8) {
        let i = instance();
        let requests = mixed_stream(&i, n).unwrap();
        let plan = Plan::greedy(&i, requests).unwrap();
        let r = simulate(&i, &plan, &SimConfig::default()).unwrap();
        for dev in i.fleet().devices() {
            let lanes = dev.parallelism.max(1);
            let mut spans: Vec<(f64, f64)> = r
                .spans
                .iter()
                .filter(|s| {
                    s.device == dev.id
                        && matches!(
                            s.phase,
                            crate::Phase::Encode(_) | crate::Phase::Head(_)
                        )
                })
                .map(|s| (s.start, s.end))
                .collect();
            spans.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            // Sweep: count concurrent spans at each start point. The
            // engine quantizes event times to nanoseconds, so allow a
            // microsecond of slack at span boundaries.
            for &(start, _) in &spans {
                let live = spans
                    .iter()
                    .filter(|&&(s, e)| s <= start + 1e-6 && e > start + 1e-6)
                    .count();
                prop_assert!(
                    live <= lanes,
                    "{}: {live} concurrent spans > {lanes} lanes",
                    dev.id
                );
            }
        }
    }
}
