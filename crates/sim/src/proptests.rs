//! Property-based tests for the simulator's scheduling invariants.

use proptest::prelude::*;

use s2m3_core::plan::Plan;
use s2m3_core::problem::Instance;

use crate::kernel::wheel::TimingWheel;
use crate::kernel::KeyHeap;
use crate::workload::{
    latency_stats, mixed_stream, ArrivalProcess, ModelMix, ModelWeight, SourceSpec, WorkloadSpec,
};
use crate::{simulate, SimConfig};

fn instance() -> Instance {
    Instance::single_model("CLIP ViT-B/16", 32).unwrap()
}

/// An arbitrary multi-source spec under the legacy round-robin mix.
fn arb_legacy_spec() -> impl Strategy<Value = WorkloadSpec> {
    (1usize..6, "[a-z]{1,6}").prop_map(|(n_sources, seed)| WorkloadSpec {
        sources: (0..n_sources)
            .map(|i| SourceSpec {
                device: None,
                arrivals: ArrivalProcess::Poisson {
                    rate_per_s: 0.5 + i as f64,
                },
                label: format!("{seed}/source-{i}"),
                weight: None,
                mix: None,
            })
            .collect(),
        mix: ModelMix::LegacyRoundRobin,
        classes: Vec::new(),
        seed,
    })
}

fn arb_arrival_process() -> impl Strategy<Value = ArrivalProcess> {
    prop_oneof![
        Just(ArrivalProcess::Simultaneous),
        (0.01f64..10.0).prop_map(|interval_s| ArrivalProcess::Uniform { interval_s }),
        (0.01f64..20.0).prop_map(|rate_per_s| ArrivalProcess::Poisson { rate_per_s }),
        (proptest::collection::vec(0.01f64..20.0, 1..4), 0.1f64..60.0).prop_map(
            |(rates_per_s, mean_dwell_s)| ArrivalProcess::Mmpp {
                rates_per_s,
                mean_dwell_s,
            }
        ),
        (0.01f64..2.0, 0.01f64..20.0, 1.0f64..500.0).prop_map(|(base, extra, period_s)| {
            ArrivalProcess::Diurnal {
                base_rate_per_s: base,
                peak_rate_per_s: base + extra,
                period_s,
            }
        }),
        proptest::collection::vec(-1.0f64..5.0, 0..8)
            .prop_map(|inter_arrival_s| ArrivalProcess::Trace { inter_arrival_s }),
    ]
}

/// One step of an interleaved push/pop schedule against the event
/// queue (`(time_ns, seq)` packed keys).
#[derive(Debug, Clone)]
enum WheelOp {
    /// Push `count` events at `clock + offset_ns` — bursts (`count > 1`)
    /// land on the same tick, exercising seq-order tie-breaks.
    Push { offset_ns: u64, count: usize },
    /// Pop up to `n` events, comparing wheel and heap step by step.
    Pop(usize),
}

/// Arbitrary serve-shaped schedules: mostly in-window offsets, some
/// spilling into the coarse levels, some far past the wheel horizon
/// (the overflow list), plus a near-`u64::MAX` saturation point.
fn arb_offset_ns() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..5_000_000,
        0u64..5_000_000,
        0u64..500_000_000,
        1_000_000_000u64..50_000_000_000_000,
        Just(u64::MAX / 2),
    ]
}

fn arb_wheel_ops() -> impl Strategy<Value = Vec<WheelOp>> {
    proptest::collection::vec(
        prop_oneof![
            (arb_offset_ns(), 1usize..5)
                .prop_map(|(offset_ns, count)| WheelOp::Push { offset_ns, count }),
            (arb_offset_ns(), 1usize..5)
                .prop_map(|(offset_ns, count)| WheelOp::Push { offset_ns, count }),
            (1usize..8).prop_map(WheelOp::Pop),
        ],
        1..250,
    )
}

fn pack(time_ns: u64, seq: u64) -> u128 {
    (u128::from(time_ns) << 64) | u128::from(seq)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every arrival-process variant yields sorted, non-negative,
    /// zero-based, deterministic arrival times of the requested length.
    #[test]
    fn all_arrival_variants_sorted_nonnegative_deterministic(
        process in arb_arrival_process(),
        n in 1usize..200,
        label in "[a-z]{1,8}",
    ) {
        let a = process.arrivals(n, &label);
        let b = process.arrivals(n, &label);
        prop_assert_eq!(&a, &b, "same label must reproduce the stream");
        prop_assert_eq!(a.len(), n);
        prop_assert_eq!(a[0], 0.0);
        prop_assert!(a.iter().all(|t| t.is_finite() && *t >= 0.0), "{a:?}");
        prop_assert!(a.windows(2).all(|w| w[0] <= w[1]), "unsorted: {a:?}");
    }

    /// `LegacyRoundRobin` over arbitrary source counts is exactly the
    /// historic `rid % n_models` assignment on the merged stream, and
    /// the merge is the historic `(time, source rank, per-source id)`
    /// order.
    #[test]
    fn legacy_round_robin_equals_rid_mod_n_models(
        spec in arb_legacy_spec(),
        n in 1usize..300,
        n_models in 1usize..5,
    ) {
        let models: Vec<String> = (0..n_models).map(|k| format!("model-{k}")).collect();
        let stream = spec.generate(n, &models).unwrap();
        prop_assert_eq!(stream.len(), n);
        for (rid, wr) in stream.iter().enumerate() {
            prop_assert_eq!(wr.model as usize, rid % n_models, "rid {rid}");
        }
        // The merge is sorted by (time, rank); per-source emission
        // order is preserved (same-source entries sorted by time
        // already implies it; ids are implicit in order).
        prop_assert!(stream
            .windows(2)
            .all(|w| (w[0].at_ns, w[0].source) <= (w[1].at_ns, w[1].source)));
        // The legacy split is round-robin: source counts differ by ≤1
        // and earlier ranks get the remainder.
        let mut counts = vec![0usize; spec.sources.len()];
        for wr in &stream {
            counts[wr.source as usize] += 1;
        }
        let k = counts.len();
        for (rank, &c) in counts.iter().enumerate() {
            prop_assert_eq!(c, n / k + usize::from(rank < n % k));
        }
    }

    /// Weighted mixes are deterministic per seed: the same spec streams
    /// identically, a different seed differs (statistically certain for
    /// non-trivial streams), and every drawn model is one of the
    /// weighted ones.
    #[test]
    fn weighted_mix_is_deterministic_and_closed(
        w0 in 0.1f64..10.0,
        w1 in 0.1f64..10.0,
        n in 50usize..300,
        seed in "[a-z]{1,6}",
    ) {
        let models = vec!["a".to_string(), "b".to_string(), "c".to_string()];
        let mut spec = WorkloadSpec::single_source(
            ArrivalProcess::Poisson { rate_per_s: 2.0 },
            seed.clone(),
        );
        spec.mix = ModelMix::Weighted {
            weights: vec![
                ModelWeight { model: "a".to_string(), weight: w0 },
                ModelWeight { model: "c".to_string(), weight: w1 },
            ],
        };
        let stream = spec.generate(n, &models).unwrap();
        prop_assert_eq!(&stream, &spec.generate(n, &models).unwrap());
        // Model "b" (weight 0 ≡ absent) never appears; a and c both
        // can.
        prop_assert!(stream.iter().all(|wr| wr.model == 0 || wr.model == 2));
        let mut other = spec.clone();
        other.sources[0].label = format!("{seed}-x");
        prop_assert_ne!(&stream, &other.generate(n, &models).unwrap());
    }

    /// Weight validation rejects non-finite, non-positive, unknown-model,
    /// and empty weighted mixes — and never panics on valid input.
    #[test]
    fn weight_validation_rejects_degenerate_mixes(
        bad_weight in prop_oneof![
            Just(0.0f64),
            Just(-3.5f64),
            Just(f64::NAN),
            Just(f64::INFINITY)
        ],
    ) {
        let models = vec!["a".to_string()];
        let mut spec = WorkloadSpec::single_source(ArrivalProcess::Simultaneous, "w");
        spec.mix = ModelMix::Weighted {
            weights: vec![ModelWeight { model: "a".to_string(), weight: bad_weight }],
        };
        prop_assert!(spec.generate(8, &models).is_err());

        let mut unknown = WorkloadSpec::single_source(ArrivalProcess::Simultaneous, "w");
        unknown.mix = ModelMix::Weighted {
            weights: vec![ModelWeight { model: "ghost".to_string(), weight: 1.0 }],
        };
        prop_assert!(unknown.generate(8, &models).is_err());

        let mut empty = WorkloadSpec::single_source(ArrivalProcess::Simultaneous, "w");
        empty.mix = ModelMix::Weighted { weights: vec![] };
        prop_assert!(empty.generate(8, &models).is_err());

        let mut source_weight = WorkloadSpec::single_source(ArrivalProcess::Simultaneous, "w");
        source_weight.sources[0].weight = Some(bad_weight);
        prop_assert!(source_weight.generate(8, &models).is_err());
    }

    /// Weighted source splits hand out exactly `n` requests whatever the
    /// weights (largest-remainder never loses or invents one).
    #[test]
    fn weighted_source_split_conserves_the_budget(
        weights in proptest::collection::vec(0.1f64..20.0, 1..6),
        n in 0usize..500,
    ) {
        let spec = WorkloadSpec {
            sources: weights
                .iter()
                .enumerate()
                .map(|(i, &w)| SourceSpec {
                    device: None,
                    arrivals: ArrivalProcess::Uniform { interval_s: 1.0 },
                    label: format!("s{i}"),
                    weight: Some(w),
                    mix: None,
                })
                .collect(),
            mix: ModelMix::LegacyRoundRobin,
            classes: Vec::new(),
            seed: "split".to_string(),
        };
        let stream = spec.generate(n, &["m".to_string()]).unwrap();
        prop_assert_eq!(stream.len(), n);
    }

    /// Batching never increases the burst makespan (it only merges queued
    /// work, amortizing per-execution overhead).
    #[test]
    fn batching_never_hurts_makespan(n in 1usize..10, cap in 1usize..8) {
        let i = instance();
        let requests = mixed_stream(&i, n).unwrap();
        let plan = Plan::greedy(&i, requests).unwrap();
        let plain = simulate(&i, &plan, &SimConfig::default()).unwrap();
        let batched = simulate(
            &i,
            &plan,
            &SimConfig { max_batch: Some(cap), ..SimConfig::default() },
        )
        .unwrap();
        prop_assert!(batched.makespan <= plain.makespan + 1e-6,
            "batched {} vs plain {}", batched.makespan, plain.makespan);
        prop_assert_eq!(batched.requests.len(), n);
    }

    /// Later arrivals never finish before they arrive, and all requests
    /// complete.
    #[test]
    fn arrivals_respected(n in 1usize..8, interval in 0.01f64..5.0) {
        let i = instance();
        let requests = mixed_stream(&i, n).unwrap();
        let plan = Plan::greedy(&i, requests).unwrap();
        let arrivals = ArrivalProcess::Uniform { interval_s: interval }.arrivals(n, "prop");
        let r = simulate(
            &i,
            &plan,
            &SimConfig { arrivals: Some(arrivals.clone()), ..SimConfig::default() },
        )
        .unwrap();
        prop_assert_eq!(r.requests.len(), n);
        for (k, t) in &r.requests {
            prop_assert!((t.arrival - arrivals[*k as usize]).abs() < 1e-9);
            prop_assert!(t.completion > t.arrival);
        }
    }

    /// Slower arrival rates never increase mean latency (less queuing).
    #[test]
    fn load_monotonicity(n in 4usize..10) {
        let i = instance();
        let requests = mixed_stream(&i, n).unwrap();
        let plan = Plan::greedy(&i, requests).unwrap();
        let run = |interval: f64, tag: &str| {
            let arrivals = ArrivalProcess::Uniform { interval_s: interval }.arrivals(n, tag);
            latency_stats(
                &simulate(
                    &i,
                    &plan,
                    &SimConfig { arrivals: Some(arrivals), ..SimConfig::default() },
                )
                .unwrap(),
            )
        };
        let fast = run(0.05, "fast");
        let slow = run(60.0, "slow");
        prop_assert!(slow.mean <= fast.mean + 1e-6,
            "slow mean {} vs fast mean {}", slow.mean, fast.mean);
    }

    /// Spans never overlap beyond a device's lane count (no phantom
    /// parallelism), checking compute spans only.
    #[test]
    fn lane_capacity_respected(n in 1usize..8) {
        let i = instance();
        let requests = mixed_stream(&i, n).unwrap();
        let plan = Plan::greedy(&i, requests).unwrap();
        let r = simulate(&i, &plan, &SimConfig::default()).unwrap();
        for dev in i.fleet().devices() {
            let lanes = dev.parallelism.max(1);
            let mut spans: Vec<(f64, f64)> = r
                .spans
                .iter()
                .filter(|s| {
                    s.device == dev.id
                        && matches!(
                            s.phase,
                            crate::Phase::Encode(_) | crate::Phase::Head(_)
                        )
                })
                .map(|s| (s.start, s.end))
                .collect();
            spans.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            // Sweep: count concurrent spans at each start point. The
            // engine quantizes event times to nanoseconds, so allow a
            // microsecond of slack at span boundaries.
            for &(start, _) in &spans {
                let live = spans
                    .iter()
                    .filter(|&&(s, e)| s <= start + 1e-6 && e > start + 1e-6)
                    .count();
                prop_assert!(
                    live <= lanes,
                    "{}: {live} concurrent spans > {lanes} lanes",
                    dev.id
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The timing wheel is a drop-in replacement for the packed-key
    /// heap: under arbitrary interleaved push/pop schedules — same-tick
    /// bursts, far-future overflow spills, `u64`-saturating times — the
    /// two structures pop identical `(key, item)` sequences and agree
    /// on every intermediate `peek_key`.
    #[test]
    fn wheel_matches_heap_on_arbitrary_streams(ops in arb_wheel_ops()) {
        let mut wheel: TimingWheel<u64> = TimingWheel::default();
        let mut heap: KeyHeap<u64> = KeyHeap::with_capacity(0);
        let mut seq = 0u64;
        // Pushes ride the popped clock, like the kernel's `now`-anchored
        // event pushes; the wheel itself accepts any time order.
        let mut clock = 0u64;
        for op in ops {
            match op {
                WheelOp::Push { offset_ns, count } => {
                    for _ in 0..count {
                        let key = pack(clock.saturating_add(offset_ns), seq);
                        wheel.push(key, seq);
                        heap.push(key, seq);
                        seq += 1;
                    }
                }
                WheelOp::Pop(n) => {
                    for _ in 0..n {
                        prop_assert_eq!(wheel.peek_key(), heap.peek_key());
                        let (w, h) = (wheel.pop(), heap.pop());
                        prop_assert_eq!(&w, &h);
                        match w {
                            Some((key, _)) => clock = (key >> 64) as u64,
                            None => break,
                        }
                    }
                }
            }
        }
        // Drain the tail: every remaining event pops in identical order.
        loop {
            prop_assert_eq!(wheel.peek_key(), heap.peek_key());
            prop_assert_eq!(wheel.len(), heap.len());
            let (w, h) = (wheel.pop(), heap.pop());
            prop_assert_eq!(&w, &h);
            if w.is_none() {
                break;
            }
        }
        prop_assert!(wheel.is_empty());
    }
}
