//! The unified workload layer: request streams specified once, consumed
//! by both execution engines.
//!
//! The paper evaluates single requests and a simultaneous four-task burst
//! (Table X). This module generalizes to sustained load: seeded arrival
//! processes (Poisson / uniform / burst, plus the bursty
//! [`ArrivalProcess::Mmpp`], time-varying [`ArrivalProcess::Diurnal`],
//! and [`ArrivalProcess::Trace`] replay), and — since the workload
//! unification — [`WorkloadSpec`]: multi-source traffic with weighted
//! budget splits, per-source model mixes ([`ModelMix`]: legacy
//! round-robin, seeded weighted sampling, or trace replay), and weighted
//! deadline/priority classes ([`ClassShare`] over
//! [`DeadlineClass`]).
//!
//! Two consumers drive the API shape, and both go through the same
//! generator: the offline simulator **materializes** a bounded request
//! set ([`WorkloadSpec::materialize`] → requests + arrival times for
//! `SimConfig::arrivals`), and the `s2m3-serve` control plane
//! **streams** the same merged sequence unbounded
//! ([`WorkloadSpec::generate`], assembled from a scenario by
//! `ServeScenario::workload`). Identical specs (including seeds) give
//! identical traffic in both, which is what makes serving reports
//! reproducible — and [`ModelMix::LegacyRoundRobin`] reproduces the
//! pre-unification `rid % n_models` streams byte-for-byte (pinned by
//! the golden fixtures and property-tested in this crate).

use rand_chacha::rand_core::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use s2m3_core::error::CoreError;
use s2m3_core::problem::{DeadlineClass, Instance, Request};
use s2m3_tensor::seed::seed_from_label;

use crate::report::SimReport;

/// An arrival process.
///
/// The serving control plane in `s2m3-serve` consumes these as its
/// request source; the bursty and time-varying variants exist so churn
/// experiments can stress admission control the way real traffic does.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// All requests at t = 0 (the Table X burst).
    Simultaneous,
    /// Evenly spaced at the given interval, seconds.
    Uniform {
        /// Gap between consecutive arrivals.
        interval_s: f64,
    },
    /// Poisson arrivals at the given mean rate, requests/second.
    Poisson {
        /// Mean arrival rate λ.
        rate_per_s: f64,
    },
    /// A Markov-modulated Poisson process: the arrival rate jumps between
    /// `rates_per_s` states, dwelling an exponential time with mean
    /// `mean_dwell_s` in each before moving to the next (cyclically).
    /// The classic bursty-traffic model: calm and storm phases alternate.
    Mmpp {
        /// Per-state arrival rates, requests/second (≥1 state).
        rates_per_s: Vec<f64>,
        /// Mean dwell time in each state, seconds.
        mean_dwell_s: f64,
    },
    /// A diurnal (sinusoidal) rate profile: the instantaneous rate swings
    /// between `base_rate_per_s` and `peak_rate_per_s` over `period_s`,
    /// sampled by thinning a peak-rate Poisson stream.
    Diurnal {
        /// Trough arrival rate, requests/second.
        base_rate_per_s: f64,
        /// Peak arrival rate, requests/second.
        peak_rate_per_s: f64,
        /// Length of one base→peak→base cycle, seconds.
        period_s: f64,
    },
    /// Replays recorded inter-arrival gaps, cycling when the trace is
    /// shorter than the requested stream.
    Trace {
        /// Inter-arrival gaps, seconds (negative entries are clamped to 0).
        inter_arrival_s: Vec<f64>,
    },
}

impl ArrivalProcess {
    /// Generates `n` deterministic arrival times (sorted, starting at 0),
    /// seeded by `label`. A bounded collect of [`ArrivalProcess::stream`]
    /// — the streaming and batch paths are the same generator.
    pub fn arrivals(&self, n: usize, label: &str) -> Vec<f64> {
        let mut stream = self.stream(label);
        (0..n).map(|_| stream.next_time()).collect()
    }

    /// The lazy form of [`ArrivalProcess::arrivals`]: an unbounded
    /// iterator over the same arrival sequence in O(1) memory. The k-th
    /// [`ArrivalStream::next_time`] is bit-identical to `arrivals(n,
    /// label)[k]` for any `n > k` — same sampler, same draw order, same
    /// shift-to-zero arithmetic — which is what lets the online serving
    /// driver pull millions of arrivals without materializing them.
    pub fn stream(&self, label: &str) -> ArrivalStream {
        let mut unit = UnitSampler::new(&format!("arrivals/{label}"));
        let state = match self {
            ArrivalProcess::Simultaneous => StreamState::Simultaneous,
            ArrivalProcess::Uniform { interval_s } => StreamState::Uniform {
                interval_s: *interval_s,
                i: 0,
            },
            ArrivalProcess::Poisson { rate_per_s } => StreamState::Poisson {
                rate_per_s: *rate_per_s,
                t: 0.0,
            },
            ArrivalProcess::Mmpp {
                rates_per_s,
                mean_dwell_s,
            } => StreamState::Mmpp {
                rates_per_s: rates_per_s.clone(),
                mean_dwell_s: *mean_dwell_s,
                t: 0.0,
                state: 0,
                // The batch generator draws the initial dwell before the
                // first gap; match the draw order exactly.
                state_left: -unit.next().ln() * mean_dwell_s.max(1e-9),
            },
            ArrivalProcess::Diurnal {
                base_rate_per_s,
                peak_rate_per_s,
                period_s,
            } => {
                let base = base_rate_per_s.max(0.0);
                StreamState::Diurnal {
                    base,
                    peak: peak_rate_per_s.max(base).max(1e-9),
                    period: period_s.max(1e-9),
                    t: 0.0,
                }
            }
            ArrivalProcess::Trace { inter_arrival_s } => StreamState::Trace {
                inter_arrival_s: inter_arrival_s.clone(),
                t: 0.0,
                i: 0,
            },
        };
        ArrivalStream {
            unit,
            state,
            offset: None,
        }
    }

    /// The long-run mean arrival rate this process targets, requests per
    /// second (`None` for [`ArrivalProcess::Simultaneous`], whose rate is
    /// unbounded). Useful for sizing serving scenarios against fleet
    /// capacity; note the online replan controller in `s2m3-serve` uses
    /// the *observed* rate of the running stream, not this target.
    pub fn mean_rate_per_s(&self) -> Option<f64> {
        match self {
            ArrivalProcess::Simultaneous => None,
            ArrivalProcess::Uniform { interval_s } => Some(1.0 / interval_s.max(1e-9)),
            ArrivalProcess::Poisson { rate_per_s } => Some(*rate_per_s),
            ArrivalProcess::Mmpp { rates_per_s, .. } => {
                if rates_per_s.is_empty() {
                    return Some(0.0);
                }
                Some(rates_per_s.iter().sum::<f64>() / rates_per_s.len() as f64)
            }
            ArrivalProcess::Diurnal {
                base_rate_per_s,
                peak_rate_per_s,
                ..
            } => {
                // Mirror `arrivals`' clamp: peak is never below base.
                let base = base_rate_per_s.max(0.0);
                Some(0.5 * (base + peak_rate_per_s.max(base)))
            }
            ArrivalProcess::Trace { inter_arrival_s } => {
                if inter_arrival_s.is_empty() {
                    return Some(0.0);
                }
                let mean_gap = inter_arrival_s.iter().map(|g| g.max(0.0)).sum::<f64>()
                    / inter_arrival_s.len() as f64;
                Some(1.0 / mean_gap.max(1e-9))
            }
        }
    }
}

/// Per-variant generator state of an [`ArrivalStream`].
#[derive(Debug, Clone)]
enum StreamState {
    /// Every arrival at t = 0.
    Simultaneous,
    /// Evenly spaced: arrival `i` at `i * interval_s`.
    Uniform { interval_s: f64, i: u64 },
    /// Exponential inter-arrival gaps via inverse CDF.
    Poisson { rate_per_s: f64, t: f64 },
    /// Markov-modulated Poisson: gaps under the current state's rate,
    /// state advances when the dwell budget expires first.
    Mmpp {
        rates_per_s: Vec<f64>,
        mean_dwell_s: f64,
        t: f64,
        state: usize,
        state_left: f64,
    },
    /// Lewis–Shedler thinning of a peak-rate Poisson stream.
    Diurnal {
        base: f64,
        peak: f64,
        period: f64,
        t: f64,
    },
    /// Recorded gaps, cycled.
    Trace {
        inter_arrival_s: Vec<f64>,
        t: f64,
        i: u64,
    },
}

/// An unbounded, O(1)-memory arrival-time iterator — the lazy
/// equivalent of [`ArrivalProcess::arrivals`] (see
/// [`ArrivalProcess::stream`] for the bit-identity contract).
#[derive(Debug, Clone)]
pub struct ArrivalStream {
    unit: UnitSampler,
    state: StreamState,
    /// The first raw arrival, once drawn: the batch generator shifts
    /// every time by it so streams start at t = 0.
    offset: Option<f64>,
}

impl ArrivalStream {
    /// Draws the next raw (unshifted) arrival time.
    fn raw_next(&mut self) -> f64 {
        match &mut self.state {
            StreamState::Simultaneous => 0.0,
            StreamState::Uniform { interval_s, i } => {
                let t = *i as f64 * *interval_s;
                *i += 1;
                t
            }
            StreamState::Poisson { rate_per_s, t } => {
                // Exponential inter-arrival via inverse CDF.
                *t += -self.unit.next().ln() / rate_per_s.max(1e-9);
                *t
            }
            StreamState::Mmpp {
                rates_per_s,
                mean_dwell_s,
                t,
                state,
                state_left,
            } => loop {
                let rate = rates_per_s
                    .get(*state % rates_per_s.len().max(1))
                    .copied()
                    .unwrap_or(1.0)
                    .max(1e-9);
                let gap = -self.unit.next().ln() / rate;
                if gap <= *state_left || rates_per_s.len() <= 1 {
                    *t += gap;
                    *state_left -= gap;
                    break *t;
                }
                // Dwell expired before the next arrival: advance to the
                // state boundary and redraw under the new rate.
                *t += *state_left;
                *state += 1;
                *state_left = -self.unit.next().ln() * mean_dwell_s.max(1e-9);
            },
            StreamState::Diurnal {
                base,
                peak,
                period,
                t,
            } => loop {
                // Thinning (Lewis–Shedler): candidates at the peak rate,
                // accepted with probability rate(t)/peak.
                *t += -self.unit.next().ln() / *peak;
                let phase = (*t / *period) * std::f64::consts::TAU;
                let rate = *base + (*peak - *base) * 0.5 * (1.0 - phase.cos());
                if self.unit.next() * *peak <= rate {
                    break *t;
                }
            },
            StreamState::Trace {
                inter_arrival_s,
                t,
                i,
            } => {
                if !inter_arrival_s.is_empty() {
                    *t += inter_arrival_s[*i as usize % inter_arrival_s.len()].max(0.0);
                }
                *i += 1;
                *t
            }
        }
    }

    /// The next arrival time, seconds, shifted so the stream starts at
    /// t = 0 (non-decreasing; the stream never ends).
    pub fn next_time(&mut self) -> f64 {
        let raw = self.raw_next();
        let offset = *self.offset.get_or_insert(raw);
        // Matches the batch shift exactly: no-op when the first arrival
        // is already at 0.
        if offset != 0.0 {
            raw - offset
        } else {
            raw
        }
    }
}

// ---------------------------------------------------------------------------
// The unified workload-specification layer.
// ---------------------------------------------------------------------------

/// How a request stream chooses among the deployed models.
///
/// This is *the* model-mix abstraction shared by the bounded simulator
/// and the online serving control plane: both materialize their traffic
/// through [`WorkloadSpec`], so a mix defined once means the same thing
/// in a one-shot `load_sweep` run and a 10k-request serving scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModelMix {
    /// The historic default: model = stream index mod the number of
    /// deployed models. At the spec level the index is the *merged*
    /// stream position (exactly the pre-`WorkloadSpec` `rid % n_models`
    /// behavior the golden fixtures pin); as a per-source override it is
    /// the source's own emission index.
    LegacyRoundRobin,
    /// Seeded weighted sampling over deployed models: each request
    /// draws a model with probability `weight / Σ weights`. Same seed ⇒
    /// same model sequence.
    Weighted {
        /// Per-model weights; every named model must be deployed and
        /// every weight finite and positive.
        weights: Vec<ModelWeight>,
    },
    /// Replays a recorded model-name sequence, cycling when the stream
    /// outlives the trace — the model-mix analogue of
    /// [`ArrivalProcess::Trace`].
    Trace {
        /// Model names in replay order (all must be deployed).
        models: Vec<String>,
    },
}

/// One model's share of a [`ModelMix::Weighted`] mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelWeight {
    /// Deployed model name.
    pub model: String,
    /// Relative weight (finite, > 0).
    pub weight: f64,
}

/// One weighted service class of a workload: requests draw a
/// [`DeadlineClass`] with probability `weight / Σ weights` (seeded by
/// the spec seed, so the class sequence is deterministic).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassShare {
    /// The deadline/priority class assigned to sampled requests.
    pub class: DeadlineClass,
    /// Relative share of the stream (finite, > 0).
    pub weight: f64,
}

/// One traffic source of a workload: a device emitting its own seeded
/// arrival stream, with an optional share of the bounded request budget
/// and an optional per-source model mix.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceSpec {
    /// Emitting device name; `None` is the consumer's default origin
    /// (the fleet requester).
    pub device: Option<String>,
    /// The source's arrival process.
    pub arrivals: ArrivalProcess,
    /// Seed label for this source's arrivals (and, suffixed `/mix`, its
    /// model sampling). Distinct labels keep sources independent.
    pub label: String,
    /// Relative share of the bounded request budget. When every source
    /// leaves this `None` the budget splits round-robin (the legacy
    /// multi-source behavior); otherwise missing weights count as 1.
    pub weight: Option<f64>,
    /// Per-source model mix, overriding the spec-level mix.
    pub mix: Option<ModelMix>,
}

/// A complete workload specification: traffic sources (arrival
/// processes), the model mix, and optional deadline/priority classes.
///
/// This is the one place request streams are defined. The bounded
/// simulator materializes `n` [`Request`]s from it
/// ([`WorkloadSpec::materialize`]); the serving control plane consumes
/// the same generator as an unbounded merged stream
/// ([`WorkloadSpec::generate`]). Identical specs (including seeds)
/// produce identical traffic in both worlds.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Traffic sources (≥ 1). Their order is their *rank*: the merge
    /// tie-break for simultaneous arrivals.
    pub sources: Vec<SourceSpec>,
    /// Spec-level model mix for sources without an override.
    pub mix: ModelMix,
    /// Weighted service classes; empty means no per-request classes
    /// (consumers fall back to their scenario-wide deadline).
    pub classes: Vec<ClassShare>,
    /// Seed label for stream-level sampling (class assignment).
    pub seed: String,
}

/// One generated request of a workload stream, in merged arrival order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadRequest {
    /// Arrival time, nanoseconds (the merge key).
    pub at_ns: u64,
    /// Arrival time, seconds, exactly as the arrival process produced
    /// it (bounded consumers keep full `f64` precision).
    pub at_s: f64,
    /// Rank of the emitting source.
    pub source: u32,
    /// Index into the consumer's deployed-model list.
    pub model: u32,
    /// Index into [`WorkloadSpec::classes`], when classes are defined.
    pub class: Option<u32>,
}

/// Per-source model-assignment state of a [`WorkloadStream`].
#[derive(Debug, Clone)]
enum ModelAssign {
    /// Spec-level legacy round-robin: model = merged stream index mod
    /// the model count, assigned when the merge pops the request.
    Merged,
    /// Per-source round-robin override over the source's own emissions.
    SourceRoundRobin { i: u32, n_models: u32 },
    /// Seeded weighted sampling, one draw per emission.
    Weighted {
        idx: Vec<u32>,
        weights: Vec<f64>,
        total: f64,
        unit: UnitSampler,
    },
    /// Recorded model sequence, cycled.
    Trace { idx: Vec<u32>, i: usize },
}

/// One source's lazy emission state inside a [`WorkloadStream`].
#[derive(Debug, Clone)]
struct SourceStream {
    arrivals: ArrivalStream,
    assign: ModelAssign,
    /// Emissions this source still owes its bounded budget share.
    remaining: usize,
    /// Prefetched head of the source's stream: `(at_ns, at_s, model)`,
    /// with `model == u32::MAX` until merge-time assignment for the
    /// spec-level round-robin.
    head: Option<(u64, f64, u32)>,
}

impl SourceStream {
    /// Pulls the source's next emission into `head` (or `None` when its
    /// budget is exhausted).
    fn refill(&mut self) {
        if self.remaining == 0 {
            self.head = None;
            return;
        }
        self.remaining -= 1;
        let t = self.arrivals.next_time();
        let model = match &mut self.assign {
            ModelAssign::Merged => u32::MAX,
            ModelAssign::SourceRoundRobin { i, n_models } => {
                let m = *i % *n_models;
                *i += 1;
                m
            }
            ModelAssign::Weighted {
                idx,
                weights,
                total,
                unit,
            } => idx[weighted_index(weights, *total, unit.next()) as usize],
            ModelAssign::Trace { idx, i } => {
                let m = idx[*i % idx.len()];
                *i += 1;
                m
            }
        };
        self.head = Some(((t * 1.0e9).round() as u64, t, model));
    }
}

/// The spec-level class sampler, drawing in merged stream order.
#[derive(Debug, Clone)]
struct ClassSampler {
    weights: Vec<f64>,
    total: f64,
    unit: UnitSampler,
}

/// A bounded, lazily-generated workload: the k-way merge of the spec's
/// per-source arrival streams, yielding [`WorkloadRequest`]s one at a
/// time in O(sources) memory. Produced by [`WorkloadSpec::stream`];
/// bit-identical to [`WorkloadSpec::generate`] (see there for why).
#[derive(Debug, Clone)]
pub struct WorkloadStream {
    sources: Vec<SourceStream>,
    class_sampler: Option<ClassSampler>,
    n_models: u32,
    /// Requests popped so far (the spec-level round-robin index).
    merged_index: usize,
    /// `merged_index % n_models`, maintained by wrap-around increment
    /// so the per-request hot path carries no division.
    merged_rr: u32,
    /// Requests the stream still owes.
    remaining: usize,
}

impl WorkloadStream {
    /// Requests the stream will still yield.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Pops the next request in merged `(arrival, source rank)` order.
    pub fn next_request(&mut self) -> Option<WorkloadRequest> {
        if self.remaining == 0 {
            return None;
        }
        // Minimum (at_ns, rank) candidate; strict `<` keeps the lowest
        // rank on ties, matching the batch generator's stable sort.
        let mut best: Option<(u64, usize)> = None;
        for (rank, s) in self.sources.iter().enumerate() {
            if let Some((at_ns, _, _)) = s.head {
                if best.is_none_or(|(bk, _)| at_ns < bk) {
                    best = Some((at_ns, rank));
                }
            }
        }
        let (_, rank) = best?;
        let source = &mut self.sources[rank];
        let (at_ns, at_s, mut model) = source.head.take().expect("candidate exists");
        source.refill();
        if model == u32::MAX {
            model = self.merged_rr;
        }
        let class = self
            .class_sampler
            .as_mut()
            .map(|cs| weighted_index(&cs.weights, cs.total, cs.unit.next()));
        self.merged_index += 1;
        self.merged_rr += 1;
        if self.merged_rr == self.n_models {
            self.merged_rr = 0;
        }
        self.remaining -= 1;
        Some(WorkloadRequest {
            at_ns,
            at_s,
            source: rank as u32,
            model,
            class,
        })
    }
}

impl Iterator for WorkloadStream {
    type Item = WorkloadRequest;

    fn next(&mut self) -> Option<WorkloadRequest> {
        self.next_request()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// Workload-specification errors.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// The spec has no traffic sources (or the consumer no models).
    Empty(String),
    /// A mix or trace references a model that is not deployed.
    UnknownModel(String),
    /// A weight is non-finite, non-positive, or the weights are empty.
    BadWeight(String),
    /// Materializing requests against an instance failed.
    Core(CoreError),
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::Empty(msg) => write!(f, "empty workload: {msg}"),
            WorkloadError::UnknownModel(m) => write!(f, "workload references unknown model `{m}`"),
            WorkloadError::BadWeight(msg) => write!(f, "bad workload weight: {msg}"),
            WorkloadError::Core(e) => write!(f, "workload materialization failed: {e}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

impl From<CoreError> for WorkloadError {
    fn from(e: CoreError) -> Self {
        WorkloadError::Core(e)
    }
}

/// A seeded uniform-`(0,1)` sampler: top 24 bits of a ChaCha word. The
/// one construction every stochastic workload draw flows through —
/// arrival gaps, model-mix sampling, class assignment — so the streams
/// stay bit-for-bit reproducible from their labels.
#[derive(Debug, Clone)]
struct UnitSampler {
    rng: ChaCha8Rng,
}

impl UnitSampler {
    fn new(label: &str) -> Self {
        UnitSampler {
            rng: ChaCha8Rng::from_seed(seed_from_label(label)),
        }
    }

    #[inline]
    fn next(&mut self) -> f64 {
        ((self.rng.next_u32() >> 8) as f64 + 0.5) / (1u32 << 24) as f64
    }
}

/// Draws an index from cumulative weighted sampling: `weights` must be
/// validated positive.
fn weighted_index(weights: &[f64], total: f64, u: f64) -> u32 {
    let target = u * total;
    let mut acc = 0.0;
    for (i, w) in weights.iter().enumerate() {
        acc += w;
        if target < acc {
            return i as u32;
        }
    }
    (weights.len() - 1) as u32
}

/// Per-weight checks alone admit sums that overflow to infinity (every
/// weight finite, total not), which would zero every proportional
/// share downstream — so weight *sets* are validated by their sum.
fn validate_weight_sum(weights: impl Iterator<Item = f64>, at: &str) -> Result<(), WorkloadError> {
    let total: f64 = weights.sum();
    if !total.is_finite() {
        return Err(WorkloadError::BadWeight(format!(
            "{at}: weights sum to {total}"
        )));
    }
    Ok(())
}

fn validate_mix(mix: &ModelMix, models: &[String], at: &str) -> Result<(), WorkloadError> {
    match mix {
        ModelMix::LegacyRoundRobin => Ok(()),
        ModelMix::Weighted { weights } => {
            if weights.is_empty() {
                return Err(WorkloadError::BadWeight(format!(
                    "{at}: weighted mix needs at least one weight"
                )));
            }
            for w in weights {
                if !models.contains(&w.model) {
                    return Err(WorkloadError::UnknownModel(w.model.clone()));
                }
                if !w.weight.is_finite() || w.weight <= 0.0 {
                    return Err(WorkloadError::BadWeight(format!(
                        "{at}: model `{}` has weight {}",
                        w.model, w.weight
                    )));
                }
            }
            validate_weight_sum(weights.iter().map(|w| w.weight), at)
        }
        ModelMix::Trace { models: trace } => {
            if trace.is_empty() {
                return Err(WorkloadError::Empty(format!("{at}: empty model trace")));
            }
            for name in trace {
                if !models.iter().any(|m| m == name) {
                    return Err(WorkloadError::UnknownModel(name.clone()));
                }
            }
            Ok(())
        }
    }
}

impl WorkloadSpec {
    /// The classic single-source workload: the consumer's default origin
    /// emits `arrivals` under `seed`, models round-robin, no classes —
    /// byte-identical traffic to the pre-`WorkloadSpec` engines.
    pub fn single_source(arrivals: ArrivalProcess, seed: impl Into<String>) -> Self {
        let seed = seed.into();
        WorkloadSpec {
            sources: vec![SourceSpec {
                device: None,
                arrivals,
                label: seed.clone(),
                weight: None,
                mix: None,
            }],
            mix: ModelMix::LegacyRoundRobin,
            classes: Vec::new(),
            seed,
        }
    }

    /// Validates the spec against a deployed-model list.
    ///
    /// # Errors
    ///
    /// [`WorkloadError`] naming the offending source, mix, or class.
    pub fn validate(&self, models: &[String]) -> Result<(), WorkloadError> {
        if self.sources.is_empty() {
            return Err(WorkloadError::Empty("no traffic sources".into()));
        }
        if models.is_empty() {
            return Err(WorkloadError::Empty("no deployed models".into()));
        }
        validate_mix(&self.mix, models, "spec mix")?;
        for (i, s) in self.sources.iter().enumerate() {
            if let Some(w) = s.weight {
                if !w.is_finite() || w <= 0.0 {
                    return Err(WorkloadError::BadWeight(format!("source {i} weight {w}")));
                }
            }
            if let Some(mix) = &s.mix {
                validate_mix(mix, models, &format!("source {i} mix"))?;
            }
        }
        validate_weight_sum(
            self.sources.iter().map(|s| s.weight.unwrap_or(1.0)),
            "source weights",
        )?;
        for (i, c) in self.classes.iter().enumerate() {
            if !c.weight.is_finite() || c.weight <= 0.0 {
                return Err(WorkloadError::BadWeight(format!(
                    "class {i} weight {}",
                    c.weight
                )));
            }
            if !c.class.deadline_s.is_finite() || c.class.deadline_s <= 0.0 {
                return Err(WorkloadError::BadWeight(format!(
                    "class {i} (`{}`) deadline {}",
                    c.class.name, c.class.deadline_s
                )));
            }
        }
        validate_weight_sum(self.classes.iter().map(|c| c.weight), "class weights")?;
        Ok(())
    }

    /// Splits a bounded budget of `n` requests across the sources:
    /// round-robin when no source declares a weight (the legacy split),
    /// otherwise largest-remainder proportional shares (missing weights
    /// count as 1).
    fn source_counts(&self, n: usize) -> Vec<usize> {
        let k = self.sources.len();
        if self.sources.iter().all(|s| s.weight.is_none()) {
            return (0..k)
                .map(|rank| n / k + usize::from(rank < n % k))
                .collect();
        }
        let weights: Vec<f64> = self
            .sources
            .iter()
            .map(|s| s.weight.unwrap_or(1.0))
            .collect();
        let total: f64 = weights.iter().sum();
        let shares: Vec<f64> = weights.iter().map(|w| n as f64 * w / total).collect();
        let mut counts: Vec<usize> = shares.iter().map(|s| s.floor() as usize).collect();
        let assigned: usize = counts.iter().sum();
        // Distribute the remainder by largest fractional part, source
        // rank breaking ties — deterministic for equal fractions.
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by(|&a, &b| {
            let fa = shares[a] - shares[a].floor();
            let fb = shares[b] - shares[b].floor();
            fb.partial_cmp(&fa)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cmp(&b))
        });
        for &rank in order.iter().take(n - assigned) {
            counts[rank] += 1;
        }
        counts
    }

    /// Generates the first `n` requests of the stream, merged across
    /// sources by `(arrival time, source rank, per-source emission
    /// order)` and annotated with model and class choices. Deterministic:
    /// equal specs (including seeds) produce equal streams. A bounded
    /// collect of [`WorkloadSpec::stream`] — the lazy and batch paths
    /// are the same generator.
    ///
    /// # Errors
    ///
    /// [`WorkloadError`] if the spec does not validate against `models`.
    pub fn generate(
        &self,
        n: usize,
        models: &[String],
    ) -> Result<Vec<WorkloadRequest>, WorkloadError> {
        Ok(self.stream(n, models)?.collect())
    }

    /// The lazy form of [`WorkloadSpec::generate`]: the same merged
    /// request sequence, produced one request at a time in O(sources)
    /// memory instead of O(n).
    ///
    /// Per-source arrival iterators are time-sorted with emission order
    /// preserved, and each stochastic choice (a source's arrival gaps,
    /// its weighted model mix, the spec-level class assignment) draws
    /// from its *own* labeled sampler, so a k-way merge popping the
    /// minimum `(arrival ns, source rank)` candidate replays exactly
    /// the stable sort the batch generator performs — the request
    /// sequences are bit-identical (pinned by the golden fixtures and
    /// this crate's tests).
    ///
    /// # Errors
    ///
    /// [`WorkloadError`] if the spec does not validate against `models`.
    pub fn stream(&self, n: usize, models: &[String]) -> Result<WorkloadStream, WorkloadError> {
        self.validate(models)?;
        let n_models = models.len() as u32;
        let counts = self.source_counts(n);
        let mut sources = Vec::with_capacity(self.sources.len());
        for (source, &count) in self.sources.iter().zip(&counts) {
            let mix = source.mix.as_ref().unwrap_or(&self.mix);
            let assign = match (mix, source.mix.is_some()) {
                // Spec-level round-robin walks the merged stream: the
                // model is assigned at merge time.
                (ModelMix::LegacyRoundRobin, false) => ModelAssign::Merged,
                // A per-source round-robin override walks the source's
                // own emission index.
                (ModelMix::LegacyRoundRobin, true) => {
                    ModelAssign::SourceRoundRobin { i: 0, n_models }
                }
                (ModelMix::Weighted { weights }, _) => {
                    let idx: Vec<u32> = weights
                        .iter()
                        .map(|w| {
                            models
                                .iter()
                                .position(|m| *m == w.model)
                                .expect("validated") as u32
                        })
                        .collect();
                    let ws: Vec<f64> = weights.iter().map(|w| w.weight).collect();
                    let total: f64 = ws.iter().sum();
                    ModelAssign::Weighted {
                        idx,
                        weights: ws,
                        total,
                        unit: UnitSampler::new(&format!("{}/mix", source.label)),
                    }
                }
                (ModelMix::Trace { models: trace }, _) => {
                    let idx: Vec<u32> = trace
                        .iter()
                        .map(|name| {
                            models.iter().position(|m| m == name).expect("validated") as u32
                        })
                        .collect();
                    ModelAssign::Trace { idx, i: 0 }
                }
            };
            let mut ss = SourceStream {
                arrivals: source.arrivals.stream(&source.label),
                assign,
                remaining: count,
                head: None,
            };
            ss.refill();
            sources.push(ss);
        }
        let class_sampler = if self.classes.is_empty() {
            None
        } else {
            let weights: Vec<f64> = self.classes.iter().map(|c| c.weight).collect();
            let total: f64 = weights.iter().sum();
            Some(ClassSampler {
                weights,
                total,
                unit: UnitSampler::new(&format!("{}/class", self.seed)),
            })
        };
        Ok(WorkloadStream {
            sources,
            class_sampler,
            n_models,
            merged_index: 0,
            merged_rr: 0,
            remaining: counts.iter().sum(),
        })
    }

    /// Materializes a bounded workload against an instance: `n`
    /// [`Request`]s (ids in merged stream order, class attached, source
    /// resolved to a fleet device) plus their arrival times for
    /// `SimConfig::arrivals`.
    ///
    /// # Errors
    ///
    /// [`WorkloadError`] on an invalid spec, unknown source devices, or
    /// request construction failure.
    pub fn materialize(
        &self,
        instance: &Instance,
        n: usize,
    ) -> Result<(Vec<Request>, Vec<f64>), WorkloadError> {
        let models: Vec<String> = instance
            .deployments()
            .iter()
            .map(|d| d.model.name.clone())
            .collect();
        let stream = self.generate(n, &models)?;
        // Resolve each source's origin device once, up front — the
        // per-request loop then just clones interned ids.
        let source_ids: Vec<Option<s2m3_net::device::DeviceId>> = self
            .sources
            .iter()
            .map(|s| match &s.device {
                None => Ok(None),
                Some(device) => {
                    if instance.fleet().device(device).is_none() {
                        return Err(WorkloadError::Core(CoreError::UnknownDevice(
                            device.as_str().into(),
                        )));
                    }
                    Ok(Some(device.as_str().into()))
                }
            })
            .collect::<Result<_, _>>()?;
        let mut requests = Vec::with_capacity(stream.len());
        let mut arrivals = Vec::with_capacity(stream.len());
        for (i, wr) in stream.iter().enumerate() {
            let mut request = instance.request(i as u64, &models[wr.model as usize])?;
            if let Some(id) = &source_ids[wr.source as usize] {
                request.source = id.clone();
            }
            if let Some(ci) = wr.class {
                request.class = Some(self.classes[ci as usize].class.clone());
            }
            requests.push(request);
            arrivals.push(wr.at_s);
        }
        Ok((requests, arrivals))
    }
}

/// A mixed request stream over an instance's deployed models.
///
/// Requests round-robin over the deployments (a uniform task mix) with
/// ids `0..n` and the fleet requester as source — the
/// [`ModelMix::LegacyRoundRobin`] workload, materialized.
///
/// # Errors
///
/// [`CoreError`] if a deployment cannot build requests.
pub fn mixed_stream(instance: &Instance, n: usize) -> Result<Vec<Request>, CoreError> {
    let spec = WorkloadSpec::single_source(ArrivalProcess::Simultaneous, "mixed");
    let (requests, _) = spec.materialize(instance, n).map_err(|e| match e {
        WorkloadError::Core(e) => e,
        // The legacy spec validates unless the instance has no models.
        other => CoreError::UnknownModel(other.to_string()),
    })?;
    Ok(requests)
}

/// Latency distribution summary of a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Number of completed requests.
    pub n: usize,
    /// Mean latency, seconds.
    pub mean: f64,
    /// Median (p50).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
    /// Completed requests per second of virtual time.
    pub throughput: f64,
}

/// Computes latency statistics from a simulation report.
pub fn latency_stats(report: &SimReport) -> LatencyStats {
    let mut latencies: Vec<f64> = report.requests.values().map(|r| r.latency()).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = latencies.len();
    if n == 0 {
        return LatencyStats {
            n: 0,
            mean: 0.0,
            p50: 0.0,
            p95: 0.0,
            p99: 0.0,
            max: 0.0,
            throughput: 0.0,
        };
    }
    let pct = |p: f64| -> f64 {
        let idx = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
        latencies[idx]
    };
    LatencyStats {
        n,
        mean: latencies.iter().sum::<f64>() / n as f64,
        p50: pct(0.50),
        p95: pct(0.95),
        p99: pct(0.99),
        max: latencies[n - 1],
        throughput: n as f64 / report.makespan.max(1e-9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, SimConfig};
    use s2m3_core::plan::Plan;

    #[test]
    fn arrival_processes_are_deterministic_and_sorted() {
        for p in [
            ArrivalProcess::Simultaneous,
            ArrivalProcess::Uniform { interval_s: 0.5 },
            ArrivalProcess::Poisson { rate_per_s: 2.0 },
            ArrivalProcess::Mmpp {
                rates_per_s: vec![0.5, 8.0],
                mean_dwell_s: 3.0,
            },
            ArrivalProcess::Diurnal {
                base_rate_per_s: 0.5,
                peak_rate_per_s: 4.0,
                period_s: 60.0,
            },
            ArrivalProcess::Trace {
                inter_arrival_s: vec![0.1, 0.4, 2.0],
            },
        ] {
            let a = p.arrivals(32, "t");
            let b = p.arrivals(32, "t");
            assert_eq!(a, b);
            assert!(a.windows(2).all(|w| w[0] <= w[1]), "{p:?} unsorted");
            assert_eq!(a[0], 0.0);
        }
        assert_ne!(
            ArrivalProcess::Poisson { rate_per_s: 2.0 }.arrivals(8, "x"),
            ArrivalProcess::Poisson { rate_per_s: 2.0 }.arrivals(8, "y")
        );
    }

    #[test]
    fn poisson_rate_approximates_lambda() {
        let rate = 4.0;
        let a = ArrivalProcess::Poisson { rate_per_s: rate }.arrivals(400, "rate");
        let measured = 399.0 / a.last().unwrap();
        assert!(
            (measured - rate).abs() < 0.8,
            "measured rate {measured:.2} vs λ {rate}"
        );
    }

    #[test]
    fn mmpp_is_burstier_than_poisson_at_equal_mean_rate() {
        // Same mean rate, but MMPP concentrates arrivals in storm phases:
        // the variance of its inter-arrival gaps must exceed Poisson's.
        let n = 2000;
        let mmpp = ArrivalProcess::Mmpp {
            rates_per_s: vec![0.2, 7.8],
            mean_dwell_s: 10.0,
        };
        let poisson = ArrivalProcess::Poisson { rate_per_s: 4.0 };
        let gap_var = |a: &[f64]| {
            let gaps: Vec<f64> = a.windows(2).map(|w| w[1] - w[0]).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64
        };
        let vm = gap_var(&mmpp.arrivals(n, "burst"));
        let vp = gap_var(&poisson.arrivals(n, "burst"));
        assert!(vm > 2.0 * vp, "MMPP variance {vm:.4} vs Poisson {vp:.4}");
    }

    #[test]
    fn diurnal_peaks_and_troughs_modulate_density() {
        let p = ArrivalProcess::Diurnal {
            base_rate_per_s: 0.2,
            peak_rate_per_s: 8.0,
            period_s: 100.0,
        };
        let a = p.arrivals(1200, "day");
        // Count arrivals falling into peak-phase halves vs trough halves
        // of each cycle; peaks must dominate.
        let (mut peak, mut trough) = (0usize, 0usize);
        for t in &a {
            let phase = (t / 100.0).fract();
            if (0.25..0.75).contains(&phase) {
                peak += 1;
            } else {
                trough += 1;
            }
        }
        assert!(
            peak > 2 * trough,
            "peak half got {peak}, trough half got {trough}"
        );
    }

    #[test]
    fn trace_replay_cycles_and_clamps() {
        let p = ArrivalProcess::Trace {
            inter_arrival_s: vec![1.0, -5.0, 2.0],
        };
        let a = p.arrivals(7, "trace");
        // Gaps cycle 1, 0 (clamped), 2, ...; the first arrival (after a
        // 1 s gap) shifts back to t = 0.
        assert_eq!(a, vec![0.0, 0.0, 2.0, 3.0, 3.0, 5.0, 6.0]);
        assert_eq!(
            ArrivalProcess::Trace {
                inter_arrival_s: vec![]
            }
            .arrivals(3, "empty"),
            vec![0.0, 0.0, 0.0]
        );
    }

    #[test]
    fn mean_rates_reflect_process_parameters() {
        assert_eq!(ArrivalProcess::Simultaneous.mean_rate_per_s(), None);
        assert_eq!(
            ArrivalProcess::Uniform { interval_s: 0.5 }.mean_rate_per_s(),
            Some(2.0)
        );
        assert_eq!(
            ArrivalProcess::Mmpp {
                rates_per_s: vec![1.0, 3.0],
                mean_dwell_s: 5.0
            }
            .mean_rate_per_s(),
            Some(2.0)
        );
        assert_eq!(
            ArrivalProcess::Diurnal {
                base_rate_per_s: 1.0,
                peak_rate_per_s: 3.0,
                period_s: 10.0
            }
            .mean_rate_per_s(),
            Some(2.0)
        );
        let trace = ArrivalProcess::Trace {
            inter_arrival_s: vec![0.5, 0.5],
        };
        assert_eq!(trace.mean_rate_per_s(), Some(2.0));
    }

    #[test]
    fn mixed_stream_round_robins_tasks() {
        let i = Instance::on_fleet(
            s2m3_net::fleet::Fleet::edge_testbed(),
            &[("CLIP ViT-B/16", 16), ("CLIP-Classifier Food-101", 0)],
        )
        .unwrap();
        let stream = mixed_stream(&i, 6).unwrap();
        assert_eq!(stream.len(), 6);
        assert_eq!(stream[0].model, "CLIP ViT-B/16");
        assert_eq!(stream[1].model, "CLIP-Classifier Food-101");
        assert_eq!(stream[4].model, "CLIP ViT-B/16");
    }

    fn names(i: &Instance) -> Vec<String> {
        i.deployments()
            .iter()
            .map(|d| d.model.name.clone())
            .collect()
    }

    fn two_model_instance() -> Instance {
        Instance::on_fleet(
            s2m3_net::fleet::Fleet::edge_testbed(),
            &[("CLIP ViT-B/16", 16), ("CLIP-Classifier Food-101", 0)],
        )
        .unwrap()
    }

    #[test]
    fn legacy_spec_reproduces_the_round_robin_stream() {
        let i = two_model_instance();
        let spec = WorkloadSpec::single_source(ArrivalProcess::Poisson { rate_per_s: 1.0 }, "leg");
        let (requests, arrivals) = spec.materialize(&i, 9).unwrap();
        let expected_arrivals = ArrivalProcess::Poisson { rate_per_s: 1.0 }.arrivals(9, "leg");
        assert_eq!(arrivals, expected_arrivals, "bit-identical arrival times");
        let models = names(&i);
        for (k, r) in requests.iter().enumerate() {
            assert_eq!(r.id, k as u64);
            assert_eq!(r.model, models[k % models.len()], "rid % n_models");
            assert_eq!(r.source.as_str(), "jetson-a");
            assert_eq!(r.class, None);
        }
    }

    #[test]
    fn weighted_mix_samples_near_the_declared_shares() {
        let i = two_model_instance();
        let mut spec = WorkloadSpec::single_source(ArrivalProcess::Simultaneous, "wmix");
        spec.mix = ModelMix::Weighted {
            weights: vec![
                ModelWeight {
                    model: "CLIP ViT-B/16".to_string(),
                    weight: 3.0,
                },
                ModelWeight {
                    model: "CLIP-Classifier Food-101".to_string(),
                    weight: 1.0,
                },
            ],
        };
        let stream = spec.generate(4000, &names(&i)).unwrap();
        let clip = stream.iter().filter(|r| r.model == 0).count();
        let share = clip as f64 / 4000.0;
        assert!(
            (share - 0.75).abs() < 0.03,
            "3:1 weights drew a {share:.3} share"
        );
        // Determinism: same spec, same stream; different seed differs.
        assert_eq!(stream, spec.generate(4000, &names(&i)).unwrap());
        let mut other = spec.clone();
        other.sources[0].label = "other".to_string();
        assert_ne!(stream, other.generate(4000, &names(&i)).unwrap());
    }

    #[test]
    fn per_source_mixes_and_weights_shape_the_stream() {
        let i = two_model_instance();
        let clip_only = ModelMix::Weighted {
            weights: vec![ModelWeight {
                model: "CLIP ViT-B/16".to_string(),
                weight: 1.0,
            }],
        };
        let spec = WorkloadSpec {
            sources: vec![
                SourceSpec {
                    device: Some("laptop".to_string()),
                    arrivals: ArrivalProcess::Uniform { interval_s: 1.0 },
                    label: "a".to_string(),
                    weight: Some(3.0),
                    mix: Some(clip_only),
                },
                SourceSpec {
                    device: Some("desktop".to_string()),
                    arrivals: ArrivalProcess::Uniform { interval_s: 1.0 },
                    label: "b".to_string(),
                    weight: Some(1.0),
                    mix: Some(ModelMix::Trace {
                        models: vec!["CLIP-Classifier Food-101".to_string()],
                    }),
                },
            ],
            mix: ModelMix::LegacyRoundRobin,
            classes: Vec::new(),
            seed: "ps".to_string(),
        };
        let (requests, _) = spec.materialize(&i, 40).unwrap();
        // 3:1 budget split.
        let from_laptop = requests.iter().filter(|r| r.source.as_str() == "laptop");
        assert_eq!(from_laptop.clone().count(), 30);
        // Per-source mixes: every laptop request is CLIP, every desktop
        // request the classifier.
        assert!(from_laptop.clone().all(|r| r.model == "CLIP ViT-B/16"));
        assert!(requests
            .iter()
            .filter(|r| r.source.as_str() == "desktop")
            .all(|r| r.model == "CLIP-Classifier Food-101"));
    }

    #[test]
    fn classes_assign_deterministically_with_declared_shares() {
        let i = two_model_instance();
        let mut spec = WorkloadSpec::single_source(ArrivalProcess::Simultaneous, "cls");
        spec.classes = vec![
            ClassShare {
                class: DeadlineClass {
                    name: "interactive".to_string(),
                    deadline_s: 5.0,
                    priority: 10,
                },
                weight: 1.0,
            },
            ClassShare {
                class: DeadlineClass {
                    name: "batch".to_string(),
                    deadline_s: 120.0,
                    priority: 0,
                },
                weight: 3.0,
            },
        ];
        let (requests, _) = spec.materialize(&i, 2000).unwrap();
        let interactive = requests
            .iter()
            .filter(|r| r.class.as_ref().is_some_and(|c| c.name == "interactive"))
            .count();
        let share = interactive as f64 / 2000.0;
        assert!((share - 0.25).abs() < 0.04, "1:3 classes drew {share:.3}");
        assert!(requests.iter().all(|r| r.class.is_some()));
        let (again, _) = spec.materialize(&i, 2000).unwrap();
        assert_eq!(requests, again);
    }

    #[test]
    fn stream_yields_exactly_the_batch_sequence() {
        // A deliberately heterogeneous spec: three sources with distinct
        // processes and budgets, per-source mix overrides, weighted
        // classes — every code path the lazy generator must replay.
        let i = two_model_instance();
        let models = names(&i);
        let spec = WorkloadSpec {
            sources: vec![
                SourceSpec {
                    device: None,
                    arrivals: ArrivalProcess::Poisson { rate_per_s: 2.0 },
                    label: "sa".to_string(),
                    weight: Some(2.0),
                    mix: None,
                },
                SourceSpec {
                    device: Some("laptop".to_string()),
                    arrivals: ArrivalProcess::Mmpp {
                        rates_per_s: vec![0.5, 6.0],
                        mean_dwell_s: 4.0,
                    },
                    label: "sb".to_string(),
                    weight: Some(1.0),
                    mix: Some(ModelMix::Weighted {
                        weights: vec![
                            ModelWeight {
                                model: models[0].clone(),
                                weight: 1.0,
                            },
                            ModelWeight {
                                model: models[1].clone(),
                                weight: 2.0,
                            },
                        ],
                    }),
                },
                SourceSpec {
                    device: Some("desktop".to_string()),
                    arrivals: ArrivalProcess::Trace {
                        inter_arrival_s: vec![0.3, 0.0, 1.7],
                    },
                    label: "sc".to_string(),
                    weight: None,
                    mix: Some(ModelMix::Trace {
                        models: vec![models[1].clone(), models[0].clone()],
                    }),
                },
            ],
            mix: ModelMix::LegacyRoundRobin,
            classes: vec![
                ClassShare {
                    class: DeadlineClass {
                        name: "interactive".to_string(),
                        deadline_s: 5.0,
                        priority: 10,
                    },
                    weight: 1.0,
                },
                ClassShare {
                    class: DeadlineClass {
                        name: "batch".to_string(),
                        deadline_s: 120.0,
                        priority: 0,
                    },
                    weight: 3.0,
                },
            ],
            seed: "stream-eq".to_string(),
        };
        for n in [0, 1, 7, 250] {
            let batch = spec.generate(n, &models).unwrap();
            let mut stream = spec.stream(n, &models).unwrap();
            assert_eq!(stream.remaining(), n);
            let lazy: Vec<WorkloadRequest> = (&mut stream).collect();
            assert_eq!(batch, lazy, "n={n}");
            assert_eq!(stream.remaining(), 0);
            assert!(stream.next_request().is_none());
        }
        // Simultaneous arrivals everywhere: the all-ties merge still
        // reproduces the stable source-major order.
        let mut ties = spec.clone();
        for s in &mut ties.sources {
            s.arrivals = ArrivalProcess::Simultaneous;
        }
        let batch = ties.generate(30, &models).unwrap();
        let lazy: Vec<WorkloadRequest> = ties.stream(30, &models).unwrap().collect();
        assert_eq!(batch, lazy);
    }

    #[test]
    fn workload_validation_rejects_bad_specs() {
        let i = two_model_instance();
        let models = names(&i);
        let base = WorkloadSpec::single_source(ArrivalProcess::Simultaneous, "v");

        let empty = WorkloadSpec {
            sources: Vec::new(),
            ..base.clone()
        };
        assert!(matches!(
            empty.validate(&models),
            Err(WorkloadError::Empty(_))
        ));

        let mut unknown = base.clone();
        unknown.mix = ModelMix::Weighted {
            weights: vec![ModelWeight {
                model: "nope".to_string(),
                weight: 1.0,
            }],
        };
        assert!(matches!(
            unknown.validate(&models),
            Err(WorkloadError::UnknownModel(_))
        ));

        let mut negative = base.clone();
        negative.mix = ModelMix::Weighted {
            weights: vec![ModelWeight {
                model: models[0].clone(),
                weight: -1.0,
            }],
        };
        assert!(matches!(
            negative.validate(&models),
            Err(WorkloadError::BadWeight(_))
        ));

        let mut bad_source_weight = base.clone();
        bad_source_weight.sources[0].weight = Some(0.0);
        assert!(matches!(
            bad_source_weight.validate(&models),
            Err(WorkloadError::BadWeight(_))
        ));

        let mut bad_class = base.clone();
        bad_class.classes = vec![ClassShare {
            class: DeadlineClass {
                name: "x".to_string(),
                deadline_s: 0.0,
                priority: 0,
            },
            weight: 1.0,
        }];
        assert!(matches!(
            bad_class.validate(&models),
            Err(WorkloadError::BadWeight(_))
        ));

        let mut empty_trace = base.clone();
        empty_trace.mix = ModelMix::Trace { models: Vec::new() };
        assert!(matches!(
            empty_trace.validate(&models),
            Err(WorkloadError::Empty(_))
        ));

        // Each weight finite, but the *sum* overflows to infinity:
        // proportional shares would all floor to zero.
        let mut overflow = base;
        overflow.sources = (0..2)
            .map(|i| SourceSpec {
                device: None,
                arrivals: ArrivalProcess::Simultaneous,
                label: format!("o{i}"),
                weight: Some(f64::MAX),
                mix: None,
            })
            .collect();
        assert!(matches!(
            overflow.validate(&models),
            Err(WorkloadError::BadWeight(_))
        ));
    }

    #[test]
    fn stats_reflect_queueing_under_load() {
        let i = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
        let requests = mixed_stream(&i, 12).unwrap();
        let plan = Plan::greedy(&i, requests).unwrap();
        // Slow arrivals: no queuing, p99 ≈ p50.
        let slow = simulate(
            &i,
            &plan,
            &SimConfig {
                arrivals: Some(ArrivalProcess::Uniform { interval_s: 10.0 }.arrivals(12, "s")),
                ..SimConfig::default()
            },
        )
        .unwrap();
        let slow_stats = latency_stats(&slow);
        assert!(slow_stats.p99 < slow_stats.p50 * 1.3);
        // Saturating arrivals: the queue builds, p99 >> p50 of slow case.
        let fast = simulate(
            &i,
            &plan,
            &SimConfig {
                arrivals: Some(ArrivalProcess::Uniform { interval_s: 0.2 }.arrivals(12, "f")),
                ..SimConfig::default()
            },
        )
        .unwrap();
        let fast_stats = latency_stats(&fast);
        assert!(fast_stats.p99 > 2.0 * slow_stats.p99);
        assert_eq!(fast_stats.n, 12);
        assert!(fast_stats.throughput > 0.0);
    }

    #[test]
    fn empty_report_yields_zero_stats() {
        let s = latency_stats(&SimReport::default());
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }
}
