//! Request-arrival workloads and latency statistics.
//!
//! The paper evaluates single requests and a simultaneous four-task burst
//! (Table X). This module generalizes to sustained load: seeded arrival
//! processes (Poisson / uniform / burst, plus the bursty
//! [`ArrivalProcess::Mmpp`], time-varying [`ArrivalProcess::Diurnal`],
//! and [`ArrivalProcess::Trace`] replay), mixed multi-task request
//! streams, and percentile statistics — the instrument behind the
//! `load_sweep` experiment, which asks where the shared deployment's
//! queuing knee sits as the offered rate grows (Sec. VI-C's concern,
//! quantified).
//!
//! Two consumers drive the API shape: the offline simulator feeds
//! [`ArrivalProcess::arrivals`] into `SimConfig::arrivals` for one-shot
//! runs, and the `s2m3-serve` control plane treats the same vectors as
//! an unbounded request stream — identical seeds give identical traffic
//! in both, which is what makes serving reports reproducible.

use rand_chacha::rand_core::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use s2m3_core::error::CoreError;
use s2m3_core::problem::{Instance, Request};
use s2m3_tensor::seed::seed_from_label;

use crate::report::SimReport;

/// An arrival process.
///
/// The serving control plane in `s2m3-serve` consumes these as its
/// request source; the bursty and time-varying variants exist so churn
/// experiments can stress admission control the way real traffic does.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// All requests at t = 0 (the Table X burst).
    Simultaneous,
    /// Evenly spaced at the given interval, seconds.
    Uniform {
        /// Gap between consecutive arrivals.
        interval_s: f64,
    },
    /// Poisson arrivals at the given mean rate, requests/second.
    Poisson {
        /// Mean arrival rate λ.
        rate_per_s: f64,
    },
    /// A Markov-modulated Poisson process: the arrival rate jumps between
    /// `rates_per_s` states, dwelling an exponential time with mean
    /// `mean_dwell_s` in each before moving to the next (cyclically).
    /// The classic bursty-traffic model: calm and storm phases alternate.
    Mmpp {
        /// Per-state arrival rates, requests/second (≥1 state).
        rates_per_s: Vec<f64>,
        /// Mean dwell time in each state, seconds.
        mean_dwell_s: f64,
    },
    /// A diurnal (sinusoidal) rate profile: the instantaneous rate swings
    /// between `base_rate_per_s` and `peak_rate_per_s` over `period_s`,
    /// sampled by thinning a peak-rate Poisson stream.
    Diurnal {
        /// Trough arrival rate, requests/second.
        base_rate_per_s: f64,
        /// Peak arrival rate, requests/second.
        peak_rate_per_s: f64,
        /// Length of one base→peak→base cycle, seconds.
        period_s: f64,
    },
    /// Replays recorded inter-arrival gaps, cycling when the trace is
    /// shorter than the requested stream.
    Trace {
        /// Inter-arrival gaps, seconds (negative entries are clamped to 0).
        inter_arrival_s: Vec<f64>,
    },
}

impl ArrivalProcess {
    /// Generates `n` deterministic arrival times (sorted, starting at 0),
    /// seeded by `label`.
    pub fn arrivals(&self, n: usize, label: &str) -> Vec<f64> {
        let mut rng = ChaCha8Rng::from_seed(seed_from_label(&format!("arrivals/{label}")));
        // Uniform (0, 1) from the top 24 bits of a ChaCha word.
        let mut unit = move || ((rng.next_u32() >> 8) as f64 + 0.5) / (1u32 << 24) as f64;
        let out = match self {
            ArrivalProcess::Simultaneous => vec![0.0; n],
            ArrivalProcess::Uniform { interval_s } => {
                (0..n).map(|i| i as f64 * interval_s).collect()
            }
            ArrivalProcess::Poisson { rate_per_s } => {
                let mut t = 0.0;
                (0..n)
                    .map(|_| {
                        // Exponential inter-arrival via inverse CDF.
                        t += -unit().ln() / rate_per_s.max(1e-9);
                        t
                    })
                    .collect()
            }
            ArrivalProcess::Mmpp {
                rates_per_s,
                mean_dwell_s,
            } => {
                let mut t = 0.0;
                let mut state = 0usize;
                let mut state_left = -unit().ln() * mean_dwell_s.max(1e-9);
                let mut out = Vec::with_capacity(n);
                while out.len() < n {
                    let rate = rates_per_s
                        .get(state % rates_per_s.len().max(1))
                        .copied()
                        .unwrap_or(1.0)
                        .max(1e-9);
                    let gap = -unit().ln() / rate;
                    if gap <= state_left || rates_per_s.len() <= 1 {
                        t += gap;
                        state_left -= gap;
                        out.push(t);
                    } else {
                        // Dwell expired before the next arrival: advance to
                        // the state boundary and redraw under the new rate.
                        t += state_left;
                        state += 1;
                        state_left = -unit().ln() * mean_dwell_s.max(1e-9);
                    }
                }
                out
            }
            ArrivalProcess::Diurnal {
                base_rate_per_s,
                peak_rate_per_s,
                period_s,
            } => {
                let base = base_rate_per_s.max(0.0);
                let peak = peak_rate_per_s.max(base).max(1e-9);
                let period = period_s.max(1e-9);
                let mut t = 0.0;
                let mut out = Vec::with_capacity(n);
                // Thinning (Lewis–Shedler): candidates at the peak rate,
                // accepted with probability rate(t)/peak.
                while out.len() < n {
                    t += -unit().ln() / peak;
                    let phase = (t / period) * std::f64::consts::TAU;
                    let rate = base + (peak - base) * 0.5 * (1.0 - phase.cos());
                    if unit() * peak <= rate {
                        out.push(t);
                    }
                }
                out
            }
            ArrivalProcess::Trace { inter_arrival_s } => {
                let mut t = 0.0;
                (0..n)
                    .map(|i| {
                        if !inter_arrival_s.is_empty() {
                            t += inter_arrival_s[i % inter_arrival_s.len()].max(0.0);
                        }
                        t
                    })
                    .collect()
            }
        };
        shift_to_zero(out)
    }

    /// The long-run mean arrival rate this process targets, requests per
    /// second (`None` for [`ArrivalProcess::Simultaneous`], whose rate is
    /// unbounded). Useful for sizing serving scenarios against fleet
    /// capacity; note the online replan controller in `s2m3-serve` uses
    /// the *observed* rate of the running stream, not this target.
    pub fn mean_rate_per_s(&self) -> Option<f64> {
        match self {
            ArrivalProcess::Simultaneous => None,
            ArrivalProcess::Uniform { interval_s } => Some(1.0 / interval_s.max(1e-9)),
            ArrivalProcess::Poisson { rate_per_s } => Some(*rate_per_s),
            ArrivalProcess::Mmpp { rates_per_s, .. } => {
                if rates_per_s.is_empty() {
                    return Some(0.0);
                }
                Some(rates_per_s.iter().sum::<f64>() / rates_per_s.len() as f64)
            }
            ArrivalProcess::Diurnal {
                base_rate_per_s,
                peak_rate_per_s,
                ..
            } => {
                // Mirror `arrivals`' clamp: peak is never below base.
                let base = base_rate_per_s.max(0.0);
                Some(0.5 * (base + peak_rate_per_s.max(base)))
            }
            ArrivalProcess::Trace { inter_arrival_s } => {
                if inter_arrival_s.is_empty() {
                    return Some(0.0);
                }
                let mean_gap = inter_arrival_s.iter().map(|g| g.max(0.0)).sum::<f64>()
                    / inter_arrival_s.len() as f64;
                Some(1.0 / mean_gap.max(1e-9))
            }
        }
    }
}

/// Shifts a sorted arrival vector so the first arrival is at 0.
fn shift_to_zero(mut out: Vec<f64>) -> Vec<f64> {
    if let Some(&t0) = out.first() {
        if t0 != 0.0 {
            for v in &mut out {
                *v -= t0;
            }
        }
    }
    out
}

/// A mixed request stream over an instance's deployed models.
///
/// Requests round-robin over the deployments (a uniform task mix) with
/// ids `0..n` and the fleet requester as source.
///
/// # Errors
///
/// [`CoreError`] if a deployment cannot build requests.
pub fn mixed_stream(instance: &Instance, n: usize) -> Result<Vec<Request>, CoreError> {
    let models: Vec<_> = instance
        .deployments()
        .iter()
        .map(|d| d.model.name.clone())
        .collect();
    (0..n)
        .map(|i| instance.request(i as u64, &models[i % models.len()]))
        .collect()
}

/// Latency distribution summary of a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Number of completed requests.
    pub n: usize,
    /// Mean latency, seconds.
    pub mean: f64,
    /// Median (p50).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
    /// Completed requests per second of virtual time.
    pub throughput: f64,
}

/// Computes latency statistics from a simulation report.
pub fn latency_stats(report: &SimReport) -> LatencyStats {
    let mut latencies: Vec<f64> = report.requests.values().map(|r| r.latency()).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = latencies.len();
    if n == 0 {
        return LatencyStats {
            n: 0,
            mean: 0.0,
            p50: 0.0,
            p95: 0.0,
            p99: 0.0,
            max: 0.0,
            throughput: 0.0,
        };
    }
    let pct = |p: f64| -> f64 {
        let idx = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
        latencies[idx]
    };
    LatencyStats {
        n,
        mean: latencies.iter().sum::<f64>() / n as f64,
        p50: pct(0.50),
        p95: pct(0.95),
        p99: pct(0.99),
        max: latencies[n - 1],
        throughput: n as f64 / report.makespan.max(1e-9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, SimConfig};
    use s2m3_core::plan::Plan;

    #[test]
    fn arrival_processes_are_deterministic_and_sorted() {
        for p in [
            ArrivalProcess::Simultaneous,
            ArrivalProcess::Uniform { interval_s: 0.5 },
            ArrivalProcess::Poisson { rate_per_s: 2.0 },
            ArrivalProcess::Mmpp {
                rates_per_s: vec![0.5, 8.0],
                mean_dwell_s: 3.0,
            },
            ArrivalProcess::Diurnal {
                base_rate_per_s: 0.5,
                peak_rate_per_s: 4.0,
                period_s: 60.0,
            },
            ArrivalProcess::Trace {
                inter_arrival_s: vec![0.1, 0.4, 2.0],
            },
        ] {
            let a = p.arrivals(32, "t");
            let b = p.arrivals(32, "t");
            assert_eq!(a, b);
            assert!(a.windows(2).all(|w| w[0] <= w[1]), "{p:?} unsorted");
            assert_eq!(a[0], 0.0);
        }
        assert_ne!(
            ArrivalProcess::Poisson { rate_per_s: 2.0 }.arrivals(8, "x"),
            ArrivalProcess::Poisson { rate_per_s: 2.0 }.arrivals(8, "y")
        );
    }

    #[test]
    fn poisson_rate_approximates_lambda() {
        let rate = 4.0;
        let a = ArrivalProcess::Poisson { rate_per_s: rate }.arrivals(400, "rate");
        let measured = 399.0 / a.last().unwrap();
        assert!(
            (measured - rate).abs() < 0.8,
            "measured rate {measured:.2} vs λ {rate}"
        );
    }

    #[test]
    fn mmpp_is_burstier_than_poisson_at_equal_mean_rate() {
        // Same mean rate, but MMPP concentrates arrivals in storm phases:
        // the variance of its inter-arrival gaps must exceed Poisson's.
        let n = 2000;
        let mmpp = ArrivalProcess::Mmpp {
            rates_per_s: vec![0.2, 7.8],
            mean_dwell_s: 10.0,
        };
        let poisson = ArrivalProcess::Poisson { rate_per_s: 4.0 };
        let gap_var = |a: &[f64]| {
            let gaps: Vec<f64> = a.windows(2).map(|w| w[1] - w[0]).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64
        };
        let vm = gap_var(&mmpp.arrivals(n, "burst"));
        let vp = gap_var(&poisson.arrivals(n, "burst"));
        assert!(vm > 2.0 * vp, "MMPP variance {vm:.4} vs Poisson {vp:.4}");
    }

    #[test]
    fn diurnal_peaks_and_troughs_modulate_density() {
        let p = ArrivalProcess::Diurnal {
            base_rate_per_s: 0.2,
            peak_rate_per_s: 8.0,
            period_s: 100.0,
        };
        let a = p.arrivals(1200, "day");
        // Count arrivals falling into peak-phase halves vs trough halves
        // of each cycle; peaks must dominate.
        let (mut peak, mut trough) = (0usize, 0usize);
        for t in &a {
            let phase = (t / 100.0).fract();
            if (0.25..0.75).contains(&phase) {
                peak += 1;
            } else {
                trough += 1;
            }
        }
        assert!(
            peak > 2 * trough,
            "peak half got {peak}, trough half got {trough}"
        );
    }

    #[test]
    fn trace_replay_cycles_and_clamps() {
        let p = ArrivalProcess::Trace {
            inter_arrival_s: vec![1.0, -5.0, 2.0],
        };
        let a = p.arrivals(7, "trace");
        // Gaps cycle 1, 0 (clamped), 2, ...; the first arrival (after a
        // 1 s gap) shifts back to t = 0.
        assert_eq!(a, vec![0.0, 0.0, 2.0, 3.0, 3.0, 5.0, 6.0]);
        assert_eq!(
            ArrivalProcess::Trace {
                inter_arrival_s: vec![]
            }
            .arrivals(3, "empty"),
            vec![0.0, 0.0, 0.0]
        );
    }

    #[test]
    fn mean_rates_reflect_process_parameters() {
        assert_eq!(ArrivalProcess::Simultaneous.mean_rate_per_s(), None);
        assert_eq!(
            ArrivalProcess::Uniform { interval_s: 0.5 }.mean_rate_per_s(),
            Some(2.0)
        );
        assert_eq!(
            ArrivalProcess::Mmpp {
                rates_per_s: vec![1.0, 3.0],
                mean_dwell_s: 5.0
            }
            .mean_rate_per_s(),
            Some(2.0)
        );
        assert_eq!(
            ArrivalProcess::Diurnal {
                base_rate_per_s: 1.0,
                peak_rate_per_s: 3.0,
                period_s: 10.0
            }
            .mean_rate_per_s(),
            Some(2.0)
        );
        let trace = ArrivalProcess::Trace {
            inter_arrival_s: vec![0.5, 0.5],
        };
        assert_eq!(trace.mean_rate_per_s(), Some(2.0));
    }

    #[test]
    fn mixed_stream_round_robins_tasks() {
        let i = Instance::on_fleet(
            s2m3_net::fleet::Fleet::edge_testbed(),
            &[("CLIP ViT-B/16", 16), ("CLIP-Classifier Food-101", 0)],
        )
        .unwrap();
        let stream = mixed_stream(&i, 6).unwrap();
        assert_eq!(stream.len(), 6);
        assert_eq!(stream[0].model, "CLIP ViT-B/16");
        assert_eq!(stream[1].model, "CLIP-Classifier Food-101");
        assert_eq!(stream[4].model, "CLIP ViT-B/16");
    }

    #[test]
    fn stats_reflect_queueing_under_load() {
        let i = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
        let requests = mixed_stream(&i, 12).unwrap();
        let plan = Plan::greedy(&i, requests).unwrap();
        // Slow arrivals: no queuing, p99 ≈ p50.
        let slow = simulate(
            &i,
            &plan,
            &SimConfig {
                arrivals: Some(ArrivalProcess::Uniform { interval_s: 10.0 }.arrivals(12, "s")),
                ..SimConfig::default()
            },
        )
        .unwrap();
        let slow_stats = latency_stats(&slow);
        assert!(slow_stats.p99 < slow_stats.p50 * 1.3);
        // Saturating arrivals: the queue builds, p99 >> p50 of slow case.
        let fast = simulate(
            &i,
            &plan,
            &SimConfig {
                arrivals: Some(ArrivalProcess::Uniform { interval_s: 0.2 }.arrivals(12, "f")),
                ..SimConfig::default()
            },
        )
        .unwrap();
        let fast_stats = latency_stats(&fast);
        assert!(fast_stats.p99 > 2.0 * slow_stats.p99);
        assert_eq!(fast_stats.n, 12);
        assert!(fast_stats.throughput > 0.0);
    }

    #[test]
    fn empty_report_yields_zero_stats() {
        let s = latency_stats(&SimReport::default());
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }
}
