//! Request-arrival workloads and latency statistics.
//!
//! The paper evaluates single requests and a simultaneous four-task burst
//! (Table X). This module generalizes to sustained load: seeded arrival
//! processes (Poisson / uniform / burst), mixed multi-task request
//! streams, and percentile statistics — the instrument behind the
//! `load_sweep` experiment, which asks where the shared deployment's
//! queuing knee sits as the offered rate grows (Sec. VI-C's concern,
//! quantified).

use rand_chacha::rand_core::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use s2m3_core::error::CoreError;
use s2m3_core::problem::{Instance, Request};
use s2m3_tensor::seed::seed_from_label;

use crate::report::SimReport;

/// An arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// All requests at t = 0 (the Table X burst).
    Simultaneous,
    /// Evenly spaced at the given interval, seconds.
    Uniform {
        /// Gap between consecutive arrivals.
        interval_s: f64,
    },
    /// Poisson arrivals at the given mean rate, requests/second.
    Poisson {
        /// Mean arrival rate λ.
        rate_per_s: f64,
    },
}

impl ArrivalProcess {
    /// Generates `n` deterministic arrival times (sorted, starting at 0),
    /// seeded by `label`.
    pub fn arrivals(&self, n: usize, label: &str) -> Vec<f64> {
        match self {
            ArrivalProcess::Simultaneous => vec![0.0; n],
            ArrivalProcess::Uniform { interval_s } => {
                (0..n).map(|i| i as f64 * interval_s).collect()
            }
            ArrivalProcess::Poisson { rate_per_s } => {
                let mut rng =
                    ChaCha8Rng::from_seed(seed_from_label(&format!("arrivals/{label}")));
                let mut t = 0.0;
                let mut out = Vec::with_capacity(n);
                for _ in 0..n {
                    // Exponential inter-arrival via inverse CDF.
                    let u = ((rng.next_u32() >> 8) as f64 + 0.5) / (1u32 << 24) as f64;
                    t += -u.ln() / rate_per_s.max(1e-9);
                    out.push(t);
                }
                // Shift so the first arrival is at 0.
                let t0 = out[0];
                for v in &mut out {
                    *v -= t0;
                }
                out
            }
        }
    }
}

/// A mixed request stream over an instance's deployed models.
///
/// Requests round-robin over the deployments (a uniform task mix) with
/// ids `0..n` and the fleet requester as source.
///
/// # Errors
///
/// [`CoreError`] if a deployment cannot build requests.
pub fn mixed_stream(instance: &Instance, n: usize) -> Result<Vec<Request>, CoreError> {
    let models: Vec<_> = instance
        .deployments()
        .iter()
        .map(|d| d.model.name.clone())
        .collect();
    (0..n)
        .map(|i| instance.request(i as u64, &models[i % models.len()]))
        .collect()
}

/// Latency distribution summary of a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Number of completed requests.
    pub n: usize,
    /// Mean latency, seconds.
    pub mean: f64,
    /// Median (p50).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
    /// Completed requests per second of virtual time.
    pub throughput: f64,
}

/// Computes latency statistics from a simulation report.
pub fn latency_stats(report: &SimReport) -> LatencyStats {
    let mut latencies: Vec<f64> = report.requests.values().map(|r| r.latency()).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = latencies.len();
    if n == 0 {
        return LatencyStats {
            n: 0,
            mean: 0.0,
            p50: 0.0,
            p95: 0.0,
            p99: 0.0,
            max: 0.0,
            throughput: 0.0,
        };
    }
    let pct = |p: f64| -> f64 {
        let idx = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
        latencies[idx]
    };
    LatencyStats {
        n,
        mean: latencies.iter().sum::<f64>() / n as f64,
        p50: pct(0.50),
        p95: pct(0.95),
        p99: pct(0.99),
        max: latencies[n - 1],
        throughput: n as f64 / report.makespan.max(1e-9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, SimConfig};
    use s2m3_core::plan::Plan;

    #[test]
    fn arrival_processes_are_deterministic_and_sorted() {
        for p in [
            ArrivalProcess::Simultaneous,
            ArrivalProcess::Uniform { interval_s: 0.5 },
            ArrivalProcess::Poisson { rate_per_s: 2.0 },
        ] {
            let a = p.arrivals(32, "t");
            let b = p.arrivals(32, "t");
            assert_eq!(a, b);
            assert!(a.windows(2).all(|w| w[0] <= w[1]), "{p:?} unsorted");
            assert_eq!(a[0], 0.0);
        }
        assert_ne!(
            ArrivalProcess::Poisson { rate_per_s: 2.0 }.arrivals(8, "x"),
            ArrivalProcess::Poisson { rate_per_s: 2.0 }.arrivals(8, "y")
        );
    }

    #[test]
    fn poisson_rate_approximates_lambda() {
        let rate = 4.0;
        let a = ArrivalProcess::Poisson { rate_per_s: rate }.arrivals(400, "rate");
        let measured = 399.0 / a.last().unwrap();
        assert!(
            (measured - rate).abs() < 0.8,
            "measured rate {measured:.2} vs λ {rate}"
        );
    }

    #[test]
    fn mixed_stream_round_robins_tasks() {
        let i = Instance::on_fleet(
            s2m3_net::fleet::Fleet::edge_testbed(),
            &[("CLIP ViT-B/16", 16), ("CLIP-Classifier Food-101", 0)],
        )
        .unwrap();
        let stream = mixed_stream(&i, 6).unwrap();
        assert_eq!(stream.len(), 6);
        assert_eq!(stream[0].model, "CLIP ViT-B/16");
        assert_eq!(stream[1].model, "CLIP-Classifier Food-101");
        assert_eq!(stream[4].model, "CLIP ViT-B/16");
    }

    #[test]
    fn stats_reflect_queueing_under_load() {
        let i = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
        let requests = mixed_stream(&i, 12).unwrap();
        let plan = Plan::greedy(&i, requests).unwrap();
        // Slow arrivals: no queuing, p99 ≈ p50.
        let slow = simulate(
            &i,
            &plan,
            &SimConfig {
                arrivals: Some(ArrivalProcess::Uniform { interval_s: 10.0 }.arrivals(12, "s")),
                ..SimConfig::default()
            },
        )
        .unwrap();
        let slow_stats = latency_stats(&slow);
        assert!(slow_stats.p99 < slow_stats.p50 * 1.3);
        // Saturating arrivals: the queue builds, p99 >> p50 of slow case.
        let fast = simulate(
            &i,
            &plan,
            &SimConfig {
                arrivals: Some(ArrivalProcess::Uniform { interval_s: 0.2 }.arrivals(12, "f")),
                ..SimConfig::default()
            },
        )
        .unwrap();
        let fast_stats = latency_stats(&fast);
        assert!(fast_stats.p99 > 2.0 * slow_stats.p99);
        assert_eq!(fast_stats.n, 12);
        assert!(fast_stats.throughput > 0.0);
    }

    #[test]
    fn empty_report_yields_zero_stats() {
        let s = latency_stats(&SimReport::default());
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }
}
