//! Module-level batch inference (Sec. VI-C "Multiple requests" and
//! footnote 4).
//!
//! The paper's answer to queuing on shared modules is batching: aggregate
//! requests that target the same module and run them in one pass. Its
//! footnote 4 measures LLaVA-Next-7B on an L40S at batch sizes 1/10/20 →
//! 1.28 / 4.90 / 9.16 s, i.e. near-linear with a fixed setup — which is
//! precisely the `exec_overhead + batch · marginal` form of the device
//! model.

use s2m3_models::module::ModuleSpec;
use s2m3_net::device::{DeviceSpec, KindEfficiency};

/// Latency of one batched execution of `module` on `device` with
/// `batch` items, each performing `units_per_item` work units.
pub fn batch_latency(
    device: &DeviceSpec,
    module: &ModuleSpec,
    batch: usize,
    units_per_item: f64,
) -> f64 {
    device.compute_time(module, batch as f64 * units_per_item)
}

/// Throughput (items/s) of batched execution.
pub fn batch_throughput(
    device: &DeviceSpec,
    module: &ModuleSpec,
    batch: usize,
    units_per_item: f64,
) -> f64 {
    if batch == 0 {
        return 0.0;
    }
    batch as f64 / batch_latency(device, module, batch, units_per_item)
}

/// The L40S GPU of footnote 4, calibrated so LLaVA-Next-7B inference at
/// batch sizes 1/10/20 lands at ≈1.28/4.90/9.16 s with 128-token
/// generations.
pub fn l40s() -> DeviceSpec {
    DeviceSpec {
        id: "l40s".into(),
        description: "NVIDIA L40S (footnote-4 batching testbed)".into(),
        speed_gflops: 4460.0,
        exec_overhead_s: 0.88,
        unit_overhead_s: 0.0,
        memory_bytes: 48_000_000_000,
        parallelism: 2,
        load_fixed_s: 5.0,
        load_rate_mbps: 1200.0,
        has_gpu: true,
        efficiency: KindEfficiency::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2m3_models::catalog::Catalog;

    #[test]
    fn footnote_four_batch_scaling() {
        let c = Catalog::standard();
        let vicuna = c.get_by_name("llm/Vicuna-7B").unwrap();
        let gpu = l40s();
        let t1 = batch_latency(&gpu, vicuna, 1, 128.0);
        let t10 = batch_latency(&gpu, vicuna, 10, 128.0);
        let t20 = batch_latency(&gpu, vicuna, 20, 128.0);
        assert!((1.0..1.6).contains(&t1), "b=1: {t1:.2}");
        assert!((4.0..5.8).contains(&t10), "b=10: {t10:.2}");
        assert!((7.5..10.5).contains(&t20), "b=20: {t20:.2}");
        // Batched is slightly slower per batch but much better per item.
        assert!(
            batch_throughput(&gpu, vicuna, 20, 128.0)
                > 2.0 * batch_throughput(&gpu, vicuna, 1, 128.0)
        );
    }

    #[test]
    fn zero_batch_throughput_is_zero() {
        let c = Catalog::standard();
        let vicuna = c.get_by_name("llm/Vicuna-7B").unwrap();
        assert_eq!(batch_throughput(&l40s(), vicuna, 0, 128.0), 0.0);
    }

    #[test]
    fn batching_amortizes_edge_overheads_too() {
        let c = Catalog::standard();
        let vision = c.get_by_name("vision/ViT-B-16").unwrap();
        let laptop = DeviceSpec::laptop();
        let per_item_b1 = batch_latency(&laptop, vision, 1, 1.0);
        let per_item_b8 = batch_latency(&laptop, vision, 8, 1.0) / 8.0;
        assert!(per_item_b8 < per_item_b1);
    }
}
