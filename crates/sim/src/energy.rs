//! Energy accounting over simulated timelines (the paper's future-work
//! metric, Sec. VII: "the power consumption is still one of the key
//! factors for the battery life of edge devices").
//!
//! Per-device power is modeled as `idle + (active − idle)` during busy
//! spans; transfers charge the radio at a fixed power on both endpoints.
//! The profile numbers are typical published figures for the Table III
//! hardware class (Jetson Nano 10 W mode, M-series laptop package power,
//! desktop CPU under AVX load, P40 server board + host).
//!
//! These profiles also price the serve-time budget cap: with the
//! `Energy` metric, `s2m3_serve::budget` charges each dispatch
//! `(active_w − idle_w)` joules per busy second through a
//! `s2m3_core::CostModel` built from [`default_profiles`], enforcing a
//! per-window joule budget online.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use s2m3_net::device::DeviceId;

use crate::report::{Phase, SimReport};

/// Power profile of one device, watts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerProfile {
    /// Idle draw.
    pub idle_w: f64,
    /// Draw while executing a module.
    pub active_w: f64,
    /// Extra draw while transmitting/receiving.
    pub radio_w: f64,
}

/// Typical profiles for the Table III device classes.
pub fn default_profiles() -> BTreeMap<DeviceId, PowerProfile> {
    let mut m = BTreeMap::new();
    m.insert(
        "server".into(),
        PowerProfile {
            idle_w: 90.0,
            active_w: 320.0,
            radio_w: 5.0,
        },
    );
    m.insert(
        "desktop".into(),
        PowerProfile {
            idle_w: 35.0,
            active_w: 150.0,
            radio_w: 3.0,
        },
    );
    m.insert(
        "laptop".into(),
        PowerProfile {
            idle_w: 8.0,
            active_w: 40.0,
            radio_w: 2.0,
        },
    );
    m.insert(
        "jetson-a".into(),
        PowerProfile {
            idle_w: 2.0,
            active_w: 10.0,
            radio_w: 1.5,
        },
    );
    m.insert(
        "jetson-b".into(),
        PowerProfile {
            idle_w: 2.0,
            active_w: 10.0,
            radio_w: 1.5,
        },
    );
    m
}

/// Energy breakdown of one simulation, joules.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Active (compute + load) energy per device.
    pub active_j: BTreeMap<DeviceId, f64>,
    /// Radio energy per device.
    pub radio_j: BTreeMap<DeviceId, f64>,
    /// Idle energy per device over the makespan.
    pub idle_j: BTreeMap<DeviceId, f64>,
}

impl EnergyReport {
    /// Total energy across devices and categories.
    pub fn total_j(&self) -> f64 {
        self.active_j.values().sum::<f64>()
            + self.radio_j.values().sum::<f64>()
            + self.idle_j.values().sum::<f64>()
    }

    /// Total *marginal* energy (excluding idle draw — what the inference
    /// itself cost).
    pub fn marginal_j(&self) -> f64 {
        self.active_j.values().sum::<f64>() + self.radio_j.values().sum::<f64>()
    }

    /// Energy consumed on a specific device (all categories).
    pub fn device_j(&self, d: &DeviceId) -> f64 {
        self.active_j.get(d).copied().unwrap_or(0.0)
            + self.radio_j.get(d).copied().unwrap_or(0.0)
            + self.idle_j.get(d).copied().unwrap_or(0.0)
    }
}

/// Computes the energy of a simulated timeline under `profiles`.
/// Devices missing from `profiles` contribute nothing.
pub fn energy(report: &SimReport, profiles: &BTreeMap<DeviceId, PowerProfile>) -> EnergyReport {
    let mut out = EnergyReport::default();
    for span in &report.spans {
        let Some(p) = profiles.get(&span.device) else {
            continue;
        };
        let dur = (span.end - span.start).max(0.0);
        match span.phase {
            Phase::Encode(_) | Phase::Head(_) | Phase::ModelLoading(_) => {
                *out.active_j.entry(span.device.clone()).or_default() +=
                    (p.active_w - p.idle_w) * dur;
            }
            Phase::InputTx(_) | Phase::OutputTx(_) => {
                *out.radio_j.entry(span.device.clone()).or_default() += p.radio_w * dur;
            }
        }
    }
    for (d, p) in profiles {
        *out.idle_j.entry(d.clone()).or_default() += p.idle_w * report.makespan;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, SimConfig};
    use s2m3_core::plan::Plan;
    use s2m3_core::problem::Instance;

    fn run(name: &str, candidates: usize) -> (SimReport, EnergyReport) {
        let i = Instance::single_model(name, candidates).unwrap();
        let q = i.request(0, name).unwrap();
        let plan = Plan::greedy(&i, vec![q]).unwrap();
        let r = simulate(&i, &plan, &SimConfig::default()).unwrap();
        let e = energy(&r, &default_profiles());
        (r, e)
    }

    #[test]
    fn energy_is_positive_and_dominated_by_compute() {
        let (_, e) = run("CLIP ViT-B/16", 101);
        assert!(e.total_j() > 0.0);
        let active: f64 = e.active_j.values().sum();
        let radio: f64 = e.radio_j.values().sum();
        assert!(
            active > 10.0 * radio,
            "active {active:.1} J vs radio {radio:.1} J"
        );
    }

    #[test]
    fn edge_marginal_energy_below_cloud_active_power_budget() {
        // A ~2.5 s inference on laptop+desktop draws far less marginal
        // energy than 2.1 s on a 320 W server — the battery-life argument
        // of the paper's future work.
        let (_, edge) = run("CLIP ViT-B/16", 101);
        let server_profile = default_profiles()[&"server".into()];
        let cloud_joules = (server_profile.active_w - server_profile.idle_w) * 2.1;
        assert!(
            edge.marginal_j() < cloud_joules,
            "edge {:.1} J vs cloud {cloud_joules:.1} J",
            edge.marginal_j()
        );
    }

    #[test]
    fn unknown_devices_are_ignored() {
        let (r, _) = run("CLIP ViT-B/16", 10);
        let e = energy(&r, &BTreeMap::new());
        assert_eq!(e.total_j(), 0.0);
    }

    #[test]
    fn per_device_accounting_sums_to_total() {
        let (r, e) = run("AlignBind-B", 16);
        let _ = r;
        let by_device: f64 = default_profiles().keys().map(|d| e.device_j(d)).sum();
        assert!((by_device - e.total_j()).abs() < 1e-9);
    }
}
