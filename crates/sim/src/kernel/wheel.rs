//! A hierarchical timing wheel over packed `(time_ns << 64) | seq`
//! event keys — the kernel's scheduler for unbounded online runs.
//!
//! ## Why a wheel
//!
//! The 4-ary [`KeyHeap`] pays `O(log n)` compares per operation and,
//! more importantly on the serve hot path, a sift through cold heap
//! levels per pop. An online run's events are overwhelmingly
//! *near-future* (dispatch completions a few ms out) with a thin tail
//! of far-future work (SLO windows, fleet churn, lazy arrivals), which
//! is exactly the distribution timing wheels exploit: O(1) bucket
//! insertion for everything beyond the imminent horizon, and ordering
//! work deferred until a bucket's time actually comes.
//!
//! ## Structure
//!
//! - a **near heap** (the same 4-ary [`KeyHeap`]) holding every event
//!   with `time < frontier` — the imminent window, fully ordered;
//! - [`LEVELS`] wheel levels of [`SLOTS`] power-of-two-ns buckets.
//!   Level 0 buckets span 2^21 ns ≈ 2.1 ms (window ≈ 134 ms); each
//!   higher level is 64× coarser, topping out at a ≈ 9.8 h horizon.
//!   A `u64` occupancy bitmap per level finds the earliest non-empty
//!   bucket with one rotate + trailing-zeros;
//! - a **far list**: an unsorted overflow `Vec` (with a maintained
//!   minimum) for events beyond the top level's window.
//!
//! ## Ordering contract
//!
//! [`TimingWheel::pop`] yields keys in exactly ascending `u128` order —
//! byte-identical to draining a [`KeyHeap`] — which the kernel's golden
//! fixtures and the differential proptest below pin. The invariants
//! that carry it:
//!
//! - every stored event in a level or the far list has
//!   `time >= frontier`; every near-heap event has `time < frontier`,
//!   so the near root is always the global minimum;
//! - `frontier` only advances, and only up to the *effective start*
//!   (`max(bucket_start, frontier)`) of the earliest non-empty source,
//!   so no advance skips a stored event;
//! - on an effective-start tie the **coarsest** source wins (far list,
//!   then high levels): its contents re-bin into finer buckets before
//!   the finest bucket flushes, so a level-0 flush — the only step that
//!   moves `frontier` past its bucket — never strands an equal-time
//!   event upstream.
//!
//! Resumability needs no extra machinery: the wheel is plain state, so
//! pausing between pops and resuming later is indistinguishable from an
//! uninterrupted drain.

use super::KeyHeap;

/// Wheel levels above the near heap.
const LEVELS: usize = 4;
/// log2 of the per-level bucket count.
const SLOT_BITS: u32 = 6;
/// Buckets per level; also each level's coarsening factor.
const SLOTS: usize = 1 << SLOT_BITS;
/// log2 of the level-0 bucket span: 2^21 ns ≈ 2.1 ms.
const SHIFT0: u32 = 21;
/// Level-0 bucket span in nanoseconds.
const SPAN0: u64 = 1 << SHIFT0;
/// Far-list marker for the advance step's source selection.
const SRC_FAR: usize = LEVELS;

/// Bucket-index shift for `level`.
#[inline]
fn shift(level: usize) -> u32 {
    SHIFT0 + SLOT_BITS * level as u32
}

#[derive(Debug, Clone)]
struct Level<T> {
    /// Bit `b` set iff `buckets[b]` is non-empty.
    occupied: u64,
    /// `SLOTS` buckets addressed by absolute bucket index mod `SLOTS`;
    /// capacity persists across flushes.
    buckets: Vec<Vec<(u128, T)>>,
}

/// A min-priority queue over packed `(time_ns << 64) | seq` keys with
/// the same pop order as [`KeyHeap`] and O(1) insertion for events
/// beyond the imminent window. See the module docs for the layout.
#[derive(Debug, Clone)]
pub struct TimingWheel<T> {
    /// Fully-ordered events with `time < frontier`.
    near: KeyHeap<T>,
    levels: Vec<Level<T>>,
    /// Overflow beyond the top level's window, unsorted.
    far: Vec<(u128, T)>,
    /// Minimum key in `far` (`u128::MAX` when empty).
    far_min: u128,
    /// Time boundary between the near heap and the wheel, ns. Monotone.
    frontier: u64,
    len: usize,
}

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        Self::with_capacity(0)
    }
}

impl<T> TimingWheel<T> {
    /// An empty wheel whose near heap reserves `cap` slots.
    pub fn with_capacity(cap: usize) -> Self {
        TimingWheel {
            near: KeyHeap::with_capacity(cap),
            levels: (0..LEVELS)
                .map(|_| Level {
                    occupied: 0,
                    buckets: (0..SLOTS).map(|_| Vec::new()).collect(),
                })
                .collect(),
            far: Vec::new(),
            far_min: u128::MAX,
            frontier: 0,
            len: 0,
        }
    }

    /// Events stored across the near heap, all levels, and the far list.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the wheel holds no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The minimum stored key, without popping. Always the near root:
    /// pops eagerly refill the near heap while events remain.
    #[inline]
    pub fn peek_key(&self) -> Option<u128> {
        self.near.peek_key()
    }

    /// Inserts `key` → `item`.
    #[inline]
    pub fn push(&mut self, key: u128, item: T) {
        if self.len == 0 {
            // Empty wheel: advance the frontier past this event's
            // level-0 bucket so it lands in the near heap. Runs that
            // drain between pushes (bounded fan-ins, quiet serve
            // stretches) thus never touch the levels at all.
            let next = ((key >> 64) as u64 & !(SPAN0 - 1)).saturating_add(SPAN0);
            self.frontier = self.frontier.max(next);
        }
        self.len += 1;
        self.route(key, item);
        // Keep the peek invariant (`len > 0` ⇒ near non-empty) even on
        // the saturation edge: a `t = u64::MAX` event cannot get below
        // the (also saturated) frontier, so route files it in level 0
        // and this refill flushes it straight through to the near heap.
        while self.near.len() == 0 {
            self.advance();
        }
    }

    /// Removes and returns the minimum-key event.
    pub fn pop(&mut self) -> Option<(u128, T)> {
        let out = self.near.pop()?;
        self.len -= 1;
        // Eager refill: keep the near heap non-empty whenever events
        // remain, so `peek_key` needs no interior mutability.
        while self.len > 0 && self.near.len() == 0 {
            self.advance();
        }
        Some(out)
    }

    /// Files one event in the structure matching its time under the
    /// current frontier: near heap below it, else the finest level
    /// whose window reaches it, else the far list.
    fn route(&mut self, key: u128, item: T) {
        let t = (key >> 64) as u64;
        if t < self.frontier {
            self.near.push(key, item);
            return;
        }
        for li in 0..LEVELS {
            let sh = shift(li);
            if (t >> sh) - (self.frontier >> sh) < SLOTS as u64 {
                let slot = ((t >> sh) & (SLOTS as u64 - 1)) as usize;
                let level = &mut self.levels[li];
                level.buckets[slot].push((key, item));
                level.occupied |= 1 << slot;
                return;
            }
        }
        self.far_min = self.far_min.min(key);
        self.far.push((key, item));
    }

    /// Advances the frontier to the earliest non-empty source and
    /// cascades it one step: a level-0 bucket flushes into the near
    /// heap; a coarser bucket (or the far list) re-bins under the new
    /// frontier. Each step strictly lowers some event's level, so the
    /// pop loop's refill terminates.
    fn advance(&mut self) {
        debug_assert!(self.len > 0 && self.near.len() == 0);
        // Minimum effective start across sources; scanned coarsest
        // first with strict `<` replacement so ties re-bin before any
        // level-0 flush can move the frontier past them. The runner-up
        // start bounds how far the frontier may skip ahead.
        let mut best = u64::MAX;
        let mut second = u64::MAX;
        let mut src = usize::MAX;
        if !self.far.is_empty() {
            let tf = (self.far_min >> 64) as u64;
            best = (tf & !(SPAN0 - 1)).max(self.frontier);
            src = SRC_FAR;
        }
        for li in (0..LEVELS).rev() {
            let occ = self.levels[li].occupied;
            if occ == 0 {
                continue;
            }
            let sh = shift(li);
            let fslot = ((self.frontier >> sh) & (SLOTS as u64 - 1)) as u32;
            let off = occ.rotate_right(fslot).trailing_zeros() as u64;
            let s = (((self.frontier >> sh) + off) << sh).max(self.frontier);
            // `src` check, not `s < u64::MAX` sentinel alone: with the
            // frontier saturated at `u64::MAX` a real effective start
            // *equals* the sentinel and must still be selectable.
            if src == usize::MAX || s < best {
                second = best;
                best = s;
                src = li;
            } else if s < second {
                second = s;
            }
        }
        debug_assert!(src != usize::MAX, "len > 0 but no source found");
        // Skip-ahead frontier: as far as the chosen bucket's end, but
        // never past another source's effective start. When the chosen
        // source stands alone — the sparse-traffic common case — its
        // whole bucket flushes straight into the near heap in this one
        // step instead of cascading level by level; when sources are
        // dense the runner-up bound reproduces the classic per-level
        // re-bin cascade.
        let end = if src == SRC_FAR {
            ((self.far_min >> 64) as u64 & !(SPAN0 - 1)).saturating_add(SPAN0)
        } else {
            let sh = shift(src);
            ((best >> sh) << sh).saturating_add(1 << sh)
        };
        self.frontier = end.min(second).max(best);
        if src == SRC_FAR {
            // Re-file the far list: its minimum now lands in the near
            // heap or level 0, so this strictly shrinks the overflow.
            let items = std::mem::take(&mut self.far);
            self.far_min = u128::MAX;
            for (k, it) in items {
                self.route(k, it);
            }
            return;
        }
        let sh = shift(src);
        let slot = ((best >> sh) & (SLOTS as u64 - 1)) as usize;
        self.levels[src].occupied &= !(1u64 << slot);
        let mut items = std::mem::take(&mut self.levels[src].buckets[slot]);
        if src == 0 {
            // A chosen level-0 bucket flushes wholesale into the near
            // heap: every runner-up start is level-0-aligned, so the
            // frontier always reaches this bucket's end — except when
            // it saturates at `u64::MAX`, where the final bucket is
            // provably the only source left and re-routing a
            // `t == u64::MAX` event would re-bin it into this same
            // (now reclaimed) bucket and lose it.
            for (k, it) in items.drain(..) {
                self.near.push(k, it);
            }
        } else {
            // Re-file under the advanced frontier: events below the new
            // frontier go straight to the near heap, the rest descend at
            // least one level (a coarse bucket's span equals the next
            // finer level's full window, so nothing can re-bin in place).
            for (k, it) in items.drain(..) {
                self.route(k, it);
            }
        }
        // Hand the drained Vec back so bucket capacity is reused.
        self.levels[src].buckets[slot] = items;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(t: u64, seq: u64) -> u128 {
        ((t as u128) << 64) | seq as u128
    }

    fn drain(w: &mut TimingWheel<u64>) -> Vec<u128> {
        let mut out = Vec::new();
        while let Some((k, v)) = w.pop() {
            assert_eq!(k as u64, v, "payload rides with its key");
            out.push(k);
        }
        out
    }

    #[test]
    fn pops_in_key_order_across_all_horizons() {
        // Times spanning the near window, every wheel level, and the
        // far overflow, pushed out of order with same-tick bursts.
        let times: &[u64] = &[
            0,
            1,
            1,
            SPAN0 - 1,
            SPAN0,
            SPAN0 * 63,
            SPAN0 * 64,                // level 1
            SPAN0 * 64 * 64,           // level 2
            SPAN0 * 64 * 64 * 64,      // level 3
            SPAN0 * 64 * 64 * 64 * 64, // far
            u64::MAX / 2,
            u64::MAX, // far, saturation edge
            12_345_678,
            987_654_321,
        ];
        let mut w: TimingWheel<u64> = TimingWheel::default();
        let mut keys: Vec<u128> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| key(t, i as u64))
            .collect();
        // An interleaved push order (not time-sorted).
        for i in (0..keys.len()).step_by(2).chain((1..keys.len()).step_by(2)) {
            w.push(keys[i], keys[i] as u64);
        }
        assert_eq!(w.len(), keys.len());
        keys.sort_unstable();
        assert_eq!(drain(&mut w), keys);
        assert!(w.is_empty());
    }

    #[test]
    fn interleaved_push_pop_matches_heap() {
        // The serve-shaped pattern: pop one, push a completion a few ms
        // out, occasionally schedule far-future work; wheel and heap
        // must agree on every pop.
        let mut w: TimingWheel<u64> = TimingWheel::default();
        let mut h: KeyHeap<u64> = KeyHeap::with_capacity(0);
        let mut rng: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut step = || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rng >> 33
        };
        let mut seq = 0u64;
        let mut now = 0u64;
        for round in 0..5_000u64 {
            if w.len() < 64 {
                let horizon = if round % 97 == 0 {
                    // Far-future outlier (hours out).
                    50_000_000_000_000
                } else {
                    step() % 10_000_000
                };
                seq += 1;
                let k = key(now + horizon, seq);
                w.push(k, k as u64);
                h.push(k, k as u64);
                // Same-tick burst every few rounds.
                if round % 5 == 0 {
                    seq += 1;
                    let k = key(now + horizon, seq);
                    w.push(k, k as u64);
                    h.push(k, k as u64);
                }
            }
            if round % 3 != 0 {
                let (wk, wv) = w.pop().unwrap();
                let (hk, hv) = h.pop().unwrap();
                assert_eq!((wk, wv), (hk, hv), "round {round}");
                now = (wk >> 64) as u64;
            }
        }
        while let Some(got) = w.pop() {
            assert_eq!(Some(got), h.pop());
        }
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn peek_always_matches_next_pop() {
        let mut w: TimingWheel<u64> = TimingWheel::default();
        for (i, t) in [7u64, SPAN0 * 70, 3, SPAN0 * 64 * 64 + 5, 7]
            .iter()
            .enumerate()
        {
            w.push(key(*t, i as u64), i as u64);
        }
        while let Some(k) = w.peek_key() {
            assert_eq!(w.pop().map(|(k, _)| k), Some(k));
        }
        assert!(w.pop().is_none());
    }
}
