//! Conservative-synchronization primitives for sharded discrete-event
//! execution (Chandy–Misra–Bryant style).
//!
//! A sharded run partitions the device set across workers, each
//! advancing its own event queue. Correctness rests on the classic
//! conservative invariant: a shard may process its next event at time
//! `t` only once every neighbor has *promised* never to send it a
//! message stamped earlier than `t`. Promises here are **horizons** —
//! monotonically non-decreasing lower bounds published through
//! [`HorizonCell`]s — and the lookahead that keeps them ahead of the
//! sender's own clock is the precomputed per-link transfer latency
//! floor (a message crossing a link cannot arrive sooner than the
//! link's minimum transfer time plus the receiver's minimum service
//! time). Publishing a horizon with no accompanying message is exactly
//! the null-message trick: it lets a sparse shard lift its neighbors'
//! safe bounds without doing work.
//!
//! Determinism is stronger than the usual conservative guarantee.
//! Event keys stay globally ordered `(time_ns, seq)` with sequence
//! numbers assigned at push time; a shard split preserves original
//! keys ([`super::Kernel::retain_events_where_device`]), and ambiguous
//! same-time cross-shard orderings are *detected* at merge points and
//! reported through a [`DegradeFlag`] so the caller can fall back to a
//! bit-exact sequential replay. A flag therefore only ever costs
//! speed, never changes a result.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// The horizon value meaning "idle: no future message will ever be
/// sent below any bound" (saturating arithmetic keeps it absorbing).
pub const HORIZON_IDLE: u64 = u64::MAX;

/// A cache-line-padded, monotonically non-decreasing published lower
/// bound ("this side will never emit a message stamped below the
/// value"), plus a progress counter used by deadlock heuristics to
/// tell "quiescent" from "stuck".
///
/// Protocol: the publisher flushes any batched messages *first*, then
/// stores the new horizon with `Release`; a consumer `Acquire`-loads
/// the horizon and *then* drains its channel, so every message below
/// an observed horizon is already visible. Consumers must keep their
/// own max-monotone cache: a publisher-side refinement may lower the
/// raw cell between reads it is entitled to (e.g. after injecting a
/// message that was already covered by a previous promise), and the
/// consumer's previously observed bound remains valid.
#[repr(align(64))]
#[derive(Debug)]
pub struct HorizonCell {
    horizon_ns: AtomicU64,
    progress: AtomicU64,
}

impl HorizonCell {
    /// A fresh cell promising nothing (horizon 0).
    pub fn new() -> Self {
        HorizonCell {
            horizon_ns: AtomicU64::new(0),
            progress: AtomicU64::new(0),
        }
    }

    /// Publishes a new lower bound. Call *after* flushing every message
    /// stamped below it.
    #[inline]
    pub fn publish(&self, horizon_ns: u64) {
        self.horizon_ns.store(horizon_ns, Ordering::Release);
    }

    /// The currently published bound.
    #[inline]
    pub fn load(&self) -> u64 {
        self.horizon_ns.load(Ordering::Acquire)
    }

    /// Bumps the progress counter (any unit of real work).
    #[inline]
    pub fn tick(&self) {
        self.progress.fetch_add(1, Ordering::Relaxed);
    }

    /// The progress counter, for stuck-versus-quiescent heuristics.
    #[inline]
    pub fn progress(&self) -> u64 {
        self.progress.load(Ordering::Relaxed)
    }
}

impl Default for HorizonCell {
    fn default() -> Self {
        Self::new()
    }
}

/// Why a sharded run degraded to the sequential replay path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum DegradeReason {
    /// No degradation.
    None = 0,
    /// Two shards held events at the same nanosecond whose relative
    /// order the split-key invariant cannot decide.
    TimestampTie = 1,
    /// A replan moved a head (or other coordinator-owned role) onto a
    /// worker-owned device, invalidating the partition.
    PartitionInvalidated = 2,
    /// A lookahead floor collapsed to zero, so no horizon can ever get
    /// ahead of the sender's clock.
    ZeroLookahead = 3,
    /// Both sides blocked on each other's horizon without progress.
    Deadlock = 4,
}

impl DegradeReason {
    fn from_u32(v: u32) -> Self {
        match v {
            1 => DegradeReason::TimestampTie,
            2 => DegradeReason::PartitionInvalidated,
            3 => DegradeReason::ZeroLookahead,
            4 => DegradeReason::Deadlock,
            _ => DegradeReason::None,
        }
    }
}

/// A sticky cross-thread "this parallel run can no longer prove it
/// matches the sequential order" latch. First reason wins; every
/// participant polls it at its merge points and unwinds cleanly.
#[derive(Debug, Default)]
pub struct DegradeFlag {
    reason: AtomicU32,
}

impl DegradeFlag {
    /// A fresh, unraised flag.
    pub fn new() -> Self {
        DegradeFlag::default()
    }

    /// Raises the flag (first reason sticks).
    pub fn raise(&self, reason: DegradeReason) {
        let _ = self.reason.compare_exchange(
            DegradeReason::None as u32,
            reason as u32,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// The first raised reason, if any.
    pub fn get(&self) -> Option<DegradeReason> {
        match DegradeReason::from_u32(self.reason.load(Ordering::Acquire)) {
            DegradeReason::None => None,
            r => Some(r),
        }
    }

    /// Whether any participant raised the flag.
    #[inline]
    pub fn raised(&self) -> bool {
        self.reason.load(Ordering::Acquire) != DegradeReason::None as u32
    }
}

/// A message stamped with the sender's virtual time at emission — the
/// τ the receiver merges against its own event clock.
#[derive(Debug, Clone, Copy)]
pub struct Stamped<T> {
    /// Sender virtual time at emission, nanoseconds.
    pub tau_ns: u64,
    /// The payload.
    pub msg: T,
}

/// An amortizing send buffer: the vendored channel takes a mutex per
/// `send`, so shards move `Vec` batches instead of single messages.
/// Flush happens on capacity and — crucially, per the [`HorizonCell`]
/// protocol — immediately before publishing any horizon.
#[derive(Debug)]
pub struct Batcher<T> {
    buf: Vec<T>,
    cap: usize,
}

impl<T> Batcher<T> {
    /// An empty batcher flushing every `cap` items.
    pub fn new(cap: usize) -> Self {
        Batcher {
            buf: Vec::with_capacity(cap.max(1)),
            cap: cap.max(1),
        }
    }

    /// Buffers one item; returns a full batch to send when the buffer
    /// reached capacity.
    #[inline]
    pub fn push(&mut self, item: T) -> Option<Vec<T>> {
        self.buf.push(item);
        if self.buf.len() >= self.cap {
            Some(self.take())
        } else {
            None
        }
    }

    /// Drains the buffer (empty `Vec` when nothing is pending — callers
    /// skip the send).
    #[inline]
    pub fn take(&mut self) -> Vec<T> {
        std::mem::replace(&mut self.buf, Vec::with_capacity(self.cap))
    }

    /// Whether anything is buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// A τ-ordered staging area for messages received from one sender.
/// Senders emit in their own non-decreasing virtual-time order, so a
/// FIFO suffices; the receiver injects strictly below its local clock
/// bound and leaves the rest staged.
#[derive(Debug)]
pub struct StagedInbox<T> {
    queue: std::collections::VecDeque<Stamped<T>>,
}

impl<T> StagedInbox<T> {
    /// An empty inbox.
    pub fn new() -> Self {
        StagedInbox {
            queue: std::collections::VecDeque::new(),
        }
    }

    /// Stages a batch (already in sender τ order).
    pub fn extend(&mut self, batch: Vec<Stamped<T>>) {
        self.queue.extend(batch);
    }

    /// τ of the next staged message, or `None` when empty.
    #[inline]
    pub fn next_tau(&self) -> Option<u64> {
        self.queue.front().map(|s| s.tau_ns)
    }

    /// Pops the next staged message if its τ is **strictly below**
    /// `bound_ns` (the receiver's next local event time or safe
    /// horizon). Equal stamps stay staged: the caller decides tie
    /// policy explicitly.
    #[inline]
    pub fn pop_below(&mut self, bound_ns: u64) -> Option<Stamped<T>> {
        if self.queue.front().is_some_and(|s| s.tau_ns < bound_ns) {
            self.queue.pop_front()
        } else {
            None
        }
    }

    /// Unconditionally pops the next staged message.
    #[inline]
    pub fn pop(&mut self) -> Option<Stamped<T>> {
        self.queue.pop_front()
    }

    /// Staged messages not yet injected.
    #[inline]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether nothing is staged.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

impl<T> Default for StagedInbox<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizon_cell_publishes_and_ticks() {
        let c = HorizonCell::new();
        assert_eq!(c.load(), 0);
        c.publish(42);
        assert_eq!(c.load(), 42);
        c.tick();
        c.tick();
        assert_eq!(c.progress(), 2);
    }

    #[test]
    fn degrade_flag_first_reason_sticks() {
        let f = DegradeFlag::new();
        assert!(!f.raised());
        assert_eq!(f.get(), None);
        f.raise(DegradeReason::TimestampTie);
        f.raise(DegradeReason::Deadlock);
        assert_eq!(f.get(), Some(DegradeReason::TimestampTie));
    }

    #[test]
    fn batcher_flushes_at_capacity() {
        let mut b = Batcher::new(3);
        assert!(b.push(1).is_none());
        assert!(b.push(2).is_none());
        let batch = b.push(3).expect("third push flushes");
        assert_eq!(batch, vec![1, 2, 3]);
        assert!(b.is_empty());
        b.push(4);
        assert_eq!(b.take(), vec![4]);
    }

    #[test]
    fn staged_inbox_pops_strictly_below_bound() {
        let mut ib = StagedInbox::new();
        ib.extend(vec![
            Stamped {
                tau_ns: 5,
                msg: 'a',
            },
            Stamped {
                tau_ns: 9,
                msg: 'b',
            },
        ]);
        assert_eq!(ib.next_tau(), Some(5));
        assert_eq!(ib.pop_below(9).map(|s| s.msg), Some('a'));
        // Equal stamp stays staged: tie policy is the caller's call.
        assert_eq!(ib.pop_below(9).map(|s| s.msg), None);
        assert_eq!(ib.pop_below(10).map(|s| s.msg), Some('b'));
        assert!(ib.is_empty());
    }
}
