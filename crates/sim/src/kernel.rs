//! The resumable discrete-event kernel shared by the offline simulator
//! and the online serving control plane.
//!
//! Both `s2m3_sim::engine` and `s2m3_serve::engine` execute the same
//! machine: requests fan encoder tasks out across devices, each device
//! runs a `parallelism`-lane executor over FIFO module queues with
//! head-priority dispatch, and a request's head fires when its last
//! embedding lands. Before this module existed the two engines each
//! carried a private copy of that event loop; now the loop lives here
//! once, and the engines are *drivers* layered on top:
//!
//! - `s2m3_sim::engine` is the **bounded driver** — a fixed request set
//!   seeded up front, run to idle;
//! - `s2m3_serve::engine` is the **online driver** — admission queues,
//!   SLO windows, fleet churn, and live replanning injected through the
//!   hooks below, over an unbounded arrival stream.
//!
//! ## The injection-point API
//!
//! The kernel owns the event heap and the dense per-device / per-task /
//! per-request state; everything scenario-specific enters through the
//! [`Driver`] trait:
//!
//! - [`Driver::Custom`] — driver-defined events (arrivals, fleet churn)
//!   scheduled with [`Kernel::push_custom`] and delivered to
//!   [`Driver::custom`]; the handler has full mutable access to the
//!   kernel, so it can spawn tasks, cancel attempts, toggle device
//!   membership, or swap plans mid-run (the serve replan path pauses
//!   the machine exactly here: the kernel is between events while the
//!   driver drains and requeues);
//! - [`Driver::dispatched`] — the driver fixes each execution's
//!   completion time (and does its own span / duration bookkeeping),
//!   so engines with different timing arithmetic stay bit-exact;
//! - [`Driver::encoder_ready_ns`] — the embedding-transfer contribution
//!   an encoder completion adds to its request's head-readiness;
//! - [`Driver::head_done`] — a request finished; the driver records it
//!   and (online) admits the next waiting request;
//! - [`Driver::device_opened`] — a device's downtime window ended; the
//!   online driver drains its admission queue.
//!
//! ## Resumability
//!
//! The kernel is a plain state machine with no hidden iterator state:
//! [`Kernel::step`] processes exactly one event, [`Kernel::run_until`]
//! processes events up to a virtual-time bound and stops, and
//! [`Kernel::run_until_idle`] drains the heap. Stopping after any event
//! and resuming later is indistinguishable from an uninterrupted run —
//! the property `s2m3-serve` pins with its pause/resume proptest.

pub mod shard;
pub mod wheel;

use std::collections::VecDeque;

/// A kernel event. `X` is the driver's custom-event payload.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Event<X> {
    /// A task becomes ready to queue on its device.
    Ready(usize),
    /// A task finishes executing and frees its lane.
    Done(usize),
    /// A batched follower finishing alongside its leader: completes the
    /// task's request bookkeeping without freeing a lane.
    BatchedDone(usize),
    /// A device's downtime window ends; wake its scheduler.
    DeviceOpen(usize),
    /// A driver-defined event.
    Custom(X),
}

/// Task flag bits (packed into [`TaskMeta::flags`]).
const TASK_HEAD: u8 = 1;
const TASK_CANCELLED: u8 = 1 << 1;
const TASK_FINISHED: u8 = 1 << 2;

/// The kernel-facing half of a task, 24 bytes: everything the shared
/// event loop reads while scheduling.
#[derive(Debug, Clone, Copy)]
struct TaskMeta {
    /// Dense request index this task belongs to.
    req: u32,
    /// Interned module index (batch-merge key).
    module: u32,
    /// Dense device index the task executes on.
    device: u32,
    /// `TASK_HEAD` / `TASK_CANCELLED` / `TASK_FINISHED` bits.
    flags: u8,
    /// The device's lane epoch when this task was dispatched; a stale
    /// epoch means the lane counter was force-reset (the device left
    /// the fleet) and this task no longer holds a lane.
    lane_epoch: u64,
}

/// The task table, struct-of-arrays: scheduling metadata in one dense
/// vec, driver payloads (durations, transfer times — whatever the
/// timing hooks need) in a parallel vec.
///
/// The split keeps the event loop's working set tight: dispatch,
/// cancellation scans, and fan-in bookkeeping walk 24-byte
/// [`TaskMeta`] records (the serve driver's payload alone is twice
/// that), and a payload is only loaded inside the driver hook that
/// actually prices the task.
#[derive(Debug, Clone)]
pub struct TaskTable<P> {
    entries: Vec<TaskEntry<P>>,
}

/// One task row: scheduling metadata and the driver payload side by
/// side. Interleaved on purpose — every hot consumer (dispatch fixes a
/// duration right after reading units, completion charges busy time
/// next to the device index) touches both halves of the same task, so
/// one row per cache line beats a meta/payload split. A split-array
/// variant was measured ~4% slower end to end on the serve loop.
#[derive(Debug, Clone)]
struct TaskEntry<P> {
    meta: TaskMeta,
    payload: P,
}

impl<P> TaskTable<P> {
    fn with_capacity(cap: usize) -> Self {
        TaskTable {
            entries: Vec::with_capacity(cap),
        }
    }

    /// Task-table slots (live plus, in recycling mode, free).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no task was ever registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Dense request index `tid` belongs to.
    #[inline]
    pub fn req(&self, tid: usize) -> usize {
        self.entries[tid].meta.req as usize
    }

    /// Interned module index (batch-merge key).
    #[inline]
    pub fn module(&self, tid: usize) -> u32 {
        self.entries[tid].meta.module
    }

    /// Dense device index `tid` executes on.
    #[inline]
    pub fn device(&self, tid: usize) -> usize {
        self.entries[tid].meta.device as usize
    }

    /// Head tasks dispatch ahead of queued encoder work.
    #[inline]
    pub fn is_head(&self, tid: usize) -> bool {
        self.entries[tid].meta.flags & TASK_HEAD != 0
    }

    /// A cancelled task is skipped at dispatch and, if already running,
    /// completes without touching its request.
    #[inline]
    pub fn cancelled(&self, tid: usize) -> bool {
        self.entries[tid].meta.flags & TASK_CANCELLED != 0
    }

    /// Set once the task's completion event fired: its work has left
    /// the device, so later churn no longer disturbs it.
    #[inline]
    pub fn finished(&self, tid: usize) -> bool {
        self.entries[tid].meta.flags & TASK_FINISHED != 0
    }

    /// Marks `tid` cancelled (see [`TaskTable::cancelled`]).
    #[inline]
    pub fn cancel(&mut self, tid: usize) {
        self.entries[tid].meta.flags |= TASK_CANCELLED;
    }

    /// Driver payload fixed at [`Kernel::spawn_task`].
    #[inline]
    pub fn payload(&self, tid: usize) -> &P {
        &self.entries[tid].payload
    }

    /// Mutable driver payload (timing hooks fix durations here).
    #[inline]
    pub fn payload_mut(&mut self, tid: usize) -> &mut P {
        &mut self.entries[tid].payload
    }

    #[inline]
    fn mark_finished(&mut self, tid: usize) {
        self.entries[tid].meta.flags |= TASK_FINISHED;
    }

    #[inline]
    fn set_lane_epoch(&mut self, tid: usize, epoch: u64) {
        self.entries[tid].meta.lane_epoch = epoch;
    }

    /// Marks `tid` finished and returns its (updated) metadata — the
    /// completion path's single meta load.
    #[inline]
    fn finish(&mut self, tid: usize) -> TaskMeta {
        let m = &mut self.entries[tid].meta;
        m.flags |= TASK_FINISHED;
        *m
    }
}

/// Per-device executor state: a `lanes_total`-lane machine over two FIFO
/// queues (heads dispatch first).
#[derive(Debug, Clone, Default)]
pub struct Device {
    /// Whether the device participates in dispatch (online drivers
    /// toggle this at fleet churn; bounded drivers leave it `true`).
    pub active: bool,
    /// Parallel execution lanes the device offers.
    pub lanes_total: usize,
    /// Lanes currently running a task.
    pub lanes_busy: usize,
    /// Bumped whenever `lanes_busy` is force-reset, so completions of
    /// tasks dispatched before the reset do not free phantom lanes.
    pub lane_epoch: u64,
    /// The device cannot start new tasks before this time (model
    /// loading, migration downtime), nanoseconds.
    pub open_at_ns: u64,
    /// Head tasks awaiting a lane (dispatched before `fifo`).
    pub fifo_heads: VecDeque<usize>,
    /// Encoder tasks awaiting a lane.
    pub fifo: VecDeque<usize>,
}

impl Device {
    /// An active idle device with `lanes` lanes, open from `open_at_ns`.
    pub fn new(lanes: usize, open_at_ns: u64) -> Self {
        Device {
            active: true,
            lanes_total: lanes.max(1),
            open_at_ns,
            ..Device::default()
        }
    }

    /// Force-resets the device's execution state (fleet leave): clears
    /// both queues, zeroes the lane counter, and bumps the epoch so
    /// in-flight completions become stale.
    pub fn reset_lanes(&mut self) {
        self.fifo_heads.clear();
        self.fifo.clear();
        self.lanes_busy = 0;
        self.lane_epoch += 1;
    }
}

/// Per-request fan-in state: how many encoders are still running and
/// when the head may start.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestSlot {
    /// Encoder tasks of the current attempt still outstanding.
    pub pending_encoders: usize,
    /// Earliest head start: max over encoder-completion + output
    /// transfer and the raw-query arrival, nanoseconds.
    pub head_ready_ns: u64,
    /// Task id of the request's head execution.
    pub head_task: usize,
}

/// Which event-queue implementation backs the kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Scheduler {
    /// Adapt to the workload at runtime: start on the heap and spill
    /// into the timing wheel only if the pending set ever exceeds
    /// [`WHEEL_SPILL_LEN`]. Interleaved A/B runs measured the heap
    /// fastest for the steady-state serve loop (a handful of in-flight
    /// events — heap depth ~2, while every wheel event still pays
    /// bucket routing plus a frontier advance) and the two at parity
    /// by ~2k pending events, where heap depth starts to matter; the
    /// spill threshold sits past that crossover so only genuinely
    /// event-dense runs migrate. Both backends pop in identical
    /// `(time_ns, seq)` order, so the switch is invisible in results.
    #[default]
    Auto,
    /// Always the 4-ary packed-key min-heap.
    Heap,
    /// Always the hierarchical timing wheel ([`wheel::TimingWheel`]).
    Wheel,
}

/// Scheduling-policy knobs that differ between the two engines but are
/// fixed for a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct Policy {
    /// When the last encoder of a request completes and the head is
    /// already ready, enqueue the head *directly* on its device's head
    /// queue so it wins the lane the encoder just freed (the bounded
    /// engine's semantics). When `false`, schedule a `Ready` event at
    /// the readiness time instead (the online engine's semantics).
    pub immediate_head_fire: bool,
    /// Module-level batch inference: when a lane frees, up to this many
    /// queued executions of the same module merge into one run.
    pub max_batch: Option<usize>,
    /// Recycle task-table slots through a free list: a task's slot is
    /// released the moment the kernel can prove no queue, event, or
    /// fan-in slot still references it, and the next
    /// [`Kernel::spawn_task`] reuses it. Keeps the task table
    /// O(in-flight) for unbounded online runs. Task ids lose their
    /// append-only meaning; drivers that index history by task id
    /// (the bounded engine's Gantt spans) must leave this `false`.
    pub recycle_tasks: bool,
    /// Event-queue implementation; see [`Scheduler`].
    pub scheduler: Scheduler,
}

/// A 4-ary min-heap over packed `(time_ns << 64) | seq` keys, stored
/// as parallel key/payload arrays — the kernel's bounded-run scheduler
/// and the timing wheel's near-window heap.
///
/// Profiling the serve loop showed the event heap near the top of the
/// hook-boundary cost added in the kernel extraction. Three structural
/// choices attack it:
///
/// - **packed keys** — the unique `(time, seq)` pair collapses into one
///   `u128`, so every ordering decision is a single integer compare
///   instead of a 3-field tuple compare that may touch the event
///   payload;
/// - **parallel arrays** — sift comparisons walk a dense `Vec<u128>`
///   (a 4-child group is 64 bytes, one cache line) and never load the
///   payloads; payloads move only when a compare demands it;
/// - **arity 4** — half the tree depth of a binary heap, and a direct
///   sift-down that beats std's sift-to-bottom-then-back strategy on
///   the *small* heaps the lazy-arrival serving loop keeps (std's
///   `BinaryHeap` with the same packed keys measured faster on the
///   synthetic 4k-event `kernel_step` fanout but consistently slower on
///   `serve_loop/*` — the product hot path — so small-heap behavior
///   wins the tie).
///
/// Ordering is bit-exact with the old `BinaryHeap<Reverse<(u64, u64,
/// Event)>>`: keys are unique, min-first by time then push sequence.
#[derive(Debug, Clone)]
pub(crate) struct KeyHeap<T> {
    keys: Vec<u128>,
    items: Vec<T>,
}

impl<T> KeyHeap<T> {
    const ARITY: usize = 4;

    pub(crate) fn with_capacity(cap: usize) -> Self {
        KeyHeap {
            keys: Vec::with_capacity(cap),
            items: Vec::with_capacity(cap),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.keys.len()
    }

    pub(crate) fn peek_key(&self) -> Option<u128> {
        self.keys.first().copied()
    }

    #[inline]
    fn swap(&mut self, a: usize, b: usize) {
        self.keys.swap(a, b);
        self.items.swap(a, b);
    }

    pub(crate) fn push(&mut self, key: u128, item: T) {
        self.keys.push(key);
        self.items.push(item);
        // Sift up. Events pushed in time order (the common case: work
        // scheduled at or after `now` into a heap whose root is `now`)
        // settle with zero swaps.
        let mut i = self.keys.len() - 1;
        while i > 0 {
            let parent = (i - 1) / Self::ARITY;
            if self.keys[parent] <= key {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    pub(crate) fn pop(&mut self) -> Option<(u128, T)> {
        let key = *self.keys.first()?;
        let n = self.keys.len() - 1;
        self.keys.swap_remove(0);
        let item = self.items.swap_remove(0);
        // Sift down, comparing keys only; the displaced last entry
        // rides down to its slot.
        let mut i = 0;
        loop {
            let first_child = i * Self::ARITY + 1;
            if first_child >= n {
                break;
            }
            let last_child = (first_child + Self::ARITY).min(n);
            let mut min = first_child;
            let mut min_key = self.keys[first_child];
            for c in first_child + 1..last_child {
                if self.keys[c] < min_key {
                    min = c;
                    min_key = self.keys[c];
                }
            }
            if self.keys[i] <= min_key {
                break;
            }
            self.swap(i, min);
            i = min;
        }
        Some((key, item))
    }
}

/// Pending-event count past which an [`Scheduler::Auto`] queue drains
/// its heap into the timing wheel. Measured crossover: heap and wheel
/// run at parity near 2k pending events (`kernel_step/2k_req_fanout`);
/// below that the heap wins outright, above it heap depth keeps
/// growing while the wheel's per-event cost stays flat.
const WHEEL_SPILL_LEN: usize = 4096;

/// The kernel's event queue: heap, timing wheel, or the adaptive
/// default that starts as a heap and spills into a wheel, per
/// [`Policy::scheduler`] — dispatched through one enum so the run loop
/// stays monomorphic over drivers (no dyn indirection per event).
#[derive(Debug, Clone)]
enum EventQueue<X> {
    Heap(KeyHeap<Event<X>>),
    Wheel(wheel::TimingWheel<Event<X>>),
    /// [`Scheduler::Auto`]: a heap that converts itself into
    /// [`EventQueue::Wheel`] the first time a push lands while more
    /// than [`WHEEL_SPILL_LEN`] events are pending. The one-time drain
    /// is O(n log n); both backends pop in the same global order, so
    /// results are byte-identical wherever the switch happens.
    Adaptive(KeyHeap<Event<X>>),
}

impl<X> EventQueue<X> {
    fn for_policy(policy: &Policy, cap: usize) -> Self {
        match policy.scheduler {
            Scheduler::Auto => EventQueue::Adaptive(KeyHeap::with_capacity(cap)),
            Scheduler::Heap => EventQueue::Heap(KeyHeap::with_capacity(cap)),
            Scheduler::Wheel => EventQueue::Wheel(wheel::TimingWheel::with_capacity(cap)),
        }
    }

    #[inline(always)]
    fn len(&self) -> usize {
        match self {
            EventQueue::Heap(h) | EventQueue::Adaptive(h) => h.len(),
            EventQueue::Wheel(w) => w.len(),
        }
    }

    #[inline(always)]
    fn peek_key(&self) -> Option<u128> {
        match self {
            EventQueue::Heap(h) | EventQueue::Adaptive(h) => h.peek_key(),
            EventQueue::Wheel(w) => w.peek_key(),
        }
    }

    #[inline(always)]
    fn push(&mut self, key: u128, event: Event<X>) {
        match self {
            EventQueue::Heap(h) => h.push(key, event),
            EventQueue::Wheel(w) => w.push(key, event),
            EventQueue::Adaptive(h) => {
                h.push(key, event);
                if h.len() > WHEEL_SPILL_LEN {
                    self.spill_to_wheel();
                }
            }
        }
    }

    /// Converts an [`EventQueue::Adaptive`] heap into a wheel by
    /// draining it in key order (cold: runs at most once per kernel).
    fn spill_to_wheel(&mut self) {
        let EventQueue::Adaptive(h) = self else {
            unreachable!("spill_to_wheel on a non-adaptive queue");
        };
        let mut w = wheel::TimingWheel::with_capacity(h.len());
        while let Some((k, ev)) = h.pop() {
            w.push(k, ev);
        }
        *self = EventQueue::Wheel(w);
    }

    #[inline(always)]
    fn pop(&mut self) -> Option<(u128, Event<X>)> {
        match self {
            EventQueue::Heap(h) | EventQueue::Adaptive(h) => h.pop(),
            EventQueue::Wheel(w) => w.pop(),
        }
    }
}

/// The hooks a driver supplies to specialize the shared event loop.
///
/// Hooks receive `&mut Kernel` so they can schedule further work; the
/// kernel never calls a hook while holding an internal borrow. All
/// hooks are fallible so online drivers can surface scenario errors
/// (e.g. a replan failure) out of the run loop; bounded drivers return
/// `Ok` unconditionally.
pub trait Driver: Sized {
    /// Driver-defined event payload.
    type Custom;
    /// Driver-defined per-task payload stored inline in [`Task`].
    type Payload;
    /// Error surfaced out of [`Kernel::step`] and the run helpers.
    type Error;

    /// A lane dispatched `group` (≥1 task ids, batched leader first) on
    /// `device` at `now`. Record spans / fix durations, and return the
    /// group's completion time in nanoseconds.
    fn dispatched(
        &mut self,
        k: &mut Kernel<Self::Custom, Self::Payload>,
        device: usize,
        group: &[usize],
        now: u64,
    ) -> Result<u64, Self::Error>;

    /// Task `tid` completed at `now`. `lane_live` is true when the task
    /// still held a lane (its dispatch epoch survived) — the moment to
    /// account busy time. Runs before any request bookkeeping, for
    /// cancelled tasks too. Defaults to a no-op.
    fn task_finished(
        &mut self,
        k: &mut Kernel<Self::Custom, Self::Payload>,
        tid: usize,
        now: u64,
        lane_live: bool,
    ) -> Result<(), Self::Error> {
        let _ = (k, tid, now, lane_live);
        Ok(())
    }

    /// Encoder task `tid` completed at `now`: return the head-readiness
    /// contribution (completion + embedding transfer), nanoseconds, and
    /// record any output-transfer span.
    fn encoder_ready_ns(
        &mut self,
        k: &mut Kernel<Self::Custom, Self::Payload>,
        tid: usize,
        now: u64,
    ) -> Result<u64, Self::Error>;

    /// Non-cancelled encoder task `tid` completed at `now`. The default
    /// folds its readiness contribution into the request's fan-in slot
    /// and fires the head once the last encoder lands — the historic
    /// inline behavior, byte-for-byte (the fan-in math itself lives in
    /// [`Kernel::apply_encoder_contribution`]). Override only to
    /// *relocate* that bookkeeping, e.g. a sharded backend forwarding
    /// the completion to the shard that owns the request.
    fn encoder_finished(
        &mut self,
        k: &mut Kernel<Self::Custom, Self::Payload>,
        tid: usize,
        now: u64,
    ) -> Result<(), Self::Error> {
        let contrib = self.encoder_ready_ns(k, tid, now)?;
        if let Some(hdi) = k.apply_encoder_contribution(tid, contrib, now) {
            k.try_dispatch(hdi, now, self)?;
        }
        Ok(())
    }

    /// Request `req`'s head execution completed at `now`.
    fn head_done(
        &mut self,
        k: &mut Kernel<Self::Custom, Self::Payload>,
        req: usize,
        now: u64,
    ) -> Result<(), Self::Error>;

    /// A `DeviceOpen` event fired for `device` (after the kernel's own
    /// dispatch attempt). Online drivers drain admission queues here.
    /// Defaults to a no-op.
    fn device_opened(
        &mut self,
        k: &mut Kernel<Self::Custom, Self::Payload>,
        device: usize,
        now: u64,
    ) -> Result<(), Self::Error> {
        let _ = (k, device, now);
        Ok(())
    }

    /// A custom event fired at `now`. Defaults to a no-op (override in
    /// any driver that actually schedules custom events).
    fn custom(
        &mut self,
        k: &mut Kernel<Self::Custom, Self::Payload>,
        event: Self::Custom,
        now: u64,
    ) -> Result<(), Self::Error> {
        let _ = (k, event, now);
        Ok(())
    }
}

/// The resumable discrete-event executor: event heap plus dense device,
/// task, and request-fan-in state.
///
/// Event ordering is `(time_ns, push sequence)` — packed into one
/// `u128` heap key — and the sequence number makes every key unique, so
/// same-time events fire in push order and a run is a pure function of
/// the pushes (the determinism both report formats rely on).
#[derive(Debug, Clone)]
pub struct Kernel<X, P> {
    queue: EventQueue<X>,
    seq: u64,
    now: u64,
    /// Reused dispatch-group buffer (one allocation for the whole run).
    scratch_group: Vec<usize>,
    /// Scheduling policy, fixed for the run.
    pub policy: Policy,
    /// Per-module batch caps indexed by interned module id, overriding
    /// `policy.max_batch` when non-empty (a cap of 1 disables batching
    /// for that module). Only consulted while `policy.max_batch` is
    /// `Some`; drivers without per-module policy leave it empty.
    pub module_batch_caps: Vec<usize>,
    /// Per-device executor state, indexed by dense device id.
    pub devices: Vec<Device>,
    /// Every live task slot. Without [`Policy::recycle_tasks`] this is
    /// append-only (cancelled tasks are skipped, never removed); with
    /// it, slots of provably-unreferenced tasks return to `free_tasks`
    /// and are reused, keeping the table O(in-flight).
    pub tasks: TaskTable<P>,
    /// Released task slots awaiting reuse (recycling mode only).
    free_tasks: Vec<usize>,
    /// Per-request fan-in state, indexed by dense request id.
    pub requests: Vec<RequestSlot>,
}

impl<X, P> Kernel<X, P> {
    /// An empty kernel over `devices` under `policy`.
    pub fn new(devices: Vec<Device>, policy: Policy) -> Self {
        Self::with_capacity(devices, policy, 0, 0)
    }

    /// An empty kernel with task/request table capacity hints — callers
    /// that know the workload size up front (e.g. a bounded plan or a
    /// fixed-length arrival stream) avoid the growth reallocations.
    pub fn with_capacity(
        devices: Vec<Device>,
        policy: Policy,
        tasks_cap: usize,
        requests_cap: usize,
    ) -> Self {
        Kernel {
            // The event peak is well under the task count (lazy online
            // arrivals keep it tiny; bounded runs fan in); a clamped
            // hint skips the growth reallocations without pinning
            // megabytes for huge request tables.
            queue: EventQueue::for_policy(&policy, tasks_cap.min(4096)),
            seq: 0,
            now: 0,
            scratch_group: Vec::new(),
            policy,
            module_batch_caps: Vec::new(),
            devices,
            tasks: TaskTable::with_capacity(tasks_cap),
            free_tasks: Vec::new(),
            requests: Vec::with_capacity(requests_cap),
        }
    }

    /// Virtual time of the last processed event, nanoseconds.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Task-table slots currently holding a live (unreleased) task —
    /// with [`Policy::recycle_tasks`] this tracks in-flight work, not
    /// total spawns.
    pub fn live_tasks(&self) -> usize {
        self.tasks.len() - self.free_tasks.len()
    }

    /// Events still queued.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Virtual time of the next queued event, if any.
    pub fn peek_time(&self) -> Option<u64> {
        self.queue.peek_key().map(|k| (k >> 64) as u64)
    }

    #[inline]
    fn push(&mut self, at: u64, event: Event<X>) {
        self.seq += 1;
        self.queue
            .push(((at as u128) << 64) | self.seq as u128, event);
    }

    /// Schedules task `tid` to become ready (queue on its device) at
    /// `at` nanoseconds.
    #[inline]
    pub fn push_ready(&mut self, at: u64, tid: usize) {
        self.push(at, Event::Ready(tid));
    }

    /// Schedules a scheduler wake-up for `device` at `at` nanoseconds
    /// (end of a downtime window).
    pub fn push_device_open(&mut self, at: u64, device: usize) {
        self.push(at, Event::DeviceOpen(device));
    }

    /// Schedules a driver-defined event at `at` nanoseconds.
    #[inline]
    pub fn push_custom(&mut self, at: u64, event: X) {
        self.push(at, Event::Custom(event));
    }

    /// Registers a new task and returns its id. Append-only without
    /// [`Policy::recycle_tasks`]; with it, a released slot is reused
    /// (every field overwritten) before the table grows.
    pub fn spawn_task(
        &mut self,
        req: usize,
        module: u32,
        device: usize,
        is_head: bool,
        payload: P,
    ) -> usize {
        let meta = TaskMeta {
            req: req as u32,
            module,
            device: device as u32,
            flags: if is_head { TASK_HEAD } else { 0 },
            lane_epoch: 0,
        };
        if self.policy.recycle_tasks {
            if let Some(tid) = self.free_tasks.pop() {
                self.tasks.entries[tid] = TaskEntry { meta, payload };
                return tid;
            }
        }
        let tid = self.tasks.len();
        self.tasks.entries.push(TaskEntry { meta, payload });
        tid
    }

    /// Returns `tid`'s slot to the free list (recycling mode only).
    /// Callers guarantee no queue entry, heap event, fan-in slot, or
    /// pending dispatch still names `tid`.
    #[inline]
    fn release_task(&mut self, tid: usize) {
        if self.policy.recycle_tasks {
            self.free_tasks.push(tid);
        }
    }

    /// Force-resets `device`'s execution state (fleet leave): the
    /// kernel-level version of [`Device::reset_lanes`]. In recycling
    /// mode the queued-but-never-dispatched tasks being discarded are
    /// marked cancelled+finished and their slots released — the queues
    /// were their only reference. Without recycling this is exactly
    /// `Device::reset_lanes`.
    pub fn reset_device_lanes(&mut self, di: usize) {
        if self.policy.recycle_tasks {
            while let Some(t) = self.devices[di].fifo_heads.pop_front() {
                self.tasks.cancel(t);
                self.tasks.mark_finished(t);
                self.free_tasks.push(t);
            }
            while let Some(t) = self.devices[di].fifo.pop_front() {
                self.tasks.cancel(t);
                self.tasks.mark_finished(t);
                self.free_tasks.push(t);
            }
        }
        self.devices[di].reset_lanes();
    }

    /// Sets (or overwrites, on re-dispatch) request `req`'s fan-in
    /// state, growing the table as needed.
    pub fn set_request(&mut self, req: usize, slot: RequestSlot) {
        if req >= self.requests.len() {
            self.requests.resize(req + 1, RequestSlot::default());
        }
        self.requests[req] = slot;
    }

    /// Folds encoder `tid`'s readiness contribution into its request's
    /// fan-in slot; when the last encoder lands, schedules the head
    /// task (or, under [`Policy::immediate_head_fire`], enqueues it
    /// directly so it wins the lane this encoder just freed). Returns a
    /// device needing a dispatch round when the fast path enqueued the
    /// head on a device *other* than the encoder's — the caller runs
    /// that round so its driver observes it.
    ///
    /// This is the body of the default [`Driver::encoder_finished`];
    /// sharded backends call it on the shard that owns the request's
    /// fan-in state.
    pub fn apply_encoder_contribution(
        &mut self,
        tid: usize,
        contrib_ns: u64,
        now: u64,
    ) -> Option<usize> {
        let req = self.tasks.req(tid);
        let di = self.tasks.device(tid);
        let slot = &mut self.requests[req];
        slot.head_ready_ns = slot.head_ready_ns.max(contrib_ns);
        slot.pending_encoders -= 1;
        if slot.pending_encoders == 0 {
            let (head_task, at) = (slot.head_task, slot.head_ready_ns);
            if self.policy.immediate_head_fire && at <= now {
                let hdi = self.tasks.device(head_task);
                self.devices[hdi].fifo_heads.push_back(head_task);
                if hdi != di {
                    return Some(hdi);
                }
            } else {
                self.push(at.max(now), Event::Ready(head_task));
            }
        }
        None
    }

    /// Marks `tid` finished and returns its slot to the free list: the
    /// retirement a sharded backend applies to a *mirror* task whose
    /// real completion event fired on another shard. Callers guarantee
    /// no queue entry or heap event still names `tid`.
    pub fn retire_task(&mut self, tid: usize) {
        self.tasks.mark_finished(tid);
        self.release_task(tid);
    }

    /// Installs a task at slot `tid` exactly, growing the table with
    /// inert (cancelled + finished) filler slots as needed: the
    /// receiving half of a sharded spawn, where the slot index was
    /// assigned by the shard that owns the request and both sides must
    /// agree on it so completion messages can name tasks by id alone.
    pub fn put_task(
        &mut self,
        tid: usize,
        req: usize,
        module: u32,
        device: usize,
        is_head: bool,
        payload: P,
    ) where
        P: Default,
    {
        while self.tasks.len() <= tid {
            self.tasks.entries.push(TaskEntry {
                meta: TaskMeta {
                    req: 0,
                    module: 0,
                    device: 0,
                    flags: TASK_CANCELLED | TASK_FINISHED,
                    lane_epoch: 0,
                },
                payload: P::default(),
            });
        }
        self.tasks.entries[tid] = TaskEntry {
            meta: TaskMeta {
                req: req as u32,
                module,
                device: device as u32,
                flags: if is_head { TASK_HEAD } else { 0 },
                lane_epoch: 0,
            },
            payload,
        };
    }

    /// Splits the event queue by shard ownership: keeps exactly the
    /// events whose owning device satisfies `owned[device] ==
    /// keep_owned` (task events belong to their task's device,
    /// [`Event::DeviceOpen`] to its device, and `Custom` events always
    /// to the un-owned / coordinator side). Called on each half of a
    /// [`Clone`]d kernel when a sharded run splits off a worker.
    /// Surviving events keep their original `(time, seq)` keys, so
    /// relative order — and therefore determinism — is preserved
    /// exactly.
    pub fn retain_events_where_device(&mut self, owned: &[bool], keep_owned: bool) {
        let mut kept: Vec<(u128, Event<X>)> = Vec::with_capacity(self.queue.len());
        while let Some((key, ev)) = self.queue.pop() {
            let mine = match &ev {
                Event::Ready(t) | Event::Done(t) | Event::BatchedDone(t) => {
                    owned[self.tasks.device(*t)]
                }
                Event::DeviceOpen(di) => owned[*di],
                Event::Custom(_) => false,
            };
            if mine == keep_owned {
                kept.push((key, ev));
            }
        }
        // A fresh queue sidesteps any frontier state the drain left in
        // a timing wheel; keys re-insert in sorted order.
        let mut fresh = EventQueue::for_policy(&self.policy, kept.len().min(4096));
        for (key, ev) in kept {
            fresh.push(key, ev);
        }
        self.queue = fresh;
    }

    /// Dispatches one popped event to its handler.
    fn handle<D: Driver<Custom = X, Payload = P>>(
        &mut self,
        now: u64,
        event: Event<X>,
        driver: &mut D,
    ) -> Result<(), D::Error> {
        self.now = now;
        match event {
            Event::Ready(tid) => {
                if !self.tasks.cancelled(tid) {
                    let di = self.tasks.device(tid);
                    if self.tasks.is_head(tid) {
                        self.devices[di].fifo_heads.push_back(tid);
                    } else {
                        self.devices[di].fifo.push_back(tid);
                    }
                    self.try_dispatch(di, now, driver)?;
                } else {
                    // Cancelled before it ever queued: this `Ready` was
                    // the task's only reference.
                    self.tasks.mark_finished(tid);
                    self.release_task(tid);
                }
            }
            Event::DeviceOpen(di) => {
                self.try_dispatch(di, now, driver)?;
                driver.device_opened(self, di, now)?;
            }
            Event::Done(tid) => self.finish_task(tid, true, now, driver)?,
            Event::BatchedDone(tid) => self.finish_task(tid, false, now, driver)?,
            Event::Custom(x) => driver.custom(self, x, now)?,
        }
        Ok(())
    }

    /// Processes the next event. Returns `Ok(false)` when the heap is
    /// empty (the machine is idle).
    ///
    /// # Errors
    ///
    /// Whatever a driver hook surfaces.
    pub fn step<D: Driver<Custom = X, Payload = P>>(
        &mut self,
        driver: &mut D,
    ) -> Result<bool, D::Error> {
        let Some((key, event)) = self.queue.pop() else {
            return Ok(false);
        };
        self.handle((key >> 64) as u64, event, driver)?;
        Ok(true)
    }

    /// Processes every event with time ≤ `until_ns`, then stops (the
    /// pause half of pause/resume). Returns the number of events
    /// processed.
    ///
    /// # Errors
    ///
    /// Whatever a driver hook surfaces.
    pub fn run_until<D: Driver<Custom = X, Payload = P>>(
        &mut self,
        driver: &mut D,
        until_ns: u64,
    ) -> Result<u64, D::Error> {
        let mut n = 0;
        while matches!(self.queue.peek_key(), Some(k) if (k >> 64) as u64 <= until_ns) {
            let Some((key, event)) = self.queue.pop() else {
                break;
            };
            self.handle((key >> 64) as u64, event, driver)?;
            n += 1;
        }
        Ok(n)
    }

    /// Drains the event heap (run to idle). Returns the number of
    /// events processed.
    ///
    /// # Errors
    ///
    /// Whatever a driver hook surfaces.
    pub fn run_until_idle<D: Driver<Custom = X, Payload = P>>(
        &mut self,
        driver: &mut D,
    ) -> Result<u64, D::Error> {
        let mut n = 0;
        while let Some((key, event)) = self.queue.pop() {
            self.handle((key >> 64) as u64, event, driver)?;
            n += 1;
        }
        Ok(n)
    }

    /// The per-device lane scheduler: while a lane is free, pop the
    /// next non-cancelled task (heads first), absorb same-module queued
    /// work up to `policy.max_batch`, and let the driver fix the
    /// group's completion time.
    ///
    /// # Errors
    ///
    /// Whatever [`Driver::dispatched`] surfaces.
    #[inline]
    pub fn try_dispatch<D: Driver<Custom = X, Payload = P>>(
        &mut self,
        di: usize,
        now: u64,
        driver: &mut D,
    ) -> Result<(), D::Error> {
        // Fast path: most calls find nothing to start (device closed,
        // lanes saturated, or queues empty) — bail before touching the
        // dispatch machinery so this inlines into the event handlers.
        {
            let d = &self.devices[di];
            if !d.active
                || now < d.open_at_ns
                || d.lanes_busy >= d.lanes_total
                || (d.fifo_heads.is_empty() && d.fifo.is_empty())
            {
                return Ok(());
            }
        }
        self.dispatch_loop(di, now, driver)
    }

    /// The heavy half of [`Kernel::try_dispatch`], entered only when a
    /// lane is free and work is queued.
    fn dispatch_loop<D: Driver<Custom = X, Payload = P>>(
        &mut self,
        di: usize,
        now: u64,
        driver: &mut D,
    ) -> Result<(), D::Error> {
        if self.policy.max_batch.is_none() {
            // Singleton dispatches (no batching): no group buffer, one
            // `Done` per started task — the serve loop's hot path.
            loop {
                let tid = {
                    let d = &mut self.devices[di];
                    if now < d.open_at_ns || d.lanes_busy >= d.lanes_total {
                        return Ok(());
                    }
                    let mut next = None;
                    while let Some(t) = d.fifo_heads.pop_front().or_else(|| d.fifo.pop_front()) {
                        if !self.tasks.cancelled(t) {
                            next = Some(t);
                            break;
                        }
                        // A popped cancelled task leaves its last
                        // reference behind.
                        if self.policy.recycle_tasks {
                            self.tasks.mark_finished(t);
                            self.free_tasks.push(t);
                        }
                    }
                    let Some(tid) = next else {
                        return Ok(());
                    };
                    d.lanes_busy += 1;
                    self.tasks.set_lane_epoch(tid, d.lane_epoch);
                    tid
                };
                let end = driver.dispatched(self, di, &[tid], now)?;
                self.push(end, Event::Done(tid));
            }
        }
        loop {
            // Take the scratch buffer so the driver can borrow the
            // kernel mutably while reading the group slice.
            let mut group = std::mem::take(&mut self.scratch_group);
            group.clear();
            {
                let d = &mut self.devices[di];
                if now < d.open_at_ns || d.lanes_busy >= d.lanes_total {
                    self.scratch_group = group;
                    return Ok(());
                }
                // Next non-cancelled task, heads first.
                let mut next = None;
                while let Some(t) = d.fifo_heads.pop_front().or_else(|| d.fifo.pop_front()) {
                    if !self.tasks.cancelled(t) {
                        next = Some(t);
                        break;
                    }
                    if self.policy.recycle_tasks {
                        self.tasks.mark_finished(t);
                        self.free_tasks.push(t);
                    }
                }
                let Some(tid) = next else {
                    self.scratch_group = group;
                    return Ok(());
                };
                // Module-level batching: absorb queued runs of the same
                // module into this execution, up to the module's cap.
                group.push(tid);
                if let Some(global_cap) = self.policy.max_batch {
                    let cap = self
                        .module_batch_caps
                        .get(self.tasks.module(tid) as usize)
                        .copied()
                        .unwrap_or(global_cap);
                    while group.len() < cap {
                        let Some(&peek) = d.fifo.front() else { break };
                        if self.tasks.cancelled(peek)
                            || self.tasks.is_head(peek) != self.tasks.is_head(tid)
                            || self.tasks.module(peek) != self.tasks.module(tid)
                        {
                            break;
                        }
                        group.push(d.fifo.pop_front().expect("front exists"));
                    }
                }
                d.lanes_busy += 1;
                let epoch = d.lane_epoch;
                for &g in &group {
                    self.tasks.set_lane_epoch(g, epoch);
                }
            }
            let end = driver.dispatched(self, di, &group, now)?;
            // All batched members complete together; only the leader's
            // lane is occupied, and it frees once.
            for (i, &g) in group.iter().enumerate() {
                self.push(
                    end,
                    if i == 0 {
                        Event::Done(g)
                    } else {
                        Event::BatchedDone(g)
                    },
                );
            }
            self.scratch_group = group;
        }
    }

    /// Completion of task `tid`: lane accounting, then request fan-in
    /// bookkeeping (encoder → head readiness; head → request done), then
    /// another dispatch round on the freed device.
    fn finish_task<D: Driver<Custom = X, Payload = P>>(
        &mut self,
        tid: usize,
        frees_lane: bool,
        now: u64,
        driver: &mut D,
    ) -> Result<(), D::Error> {
        let (di, req, is_head, lane_epoch, cancelled) = {
            let m = self.tasks.finish(tid);
            (
                m.device as usize,
                m.req as usize,
                m.flags & TASK_HEAD != 0,
                m.lane_epoch,
                m.flags & TASK_CANCELLED != 0,
            )
        };
        let lane_live = frees_lane && self.devices[di].lane_epoch == lane_epoch;
        if lane_live {
            self.devices[di].lanes_busy = self.devices[di].lanes_busy.saturating_sub(1);
        }
        driver.task_finished(self, tid, now, lane_live)?;
        if cancelled {
            self.try_dispatch(di, now, driver)?;
            self.release_task(tid);
            return Ok(());
        }
        if is_head {
            driver.head_done(self, req, now)?;
        } else {
            driver.encoder_finished(self, tid, now)?;
        }
        self.try_dispatch(di, now, driver)?;
        // The completion event just consumed was this task's last
        // kernel-side reference: it is out of every queue, holds no
        // lane, and its request's fan-in no longer needs it.
        self.release_task(tid);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A driver with unit-duration tasks that logs completions.
    struct Fixed {
        dur_ns: u64,
        done: Vec<(usize, u64)>,
        heads: Vec<(usize, u64)>,
    }

    impl Driver for Fixed {
        type Custom = u32;
        type Payload = ();
        type Error = std::convert::Infallible;

        fn dispatched(
            &mut self,
            _k: &mut Kernel<u32, ()>,
            _device: usize,
            _group: &[usize],
            now: u64,
        ) -> Result<u64, Self::Error> {
            Ok(now + self.dur_ns)
        }

        fn task_finished(
            &mut self,
            _k: &mut Kernel<u32, ()>,
            tid: usize,
            now: u64,
            _lane_live: bool,
        ) -> Result<(), Self::Error> {
            self.done.push((tid, now));
            Ok(())
        }

        fn encoder_ready_ns(
            &mut self,
            _k: &mut Kernel<u32, ()>,
            _tid: usize,
            now: u64,
        ) -> Result<u64, Self::Error> {
            Ok(now)
        }

        fn head_done(
            &mut self,
            _k: &mut Kernel<u32, ()>,
            req: usize,
            now: u64,
        ) -> Result<(), Self::Error> {
            self.heads.push((req, now));
            Ok(())
        }
    }

    fn fixed(dur_ns: u64) -> Fixed {
        Fixed {
            dur_ns,
            done: Vec::new(),
            heads: Vec::new(),
        }
    }

    /// One device, one request with two encoders and a head.
    fn seed_fanout(k: &mut Kernel<u32, ()>) {
        let head = k.spawn_task(0, 2, 0, true, ());
        let e0 = k.spawn_task(0, 0, 0, false, ());
        let e1 = k.spawn_task(0, 1, 0, false, ());
        k.set_request(
            0,
            RequestSlot {
                pending_encoders: 2,
                head_ready_ns: 0,
                head_task: head,
            },
        );
        k.push_ready(0, e0);
        k.push_ready(0, e1);
    }

    #[test]
    fn head_fires_after_last_encoder_single_lane() {
        let mut k: Kernel<u32, ()> = Kernel::new(vec![Device::new(1, 0)], Policy::default());
        let mut d = fixed(10);
        seed_fanout(&mut k);
        let n = k.run_until_idle(&mut d).unwrap();
        assert!(n >= 3);
        // Serial encoders at t=10, 20; head completes at t=30.
        assert_eq!(d.heads, vec![(0, 30)]);
        assert_eq!(k.pending_events(), 0);
    }

    #[test]
    fn immediate_head_fire_wins_the_freed_lane() {
        for immediate in [false, true] {
            let mut k: Kernel<u32, ()> = Kernel::new(
                vec![Device::new(1, 0)],
                Policy {
                    immediate_head_fire: immediate,
                    max_batch: None,
                    recycle_tasks: false,
                    scheduler: Scheduler::Auto,
                },
            );
            let mut d = fixed(10);
            seed_fanout(&mut k);
            // A competing encoder of request 1 queued behind request 0's
            // work; the head beats it in both modes (head priority), so
            // completion times agree — the modes differ only in event
            // scheduling, which this asserts stays consistent.
            let other = k.spawn_task(1, 7, 0, false, ());
            k.set_request(
                1,
                RequestSlot {
                    // Two pending with one spawned: the fan-in never
                    // reaches zero, so no head ever fires for it.
                    pending_encoders: 2,
                    head_ready_ns: 0,
                    head_task: usize::MAX,
                },
            );
            k.push_ready(5, other);
            k.run_until_idle(&mut d).unwrap();
            // Immediate mode: the head jumps straight onto the head
            // queue when the last encoder frees the lane at t=20, so it
            // beats the competing encoder (head done at 30). Event
            // mode: the `Ready` fires at t=20 *after* the freed lane
            // was handed to the waiting encoder, so the head queues
            // behind it (done at 40).
            let expected = if immediate { 30 } else { 40 };
            assert_eq!(d.heads, vec![(0, expected)], "immediate={immediate}");
        }
    }

    #[test]
    fn run_until_pauses_and_resume_matches_uninterrupted() {
        let run = |pause_at: Option<u64>| {
            let mut k: Kernel<u32, ()> = Kernel::new(
                vec![Device::new(2, 0), Device::new(1, 5)],
                Policy::default(),
            );
            let mut d = fixed(7);
            // Two requests fanning over both devices.
            for req in 0..2 {
                let head = k.spawn_task(req, 9, 0, true, ());
                let enc = k.spawn_task(req, req as u32, 1, false, ());
                k.set_request(
                    req,
                    RequestSlot {
                        pending_encoders: 1,
                        head_ready_ns: 0,
                        head_task: head,
                    },
                );
                k.push_ready(req as u64 * 3, enc);
            }
            k.push_device_open(5, 1);
            if let Some(t) = pause_at {
                k.run_until(&mut d, t).unwrap();
                // Paused: the kernel holds state; resuming drains it.
            }
            k.run_until_idle(&mut d).unwrap();
            (d.done, d.heads)
        };
        let uninterrupted = run(None);
        for pause in [0, 4, 7, 11, 100] {
            assert_eq!(run(Some(pause)), uninterrupted, "pause at {pause}");
        }
    }

    #[test]
    fn cancelled_tasks_skip_dispatch_and_request_bookkeeping() {
        let mut k: Kernel<u32, ()> = Kernel::new(vec![Device::new(1, 0)], Policy::default());
        let mut d = fixed(10);
        seed_fanout(&mut k);
        // Cancel one queued encoder before it runs: the head must never
        // fire (pending_encoders stays at 1).
        k.tasks.cancel(2);
        k.run_until_idle(&mut d).unwrap();
        assert!(d.heads.is_empty());
        assert_eq!(k.requests[0].pending_encoders, 1);
    }

    #[test]
    fn lane_epoch_guards_stale_completions() {
        let mut k: Kernel<u32, ()> = Kernel::new(vec![Device::new(1, 0)], Policy::default());
        let mut d = fixed(10);
        let t = k.spawn_task(0, 0, 0, false, ());
        k.set_request(
            0,
            RequestSlot {
                pending_encoders: 1,
                head_ready_ns: 0,
                head_task: usize::MAX,
            },
        );
        k.push_ready(0, t);
        // Dispatch it, then force-reset the device before completion.
        k.step(&mut d).unwrap();
        assert_eq!(k.devices[0].lanes_busy, 1);
        k.devices[0].reset_lanes();
        k.tasks.cancel(t);
        k.run_until_idle(&mut d).unwrap();
        // The stale completion neither underflows the counter nor
        // revives the lane.
        assert_eq!(k.devices[0].lanes_busy, 0);
        assert_eq!(k.devices[0].lane_epoch, 1);
    }

    #[test]
    fn event_heap_pops_in_key_order() {
        let mut h: KeyHeap<Event<u32>> = KeyHeap::with_capacity(0);
        // Keys deliberately pushed out of order, with same-time entries
        // distinguished only by sequence (low 64 bits).
        let keys: [(u64, u64); 7] = [(5, 2), (1, 9), (5, 1), (0, 3), (9, 4), (1, 8), (0, 7)];
        for &(t, s) in &keys {
            h.push(((t as u128) << 64) | s as u128, Event::Ready(s as usize));
        }
        let mut sorted: Vec<(u64, u64)> = keys.to_vec();
        sorted.sort_unstable();
        for want in sorted {
            let (k, ev) = h.pop().unwrap();
            assert_eq!(((k >> 64) as u64, k as u64), want);
            assert_eq!(ev, Event::Ready(want.1 as usize));
        }
        assert!(h.pop().is_none());
        assert_eq!(h.len(), 0);
    }

    /// Four same-module tasks queued at a 1-lane device that opens at
    /// t=5, under a given per-module cap table; returns completion times.
    fn run_capped(module: u32, caps: Vec<usize>) -> Vec<u64> {
        let mut k: Kernel<u32, ()> = Kernel::new(
            vec![Device::new(1, 5)],
            Policy {
                immediate_head_fire: false,
                max_batch: Some(4),
                recycle_tasks: false,
                scheduler: Scheduler::Auto,
            },
        );
        k.module_batch_caps = caps;
        let mut d = fixed(10);
        for req in 0..4 {
            let t = k.spawn_task(req, module, 0, false, ());
            k.set_request(
                req,
                RequestSlot {
                    pending_encoders: 2,
                    head_ready_ns: 0,
                    head_task: usize::MAX,
                },
            );
            k.push_ready(0, t);
        }
        k.push_device_open(5, 0);
        k.run_until_idle(&mut d).unwrap();
        d.done.iter().map(|&(_, at)| at).collect()
    }

    #[test]
    fn per_module_caps_override_the_global_batch_bound() {
        // Cap table [2, 1] under a global cap of 4: module 0 batches in
        // pairs, module 1 serializes, and a module beyond the table
        // falls back to the global cap (all four merge).
        assert_eq!(run_capped(0, vec![2, 1]), vec![15, 15, 25, 25]);
        assert_eq!(run_capped(1, vec![2, 1]), vec![15, 25, 35, 45]);
        assert_eq!(run_capped(7, vec![2, 1]), vec![15, 15, 15, 15]);
        // An empty table means the global cap for everything.
        assert_eq!(run_capped(0, vec![]), vec![15, 15, 15, 15]);
    }

    #[test]
    fn batching_groups_same_module_followers() {
        // The device opens at t=5, so all three same-module tasks are
        // queued when the first dispatch happens and merge into one run.
        let mut k: Kernel<u32, ()> = Kernel::new(
            vec![Device::new(1, 5)],
            Policy {
                immediate_head_fire: false,
                max_batch: Some(4),
                recycle_tasks: false,
                scheduler: Scheduler::Auto,
            },
        );
        let mut d = fixed(10);
        for req in 0..3 {
            let t = k.spawn_task(req, 42, 0, false, ());
            k.set_request(
                req,
                RequestSlot {
                    // Never reaches zero: no head fan-in in this test.
                    pending_encoders: 2,
                    head_ready_ns: 0,
                    head_task: usize::MAX,
                },
            );
            k.push_ready(0, t);
        }
        k.push_device_open(5, 0);
        k.run_until_idle(&mut d).unwrap();
        // All three completed together at t=15: one leader + two
        // batched followers sharing its lane.
        assert_eq!(d.done.iter().filter(|&&(_, at)| at == 15).count(), 3);
    }

    #[test]
    fn recycling_reuses_slots_and_matches_append_only_timing() {
        // Serial single-lane fan-outs: with recycling the table stays at
        // the in-flight high-water (one request's 3 tasks) no matter how
        // many requests run, and completion times match the append-only
        // kernel exactly.
        let run = |recycle: bool| {
            let mut k: Kernel<u32, ()> = Kernel::new(
                vec![Device::new(1, 0)],
                Policy {
                    immediate_head_fire: false,
                    max_batch: None,
                    recycle_tasks: recycle,
                    scheduler: Scheduler::Auto,
                },
            );
            let mut d = fixed(10);
            for req in 0..8 {
                // Space the fan-outs so each completes before the next
                // spawns (spawn at t=req*100 via manual stepping).
                let head = k.spawn_task(req, 2, 0, true, ());
                let e0 = k.spawn_task(req, 0, 0, false, ());
                let e1 = k.spawn_task(req, 1, 0, false, ());
                k.set_request(
                    req,
                    RequestSlot {
                        pending_encoders: 2,
                        head_ready_ns: 0,
                        head_task: head,
                    },
                );
                let at = req as u64 * 100;
                k.push_ready(at, e0);
                k.push_ready(at, e1);
                k.run_until(&mut d, at + 99).unwrap();
            }
            k.run_until_idle(&mut d).unwrap();
            (d.heads, k.tasks.len(), k.live_tasks())
        };
        let (heads_a, table_a, live_a) = run(false);
        let (heads_r, table_r, live_r) = run(true);
        assert_eq!(heads_a, heads_r, "recycling never changes timing");
        assert_eq!(heads_r.len(), 8);
        assert_eq!(table_a, 24, "append-only grows with every spawn");
        assert_eq!(table_r, 3, "recycled table stays at in-flight peak");
        assert_eq!((live_a, live_r), (24, 0));
    }

    #[test]
    fn reset_device_lanes_releases_queued_tasks_when_recycling() {
        let mut k: Kernel<u32, ()> = Kernel::new(
            vec![Device::new(1, 0)],
            Policy {
                immediate_head_fire: false,
                max_batch: None,
                recycle_tasks: true,
                scheduler: Scheduler::Auto,
            },
        );
        let mut d = fixed(10);
        // Three encoders: one dispatches, two queue behind it.
        for req in 0..3 {
            let t = k.spawn_task(req, 0, 0, false, ());
            k.set_request(
                req,
                RequestSlot {
                    pending_encoders: 2,
                    head_ready_ns: 0,
                    head_task: usize::MAX,
                },
            );
            k.push_ready(0, t);
        }
        // Process the three Ready events (first one dispatches).
        k.run_until(&mut d, 0).unwrap();
        assert_eq!(k.devices[0].lanes_busy, 1);
        assert_eq!(k.devices[0].fifo.len(), 2);
        k.reset_device_lanes(0);
        // Queued tasks released immediately; the running one only when
        // its (stale) completion fires.
        assert_eq!(k.live_tasks(), 1);
        k.tasks.cancel(0);
        k.run_until_idle(&mut d).unwrap();
        assert_eq!(k.live_tasks(), 0);
        assert_eq!(k.devices[0].lanes_busy, 0);
    }
    /// An `Auto` queue runs as a heap while small and spills into the
    /// timing wheel — preserving exact pop order — once the pending
    /// set crosses [`WHEEL_SPILL_LEN`].
    #[test]
    fn adaptive_queue_spills_to_wheel_in_order() {
        let mut q: EventQueue<()> = EventQueue::for_policy(&Policy::default(), 16);
        assert!(matches!(q, EventQueue::Adaptive(_)));
        // A deterministic scatter of times, including duplicates.
        let n = WHEEL_SPILL_LEN + 500;
        let mut keys: Vec<u128> = Vec::with_capacity(n);
        let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
        for seq in 0..n as u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let t = x >> 20; // ~44-bit times: spans several wheel levels
            keys.push(((t as u128) << 64) | u128::from(seq));
        }
        for &k in &keys {
            q.push(k, Event::Ready(0));
        }
        assert!(
            matches!(q, EventQueue::Wheel(_)),
            "queue should have spilled past {WHEEL_SPILL_LEN} pending"
        );
        keys.sort_unstable();
        for &expect in &keys {
            assert_eq!(q.peek_key(), Some(expect));
            assert_eq!(q.pop().map(|(k, _)| k), Some(expect));
        }
        assert_eq!(q.pop().map(|(k, _)| k), None);
    }
}
