//! The discrete-event engine.
//!
//! Devices are modeled as `parallelism`-lane executors with FIFO module
//! queues; transfers are pure delays computed from the topology. Requests
//! fan their encoders out at arrival (longest-first dispatch), the head
//! fires when the last embedding lands, and the next request's work enters
//! a queue the moment the previous one leaves it — the paper's pipelining.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use s2m3_core::error::CoreError;
use s2m3_core::plan::Plan;
use s2m3_core::problem::{Instance, Request, Route};
use s2m3_core::resolved::ResolvedInstance;
use s2m3_models::module::ModuleKind;
use s2m3_net::device::DeviceId;

use crate::report::{GanttSpan, Phase, RequestTiming, SimReport};

/// Simulation options.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimConfig {
    /// Simulate model loading before serving (end-to-end mode). Each
    /// device streams its placed modules' weights sequentially from t=0.
    pub include_loading: bool,
    /// Arrival times aligned with `plan.routed`; `None` = all at t=0
    /// (the Table X "simultaneous requests" setting).
    pub arrivals: Option<Vec<f64>>,
    /// Module-level batch inference (Sec. VI-C): when a device lane
    /// frees, up to this many queued executions of the *same module* are
    /// merged into one batched run, paying the per-execution overhead
    /// once. `None` disables batching (the Table X default).
    pub max_batch: Option<usize>,
}

/// Simulator errors.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// An underlying core lookup failed (malformed plan).
    Core(CoreError),
    /// `arrivals` length does not match the plan's request count.
    ArrivalsMismatch {
        /// Requests in the plan.
        expected: usize,
        /// Arrival entries supplied.
        got: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Core(e) => write!(f, "core error: {e}"),
            SimError::ArrivalsMismatch { expected, got } => {
                write!(
                    f,
                    "plan has {expected} requests but {got} arrivals were given"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<CoreError> for SimError {
    fn from(e: CoreError) -> Self {
        SimError::Core(e)
    }
}

const NS: f64 = 1.0e9;

fn ns(t: f64) -> u64 {
    (t * NS).round() as u64
}

fn secs(t: u64) -> f64 {
    t as f64 / NS
}

#[derive(Debug, Clone)]
struct Task {
    /// Request id, for the report boundary.
    request: u64,
    /// Dense request index (position in `plan.routed`).
    req_idx: usize,
    /// Interned module index.
    module: u32,
    device: usize,
    dur: f64,
    /// For encoders: embedding transfer time to the head device.
    output_tx: f64,
    is_head: bool,
}

#[derive(Debug)]
struct DeviceState {
    id: DeviceId,
    lanes_total: usize,
    lanes_busy: usize,
    /// Per-execution overhead, amortized when batching merges runs.
    exec_overhead_s: f64,
    /// Head tasks: dispatched before queued encoder work, so in-flight
    /// requests complete before the next request's encoding begins (the
    /// paper's one-by-one processing with opportunistic pipelining).
    fifo_heads: VecDeque<usize>,
    fifo: VecDeque<usize>,
    open_at: u64,
}

#[derive(Debug)]
struct RequestState {
    pending_encoders: usize,
    /// Max over (encoder completion + output transfer) and the raw-query
    /// arrival at the head device.
    head_ready: u64,
    head_task: usize,
    arrival: f64,
}

#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    Ready(usize),
    Done {
        task: usize,
    },
    /// A batched follower finishing alongside its leader: completes the
    /// task's request bookkeeping without freeing a lane.
    BatchedDone {
        task: usize,
    },
    DeviceOpen(usize),
}

/// Resolves the routed device of module `m` for `route`, with the same
/// error split as the string path: missing from the route is
/// [`CoreError::Unrouted`], outside the fleet is
/// [`CoreError::UnknownDevice`].
fn routed_device(resolved: &ResolvedInstance, route: &Route, m: u32) -> Result<u32, CoreError> {
    let dev = route
        .device_for(resolved.module_name(m))
        .ok_or_else(|| CoreError::Unrouted(resolved.module_name(m).clone()))?;
    resolved
        .device_index(dev)
        .ok_or_else(|| CoreError::UnknownDevice(dev.clone()))
}

fn source_index(resolved: &ResolvedInstance, request: &Request) -> Result<u32, CoreError> {
    resolved
        .device_index(&request.source)
        .ok_or_else(|| CoreError::UnknownDevice(request.source.clone()))
}

/// Runs a plan to completion in virtual time.
///
/// # Errors
///
/// [`SimError::ArrivalsMismatch`] on bad config; [`SimError::Core`] if the
/// plan references unknown models/devices (a validated plan cannot).
pub fn simulate(
    instance: &Instance,
    plan: &Plan,
    config: &SimConfig,
) -> Result<SimReport, SimError> {
    let arrivals: Vec<f64> = match &config.arrivals {
        Some(a) => {
            if a.len() != plan.routed.len() {
                return Err(SimError::ArrivalsMismatch {
                    expected: plan.routed.len(),
                    got: a.len(),
                });
            }
            a.clone()
        }
        None => vec![0.0; plan.routed.len()],
    };

    let devices = instance.fleet().devices();
    let resolved = ResolvedInstance::new(instance)?;

    let mut report = SimReport::default();

    // --- Model loading: each device streams its placed modules (largest
    //     first, deterministic) sequentially from t=0.
    let mut open_at = vec![0u64; devices.len()];
    if config.include_loading {
        for (m, n) in plan.placement.iter() {
            let Some(mi) = resolved.module_index(m) else {
                continue;
            };
            let spec = resolved.module_spec(mi);
            let di = resolved
                .device_index(n)
                .ok_or_else(|| CoreError::UnknownDevice(n.clone()))? as usize;
            let dur = devices[di].load_time(spec);
            if dur <= 0.0 {
                continue;
            }
            let start = secs(open_at[di]);
            report.spans.push(GanttSpan {
                device: n.clone(),
                request: None,
                phase: Phase::ModelLoading(m.clone()),
                start,
                end: start + dur,
            });
            open_at[di] = ns(start + dur);
        }
        report.loading_done = open_at.iter().copied().map(secs).fold(0.0, f64::max);
    }

    let mut dev_states: Vec<DeviceState> = devices
        .iter()
        .enumerate()
        .map(|(i, d)| DeviceState {
            id: d.id.clone(),
            lanes_total: d.parallelism.max(1),
            lanes_busy: 0,
            exec_overhead_s: d.exec_overhead_s,
            fifo_heads: VecDeque::new(),
            fifo: VecDeque::new(),
            open_at: open_at[i],
        })
        .collect();

    // --- Build tasks and initial events.
    let mut tasks: Vec<Task> = Vec::new();
    let mut req_states: Vec<RequestState> = Vec::with_capacity(plan.routed.len());
    let mut queue: BinaryHeap<Reverse<(u64, u64, Event)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let push = |q: &mut BinaryHeap<Reverse<(u64, u64, Event)>>, t: u64, s: &mut u64, e: Event| {
        *s += 1;
        q.push(Reverse((t, *s, e)));
    };

    for (req_idx, ((request, route), &arrival)) in plan.routed.iter().zip(&arrivals).enumerate() {
        let model = resolved
            .model_index(&request.model)
            .ok_or_else(|| CoreError::UnknownModel(request.model.clone()))?;
        let rmodel = &resolved.models()[model];
        let source = source_index(&resolved, request)?;
        let head_m = rmodel.head;
        let head_kind = resolved.module_kind(head_m);
        let head_di = routed_device(&resolved, route, head_m)?;
        let head_dur =
            resolved.compute_time_units(head_m, head_di, request.profile.units(head_kind));
        let head_task = tasks.len();
        tasks.push(Task {
            request: request.id,
            req_idx,
            module: head_m,
            device: head_di as usize,
            dur: head_dur,
            output_tx: 0.0,
            is_head: true,
        });

        // Raw-query transfer for generative heads (travels immediately).
        let mut head_ready = ns(arrival);
        if head_kind == ModuleKind::LanguageModel {
            let q_tx = resolved.transfer_time(
                source,
                head_di,
                request.profile.input_bytes(ModuleKind::LanguageModel),
            );
            head_ready = ns(arrival + q_tx);
        }

        // Dispatch order: longest-running encoder first, module id (==
        // index) breaking ties — Algorithm 1's send rule.
        let mut order: Vec<(u32, u32, f64)> = Vec::with_capacity(rmodel.encoders.len());
        for &m in &rmodel.encoders {
            let di = routed_device(&resolved, route, m)?;
            let units = request.profile.units(resolved.module_kind(m));
            order.push((m, di, resolved.compute_time_units(m, di, units)));
        }
        order.sort_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });

        let mut pending = 0usize;
        for &(m, di, dur) in &order {
            let kind = resolved.module_kind(m);
            let units = request.profile.units(kind);
            let input_tx = resolved.transfer_time(source, di, request.profile.input_bytes(kind));
            let output_tx =
                resolved.transfer_time(di, head_di, resolved.module_spec(m).output_bytes(units));
            if input_tx > 0.0 {
                report.spans.push(GanttSpan {
                    device: resolved.device_name(di).clone(),
                    request: Some(request.id),
                    phase: Phase::InputTx(resolved.module_name(m).clone()),
                    start: arrival,
                    end: arrival + input_tx,
                });
            }
            let tid = tasks.len();
            tasks.push(Task {
                request: request.id,
                req_idx,
                module: m,
                device: di as usize,
                dur,
                output_tx,
                is_head: false,
            });
            push(
                &mut queue,
                ns(arrival + input_tx),
                &mut seq,
                Event::Ready(tid),
            );
            pending += 1;
        }

        req_states.push(RequestState {
            pending_encoders: pending,
            head_ready,
            head_task,
            arrival,
        });
        // Encoder-less models cannot exist (ModelSpec validates ≥1), but
        // guard anyway: head fires directly.
        if pending == 0 {
            push(&mut queue, head_ready, &mut seq, Event::Ready(head_task));
        }
    }

    for (i, d) in dev_states.iter().enumerate() {
        if d.open_at > 0 {
            push(&mut queue, d.open_at, &mut seq, Event::DeviceOpen(i));
        }
    }

    // --- Event loop.
    let mut task_done_at: Vec<u64> = vec![0; tasks.len()];
    while let Some(Reverse((now, _, event))) = queue.pop() {
        match event {
            Event::Ready(tid) => {
                let di = tasks[tid].device;
                if tasks[tid].is_head {
                    dev_states[di].fifo_heads.push_back(tid);
                } else {
                    dev_states[di].fifo.push_back(tid);
                }
                try_dispatch(
                    di,
                    now,
                    &resolved,
                    &mut dev_states,
                    &tasks,
                    &mut queue,
                    &mut seq,
                    &mut report,
                    config.max_batch,
                );
            }
            Event::DeviceOpen(di) => {
                try_dispatch(
                    di,
                    now,
                    &resolved,
                    &mut dev_states,
                    &tasks,
                    &mut queue,
                    &mut seq,
                    &mut report,
                    config.max_batch,
                );
            }
            Event::Done { task: tid } | Event::BatchedDone { task: tid } => {
                let di = tasks[tid].device;
                if matches!(event, Event::Done { .. }) {
                    dev_states[di].lanes_busy -= 1;
                }
                task_done_at[tid] = now;
                let t = &tasks[tid];
                if t.is_head {
                    let rs = &req_states[t.req_idx];
                    report.requests.insert(
                        t.request,
                        RequestTiming {
                            arrival: rs.arrival,
                            completion: secs(now),
                        },
                    );
                } else {
                    // Embedding transfer to the head device.
                    if t.output_tx > 0.0 {
                        report.spans.push(GanttSpan {
                            device: dev_states[tasks[req_states[t.req_idx].head_task].device]
                                .id
                                .clone(),
                            request: Some(t.request),
                            phase: Phase::OutputTx(resolved.module_name(t.module).clone()),
                            start: secs(now),
                            end: secs(now) + t.output_tx,
                        });
                    }
                    let ready_contrib = ns(secs(now) + t.output_tx);
                    let rs = &mut req_states[t.req_idx];
                    rs.head_ready = rs.head_ready.max(ready_contrib);
                    rs.pending_encoders -= 1;
                    if rs.pending_encoders == 0 {
                        if rs.head_ready <= now {
                            // Enqueue directly so the head wins the lane
                            // this task just freed, ahead of later
                            // requests' queued encoder work.
                            let head_task = rs.head_task;
                            let hdi = tasks[head_task].device;
                            dev_states[hdi].fifo_heads.push_back(head_task);
                            if hdi != di {
                                try_dispatch(
                                    hdi,
                                    now,
                                    &resolved,
                                    &mut dev_states,
                                    &tasks,
                                    &mut queue,
                                    &mut seq,
                                    &mut report,
                                    config.max_batch,
                                );
                            }
                        } else {
                            push(
                                &mut queue,
                                rs.head_ready,
                                &mut seq,
                                Event::Ready(rs.head_task),
                            );
                        }
                    }
                }
                try_dispatch(
                    di,
                    now,
                    &resolved,
                    &mut dev_states,
                    &tasks,
                    &mut queue,
                    &mut seq,
                    &mut report,
                    config.max_batch,
                );
            }
        }
    }

    report.spans.sort_by(|a, b| {
        a.start
            .partial_cmp(&b.start)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.device.cmp(&b.device))
    });
    report.makespan = report
        .requests
        .values()
        .map(|r| r.completion)
        .fold(report.loading_done, f64::max);
    Ok(report)
}

#[allow(clippy::too_many_arguments)]
fn try_dispatch(
    di: usize,
    now: u64,
    resolved: &ResolvedInstance,
    dev_states: &mut [DeviceState],
    tasks: &[Task],
    queue: &mut BinaryHeap<Reverse<(u64, u64, Event)>>,
    seq: &mut u64,
    report: &mut SimReport,
    max_batch: Option<usize>,
) {
    let d = &mut dev_states[di];
    if now < d.open_at {
        return;
    }
    while d.lanes_busy < d.lanes_total {
        let Some(tid) = d.fifo_heads.pop_front().or_else(|| d.fifo.pop_front()) else {
            break;
        };
        let t = &tasks[tid];

        // Module-level batching (Sec. VI-C): absorb queued runs of the
        // same module into this execution, paying exec_overhead once.
        let mut group = vec![tid];
        if let Some(cap) = max_batch {
            while group.len() < cap {
                let Some(&next) = d.fifo.front() else { break };
                if tasks[next].is_head != t.is_head || tasks[next].module != t.module {
                    break;
                }
                group.push(d.fifo.pop_front().expect("front exists"));
            }
        }
        let dur: f64 = group.iter().map(|&g| tasks[g].dur).sum::<f64>()
            - (group.len() as f64 - 1.0) * d.exec_overhead_s;

        d.lanes_busy += 1;
        let start = secs(now);
        let end = start + dur;
        for &g in &group {
            let gt = &tasks[g];
            report.spans.push(GanttSpan {
                device: d.id.clone(),
                request: Some(gt.request),
                phase: if gt.is_head {
                    Phase::Head(resolved.module_name(gt.module).clone())
                } else {
                    Phase::Encode(resolved.module_name(gt.module).clone())
                },
                start,
                end,
            });
        }
        // All batched members complete together; only the lane of the
        // leader is occupied, and it frees once.
        for (i, &g) in group.iter().enumerate() {
            *seq += 1;
            if i == 0 {
                queue.push(Reverse((ns(end), *seq, Event::Done { task: g })));
            } else {
                queue.push(Reverse((ns(end), *seq, Event::BatchedDone { task: g })));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2m3_core::objective::total_latency;
    use s2m3_net::fleet::Fleet;

    fn plan_for(name: &str, candidates: usize, n_requests: usize) -> (Instance, Plan) {
        let i = Instance::single_model(name, candidates).unwrap();
        let requests: Vec<_> = (0..n_requests)
            .map(|k| i.request(k as u64, name).unwrap())
            .collect();
        let plan = Plan::greedy(&i, requests).unwrap();
        (i, plan)
    }

    #[test]
    fn single_request_matches_analytic_objective() {
        for (name, c) in [
            ("CLIP ViT-B/16", 101),
            ("CLIP ResNet-50", 10),
            ("Encoder-only VQA (Small)", 1),
            ("Flint-v0.5-1B", 1),
            ("CLIP-Classifier Food-101", 0),
        ] {
            let (i, plan) = plan_for(name, c, 1);
            let report = simulate(&i, &plan, &SimConfig::default()).unwrap();
            let analytic = total_latency(&i, &plan.routed[0].1, &plan.routed[0].0).unwrap();
            let simulated = report.request_latency(0).unwrap();
            assert!(
                (simulated - analytic).abs() < 0.05,
                "{name}: sim {simulated:.3} vs analytic {analytic:.3}"
            );
        }
    }

    #[test]
    fn loading_gates_inference() {
        let (i, plan) = plan_for("CLIP ViT-B/16", 101, 1);
        let without = simulate(&i, &plan, &SimConfig::default()).unwrap();
        let with = simulate(
            &i,
            &plan,
            &SimConfig {
                include_loading: true,
                ..SimConfig::default()
            },
        )
        .unwrap();
        assert!(with.loading_done > 0.5);
        assert!(with.request_latency(0).unwrap() > without.request_latency(0).unwrap() + 0.5);
        assert!(with
            .spans
            .iter()
            .any(|s| matches!(s.phase, Phase::ModelLoading(_))));
    }

    #[test]
    fn simultaneous_requests_queue_on_shared_modules() {
        // Two identical retrieval requests at t=0 share one text encoder:
        // the second must wait (Table X's queuing observation).
        let (i, plan) = plan_for("CLIP ViT-B/16", 101, 2);
        let r = simulate(&i, &plan, &SimConfig::default()).unwrap();
        let l0 = r.request_latency(0).unwrap();
        let l1 = r.request_latency(1).unwrap();
        assert!(
            (l1 - l0).abs() > 0.5 || l1 > l0 + 0.5 || l0 > l1 + 0.5,
            "one of the colliding requests must queue: {l0:.2} vs {l1:.2}"
        );
        assert!(r.max_latency() > r.mean_latency());
    }

    #[test]
    fn pipelining_beats_serial_submission() {
        // 4 requests submitted together finish earlier than 4 submitted
        // each after the previous completes (encoders overlap).
        let (i, plan) = plan_for("CLIP ViT-B/16", 101, 4);
        let together = simulate(&i, &plan, &SimConfig::default()).unwrap();
        let single = simulate(
            &i,
            &Plan {
                placement: plan.placement.clone(),
                routed: vec![plan.routed[0].clone()],
            },
            &SimConfig::default(),
        )
        .unwrap();
        let serial_makespan = 4.0 * single.request_latency(0).unwrap();
        assert!(
            together.makespan < serial_makespan,
            "pipelined {} vs serial {}",
            together.makespan,
            serial_makespan
        );
    }

    #[test]
    fn staggered_arrivals_respected() {
        let (i, plan) = plan_for("CLIP ViT-B/16", 10, 2);
        let r = simulate(
            &i,
            &plan,
            &SimConfig {
                arrivals: Some(vec![0.0, 100.0]),
                ..SimConfig::default()
            },
        )
        .unwrap();
        let t1 = r.requests[&1];
        assert!(t1.arrival == 100.0 && t1.completion > 100.0);
        // Far-apart arrivals do not queue on each other.
        assert!((r.request_latency(0).unwrap() - r.request_latency(1).unwrap()).abs() < 0.05);
    }

    #[test]
    fn arrivals_mismatch_is_an_error() {
        let (i, plan) = plan_for("CLIP ViT-B/16", 10, 2);
        let err = simulate(
            &i,
            &plan,
            &SimConfig {
                arrivals: Some(vec![0.0]),
                ..SimConfig::default()
            },
        )
        .unwrap_err();
        assert_eq!(
            err,
            SimError::ArrivalsMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn multi_task_simultaneous_burst_runs_all() {
        let i = Instance::on_fleet(
            Fleet::edge_testbed(),
            &[
                ("CLIP ViT-B/16", 101),
                ("Encoder-only VQA (Small)", 1),
                ("AlignBind-B", 16),
                ("CLIP-Classifier Food-101", 0),
            ],
        )
        .unwrap();
        let requests: Vec<_> = i
            .deployments()
            .iter()
            .enumerate()
            .map(|(k, d)| i.request(k as u64, &d.model.name).unwrap())
            .collect();
        let plan = Plan::greedy(&i, requests).unwrap();
        let r = simulate(&i, &plan, &SimConfig::default()).unwrap();
        assert_eq!(r.requests.len(), 4);
        assert!(r.makespan > 0.0);
        // Gantt renders with something on multiple devices.
        let g = r.render_gantt(60);
        assert!(g.matches('|').count() >= 4);
    }

    #[test]
    fn deterministic_replay() {
        let (i, plan) = plan_for("CLIP ViT-B/16", 101, 3);
        let a = simulate(&i, &plan, &SimConfig::default()).unwrap();
        let b = simulate(&i, &plan, &SimConfig::default()).unwrap();
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod batching_tests {
    use super::*;

    fn burst_plan(n: usize) -> (Instance, Plan) {
        let i = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
        let requests: Vec<_> = (0..n as u64)
            .map(|k| i.request(k, "CLIP ViT-B/16").unwrap())
            .collect();
        let plan = Plan::greedy(&i, requests).unwrap();
        (i, plan)
    }

    #[test]
    fn batching_reduces_burst_makespan() {
        // Sec. VI-C: aggregating queued requests at the shared text
        // encoder amortizes the per-execution overhead.
        let (i, plan) = burst_plan(6);
        let plain = simulate(&i, &plan, &SimConfig::default()).unwrap();
        let batched = simulate(
            &i,
            &plan,
            &SimConfig {
                max_batch: Some(8),
                ..SimConfig::default()
            },
        )
        .unwrap();
        assert!(
            batched.makespan < plain.makespan,
            "batched {:.2} vs plain {:.2}",
            batched.makespan,
            plain.makespan
        );
        assert_eq!(batched.requests.len(), 6);
    }

    #[test]
    fn batch_of_one_changes_nothing() {
        let (i, plan) = burst_plan(3);
        let plain = simulate(&i, &plan, &SimConfig::default()).unwrap();
        let b1 = simulate(
            &i,
            &plan,
            &SimConfig {
                max_batch: Some(1),
                ..SimConfig::default()
            },
        )
        .unwrap();
        assert_eq!(plain.requests, b1.requests);
    }

    #[test]
    fn batched_members_complete_together() {
        let (i, plan) = burst_plan(4);
        let batched = simulate(
            &i,
            &plan,
            &SimConfig {
                max_batch: Some(4),
                ..SimConfig::default()
            },
        )
        .unwrap();
        // The four text encodings batch into overlapping spans on the
        // text host: at least two encode spans share an end time.
        let mut ends: Vec<u64> = batched
            .spans
            .iter()
            .filter(|s| matches!(s.phase, Phase::Encode(_)))
            .map(|s| ns(s.end))
            .collect();
        ends.sort_unstable();
        let shared = ends.windows(2).any(|w| w[0] == w[1]);
        assert!(shared, "expected batched completions: {ends:?}");
    }
}
