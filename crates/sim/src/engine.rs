//! The offline discrete-event engine: the *bounded driver* over the
//! shared [`kernel`](crate::kernel).
//!
//! Devices are modeled as `parallelism`-lane executors with FIFO module
//! queues; transfers are pure delays computed from the topology. Requests
//! fan their encoders out at arrival (longest-first dispatch), the head
//! fires when the last embedding lands, and the next request's work enters
//! a queue the moment the previous one leaves it — the paper's pipelining.
//!
//! The event loop itself lives in [`crate::kernel`]; this module seeds a
//! fixed request set, supplies the timing arithmetic and Gantt-span
//! bookkeeping through the [`Driver`] hooks, and runs the machine to
//! idle. The online counterpart (`s2m3-serve`) layers admission control
//! and live replanning over the *same* kernel.

use s2m3_core::error::CoreError;
use s2m3_core::plan::Plan;
use s2m3_core::problem::{Instance, Request, Route};
use s2m3_core::resolved::ResolvedInstance;
use s2m3_models::module::ModuleKind;

use crate::kernel::{Device, Driver, Kernel, Policy, RequestSlot, Scheduler};
use crate::report::{GanttSpan, Phase, RequestTiming, SimReport};

/// Simulation options.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimConfig {
    /// Simulate model loading before serving (end-to-end mode). Each
    /// device streams its placed modules' weights sequentially from t=0.
    pub include_loading: bool,
    /// Arrival times aligned with `plan.routed`; `None` = all at t=0
    /// (the Table X "simultaneous requests" setting).
    pub arrivals: Option<Vec<f64>>,
    /// Module-level batch inference (Sec. VI-C): when a device lane
    /// frees, up to this many queued executions of the *same module* are
    /// merged into one batched run, paying the per-execution overhead
    /// once. `None` disables batching (the Table X default).
    pub max_batch: Option<usize>,
}

/// Simulator errors.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// An underlying core lookup failed (malformed plan).
    Core(CoreError),
    /// `arrivals` length does not match the plan's request count.
    ArrivalsMismatch {
        /// Requests in the plan.
        expected: usize,
        /// Arrival entries supplied.
        got: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Core(e) => write!(f, "core error: {e}"),
            SimError::ArrivalsMismatch { expected, got } => {
                write!(
                    f,
                    "plan has {expected} requests but {got} arrivals were given"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<CoreError> for SimError {
    fn from(e: CoreError) -> Self {
        SimError::Core(e)
    }
}

const NS: f64 = 1.0e9;

fn ns(t: f64) -> u64 {
    (t * NS).round() as u64
}

fn secs(t: u64) -> f64 {
    t as f64 / NS
}

/// The bounded driver never schedules custom events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum NoCustom {}

/// Per-task payload stored inline in the kernel's task table.
#[derive(Debug, Clone, Copy)]
struct TaskInfo {
    /// Request id, for the report boundary.
    request: u64,
    /// Execution duration, seconds (fixed at task creation).
    dur: f64,
    /// For encoders: embedding transfer time to the head device, seconds.
    output_tx: f64,
}

/// The bounded (offline) driver: fixed durations, Gantt spans, request
/// timings.
struct Bounded<'a> {
    resolved: &'a ResolvedInstance,
    /// Per-device execution overhead, amortized when batching merges
    /// runs.
    exec_overhead: Vec<f64>,
    /// Per-request `(id, arrival)` (index-aligned with
    /// `Kernel::requests`).
    req_info: Vec<(u64, f64)>,
    report: SimReport,
}

impl Driver for Bounded<'_> {
    type Custom = NoCustom;
    type Payload = TaskInfo;
    type Error = SimError;

    fn dispatched(
        &mut self,
        k: &mut Kernel<NoCustom, TaskInfo>,
        device: usize,
        group: &[usize],
        now: u64,
    ) -> Result<u64, SimError> {
        let dur: f64 = group.iter().map(|&g| k.tasks.payload(g).dur).sum::<f64>()
            - (group.len() as f64 - 1.0) * self.exec_overhead[device];
        let start = secs(now);
        let end = start + dur;
        for &g in group {
            let module = k.tasks.module(g);
            self.report.spans.push(GanttSpan {
                device: self.resolved.device_name(device as u32).clone(),
                request: Some(k.tasks.payload(g).request),
                phase: if k.tasks.is_head(g) {
                    Phase::Head(self.resolved.module_name(module).clone())
                } else {
                    Phase::Encode(self.resolved.module_name(module).clone())
                },
                start,
                end,
            });
        }
        Ok(ns(end))
    }

    fn encoder_ready_ns(
        &mut self,
        k: &mut Kernel<NoCustom, TaskInfo>,
        tid: usize,
        now: u64,
    ) -> Result<u64, SimError> {
        let info = *k.tasks.payload(tid);
        if info.output_tx > 0.0 {
            let req = k.tasks.req(tid);
            let head_dev = k.tasks.device(k.requests[req].head_task);
            self.report.spans.push(GanttSpan {
                device: self.resolved.device_name(head_dev as u32).clone(),
                request: Some(info.request),
                phase: Phase::OutputTx(self.resolved.module_name(k.tasks.module(tid)).clone()),
                start: secs(now),
                end: secs(now) + info.output_tx,
            });
        }
        Ok(ns(secs(now) + info.output_tx))
    }

    fn head_done(
        &mut self,
        _k: &mut Kernel<NoCustom, TaskInfo>,
        req: usize,
        now: u64,
    ) -> Result<(), SimError> {
        let (id, arrival) = self.req_info[req];
        self.report.requests.insert(
            id,
            RequestTiming {
                arrival,
                completion: secs(now),
            },
        );
        Ok(())
    }
}

/// Resolves the routed device of module `m` for `route`, with the same
/// error split as the string path: missing from the route is
/// [`CoreError::Unrouted`], outside the fleet is
/// [`CoreError::UnknownDevice`].
fn routed_device(resolved: &ResolvedInstance, route: &Route, m: u32) -> Result<u32, CoreError> {
    let dev = route
        .device_for(resolved.module_name(m))
        .ok_or_else(|| CoreError::Unrouted(resolved.module_name(m).clone()))?;
    resolved
        .device_index(dev)
        .ok_or_else(|| CoreError::UnknownDevice(dev.clone()))
}

fn source_index(resolved: &ResolvedInstance, request: &Request) -> Result<u32, CoreError> {
    resolved
        .device_index(&request.source)
        .ok_or_else(|| CoreError::UnknownDevice(request.source.clone()))
}

/// Runs a plan to completion in virtual time.
///
/// Builds the interned [`ResolvedInstance`] view internally; callers
/// that already hold one (parallel sweeps running many replicas of the
/// same instance) use [`simulate_shared`] instead.
///
/// # Errors
///
/// [`SimError::ArrivalsMismatch`] on bad config; [`SimError::Core`] if the
/// plan references unknown models/devices (a validated plan cannot).
pub fn simulate(
    instance: &Instance,
    plan: &Plan,
    config: &SimConfig,
) -> Result<SimReport, SimError> {
    let resolved = ResolvedInstance::new(instance)?;
    simulate_shared(instance, &resolved, plan, config)
}

/// [`simulate`] against a pre-built interned view: replicas of the same
/// instance share one `ResolvedInstance` (typically behind an `Arc`)
/// instead of re-interning per run. `resolved` must be built from
/// `instance`; results are byte-identical to [`simulate`].
///
/// # Errors
///
/// [`SimError::ArrivalsMismatch`] on bad config; [`SimError::Core`] if the
/// plan references unknown models/devices (a validated plan cannot).
pub fn simulate_shared(
    instance: &Instance,
    resolved: &ResolvedInstance,
    plan: &Plan,
    config: &SimConfig,
) -> Result<SimReport, SimError> {
    let arrivals: Vec<f64> = match &config.arrivals {
        Some(a) => {
            if a.len() != plan.routed.len() {
                return Err(SimError::ArrivalsMismatch {
                    expected: plan.routed.len(),
                    got: a.len(),
                });
            }
            a.clone()
        }
        None => vec![0.0; plan.routed.len()],
    };

    let devices = instance.fleet().devices();

    let mut report = SimReport::default();

    // --- Model loading: each device streams its placed modules (largest
    //     first, deterministic) sequentially from t=0.
    let mut open_at = vec![0u64; devices.len()];
    if config.include_loading {
        for (m, n) in plan.placement.iter() {
            let Some(mi) = resolved.module_index(m) else {
                continue;
            };
            let spec = resolved.module_spec(mi);
            let di = resolved
                .device_index(n)
                .ok_or_else(|| CoreError::UnknownDevice(n.clone()))? as usize;
            let dur = devices[di].load_time(spec);
            if dur <= 0.0 {
                continue;
            }
            let start = secs(open_at[di]);
            report.spans.push(GanttSpan {
                device: n.clone(),
                request: None,
                phase: Phase::ModelLoading(m.clone()),
                start,
                end: start + dur,
            });
            open_at[di] = ns(start + dur);
        }
        report.loading_done = open_at.iter().copied().map(secs).fold(0.0, f64::max);
    }

    // One head task per request plus its encoders: exact table sizes.
    let tasks_cap: usize = plan
        .routed
        .iter()
        .map(|(r, _)| {
            1 + resolved
                .model_index(&r.model)
                .map_or(0, |m| resolved.models()[m].encoders.len())
        })
        .sum();
    let mut kernel: Kernel<NoCustom, TaskInfo> = Kernel::with_capacity(
        devices
            .iter()
            .enumerate()
            .map(|(i, d)| Device::new(d.parallelism.max(1), open_at[i]))
            .collect(),
        Policy {
            immediate_head_fire: true,
            max_batch: config.max_batch,
            // The Gantt chart indexes spans by task id; ids must stay
            // append-only.
            recycle_tasks: false,
            // Bounded sims seed a small event set and drain once; the
            // wheel's frontier bookkeeping buys nothing there.
            scheduler: Scheduler::Auto,
        },
        tasks_cap,
        plan.routed.len(),
    );
    let mut driver = Bounded {
        resolved,
        exec_overhead: devices.iter().map(|d| d.exec_overhead_s).collect(),
        req_info: Vec::with_capacity(plan.routed.len()),
        report,
    };

    // --- Build tasks and initial events.
    for (req_idx, ((request, route), &arrival)) in plan.routed.iter().zip(&arrivals).enumerate() {
        let model = driver
            .resolved
            .model_index(&request.model)
            .ok_or_else(|| CoreError::UnknownModel(request.model.clone()))?;
        let rmodel = &driver.resolved.models()[model];
        let source = source_index(driver.resolved, request)?;
        let head_m = rmodel.head;
        let head_kind = driver.resolved.module_kind(head_m);
        let head_di = routed_device(driver.resolved, route, head_m)?;
        let head_dur =
            driver
                .resolved
                .compute_time_units(head_m, head_di, request.profile.units(head_kind));
        let head_task = kernel.spawn_task(
            req_idx,
            head_m,
            head_di as usize,
            true,
            TaskInfo {
                request: request.id,
                dur: head_dur,
                output_tx: 0.0,
            },
        );

        // Raw-query transfer for generative heads (travels immediately).
        let mut head_ready = ns(arrival);
        if head_kind == ModuleKind::LanguageModel {
            let q_tx = driver.resolved.transfer_time(
                source,
                head_di,
                request.profile.input_bytes(ModuleKind::LanguageModel),
            );
            head_ready = ns(arrival + q_tx);
        }

        // Dispatch order: longest-running encoder first, module id (==
        // index) breaking ties — Algorithm 1's send rule.
        let mut order: Vec<(u32, u32, f64)> = Vec::with_capacity(rmodel.encoders.len());
        for &m in &rmodel.encoders {
            let di = routed_device(driver.resolved, route, m)?;
            let units = request.profile.units(driver.resolved.module_kind(m));
            order.push((m, di, driver.resolved.compute_time_units(m, di, units)));
        }
        order.sort_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });

        let mut pending = 0usize;
        for &(m, di, dur) in &order {
            let kind = driver.resolved.module_kind(m);
            let units = request.profile.units(kind);
            let input_tx =
                driver
                    .resolved
                    .transfer_time(source, di, request.profile.input_bytes(kind));
            let output_tx = driver.resolved.transfer_time(
                di,
                head_di,
                driver.resolved.module_spec(m).output_bytes(units),
            );
            if input_tx > 0.0 {
                driver.report.spans.push(GanttSpan {
                    device: driver.resolved.device_name(di).clone(),
                    request: Some(request.id),
                    phase: Phase::InputTx(driver.resolved.module_name(m).clone()),
                    start: arrival,
                    end: arrival + input_tx,
                });
            }
            let tid = kernel.spawn_task(
                req_idx,
                m,
                di as usize,
                false,
                TaskInfo {
                    request: request.id,
                    dur,
                    output_tx,
                },
            );
            kernel.push_ready(ns(arrival + input_tx), tid);
            pending += 1;
        }

        driver.req_info.push((request.id, arrival));
        kernel.set_request(
            req_idx,
            RequestSlot {
                pending_encoders: pending,
                head_ready_ns: head_ready,
                head_task,
            },
        );
        // Encoder-less models cannot exist (ModelSpec validates ≥1), but
        // guard anyway: head fires directly.
        if pending == 0 {
            kernel.push_ready(head_ready, head_task);
        }
    }

    for (i, &at) in open_at.iter().enumerate() {
        if at > 0 {
            kernel.push_device_open(at, i);
        }
    }

    // --- Run the shared event loop to idle.
    kernel.run_until_idle(&mut driver)?;

    let mut report = driver.report;
    report.spans.sort_by(|a, b| {
        a.start
            .partial_cmp(&b.start)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.device.cmp(&b.device))
    });
    report.makespan = report
        .requests
        .values()
        .map(|r| r.completion)
        .fold(report.loading_done, f64::max);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2m3_core::objective::total_latency;
    use s2m3_net::fleet::Fleet;

    fn plan_for(name: &str, candidates: usize, n_requests: usize) -> (Instance, Plan) {
        let i = Instance::single_model(name, candidates).unwrap();
        let requests: Vec<_> = (0..n_requests)
            .map(|k| i.request(k as u64, name).unwrap())
            .collect();
        let plan = Plan::greedy(&i, requests).unwrap();
        (i, plan)
    }

    #[test]
    fn single_request_matches_analytic_objective() {
        for (name, c) in [
            ("CLIP ViT-B/16", 101),
            ("CLIP ResNet-50", 10),
            ("Encoder-only VQA (Small)", 1),
            ("Flint-v0.5-1B", 1),
            ("CLIP-Classifier Food-101", 0),
        ] {
            let (i, plan) = plan_for(name, c, 1);
            let report = simulate(&i, &plan, &SimConfig::default()).unwrap();
            let analytic = total_latency(&i, &plan.routed[0].1, &plan.routed[0].0).unwrap();
            let simulated = report.request_latency(0).unwrap();
            assert!(
                (simulated - analytic).abs() < 0.05,
                "{name}: sim {simulated:.3} vs analytic {analytic:.3}"
            );
        }
    }

    #[test]
    fn loading_gates_inference() {
        let (i, plan) = plan_for("CLIP ViT-B/16", 101, 1);
        let without = simulate(&i, &plan, &SimConfig::default()).unwrap();
        let with = simulate(
            &i,
            &plan,
            &SimConfig {
                include_loading: true,
                ..SimConfig::default()
            },
        )
        .unwrap();
        assert!(with.loading_done > 0.5);
        assert!(with.request_latency(0).unwrap() > without.request_latency(0).unwrap() + 0.5);
        assert!(with
            .spans
            .iter()
            .any(|s| matches!(s.phase, Phase::ModelLoading(_))));
    }

    #[test]
    fn simultaneous_requests_queue_on_shared_modules() {
        // Two identical retrieval requests at t=0 share one text encoder:
        // the second must wait (Table X's queuing observation).
        let (i, plan) = plan_for("CLIP ViT-B/16", 101, 2);
        let r = simulate(&i, &plan, &SimConfig::default()).unwrap();
        let l0 = r.request_latency(0).unwrap();
        let l1 = r.request_latency(1).unwrap();
        assert!(
            (l1 - l0).abs() > 0.5 || l1 > l0 + 0.5 || l0 > l1 + 0.5,
            "one of the colliding requests must queue: {l0:.2} vs {l1:.2}"
        );
        assert!(r.max_latency() > r.mean_latency());
    }

    #[test]
    fn pipelining_beats_serial_submission() {
        // 4 requests submitted together finish earlier than 4 submitted
        // each after the previous completes (encoders overlap).
        let (i, plan) = plan_for("CLIP ViT-B/16", 101, 4);
        let together = simulate(&i, &plan, &SimConfig::default()).unwrap();
        let single = simulate(
            &i,
            &Plan {
                placement: plan.placement.clone(),
                routed: vec![plan.routed[0].clone()],
            },
            &SimConfig::default(),
        )
        .unwrap();
        let serial_makespan = 4.0 * single.request_latency(0).unwrap();
        assert!(
            together.makespan < serial_makespan,
            "pipelined {} vs serial {}",
            together.makespan,
            serial_makespan
        );
    }

    #[test]
    fn staggered_arrivals_respected() {
        let (i, plan) = plan_for("CLIP ViT-B/16", 10, 2);
        let r = simulate(
            &i,
            &plan,
            &SimConfig {
                arrivals: Some(vec![0.0, 100.0]),
                ..SimConfig::default()
            },
        )
        .unwrap();
        let t1 = r.requests[&1];
        assert!(t1.arrival == 100.0 && t1.completion > 100.0);
        // Far-apart arrivals do not queue on each other.
        assert!((r.request_latency(0).unwrap() - r.request_latency(1).unwrap()).abs() < 0.05);
    }

    #[test]
    fn arrivals_mismatch_is_an_error() {
        let (i, plan) = plan_for("CLIP ViT-B/16", 10, 2);
        let err = simulate(
            &i,
            &plan,
            &SimConfig {
                arrivals: Some(vec![0.0]),
                ..SimConfig::default()
            },
        )
        .unwrap_err();
        assert_eq!(
            err,
            SimError::ArrivalsMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn multi_task_simultaneous_burst_runs_all() {
        let i = Instance::on_fleet(
            Fleet::edge_testbed(),
            &[
                ("CLIP ViT-B/16", 101),
                ("Encoder-only VQA (Small)", 1),
                ("AlignBind-B", 16),
                ("CLIP-Classifier Food-101", 0),
            ],
        )
        .unwrap();
        let requests: Vec<_> = i
            .deployments()
            .iter()
            .enumerate()
            .map(|(k, d)| i.request(k as u64, &d.model.name).unwrap())
            .collect();
        let plan = Plan::greedy(&i, requests).unwrap();
        let r = simulate(&i, &plan, &SimConfig::default()).unwrap();
        assert_eq!(r.requests.len(), 4);
        assert!(r.makespan > 0.0);
        // Gantt renders with something on multiple devices.
        let g = r.render_gantt(60);
        assert!(g.matches('|').count() >= 4);
    }

    #[test]
    fn deterministic_replay() {
        let (i, plan) = plan_for("CLIP ViT-B/16", 101, 3);
        let a = simulate(&i, &plan, &SimConfig::default()).unwrap();
        let b = simulate(&i, &plan, &SimConfig::default()).unwrap();
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod batching_tests {
    use super::*;

    fn burst_plan(n: usize) -> (Instance, Plan) {
        let i = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
        let requests: Vec<_> = (0..n as u64)
            .map(|k| i.request(k, "CLIP ViT-B/16").unwrap())
            .collect();
        let plan = Plan::greedy(&i, requests).unwrap();
        (i, plan)
    }

    #[test]
    fn batching_reduces_burst_makespan() {
        // Sec. VI-C: aggregating queued requests at the shared text
        // encoder amortizes the per-execution overhead.
        let (i, plan) = burst_plan(6);
        let plain = simulate(&i, &plan, &SimConfig::default()).unwrap();
        let batched = simulate(
            &i,
            &plan,
            &SimConfig {
                max_batch: Some(8),
                ..SimConfig::default()
            },
        )
        .unwrap();
        assert!(
            batched.makespan < plain.makespan,
            "batched {:.2} vs plain {:.2}",
            batched.makespan,
            plain.makespan
        );
        assert_eq!(batched.requests.len(), 6);
    }

    #[test]
    fn batch_of_one_changes_nothing() {
        let (i, plan) = burst_plan(3);
        let plain = simulate(&i, &plan, &SimConfig::default()).unwrap();
        let b1 = simulate(
            &i,
            &plan,
            &SimConfig {
                max_batch: Some(1),
                ..SimConfig::default()
            },
        )
        .unwrap();
        assert_eq!(plain.requests, b1.requests);
    }

    #[test]
    fn batched_members_complete_together() {
        let (i, plan) = burst_plan(4);
        let batched = simulate(
            &i,
            &plan,
            &SimConfig {
                max_batch: Some(4),
                ..SimConfig::default()
            },
        )
        .unwrap();
        // The four text encodings batch into overlapping spans on the
        // text host: at least two encode spans share an end time.
        let mut ends: Vec<u64> = batched
            .spans
            .iter()
            .filter(|s| matches!(s.phase, Phase::Encode(_)))
            .map(|s| ns(s.end))
            .collect();
        ends.sort_unstable();
        let shared = ends.windows(2).any(|w| w[0] == w[1]);
        assert!(shared, "expected batched completions: {ends:?}");
    }
}
