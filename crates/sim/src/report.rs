//! Simulation output: per-request timings and Gantt timelines.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use s2m3_models::module::ModuleId;
use s2m3_net::device::DeviceId;

/// What a Gantt span represents.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Loading a module's weights onto the device.
    ModelLoading(ModuleId),
    /// Raw user input travelling to an encoder device.
    InputTx(ModuleId),
    /// Encoder computation.
    Encode(ModuleId),
    /// Encoded embeddings travelling to the head device.
    OutputTx(ModuleId),
    /// Head (distance / classifier / LLM) computation.
    Head(ModuleId),
}

impl Phase {
    /// Short label for timeline rendering (matches Fig. 3's legend).
    pub fn label(&self) -> String {
        match self {
            Phase::ModelLoading(_) => "load".into(),
            Phase::InputTx(_) => "tx-in".into(),
            Phase::Encode(m) => format!("encode {}", short(m)),
            Phase::OutputTx(_) => "tx-out".into(),
            Phase::Head(m) => format!("head {}", short(m)),
        }
    }
}

fn short(m: &ModuleId) -> &str {
    m.as_str().rsplit('/').next().unwrap_or(m.as_str())
}

/// One bar of the timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GanttSpan {
    /// Device the span occurred on (transfers are attributed to the
    /// receiving device).
    pub device: DeviceId,
    /// Owning request, if any (loading spans have none).
    pub request: Option<u64>,
    /// What happened.
    pub phase: Phase,
    /// Start time, seconds of virtual time.
    pub start: f64,
    /// End time, seconds of virtual time.
    pub end: f64,
}

/// Per-request timing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestTiming {
    /// Arrival (submission) time.
    pub arrival: f64,
    /// Completion time (head output produced).
    pub completion: f64,
}

impl RequestTiming {
    /// Request latency (completion − arrival).
    pub fn latency(&self) -> f64 {
        self.completion - self.arrival
    }
}

/// The full simulation result.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// All timeline spans, in start order.
    pub spans: Vec<GanttSpan>,
    /// Per-request timings.
    pub requests: BTreeMap<u64, RequestTiming>,
    /// When model loading finished across all devices (0 when loading is
    /// not simulated).
    pub loading_done: f64,
    /// Completion time of the last request.
    pub makespan: f64,
}

impl SimReport {
    /// Latency of request `id`, if it ran.
    pub fn request_latency(&self, id: u64) -> Option<f64> {
        self.requests.get(&id).map(RequestTiming::latency)
    }

    /// Mean latency over all requests (objective 4a normalized).
    pub fn mean_latency(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        self.requests
            .values()
            .map(RequestTiming::latency)
            .sum::<f64>()
            / self.requests.len() as f64
    }

    /// Maximum latency over all requests.
    pub fn max_latency(&self) -> f64 {
        self.requests
            .values()
            .map(RequestTiming::latency)
            .fold(0.0, f64::max)
    }

    /// Renders an ASCII Gantt chart (one row per device), the textual
    /// form of Fig. 3.
    pub fn render_gantt(&self, width: usize) -> String {
        let horizon = self.makespan.max(1e-9);
        let mut by_device: BTreeMap<&DeviceId, Vec<&GanttSpan>> = BTreeMap::new();
        for s in &self.spans {
            by_device.entry(&s.device).or_default().push(s);
        }
        let mut out = String::new();
        out.push_str(&format!(
            "virtual time: 0 .. {horizon:.2}s  ({width} cols)\n"
        ));
        for (dev, spans) in by_device {
            let mut row = vec![' '; width];
            for s in spans {
                let a = ((s.start / horizon) * width as f64).floor() as usize;
                let b = (((s.end / horizon) * width as f64).ceil() as usize).min(width);
                let ch = match s.phase {
                    Phase::ModelLoading(_) => 'L',
                    Phase::InputTx(_) | Phase::OutputTx(_) => 't',
                    Phase::Encode(_) => 'E',
                    Phase::Head(_) => 'H',
                };
                for c in row.iter_mut().take(b).skip(a.min(width)) {
                    *c = ch;
                }
            }
            out.push_str(&format!(
                "{:>10} |{}|\n",
                dev.as_str(),
                row.iter().collect::<String>()
            ));
        }
        out.push_str("legend: L=model loading  t=transfer  E=encode  H=task head\n");
        out
    }

    /// JSON export of the timeline (for external plotting).
    ///
    /// # Errors
    ///
    /// Propagates serialization failure (should not happen for this type).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(dev: &str, phase: Phase, start: f64, end: f64) -> GanttSpan {
        GanttSpan {
            device: dev.into(),
            request: Some(0),
            phase,
            start,
            end,
        }
    }

    #[test]
    fn latency_accounting() {
        let mut r = SimReport::default();
        r.requests.insert(
            0,
            RequestTiming {
                arrival: 1.0,
                completion: 3.5,
            },
        );
        r.requests.insert(
            1,
            RequestTiming {
                arrival: 1.0,
                completion: 2.0,
            },
        );
        assert_eq!(r.request_latency(0), Some(2.5));
        assert_eq!(r.request_latency(9), None);
        assert!((r.mean_latency() - 1.75).abs() < 1e-12);
        assert!((r.max_latency() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_report_mean_is_zero() {
        assert_eq!(SimReport::default().mean_latency(), 0.0);
    }

    #[test]
    fn gantt_renders_all_devices_and_legend() {
        let r = SimReport {
            spans: vec![
                span(
                    "jetson-a",
                    Phase::Encode("vision/ViT-B-16".into()),
                    0.0,
                    1.0,
                ),
                span("laptop", Phase::Encode("text/CLIP-B-16".into()), 0.0, 2.0),
                span("jetson-a", Phase::Head("head/cosine".into()), 2.0, 2.2),
            ],
            makespan: 2.2,
            ..Default::default()
        };
        let g = r.render_gantt(40);
        assert!(g.contains("jetson-a"));
        assert!(g.contains("laptop"));
        assert!(g.contains('E'));
        assert!(g.contains('H'));
        assert!(g.contains("legend"));
    }

    #[test]
    fn json_roundtrip() {
        let r = SimReport {
            spans: vec![span(
                "laptop",
                Phase::InputTx("text/CLIP-B-16".into()),
                0.0,
                0.1,
            )],
            makespan: 0.1,
            ..Default::default()
        };
        let j = r.to_json().unwrap();
        let back: SimReport = serde_json::from_str(&j).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn phase_labels_are_short() {
        assert_eq!(
            Phase::Encode("vision/ViT-B-16".into()).label(),
            "encode ViT-B-16"
        );
        assert_eq!(Phase::ModelLoading("x".into()).label(), "load");
    }
}
