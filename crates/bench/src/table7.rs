//! Table VII: deployment comparison for CLIP ViT-B/16 — inference and
//! end-to-end (inference + model loading) latency.

use s2m3_baselines::ablations::{s2m3_latency, s2m3_no_parallel_latency};
use s2m3_baselines::centralized::{centralized_e2e, centralized_latency};
use s2m3_core::plan::Plan;
use s2m3_core::problem::Instance;
use s2m3_net::device::DeviceSpec;
use s2m3_net::fleet::Fleet;
use s2m3_sim::loading::loading_critical_path;

use crate::table::{fmt_params, fmt_secs, Table};

const MODEL: &str = "CLIP ViT-B/16";
const CANDIDATES: usize = 101;

/// A fleet whose server runs without its GPU (Table VII's second row).
fn cpu_server_fleet() -> Fleet {
    let base = Fleet::standard_testbed();
    let devices = base
        .devices()
        .iter()
        .map(|d| {
            if d.id.as_str() == "server" {
                DeviceSpec::server_without_gpu()
            } else {
                d.clone()
            }
        })
        .collect();
    Fleet::new(devices, base.topology().clone(), base.requester().clone()).expect("valid fleet")
}

/// Regenerates Table VII.
pub fn run() -> Table {
    let full = Instance::on_fleet(Fleet::standard_testbed(), &[(MODEL, CANDIDATES)]).unwrap();
    let cpu = Instance::on_fleet(cpu_server_fleet(), &[(MODEL, CANDIDATES)]).unwrap();
    let edge = Instance::on_fleet(Fleet::edge_testbed(), &[(MODEL, CANDIDATES)]).unwrap();

    let mut t = Table::new(
        "Table VII — deployment comparison (CLIP ViT-B/16, Food-101 prompts)",
        &[
            "Deployment",
            "#Param/device",
            "Inference (s)",
            "End-to-End (s)",
        ],
    );

    let model = &full.deployment(MODEL).unwrap().model;
    let central_params = fmt_params(model.total_params());
    for (label, instance, device) in [
        ("Centralized Server", &full, "server"),
        ("Centralized Server (w/o GPU)", &cpu, "server"),
        ("Centralized Desktop", &full, "desktop"),
        ("Centralized Laptop", &full, "laptop"),
        ("Centralized Jetson", &full, "jetson-a"),
    ] {
        let inf = centralized_latency(instance, MODEL, device).ok();
        let e2e = centralized_e2e(instance, MODEL, device).ok();
        t.push_row(vec![
            label.to_string(),
            central_params.clone(),
            fmt_secs(inf),
            fmt_secs(e2e),
        ]);
    }

    // S2M3 rows on the edge fleet.
    let q = edge.request(0, MODEL).unwrap();
    let plan = Plan::greedy(&edge, vec![q]).unwrap();
    let split_params = fmt_params(model.max_module_params());
    let loading = loading_critical_path(&edge, &plan);

    let par = s2m3_latency(&edge, MODEL).ok();
    let seq = s2m3_no_parallel_latency(&edge, MODEL).ok();
    t.push_row(vec![
        "S2M3".into(),
        split_params.clone(),
        fmt_secs(par),
        fmt_secs(par.map(|v| v + loading)),
    ]);
    t.push_row(vec![
        "S2M3 (w/o Parallel Processing)".into(),
        split_params,
        fmt_secs(seq),
        fmt_secs(seq.map(|v| v + loading)),
    ]);

    t.push_note(
        "Paper: server 2.44/13.53, server-CPU 6.70/17.78, desktop 3.46/4.95, laptop 3.02/5.31, \
         Jetson 45.19/60.37, S2M3 2.48/4.76, S2M3-no-parallel 3.03/5.32.",
    );
    t
}

/// The distributed loading overhead of the S2M3 plan (end-to-end minus
/// inference), exposed for Fig. 3.
pub fn s2m3_loading() -> f64 {
    let edge = Instance::on_fleet(Fleet::edge_testbed(), &[(MODEL, CANDIDATES)]).unwrap();
    let q = edge.request(0, MODEL).unwrap();
    let plan = Plan::greedy(&edge, vec![q]).unwrap();
    loading_critical_path(&edge, &plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_rows_and_orderings() {
        let t = run();
        assert_eq!(t.rows.len(), 7);
        let get = |label: &str, col: usize| -> f64 {
            t.rows.iter().find(|r| r[0] == label).unwrap()[col]
                .parse()
                .unwrap()
        };
        let server = get("Centralized Server", 2);
        let server_cpu = get("Centralized Server (w/o GPU)", 2);
        let desktop = get("Centralized Desktop", 2);
        let laptop = get("Centralized Laptop", 2);
        let jetson = get("Centralized Jetson", 2);
        let s2m3 = get("S2M3", 2);
        let s2m3_seq = get("S2M3 (w/o Parallel Processing)", 2);
        // Table VII orderings.
        assert!(server < laptop && laptop < desktop && desktop < server_cpu && server_cpu < jetson);
        assert!(s2m3 < s2m3_seq);
        assert!(
            s2m3 < laptop,
            "S2M3 {s2m3} must beat the best edge centralization {laptop}"
        );
    }

    #[test]
    fn e2e_exceeds_inference_everywhere() {
        let t = run();
        for r in &t.rows {
            let inf: f64 = r[2].parse().unwrap();
            let e2e: f64 = r[3].parse().unwrap();
            assert!(e2e > inf, "{}: {e2e} <= {inf}", r[0]);
        }
    }

    #[test]
    fn split_loading_beats_centralized_jetson_loading() {
        // Paper: S2M3 e2e overhead ≈ 2.3 s vs Jetson's ≈ 15 s.
        let t = run();
        let overhead = |label: &str| -> f64 {
            let r = t.rows.iter().find(|r| r[0] == label).unwrap();
            r[3].parse::<f64>().unwrap() - r[2].parse::<f64>().unwrap()
        };
        assert!(overhead("S2M3") < 4.0);
        assert!(overhead("Centralized Jetson") > 12.0);
        assert!(overhead("Centralized Server") > 8.0);
    }
}
