//! Monte Carlo sweep: capacity frontier of the churn scenario.
//!
//! Where `churn` runs one seeded stream per policy, this experiment
//! fans the same scenario over a (seed × arrival-rate × fleet-size)
//! grid on the `s2m3-sweep` thread pool and reports the cross-replica
//! view: mean/worst deadline-miss rates per cell and the capacity
//! frontier — the largest rate scale each fleet size sustains within a
//! 1% miss budget. Replica seeds are shared across cells (common random
//! numbers), so the cell-to-cell movement is treatment effect, not
//! sampling noise.

use s2m3_serve::ServeScenario;
use s2m3_sweep::{run_sweep, SweepReport, SweepSpec};

use crate::table::Table;

/// Requests per replica (the grid multiplies this by
/// `seeds x scales x fleet sizes`, so it stays below [`crate::churn::REQUESTS`]).
pub const REQUESTS: usize = 400;

/// The sweep grid: 3 seeds x 3 rate scales x 3 fleet sizes over the
/// churn scenario.
pub fn spec() -> SweepSpec {
    let mut base = ServeScenario::churn_default();
    base.requests = REQUESTS;
    base.snapshot_every = 50;
    SweepSpec {
        base,
        seeds: 3,
        rate_scales: vec![0.5, 1.0, 2.0],
        fleet_sizes: vec![2, 3, 4],
        bin_s: 600.0,
        miss_budget: 0.01,
        threads: 0,
    }
}

/// Runs the sweep grid.
///
/// # Panics
///
/// On sweep failures (the grid above is valid).
pub fn report() -> SweepReport {
    run_sweep(&spec()).expect("sweep grid runs")
}

/// Regenerates the capacity-frontier table.
pub fn run() -> Table {
    let r = report();
    let mut t = Table::new(
        "Monte Carlo sweep — churn scenario over 3 seeds x 3 rates x 3 fleet sizes",
        &[
            "Fleet",
            "Rate x",
            "Offered /s",
            "Miss % (mean)",
            "Miss % (max)",
            "p95 (s)",
            "Thru /s",
        ],
    );
    for c in &r.cells {
        t.push_row(vec![
            c.fleet_size.to_string(),
            format!("{:.1}", c.rate_scale),
            c.offered_rate_per_s
                .map_or_else(|| "-".into(), |v| format!("{v:.3}")),
            format!("{:.1}", 100.0 * c.scalars.miss_rate_mean),
            format!("{:.1}", 100.0 * c.scalars.miss_rate_max),
            format!("{:.2}", c.scalars.latency_p95_mean_s),
            format!("{:.3}", c.scalars.throughput_mean_per_s),
        ]);
    }
    let frontier = r
        .frontier
        .iter()
        .map(|f| match f.max_rate_scale {
            Some(s) => format!("{} devices up to x{s:.1}", f.fleet_size),
            None => format!("{} devices none", f.fleet_size),
        })
        .collect::<Vec<_>>()
        .join("; ");
    t.push_note(format!(
        "Capacity frontier at <=1% miss: {frontier}. Replicas run in parallel on all cores; \
         the aggregate is byte-identical at any thread count (replica-index-order folds).",
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_table_covers_the_grid() {
        let t = run();
        assert_eq!(t.rows.len(), 9);
        assert!(t.render().contains("frontier"));
    }

    #[test]
    fn report_is_deterministic_across_thread_counts() {
        let mut one = spec();
        one.base.requests = 60;
        one.seeds = 1;
        one.threads = 1;
        let mut four = one.clone();
        four.threads = 4;
        let a = run_sweep(&one).unwrap().to_json().unwrap();
        let b = run_sweep(&four).unwrap().to_json().unwrap();
        assert_eq!(a, b);
    }
}
