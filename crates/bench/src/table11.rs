//! Table XI: comparison to Optimus, DistMM and Megatron-LM.

use s2m3_baselines::ablations::{s2m3_latency, shared_burst};
use s2m3_baselines::estimators::{distmm_estimate, optimus_estimate};
use s2m3_baselines::megatron::{megatron_latency, megatron_params};
use s2m3_core::problem::Instance;
use s2m3_net::fleet::Fleet;

use crate::table::{fmt_params, fmt_secs, Table};

fn single(model: &str, candidates: usize) -> Instance {
    Instance::on_fleet(Fleet::edge_testbed(), &[(model, candidates)]).unwrap()
}

/// Regenerates Table XI.
pub fn run() -> Table {
    let mut t = Table::new(
        "Table XI — baseline comparison (edge fleet)",
        &[
            "Workload",
            "Optimus (s)",
            "DistMM (s)",
            "Megatron (s)",
            "S2M3 (s)",
            "Megatron #Param",
            "S2M3 #Param",
        ],
    );

    // VQA: Flint-v0.5-1B (the paper's 1.2B VQA row).
    let vqa = single("Flint-v0.5-1B", 1);
    t.push_row(vec![
        "VQA (Flint-v0.5-1B)".into(),
        fmt_secs(optimus_estimate(&vqa, "Flint-v0.5-1B").ok()),
        "–".into(),
        fmt_secs(megatron_latency(&vqa, "Flint-v0.5-1B").ok()),
        fmt_secs(s2m3_latency(&vqa, "Flint-v0.5-1B").ok()),
        fmt_params(megatron_params(&vqa)),
        fmt_params(vqa.distinct_modules().iter().map(|m| m.params).sum()),
    ]);

    // Retrieval: CLIP ViT-B/16.
    let ret = single("CLIP ViT-B/16", 101);
    t.push_row(vec![
        "Retrieval (CLIP ViT-B/16)".into(),
        "–".into(),
        fmt_secs(distmm_estimate(&ret, "CLIP ViT-B/16").ok()),
        fmt_secs(megatron_latency(&ret, "CLIP ViT-B/16").ok()),
        fmt_secs(s2m3_latency(&ret, "CLIP ViT-B/16").ok()),
        fmt_params(megatron_params(&ret)),
        fmt_params(ret.distinct_modules().iter().map(|m| m.params).sum()),
    ]);

    // Alignment: the shared-CLIP tri-modal model (209M as in the paper).
    let ali = single("AlignBind-B", 16);
    t.push_row(vec![
        "Alignment (AlignBind-B)".into(),
        "–".into(),
        "–".into(),
        fmt_secs(megatron_latency(&ali, "AlignBind-B").ok()),
        fmt_secs(s2m3_latency(&ali, "AlignBind-B").ok()),
        fmt_params(megatron_params(&ali)),
        fmt_params(ali.distinct_modules().iter().map(|m| m.params).sum()),
    ]);

    // Retrieval + Alignment multi-task.
    let multi = Instance::on_fleet(
        Fleet::edge_testbed(),
        &[("CLIP ViT-B/16", 101), ("AlignBind-B", 16)],
    )
    .unwrap();
    // Megatron executes each module across the whole TP group, so two
    // simultaneous requests serialize end-to-end.
    let mega_multi = ["CLIP ViT-B/16", "AlignBind-B"]
        .iter()
        .filter_map(|m| megatron_latency(&multi, m).ok())
        .sum::<f64>();
    let s2m3_multi = shared_burst(&multi).ok().map(|r| r.max_latency());
    t.push_row(vec![
        "Retrieval + Alignment".into(),
        "–".into(),
        "–".into(),
        fmt_secs(Some(mega_multi)),
        fmt_secs(s2m3_multi),
        fmt_params(megatron_params(&multi)),
        fmt_params(multi.distinct_modules().iter().map(|m| m.params).sum()),
    ]);

    t.push_note(
        "Paper: VQA — Optimus 1.57 / Mega 2.71 / S2M3 2.71; Retrieval — DistMM 2.48 / Mega \
         3.03 / S2M3 2.48; Alignment — Mega 0.99 / S2M3 0.55; Retrieval+Alignment — Mega 3.03 \
         (333M) / S2M3 2.80 (209M). Optimus/DistMM are footnote-3 ideal estimates; '–' = the \
         system does not support the task.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_rows_with_paper_shape() {
        let t = run();
        assert_eq!(t.rows.len(), 4);
        let cell = |r: usize, c: usize| t.rows[r][c].clone();
        // Optimus beats S2M3 on VQA (ideal TP).
        let optimus: f64 = cell(0, 1).parse().unwrap();
        let s2m3_vqa: f64 = cell(0, 4).parse().unwrap();
        assert!(optimus < s2m3_vqa);
        // DistMM ties S2M3 on retrieval.
        assert_eq!(cell(1, 2), cell(1, 4));
        // Megatron never beats S2M3.
        for r in 0..4 {
            let mega: f64 = cell(r, 3).parse().unwrap();
            let ours: f64 = cell(r, 4).parse().unwrap();
            assert!(mega >= ours * 0.95, "row {r}: mega {mega} vs s2m3 {ours}");
        }
        // Memory: multi-task sharing wins (333M vs 209M).
        assert_eq!(cell(3, 5), "333M");
        assert_eq!(cell(3, 6), "209M");
    }

    #[test]
    fn alignment_row_shape() {
        let t = run();
        let mega: f64 = t.rows[2][3].parse().unwrap();
        let ours: f64 = t.rows[2][4].parse().unwrap();
        // Paper: 0.99 vs 0.55 — Megatron ~2x slower on alignment.
        assert!(mega > 1.3 * ours, "mega {mega:.2} vs s2m3 {ours:.2}");
        assert!(
            ours < 1.2,
            "alignment S2M3 should be sub-second-ish: {ours:.2}"
        );
    }
}
