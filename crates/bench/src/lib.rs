//! # s2m3-bench
//!
//! The experiment harness: one module (and one binary) per table/figure
//! of the paper's evaluation section. `all_experiments` regenerates
//! everything and emits a machine-readable summary.
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Table VI (per-architecture cost & latency) | [`table6`] | `table6` |
//! | Table VII (deployment comparison)          | [`table7`] | `table7` |
//! | Fig. 3 (inference timeline)                | [`fig3`]   | `fig3` |
//! | Table VIII (accuracy)                      | [`table8`] | `table8` |
//! | Table IX (device availability)             | [`table9`] | `table9` |
//! | Table X (multi-task sharing)               | [`table10`]| `table10` |
//! | Table XI (baseline comparison)             | [`table11`]| `table11` |
//! | §VI-A 89/95 optimality claim               | [`optimality`] | `optimality` |
//! | Footnote 4 batch scaling                   | [`batching`]   | `batching` |
//! | Mechanism ablations (DESIGN.md)            | [`ablations`]  | `ablations` |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablations;
pub mod batching;
pub mod churn;
pub mod fig3;
pub mod load_sweep;
pub mod optimality;
pub mod perturb;
pub mod scalability;
pub mod sweep;
pub mod table;
pub mod table10;
pub mod table11;
pub mod table6;
pub mod table7;
pub mod table8;
pub mod table9;

pub use table::Table;
