//! Table VIII: zero-shot accuracy of S2M3 vs the models' reported
//! accuracy, plus the structural check that split inference produces the
//! exact same predictions as centralized inference.

use std::collections::BTreeMap;

use s2m3_core::plan::Plan;
use s2m3_core::problem::Instance;
use s2m3_data::table_viii;
use s2m3_data::{evaluate, Dataset};
use s2m3_models::zoo::Zoo;
use s2m3_runtime::{reference, RequestInput, Runtime};
use s2m3_tensor::ops;

use crate::table::Table;

/// Samples per (model, benchmark) cell.
pub const SAMPLES: usize = 500;
/// Samples pushed through the *distributed* runtime per cell to certify
/// split = centralized.
pub const SPLIT_CHECK_SAMPLES: usize = 8;

/// Verifies that the distributed execution of `model` over the greedy
/// placement predicts identically to centralized execution on the first
/// `n` samples of `dataset`. Returns the number of identical outputs.
pub fn split_equality_check(
    model_name: &str,
    dataset: &Dataset,
    n: usize,
) -> Result<usize, String> {
    let candidates = dataset.benchmark.n_classes;
    let instance = Instance::single_model(model_name, candidates).map_err(|e| e.to_string())?;
    let request = instance.request(0, model_name).map_err(|e| e.to_string())?;
    let plan = Plan::greedy(&instance, vec![request.clone()]).map_err(|e| e.to_string())?;
    let model = &instance.deployment(model_name).unwrap().model;
    let runtime = Runtime::start(&instance, &plan).map_err(|e| e.to_string())?;

    let mut identical = 0;
    for (i, sample) in dataset.samples.iter().take(n).enumerate() {
        let input = RequestInput {
            modalities: sample.modalities.clone(),
            query: sample.query.clone(),
        };
        let mut req = request.clone();
        req.id = i as u64;
        let distributed = runtime
            .infer(&req, &plan.routed[0].1, &input)
            .map_err(|e| e.to_string())?;
        let central = reference::run_model(model, &input).map_err(|e| e.to_string())?;
        if distributed == central
            && ops::argmax_rows(&distributed).map_err(|e| e.to_string())?
                == ops::argmax_rows(&central).map_err(|e| e.to_string())?
        {
            identical += 1;
        }
    }
    runtime.shutdown();
    Ok(identical)
}

/// Regenerates Table VIII.
pub fn run() -> Table {
    let zoo = Zoo::standard();
    let mut t = Table::new(
        "Table VIII — zero-shot accuracy (S2M3 measured vs paper)",
        &[
            "Model",
            "Benchmark",
            "Measured (%)",
            "Paper S2M3 (%)",
            "Reported (%)",
            "Split==Central",
        ],
    );
    let mut datasets: BTreeMap<String, Dataset> = BTreeMap::new();
    for row in table_viii::rows() {
        let bench = table_viii::benchmark_for(&row);
        let dataset = datasets
            .entry(row.benchmark.to_string())
            .or_insert_with(|| Dataset::generate(&bench, SAMPLES));
        let result =
            evaluate(zoo.model(row.model).expect("zoo model"), dataset).expect("evaluation runs");
        let identical = split_equality_check(row.model, dataset, SPLIT_CHECK_SAMPLES)
            .expect("split check runs");
        t.push_row(vec![
            row.model.to_string(),
            row.benchmark.to_string(),
            format!("{:.1}", result.percent()),
            format!("{:.1}", row.paper_s2m3),
            row.reported
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "–".into()),
            format!("{identical}/{SPLIT_CHECK_SAMPLES}"),
        ]);
    }
    t.push_note(
        "Split==Central counts bit-identical head outputs between the distributed runtime \
         and single-process execution — the mechanism behind the paper's 'no accuracy loss'.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2m3_data::Benchmark;

    #[test]
    fn split_equality_holds_on_retrieval_and_vqa() {
        for (model, bench) in [
            ("CLIP ViT-B/16", Benchmark::cifar10()),
            ("LLaVA-v1.5-7B", Benchmark::vqa_v2()),
        ] {
            let d = Dataset::generate(&bench, SPLIT_CHECK_SAMPLES);
            let same = split_equality_check(model, &d, SPLIT_CHECK_SAMPLES).unwrap();
            assert_eq!(same, SPLIT_CHECK_SAMPLES, "{model} split diverged");
        }
    }

    #[test]
    fn measured_accuracy_tracks_paper_within_tolerance() {
        // Spot-check two cells with modest sample counts (test speed);
        // the full 500-sample grid is produced by the binary.
        let zoo = Zoo::standard();
        let d = Dataset::generate(&Benchmark::cifar10(), 250);
        let b16 = evaluate(zoo.model("CLIP ViT-B/16").unwrap(), &d)
            .unwrap()
            .percent();
        assert!(
            (b16 - 90.8).abs() < 8.0,
            "cifar10 B/16 measured {b16:.1} vs paper 90.8"
        );
        let d = Dataset::generate(&Benchmark::country211(), 250);
        let c = evaluate(zoo.model("CLIP ViT-B/16").unwrap(), &d)
            .unwrap()
            .percent();
        assert!(
            (c - 22.4).abs() < 8.0,
            "country211 measured {c:.1} vs paper 22.4"
        );
    }
}
