//! Table X: multi-task deployment — cumulative parameters and burst
//! latency with vs without module sharing, as tasks are added one by one.

use s2m3_baselines::ablations::{dedicated_burst, shared_burst};
use s2m3_core::problem::Instance;
use s2m3_core::sharing::SharingReport;
use s2m3_net::fleet::Fleet;

use crate::table::{fmt_params, fmt_secs, Table};

/// The task-addition order of Table X.
pub fn task_sequence() -> Vec<(&'static str, usize)> {
    vec![
        ("CLIP ViT-B/16", 101),
        ("Encoder-only VQA (Small)", 1),
        ("AlignBind-B", 16),
        ("CLIP-Classifier Food-101", 0),
    ]
}

/// Instance with the first `k` tasks deployed.
pub fn instance_with(k: usize) -> Instance {
    let seq = task_sequence();
    Instance::on_fleet(Fleet::edge_testbed(), &seq[..k]).unwrap()
}

/// Regenerates Table X.
pub fn run() -> Table {
    let mut t = Table::new(
        "Table X — multi-task sharing (simultaneous requests from all deployed tasks)",
        &[
            "Tasks",
            "#Param w/o Sharing",
            "#Param w/ Sharing",
            "Latency w/o Sharing (s)",
            "Latency w/ Sharing (s)",
        ],
    );
    let labels = [
        "Retrieval",
        "+ Encoder VQA",
        "+ Alignment",
        "+ Classification",
    ];
    for k in 1..=4 {
        let i = instance_with(k);
        let report = SharingReport::for_instance(&i);
        let last = report.rows.last().unwrap();
        let shared = shared_burst(&i).ok();
        let dedicated = dedicated_burst(&i).ok();
        t.push_row(vec![
            labels[k - 1].to_string(),
            fmt_params(last.cumulative_dedicated_params),
            fmt_params(last.cumulative_shared_params),
            fmt_secs(dedicated.as_ref().map(|r| r.max_latency())),
            fmt_secs(shared.as_ref().map(|r| r.max_latency())),
        ]);
    }
    t.push_note(
        "Paper: params 124M→248M→457M→543M without sharing vs 124M→124M→209M→209M with; \
         latency 2.48/2.48/3.73/3.73 vs 2.48/2.50/4.87/4.97 — sharing saves up to 61.5% \
         memory at the price of queuing on shared modules.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_progression_rows() {
        assert_eq!(run().rows.len(), 4);
    }

    #[test]
    fn params_match_table_x_exactly() {
        let t = run();
        let col = |r: usize, c: usize| t.rows[r][c].clone();
        assert_eq!(col(0, 1), "124M");
        assert_eq!(col(1, 1), "248M");
        assert_eq!(col(2, 1), "457M");
        assert_eq!(col(3, 1), "543M");
        assert_eq!(col(0, 2), "124M");
        assert_eq!(col(1, 2), "124M");
        assert_eq!(col(2, 2), "209M");
        assert_eq!(col(3, 2), "209M");
    }

    #[test]
    fn sharing_latency_penalty_appears_with_four_tasks() {
        // Paper: 3.73 (w/o) vs 4.97 (w/) at four tasks.
        let i = instance_with(4);
        let shared = shared_burst(&i).unwrap().max_latency();
        let dedicated = dedicated_burst(&i).unwrap().max_latency();
        assert!(
            shared >= dedicated,
            "shared {shared:.2} vs dedicated {dedicated:.2}"
        );
    }

    #[test]
    fn single_task_identical_either_way() {
        let i = instance_with(1);
        let shared = shared_burst(&i).unwrap().max_latency();
        let dedicated = dedicated_burst(&i).unwrap().max_latency();
        assert!((shared - dedicated).abs() < 0.05);
    }
}
