//! Scalability of the placement algorithms with fleet size (the paper's
//! Sec. VII: "our greedy solution becomes more non-trivial depending on
//! the number and capacity of devices").
//!
//! Sweeps fleets from 2 to 32 devices (the home testbed plus extra Jetson
//! Nanos, the realistic way an edge fleet grows), measuring greedy
//! placement wall-clock, brute-force Upper wall-clock where tractable,
//! and whether greedy stays optimal as device count grows.

use std::time::Instant;

use s2m3_core::objective::total_latency;
use s2m3_core::plan::Plan;
use s2m3_core::problem::Instance;
use s2m3_core::upper::optimal_placement;
use s2m3_net::calibration as cal;
use s2m3_net::device::DeviceSpec;
use s2m3_net::fleet::Fleet;
use s2m3_net::link::LinkSpec;
use s2m3_net::topology::Topology;

use crate::table::Table;

/// Fleet sizes to sweep.
pub const SIZES: [usize; 5] = [2, 4, 8, 16, 32];
/// Brute force is `|N|^|M|`; cap it where it stays sub-second.
pub const UPPER_TRACTABLE_MAX: usize = 16;

/// Builds the home testbed extended with extra Jetson Nanos up to `n`
/// devices total (requester stays Jetson A).
pub fn grown_fleet(n: usize) -> Fleet {
    assert!(n >= 2, "need at least requester + one helper");
    let mut devices = vec![DeviceSpec::jetson("jetson-a"), DeviceSpec::laptop()];
    let mut topology = Topology::new();
    topology.set_access(
        "jetson-a".into(),
        LinkSpec::new(cal::PAN_WIFI.0, cal::PAN_WIFI.1),
    );
    topology.set_access(
        "laptop".into(),
        LinkSpec::new(cal::PAN_WIFI.0, cal::PAN_WIFI.1),
    );
    if n >= 3 {
        devices.push(DeviceSpec::desktop());
        topology.set_access(
            "desktop".into(),
            LinkSpec::new(cal::PAN_WIRED.0, cal::PAN_WIRED.1),
        );
    }
    for k in devices.len()..n {
        let name = format!("jetson-x{k}");
        devices.push(DeviceSpec::jetson(&name));
        topology.set_access(
            name.as_str().into(),
            LinkSpec::new(cal::PAN_WIFI.0, cal::PAN_WIFI.1),
        );
    }
    Fleet::new(devices, topology, "jetson-a".into()).expect("grown fleet is valid")
}

/// One sweep point: (greedy µs, upper µs or None, greedy==optimal or None).
pub fn point(n: usize) -> (f64, Option<f64>, Option<bool>) {
    let fleet = grown_fleet(n);
    let instance = Instance::on_fleet(fleet, &[("CLIP ViT-B/16", 101)]).unwrap();
    let request = instance.request(0, "CLIP ViT-B/16").unwrap();

    let t0 = Instant::now();
    let plan = Plan::greedy(&instance, vec![request.clone()]).unwrap();
    let greedy_us = t0.elapsed().as_secs_f64() * 1e6;
    let greedy_latency = total_latency(&instance, &plan.routed[0].1, &request).unwrap();

    if n > UPPER_TRACTABLE_MAX {
        return (greedy_us, None, None);
    }
    let t1 = Instant::now();
    let upper = optimal_placement(&instance).unwrap();
    let upper_us = t1.elapsed().as_secs_f64() * 1e6;
    let optimal = (greedy_latency - upper.latency).abs() < 1e-6;
    (greedy_us, Some(upper_us), Some(optimal))
}

/// Regenerates the scalability sweep.
pub fn run() -> Table {
    let mut t = Table::new(
        "Scalability — placement cost vs fleet size (CLIP ViT-B/16)",
        &[
            "Devices",
            "Greedy (µs)",
            "Brute-force Upper (µs)",
            "Greedy optimal?",
        ],
    );
    for n in SIZES {
        let (g, u, opt) = point(n);
        t.push_row(vec![
            n.to_string(),
            format!("{g:.0}"),
            u.map(|v| format!("{v:.0}"))
                .unwrap_or_else(|| "intractable".into()),
            opt.map(|o| if o { "yes" } else { "no" }.to_string())
                .unwrap_or_else(|| "—".into()),
        ]);
    }
    t.push_note(
        "Greedy scales linearly in |N|·|M| (microseconds even at 32 devices); the exhaustive \
         Upper grows as |N|^|M| and stops being checkable past ~16 devices — the gap the \
         paper's Sec. VII flags as future work.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grown_fleets_are_valid_and_sized() {
        for n in SIZES {
            let f = grown_fleet(n);
            assert_eq!(f.len(), n);
            assert_eq!(f.requester().as_str(), "jetson-a");
        }
    }

    #[test]
    fn greedy_stays_fast_and_optimal_while_checkable() {
        // With >=3 devices (desktop present) greedy matches the optimum;
        // the degenerate 2-device fleet is one of the rare miss cases
        // (both encoders pile onto the laptop — a ~5% gap).
        for n in [3, 4, 8] {
            let (g_us, u_us, opt) = point(n);
            assert!(g_us < 50_000.0, "greedy took {g_us:.0} µs at {n} devices");
            assert!(u_us.is_some());
            assert_eq!(opt, Some(true), "greedy suboptimal at {n} devices");
        }
        let (g_us, _, _) = point(2);
        assert!(g_us < 50_000.0);
    }

    #[test]
    fn big_fleets_skip_brute_force() {
        let (_, u, opt) = point(32);
        assert!(u.is_none());
        assert!(opt.is_none());
    }

    #[test]
    fn adding_jetsons_never_hurts_latency() {
        // More (slow) devices never make the greedy placement worse: the
        // fast devices still win the modules.
        let lat = |n: usize| {
            let instance = Instance::on_fleet(grown_fleet(n), &[("CLIP ViT-B/16", 101)]).unwrap();
            let request = instance.request(0, "CLIP ViT-B/16").unwrap();
            let plan = Plan::greedy(&instance, vec![request.clone()]).unwrap();
            total_latency(&instance, &plan.routed[0].1, &request).unwrap()
        };
        let three = lat(3);
        let sixteen = lat(16);
        assert!(sixteen <= three + 1e-9, "{sixteen:.2} vs {three:.2}");
    }
}
