//! Regenerates the golden fixtures under `tests/fixtures/` used by the
//! workspace equivalence tests (`tests/equivalence.rs`).
//!
//! The fixtures pin the exact JSON of `Plan`, `SimReport`, and
//! `ServeReport` for canonical scenarios, so hot-path refactors (like the
//! interned-index `ResolvedInstance` layer) can prove byte-identical
//! behavior against the pre-refactor outputs. Run from the repo root:
//!
//! ```text
//! cargo run --release -p s2m3-bench --bin capture_fixtures
//! ```
//!
//! Regenerating goldens only makes sense from a known-good tree, so the
//! binary refuses to run with uncommitted changes unless `--allow-dirty`
//! is passed (the escape hatch for capturing fixtures of an intentional
//! behavior change before committing it).

use std::fs;
use std::path::Path;
use std::process::Command;

use s2m3_core::plan::Plan;
use s2m3_core::problem::Instance;
use s2m3_serve::{serve, BatchPolicy, ServeScenario};
use s2m3_sim::engine::{simulate, SimConfig};

/// The zoo models pinned by the equivalence fixtures.
pub const FIXTURE_MODELS: [(&str, usize); 3] = [
    ("CLIP ViT-B/16", 101),
    ("Encoder-only VQA (Small)", 1),
    ("Flint-v0.5-1B", 1),
];

fn plan_for(name: &str, candidates: usize, n_requests: usize) -> Plan {
    let i = Instance::single_model(name, candidates).expect("fixture model exists");
    let requests: Vec<_> = (0..n_requests)
        .map(|k| i.request(k as u64, name).expect("deployed model"))
        .collect();
    Plan::greedy(&i, requests).expect("fixture plan builds")
}

/// Fails loudly when the git tree has uncommitted changes: goldens
/// captured from a half-edited tree would silently pin the wrong
/// behavior. Unreachable git (no binary, not a repo) is a warning, not
/// a wall — fixture capture still works in exported source trees.
fn refuse_dirty_tree() {
    match Command::new("git").args(["status", "--porcelain"]).output() {
        Ok(out) if out.status.success() => {
            if !out.stdout.is_empty() {
                eprintln!(
                    "error: the git tree is dirty — fixtures must be captured from a \
                     committed state so the pinned bytes are reproducible.\n\
                     Commit (or stash) first, or pass --allow-dirty to capture an \
                     intentional in-progress behavior change:\n\n{}",
                    String::from_utf8_lossy(&out.stdout)
                );
                std::process::exit(1);
            }
        }
        _ => eprintln!("warning: cannot query git status; skipping the dirty-tree check"),
    }
}

fn main() {
    if !std::env::args().any(|a| a == "--allow-dirty") {
        refuse_dirty_tree();
    }
    let dir = Path::new("tests/fixtures");
    fs::create_dir_all(dir).expect("fixture dir");

    for (name, candidates) in FIXTURE_MODELS {
        let slug: String = name
            .chars()
            .map(|c| {
                if c.is_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect();
        let plan = plan_for(name, candidates, 2);
        let json = serde_json::to_string_pretty(&plan).expect("plan serializes");
        fs::write(dir.join(format!("plan_{slug}.json")), &json).expect("write plan fixture");

        let i = Instance::single_model(name, candidates).unwrap();
        let report = simulate(&i, &plan, &SimConfig::default()).expect("fixture sim runs");
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        fs::write(dir.join(format!("sim_{slug}.json")), &json).expect("write sim fixture");
    }

    let scenario = ServeScenario::churn_default();
    let report = serve(&scenario).expect("churn scenario serves");
    let json = serde_json::to_string_pretty(&report).expect("serve report serializes");
    fs::write(dir.join("serve_churn_default.json"), &json).expect("write serve fixture");

    // The batched-serve golden: the same churn scenario with module-level
    // batching on (global cap 4). Pinned separately from the unbatched
    // fixture so `batch: None` byte-identity and batched-dispatch
    // semantics are each guarded on their own.
    let batched_scenario = ServeScenario {
        batch: Some(BatchPolicy {
            max_batch: 4,
            per_kind: vec![],
        }),
        ..ServeScenario::churn_default()
    };
    let report = serve(&batched_scenario).expect("batched churn scenario serves");
    let json = serde_json::to_string_pretty(&report).expect("serve report serializes");
    fs::write(dir.join("serve_churn_batched.json"), &json).expect("write batched serve fixture");

    println!("fixtures written to {}", dir.display());
}
