//! Regenerates batching of the paper.
fn main() {
    println!("{}", s2m3_bench::batching::run().render());
}
