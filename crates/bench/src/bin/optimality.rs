//! Regenerates the 19x5 greedy-vs-optimal sweep of Sec. VI-A.
fn main() {
    println!("{}", s2m3_bench::optimality::run().render());
}
