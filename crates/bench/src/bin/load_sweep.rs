//! Regenerates the sustained-load sweep (shared vs dedicated vs batched).
fn main() {
    println!("{}", s2m3_bench::load_sweep::run().render());
}
