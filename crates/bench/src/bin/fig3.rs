//! Regenerates Fig. 3: the inference timeline.
fn main() {
    let (table, gantt) = s2m3_bench::fig3::run();
    println!("{}", table.render());
    println!("{gantt}");
}
