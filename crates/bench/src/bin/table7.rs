//! Regenerates table7 of the paper.
fn main() {
    println!("{}", s2m3_bench::table7::run().render());
}
