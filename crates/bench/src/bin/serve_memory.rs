//! Heap-profile comparison of the serving loop's two latency paths:
//! exact (O(arrivals) request table + latency buffers) versus
//! memory-flat streaming (slab recycling + histogram sketch). Runs the
//! same churn scenario in both modes at increasing request counts and
//! prints the peak-heap delta of each run, making the O(arrivals) vs
//! O(in-flight) asymptotics directly visible:
//!
//! ```text
//! cargo run --release -p s2m3-bench --bin serve_memory [-- --requests N]
//! ```

use peak_alloc::PeakAlloc;
use s2m3_serve::{serve, AdmissionPolicy, ServeScenario, StreamingConfig};
use s2m3_sim::workload::ArrivalProcess;

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc;

fn scenario(requests: usize, streaming: bool) -> ServeScenario {
    let mut s = ServeScenario::churn_default();
    s.requests = requests;
    s.arrivals = ArrivalProcess::Poisson { rate_per_s: 3.0 };
    s.admission = AdmissionPolicy::ShedOnOverload { max_queue: 48 };
    if streaming {
        s.streaming = Some(StreamingConfig::default());
        s.max_windows = Some(64);
    }
    s
}

/// Peak-heap delta (bytes) and completions of one serving run.
fn measure(s: &ServeScenario) -> (usize, u64) {
    let before = ALLOC.live_bytes();
    ALLOC.reset_peak();
    let report = serve(s).unwrap();
    let peak = ALLOC.peak_bytes().saturating_sub(before);
    assert_eq!(report.completed + report.shed, report.arrived);
    (peak, report.completed)
}

fn mib(bytes: usize) -> f64 {
    bytes as f64 / (1 << 20) as f64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let max_requests: usize = args
        .iter()
        .position(|a| a == "--requests")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--requests takes a count"))
        .unwrap_or(1_000_000);

    // Warm up one-time globals (zoo interning, fleet tables) so they
    // don't land in the first measurement's peak.
    let _ = measure(&scenario(512, true));

    println!(
        "{:>10}  {:>16}  {:>16}  {:>7}",
        "requests", "exact peak MiB", "streaming MiB", "ratio"
    );
    let mut n = 10_000;
    while n <= max_requests {
        let (exact, _) = measure(&scenario(n, false));
        let (stream, completed) = measure(&scenario(n, true));
        println!(
            "{:>10}  {:>16.2}  {:>16.2}  {:>6.1}x   ({} completed)",
            n,
            mib(exact),
            mib(stream),
            exact as f64 / stream.max(1) as f64,
            completed
        );
        n *= 10;
    }
    println!(
        "\nstreaming peak is O(in-flight): it should stay ~constant down \
         the column while the exact peak grows with the request count"
    );
}
