//! Regenerates the Monte Carlo capacity-frontier sweep.
fn main() {
    println!("{}", s2m3_bench::sweep::run().render());
}
