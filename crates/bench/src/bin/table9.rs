//! Regenerates table9 of the paper.
fn main() {
    println!("{}", s2m3_bench::table9::run().render());
}
