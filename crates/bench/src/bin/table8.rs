//! Regenerates Table VIII (accuracy; ~1 min in release mode).
fn main() {
    println!("{}", s2m3_bench::table8::run().render());
}
