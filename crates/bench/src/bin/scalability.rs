//! Regenerates the placement-scalability sweep (fleet size 2..32).
fn main() {
    println!("{}", s2m3_bench::scalability::run().render());
}
