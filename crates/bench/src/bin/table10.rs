//! Regenerates table10 of the paper.
fn main() {
    println!("{}", s2m3_bench::table10::run().render());
}
