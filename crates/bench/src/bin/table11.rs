//! Regenerates table11 of the paper.
fn main() {
    println!("{}", s2m3_bench::table11::run().render());
}
