//! Regenerates the mechanism-ablation table (replication, batching,
//! partitioning, energy).
fn main() {
    println!("{}", s2m3_bench::ablations::run().render());
}
