//! Hot-path wall-clock baseline: times placement, the brute-force Upper
//! bound, the offline simulator, the online serving loop, and the raw
//! discrete-event kernel, and records the medians in `BENCH_serve.json`
//! — the repo's performance trajectory.
//!
//! Usage (from the repo root):
//!
//! ```text
//! # Record the "before" side of a comparison (pre-optimization tree):
//! cargo run --release -p s2m3-bench --bin perf_baseline -- --record-before
//!
//! # Record the "after" side and compute speedups against the stored
//! # before numbers:
//! cargo run --release -p s2m3-bench --bin perf_baseline
//!
//! # CI smoke mode: fewer iterations, still writes nothing unless asked.
//! cargo run --release -p s2m3-bench --bin perf_baseline -- --quick --no-write
//!
//! # CI regression gate: fail (exit 1) if any bench regresses more than
//! # 25% against the recorded after-medians. Writes nothing. A bench
//! # over the threshold is re-measured up to twice and judged on its
//! # best of three medians, so a single throttle spike on this ±40%
//! # box does not fail the job.
//! cargo run --release -p s2m3-bench --bin perf_baseline -- --quick --compare BENCH_serve.json
//! ```
//!
//! The output JSON maps bench name → `{before_ns, after_ns, speedup}`
//! (medians, nanoseconds per operation). Only the side being recorded is
//! overwritten, so before/after survive independent runs.

use std::collections::BTreeMap;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use s2m3_core::placement::greedy_place;
use s2m3_core::plan::Plan;
use s2m3_core::problem::Instance;
use s2m3_core::upper::optimal_placement;
use s2m3_serve::{
    serve, AdmissionPolicy, BatchPolicy, BudgetEnforcement, BudgetPolicy, ServeScenario,
    StreamingConfig,
};
use s2m3_sim::engine::{simulate, SimConfig};
use s2m3_sim::kernel::{Device, Driver, Kernel, Policy, RequestSlot};
use s2m3_sweep::{run_sweep, SweepSpec};

const OUT_PATH: &str = "BENCH_serve.json";

/// One bench's recorded medians.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct Entry {
    /// Median ns/op before the optimization under comparison.
    #[serde(skip_serializing_if = "Option::is_none")]
    before_ns: Option<u64>,
    /// Median ns/op on the current tree.
    #[serde(skip_serializing_if = "Option::is_none")]
    after_ns: Option<u64>,
    /// `before_ns / after_ns` when both sides exist.
    #[serde(skip_serializing_if = "Option::is_none")]
    speedup: Option<f64>,
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct BenchFile {
    generated_by: String,
    benches: BTreeMap<String, Entry>,
}

fn median_ns(iters: usize, mut op: impl FnMut()) -> u64 {
    // One untimed warmup to populate caches/allocator arenas.
    op();
    let mut samples: Vec<u64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            op();
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// A no-op driver with fixed 1 ms executions: what remains is the
/// kernel's own event-heap + lane-scheduler overhead.
struct FixedDur;

impl Driver for FixedDur {
    type Custom = u32;
    type Payload = ();
    type Error = std::convert::Infallible;

    fn dispatched(
        &mut self,
        _k: &mut Kernel<u32, ()>,
        _device: usize,
        _group: &[usize],
        now: u64,
    ) -> Result<u64, Self::Error> {
        Ok(now + 1_000_000)
    }

    fn encoder_ready_ns(
        &mut self,
        _k: &mut Kernel<u32, ()>,
        _tid: usize,
        now: u64,
    ) -> Result<u64, Self::Error> {
        Ok(now + 50_000)
    }

    fn head_done(
        &mut self,
        _k: &mut Kernel<u32, ()>,
        _req: usize,
        _now: u64,
    ) -> Result<(), Self::Error> {
        Ok(())
    }
}

/// One synthetic kernel run: `n_req` requests, each fanning two encoder
/// tasks across 4 devices plus a head, arrivals staggered 0.5 ms apart.
/// Returns the number of events processed (sanity-checked below).
fn kernel_fanout_run(n_req: usize) -> u64 {
    let mut k: Kernel<u32, ()> = Kernel::new(
        (0..4).map(|_| Device::new(2, 0)).collect(),
        Policy::default(),
    );
    let mut d = FixedDur;
    for req in 0..n_req {
        let head = k.spawn_task(req, 2, req % 4, true, ());
        let at = req as u64 * 500_000;
        for e in 0..2u32 {
            let enc = k.spawn_task(req, e, (req + 1 + e as usize) % 4, false, ());
            k.push_ready(at, enc);
        }
        k.set_request(
            req,
            RequestSlot {
                pending_encoders: 2,
                head_ready_ns: at,
                head_task: head,
            },
        );
    }
    match k.run_until_idle(&mut d) {
        Ok(n) => n,
        Err(e) => match e {},
    }
}

fn serve_scenario(requests: usize, admission: AdmissionPolicy, churn: bool) -> ServeScenario {
    let mut s = ServeScenario {
        requests,
        admission,
        ..ServeScenario::churn_default()
    };
    if !churn {
        s.events.clear();
    }
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let record_before = args.iter().any(|a| a == "--record-before");
    let quick = args.iter().any(|a| a == "--quick");
    let no_write = args.iter().any(|a| a == "--no-write");
    let compare: Option<String> = args
        .iter()
        .position(|a| a == "--compare")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let iters = if quick { 5 } else { 21 };

    let single = Instance::single_model("CLIP ViT-B/16", 101).expect("zoo model");
    let multi = Instance::on_fleet(
        s2m3_net::fleet::Fleet::standard_testbed(),
        &[
            ("CLIP ViT-B/16", 101),
            ("Encoder-only VQA (Small)", 1),
            ("AlignBind-B", 16),
            ("CLIP-Classifier Food-101", 0),
            ("Flint-v0.5-1B", 1),
        ],
    )
    .expect("zoo models");
    let sim_plan = {
        let requests: Vec<_> = (0..32)
            .map(|k| single.request(k, "CLIP ViT-B/16").unwrap())
            .collect();
        Plan::greedy(&single, requests).expect("plan builds")
    };
    let fifo = serve_scenario(500, AdmissionPolicy::Fifo, false);
    let edf = serve_scenario(500, AdmissionPolicy::EarliestDeadlineFirst, false);
    let churn = serve_scenario(500, AdmissionPolicy::ShedOnOverload { max_queue: 48 }, true);
    let batched = {
        let mut s = serve_scenario(500, AdmissionPolicy::Fifo, false);
        s.batch = Some(BatchPolicy {
            max_batch: 4,
            per_kind: vec![],
        });
        s
    };
    // A cap tight enough to bind (the 500-request EDF run uses ~12
    // device-seconds per 60 s window uncapped), so the row times the
    // budget gate, the defer heap, and window-boundary re-admission —
    // not just the pricing fast path.
    let budget = {
        let mut s = serve_scenario(500, AdmissionPolicy::EarliestDeadlineFirst, false);
        let mut policy = BudgetPolicy::device_seconds(6.0);
        policy.enforcement = BudgetEnforcement::DeferThenShed;
        s.budget = Some(policy);
        s
    };
    let streaming_scenario = |requests: usize| {
        let mut s = serve_scenario(
            requests,
            AdmissionPolicy::ShedOnOverload { max_queue: 48 },
            true,
        );
        s.arrivals = s2m3_sim::workload::ArrivalProcess::Poisson { rate_per_s: 3.0 };
        s.streaming = Some(StreamingConfig::default());
        s.max_windows = Some(64);
        s
    };
    let streaming_small = streaming_scenario(500);
    // Mid-size streaming row between the 500-request smoke and the 5M
    // headline: large enough that the event loop (not setup) dominates,
    // small enough for `--quick` and the CI regression gate.
    let streaming_50k = streaming_scenario(50_000);
    let streaming_5m = if quick {
        None
    } else {
        Some(streaming_scenario(5_000_000))
    };
    // The same scenarios through the sharded backend (`threads: 4` = S
    // + A workers + encoder shard). Tracked honestly: on this paper's
    // workloads the per-event cost (~tens of ns) sits far below channel
    // round-trip cost, so the parallel rows measure the protocol's
    // synchronization overhead, not a speedup — the row exists so that
    // overhead is pinned and regressions in the conservative-sync path
    // (horizon ratchets, lost wakeups) show up as wall-clock jumps.
    let parallel_50k = {
        let mut s = streaming_scenario(50_000);
        s.threads = 4;
        s
    };
    let parallel_5m = streaming_5m.clone().map(|mut s| {
        s.threads = 4;
        s
    });
    // The sweep harness end to end: 64 replicas (4 seeds x 4 rates x 4
    // fleet sizes) of a short churn stream through the thread pool,
    // shared-start preparation and aggregation included.
    let sweep_spec = {
        let mut base = serve_scenario(48, AdmissionPolicy::Fifo, true);
        base.snapshot_every = 12;
        SweepSpec {
            base,
            seeds: 4,
            rate_scales: vec![0.5, 1.0, 2.0, 4.0],
            fleet_sizes: vec![1, 2, 3, 4],
            bin_s: 600.0,
            miss_budget: 0.01,
            threads: 0,
        }
    };
    assert_eq!(sweep_spec.replica_count(), 64);
    // The shared kernel in isolation: ~2k requests × (2 ready + 2 done
    // + 1 head) events through a no-op driver.
    assert!(kernel_fanout_run(2_000) >= 10_000);

    // Benches as (name, iterations, op) so the `--compare` gate can
    // re-measure an offender instead of failing on one noisy median.
    type Bench<'a> = (&'a str, usize, Box<dyn FnMut() + 'a>);
    let mut benches: Vec<Bench> = Vec::new();
    benches.push((
        "greedy_place/five-task",
        iters * 20,
        Box::new(|| {
            std::hint::black_box(greedy_place(&multi).unwrap());
        }),
    ));
    benches.push((
        "optimal_placement/single-model",
        iters,
        Box::new(|| {
            std::hint::black_box(optimal_placement(&single).unwrap());
        }),
    ));
    benches.push((
        "simulate/32req",
        iters * 4,
        Box::new(|| {
            std::hint::black_box(simulate(&single, &sim_plan, &SimConfig::default()).unwrap());
        }),
    ));
    benches.push((
        "serve_loop/500req_fifo",
        iters,
        Box::new(|| {
            std::hint::black_box(serve(&fifo).unwrap());
        }),
    ));
    benches.push((
        "serve_loop/500req_edf",
        iters,
        Box::new(|| {
            std::hint::black_box(serve(&edf).unwrap());
        }),
    ));
    benches.push((
        "serve_loop/500req_churn_replan",
        iters,
        Box::new(|| {
            std::hint::black_box(serve(&churn).unwrap());
        }),
    ));
    // Batched online dispatch: the kernel's group-merge path (absent
    // from the other serve benches, which run the singleton fast path).
    benches.push((
        "serve_loop/500req_batched",
        iters,
        Box::new(|| {
            std::hint::black_box(serve(&batched).unwrap());
        }),
    ));
    // The budget gate on the dispatch path: route pricing, per-window
    // reservation, deferral, and BudgetWake re-admission.
    benches.push((
        "serve_loop/500req_budget",
        iters,
        Box::new(|| {
            std::hint::black_box(serve(&budget).unwrap());
        }),
    ));
    // Memory-flat streaming mode: slab recycling + sketch aggregation
    // on the same loop (quick-safe size, for regression visibility).
    benches.push((
        "serve_loop/500req_streaming",
        iters,
        Box::new(|| {
            std::hint::black_box(serve(&streaming_small).unwrap());
        }),
    ));
    benches.push((
        "serve_loop/50k_req_streaming",
        if quick { 3 } else { 7 },
        Box::new(|| {
            std::hint::black_box(serve(&streaming_50k).unwrap());
        }),
    ));
    // The ISSUE's headline run: five million requests through the
    // streaming path in O(in-flight) heap. Seconds per run, so it
    // samples a small fixed count and sits out `--quick` CI smoke.
    if let Some(s5m) = &streaming_5m {
        benches.push((
            "serve_loop/5M_req",
            3,
            Box::new(|| {
                std::hint::black_box(serve(s5m).unwrap());
            }),
        ));
    }
    // Sharded-backend counterparts (interleaved with the sequential
    // rows above so thermal / frequency drift hits both alike). These
    // pin conservative-sync overhead; see the scenario comment.
    benches.push((
        "serve_loop/50k_req_parallel",
        if quick { 2 } else { 3 },
        Box::new(|| {
            std::hint::black_box(serve(&parallel_50k).unwrap());
        }),
    ));
    if let Some(p5m) = &parallel_5m {
        // Tens of seconds per run (sync-bound): one sample keeps the
        // full bench pass tolerable while still pinning the number.
        benches.push((
            "serve_loop/5M_req_parallel",
            1,
            Box::new(|| {
                std::hint::black_box(serve(p5m).unwrap());
            }),
        ));
    }
    benches.push((
        "sweep/64rep",
        iters,
        Box::new(|| {
            std::hint::black_box(run_sweep(&sweep_spec).unwrap());
        }),
    ));
    benches.push((
        "kernel_step/2k_req_fanout",
        iters * 4,
        Box::new(|| {
            std::hint::black_box(kernel_fanout_run(2_000));
        }),
    ));

    let mut results: Vec<(&str, u64)> = benches
        .iter_mut()
        .map(|(name, it, op)| (*name, median_ns(*it, &mut **op)))
        .collect();

    let mut file: BenchFile = std::fs::read_to_string(compare.as_deref().unwrap_or(OUT_PATH))
        .ok()
        .and_then(|text| serde_json::from_str(&text).ok())
        .unwrap_or_default();

    // Regression gate: judge each bench against its recorded
    // after-median on its *best of three* medians — a single run on
    // this box swings ±40% under throttle, so an offender gets two
    // re-measures before the verdict. Reads only; never writes.
    if let Some(path) = &compare {
        let mut failures: Vec<String> = Vec::new();
        println!(
            "{:<34} {:>14} {:>14}  (gate: best-of-3 vs recorded after)",
            "bench", "measured", "recorded"
        );
        for ((name, it, op), (_, ns)) in benches.iter_mut().zip(results.iter_mut()) {
            let Some(recorded) = file.benches.get(*name).and_then(|e| e.after_ns) else {
                println!("{name:<34} {ns:>14} {:>14}", "-");
                continue;
            };
            let limit = recorded.saturating_mul(5) / 4;
            for _ in 0..2 {
                if *ns <= limit {
                    break;
                }
                *ns = (*ns).min(median_ns(*it, &mut **op));
            }
            println!("{name:<34} {ns:>14} {recorded:>14}");
            if *ns > limit {
                failures.push(format!(
                    "{name}: {ns} ns/op vs recorded {recorded} (+{:.0}% > 25%)",
                    (*ns as f64 / recorded as f64 - 1.0) * 100.0
                ));
            }
        }
        if failures.is_empty() {
            println!("perf gate passed: no bench regressed >25% vs {path}");
            return;
        }
        eprintln!("perf gate FAILED vs {path}:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }

    file.generated_by = "cargo run --release -p s2m3-bench --bin perf_baseline".to_string();
    let side = if record_before { "before" } else { "after" };
    println!("{:<34} {:>14}  ({side})", "bench", "median ns/op");
    for (name, ns) in &results {
        println!("{name:<34} {ns:>14}");
        let entry = file.benches.entry((*name).to_string()).or_default();
        if record_before {
            entry.before_ns = Some(*ns);
        } else {
            entry.after_ns = Some(*ns);
        }
        entry.speedup = match (entry.before_ns, entry.after_ns) {
            (Some(b), Some(a)) if a > 0 => Some(b as f64 / a as f64),
            _ => None,
        };
    }

    if no_write {
        println!("--no-write: {OUT_PATH} left untouched");
        return;
    }
    let json = serde_json::to_string_pretty(&file).expect("bench file serializes");
    std::fs::write(OUT_PATH, json + "\n").expect("write BENCH_serve.json");
    println!("wrote {OUT_PATH}");
}
