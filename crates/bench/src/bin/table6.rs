//! Regenerates table6 of the paper.
fn main() {
    println!("{}", s2m3_bench::table6::run().render());
}
