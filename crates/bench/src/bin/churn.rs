//! Regenerates the churn-under-load serving experiment.
fn main() {
    println!("{}", s2m3_bench::churn::run().render());
}
