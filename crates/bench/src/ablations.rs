//! Design-choice ablations beyond the paper's printed tables: each row
//! isolates one S2M3 mechanism called out in DESIGN.md and quantifies it
//! on the standard workloads.

use s2m3_core::partition::greedy_place_partitioned;
use s2m3_core::placement::{greedy_place_with, PlacementOptions};
use s2m3_core::plan::Plan;
use s2m3_core::problem::Instance;
use s2m3_core::routing::route_requests_balanced;
use s2m3_net::fleet::Fleet;
use s2m3_sim::energy::{default_profiles, energy};
use s2m3_sim::{simulate, SimConfig};

use crate::table::{fmt_secs, Table};

const MODEL: &str = "CLIP ViT-B/16";
const CANDIDATES: usize = 101;
const BURST: usize = 8;

fn burst_plan(replicate: bool) -> (Instance, Plan) {
    let i = Instance::single_model(MODEL, CANDIDATES).unwrap();
    let requests: Vec<_> = (0..BURST as u64)
        .map(|k| i.request(k, MODEL).unwrap())
        .collect();
    let plan = Plan::greedy_with(&i, requests, PlacementOptions { replicate }).unwrap();
    (i, plan)
}

/// Replication ablation: burst makespan with and without leftover-memory
/// replication (Sec. V-B's final step). Replicas only matter with
/// load-aware routing, so the replicated case routes with
/// [`route_requests_balanced`].
pub fn replication_gain() -> (f64, f64) {
    let (i, plain) = burst_plan(false);
    let a = simulate(&i, &plain, &SimConfig::default())
        .unwrap()
        .makespan;

    let replicated_placement = greedy_place_with(&i, PlacementOptions { replicate: true }).unwrap();
    let requests: Vec<_> = (0..BURST as u64)
        .map(|k| i.request(k, MODEL).unwrap())
        .collect();
    let routes = route_requests_balanced(&i, &replicated_placement, &requests).unwrap();
    let plan = Plan {
        placement: replicated_placement,
        routed: requests.into_iter().zip(routes).collect(),
    };
    let b = simulate(&i, &plan, &SimConfig::default()).unwrap().makespan;
    (a, b)
}

/// Batching ablation: burst makespan with and without module-level batch
/// aggregation (Sec. VI-C).
pub fn batching_gain() -> (f64, f64) {
    let (i, plan) = burst_plan(false);
    let plain = simulate(&i, &plan, &SimConfig::default()).unwrap().makespan;
    let batched = simulate(
        &i,
        &plan,
        &SimConfig {
            max_batch: Some(BURST),
            ..SimConfig::default()
        },
    )
    .unwrap()
    .makespan;
    (plain, batched)
}

/// Partitioning ablation: LLaVA-v1.5-13B is infeasible whole on the edge
/// fleet; the Sec. V-B fallback shards its LLM into pipeline stages.
/// Returns (shard count, pipelined head latency).
pub fn partitioning_result() -> (usize, f64) {
    let i = Instance::single_model("LLaVA-v1.5-13B", 1).unwrap();
    let pp = greedy_place_partitioned(&i).unwrap();
    let plan = &pp.sharded[0];
    let profile = i.deployments()[0].profile;
    (
        plan.shard_count(),
        plan.pipeline_latency(&i, &profile).unwrap(),
    )
}

/// Energy ablation: marginal joules per request, edge S2M3 vs the
/// centralized GPU server (the paper's future-work metric).
pub fn energy_comparison() -> (f64, f64) {
    let i = Instance::single_model(MODEL, CANDIDATES).unwrap();
    let q = i.request(0, MODEL).unwrap();
    let plan = Plan::greedy(&i, vec![q]).unwrap();
    let report = simulate(&i, &plan, &SimConfig::default()).unwrap();
    let edge = energy(&report, &default_profiles()).marginal_j();

    // Centralized server: active draw over the cloud inference time.
    let full = Instance::on_fleet(Fleet::standard_testbed(), &[(MODEL, CANDIDATES)]).unwrap();
    let cloud_latency =
        s2m3_baselines::centralized::centralized_latency(&full, MODEL, "server").unwrap();
    let server = default_profiles()[&"server".into()];
    let cloud = (server.active_w - server.idle_w) * cloud_latency;
    (edge, cloud)
}

/// Regenerates the ablation table.
pub fn run() -> Table {
    let mut t = Table::new(
        "Ablations — isolating each S2M3 mechanism",
        &["Mechanism", "Without", "With", "Effect"],
    );
    let (r0, r1) = replication_gain();
    t.push_row(vec![
        format!("Replication ({BURST}-request burst makespan, s)"),
        fmt_secs(Some(r0)),
        fmt_secs(Some(r1)),
        format!("{:+.1}%", 100.0 * (r1 / r0 - 1.0)),
    ]);
    let (b0, b1) = batching_gain();
    t.push_row(vec![
        format!("Module-level batching ({BURST}-request burst makespan, s)"),
        fmt_secs(Some(b0)),
        fmt_secs(Some(b1)),
        format!("{:+.1}%", 100.0 * (b1 / b0 - 1.0)),
    ]);
    let (shards, latency) = partitioning_result();
    t.push_row(vec![
        "LLM partitioning (LLaVA-13B on edge)".into(),
        "infeasible".into(),
        format!("{shards}-way, {latency:.2} s"),
        "feasible".into(),
    ]);
    let (edge_j, cloud_j) = energy_comparison();
    t.push_row(vec![
        "Marginal energy per request (J)".into(),
        format!("cloud {cloud_j:.0}"),
        format!("edge {edge_j:.0}"),
        format!("{:+.1}%", 100.0 * (edge_j / cloud_j - 1.0)),
    ]);
    t.push_note(
        "Replication and batching act on queuing (multi-request bursts); partitioning is the \
         Sec. V-B fallback for modules that fit nowhere; energy is the Sec. VII future-work \
         metric (edge inference trades latency for a large energy saving).",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_strictly_helps_bursts() {
        let (without, with) = replication_gain();
        assert!(with < without, "replicated {with:.2} vs plain {without:.2}");
    }

    #[test]
    fn batching_strictly_helps_bursts() {
        let (without, with) = batching_gain();
        assert!(with < without, "batched {with:.2} vs plain {without:.2}");
    }

    #[test]
    fn partitioning_makes_13b_feasible_at_sane_latency() {
        let (shards, latency) = partitioning_result();
        assert!(shards >= 2);
        assert!(
            latency.is_finite() && latency > 1.0 && latency < 120.0,
            "{latency}"
        );
    }

    #[test]
    fn edge_energy_beats_cloud_energy() {
        let (edge, cloud) = energy_comparison();
        assert!(edge < cloud, "edge {edge:.0} J vs cloud {cloud:.0} J");
    }
}
