//! Table VI: deployment cost and inference latency per architecture.

use s2m3_baselines::centralized::centralized_latency;
use s2m3_core::objective::total_latency;
use s2m3_core::plan::Plan;
use s2m3_core::problem::Instance;
use s2m3_net::fleet::Fleet;

use crate::table::{fmt_params, fmt_secs, Table};

/// The Table VI rows: architecture name and benchmark candidate count.
/// Retrieval uses Food-101's 101 classes (the paper's default); the
/// encoder-VQA rows encode a single question; the ImageBind row evaluates
/// an As-A style clip against a small candidate-label set, which is what
/// makes its S2M3 latency land just below the cloud's as in the paper.
pub fn architectures() -> Vec<(&'static str, usize)> {
    vec![
        ("CLIP ResNet-50", 101),
        ("CLIP ResNet-101", 101),
        ("CLIP ResNet-50x4", 101),
        ("CLIP ResNet-50x16", 101),
        ("CLIP ResNet-50x64", 101),
        ("CLIP ViT-B/32", 101),
        ("CLIP ViT-B/16", 101),
        ("CLIP ViT-L/14", 101),
        ("CLIP ViT-L/14@336", 101),
        ("Encoder-only VQA (Small)", 1),
        ("Encoder-only VQA (Large)", 1),
        ("ImageBind", 8),
    ]
}

/// Computes one architecture's row: (centralized params, split params,
/// cloud latency, local latency, S2M3 latency).
pub fn row(name: &str, candidates: usize) -> (u64, u64, Option<f64>, Option<f64>, Option<f64>) {
    let full = Instance::on_fleet(Fleet::standard_testbed(), &[(name, candidates)])
        .expect("standard zoo model");
    let model = &full.deployment(name).expect("deployed").model;
    let central_params = model.total_params();
    let split_params = model.max_module_params();

    let cloud = centralized_latency(&full, name, "server").ok();
    let local = centralized_latency(&full, name, "jetson-a").ok();

    let edge = Instance::on_fleet(Fleet::edge_testbed(), &[(name, candidates)])
        .expect("standard zoo model");
    let s2m3 = (|| {
        let q = edge.request(0, name).ok()?;
        let plan = Plan::greedy(&edge, vec![q.clone()]).ok()?;
        total_latency(&edge, &plan.routed[0].1, &q).ok()
    })();

    (central_params, split_params, cloud, local, s2m3)
}

/// Regenerates Table VI.
pub fn run() -> Table {
    let mut t = Table::new(
        "Table VI — deployment cost and latency per architecture",
        &[
            "Architecture",
            "#Param (Central)",
            "#Param (S2M3)",
            "Saving",
            "Cloud (s)",
            "Local (s)",
            "S2M3 (s)",
        ],
    );
    for (name, candidates) in architectures() {
        let (central, split, cloud, local, s2m3) = row(name, candidates);
        let saving = 100.0 * (1.0 - split as f64 / central as f64);
        t.push_row(vec![
            name.to_string(),
            fmt_params(central),
            fmt_params(split),
            format!("-{saving:.0}%"),
            fmt_secs(cloud),
            fmt_secs(local),
            fmt_secs(s2m3),
        ]);
    }
    t.push_note(
        "Local '–' = model does not fit the 4 GB Jetson (paper Table VI dashes: RN50x16, \
         RN50x64, ViT-L/14, ViT-L/14@336, Encoder-only Large, ImageBind).",
    );
    t.push_note(
        "Paper regime: cloud ≈ 2.4–2.9 s for retrieval and 1.2–1.5 s for encoder-VQA; S2M3 \
         comparable to cloud for small models, worse for RN50x16/RN50x64 (vision-dominated), \
         and strictly better for encoder-VQA (up to 56.9% faster).",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_twelve_rows() {
        let t = run();
        assert_eq!(t.rows.len(), 12);
    }

    #[test]
    fn infeasible_local_cells_match_paper_dashes() {
        let t = run();
        let local = |name: &str| {
            t.rows
                .iter()
                .find(|r| r[0] == name)
                .map(|r| r[5].clone())
                .unwrap()
        };
        for dash in [
            "CLIP ResNet-50x16",
            "CLIP ResNet-50x64",
            "CLIP ViT-L/14",
            "CLIP ViT-L/14@336",
            "Encoder-only VQA (Large)",
            "ImageBind",
        ] {
            assert_eq!(local(dash), "–", "{dash} should not fit the Jetson");
        }
        for ok in ["CLIP ResNet-50", "CLIP ResNet-50x4", "CLIP ViT-B/16"] {
            assert_ne!(local(ok), "–", "{ok} should fit the Jetson");
        }
    }

    #[test]
    fn vqa_small_crossover_matches_paper() {
        // Paper: cloud 1.23, S2M3 0.50 — S2M3 wins big on small VQA.
        let (_, _, cloud, _, s2m3) = row("Encoder-only VQA (Small)", 1);
        let (cloud, s2m3) = (cloud.unwrap(), s2m3.unwrap());
        assert!(s2m3 < 0.6 * cloud, "cloud {cloud:.2} vs s2m3 {s2m3:.2}");
    }

    #[test]
    fn imagebind_edges_out_the_cloud() {
        // Paper: cloud 2.44 vs S2M3 2.34 — a narrow S2M3 win.
        let (_, _, cloud, _, s2m3) = row("ImageBind", 8);
        assert!(s2m3.unwrap() < cloud.unwrap());
    }

    #[test]
    fn rn50x64_crossover_matches_paper() {
        // Paper: cloud 2.92 < S2M3 6.50 — the big ResNet favors the GPU.
        let (_, _, cloud, _, s2m3) = row("CLIP ResNet-50x64", 101);
        assert!(s2m3.unwrap() > cloud.unwrap());
    }

    #[test]
    fn savings_match_table_vi_percentages() {
        let t = run();
        let saving = |name: &str| {
            t.rows
                .iter()
                .find(|r| r[0] == name)
                .map(|r| r[3].clone())
                .unwrap()
        };
        assert_eq!(saving("CLIP ResNet-50"), "-50%");
        assert_eq!(saving("CLIP ViT-B/16"), "-31%");
        assert_eq!(saving("CLIP ViT-L/14"), "-22%");
    }
}
