//! Fig. 3: the inference timeline (model loading / transmission / image
//! encoding / text encoding / task head) for CLIP ViT-B/16, comparing
//! S2M3 against centralized cloud and local execution.

use s2m3_baselines::centralized::{centralized_e2e, centralized_latency};
use s2m3_core::plan::Plan;
use s2m3_core::problem::Instance;
use s2m3_net::fleet::Fleet;
use s2m3_sim::{simulate, SimConfig, SimReport};

use crate::table::{fmt_secs, Table};

const MODEL: &str = "CLIP ViT-B/16";
const CANDIDATES: usize = 101;

/// The simulated S2M3 timeline (with model loading), ready for Gantt
/// rendering.
pub fn s2m3_timeline() -> SimReport {
    timeline(true)
}

/// The serving-only timeline (models already loaded — the paper's
/// steady-state view where encoders visibly overlap).
pub fn s2m3_serving_timeline() -> SimReport {
    timeline(false)
}

fn timeline(include_loading: bool) -> SimReport {
    let edge = Instance::on_fleet(Fleet::edge_testbed(), &[(MODEL, CANDIDATES)]).unwrap();
    let q = edge.request(0, MODEL).unwrap();
    let plan = Plan::greedy(&edge, vec![q]).unwrap();
    simulate(
        &edge,
        &plan,
        &SimConfig {
            include_loading,
            arrivals: None,
            max_batch: None,
        },
    )
    .unwrap()
}

/// Summary rows comparing the three deployments of Fig. 3.
pub fn run() -> (Table, String) {
    let full = Instance::on_fleet(Fleet::standard_testbed(), &[(MODEL, CANDIDATES)]).unwrap();
    let report = s2m3_timeline();

    let mut t = Table::new(
        "Fig. 3 — inference timeline summary (CLIP ViT-B/16)",
        &["Deployment", "Loading (s)", "Serving (s)", "Total (s)"],
    );
    for (label, dev) in [
        ("Centralized Cloud", "server"),
        ("Centralized Local", "jetson-a"),
    ] {
        let inf = centralized_latency(&full, MODEL, dev).ok();
        let e2e = centralized_e2e(&full, MODEL, dev).ok();
        let load = match (inf, e2e) {
            (Some(i), Some(e)) => Some(e - i),
            _ => None,
        };
        t.push_row(vec![
            label.to_string(),
            fmt_secs(load),
            fmt_secs(inf),
            fmt_secs(e2e),
        ]);
    }
    let serving = report.makespan - report.loading_done;
    t.push_row(vec![
        "S2M3".into(),
        fmt_secs(Some(report.loading_done)),
        fmt_secs(Some(serving)),
        fmt_secs(Some(report.makespan)),
    ]);
    t.push_note(
        "Per-phase spans below; transmission and head processing are nearly invisible, \
         as in the paper's Fig. 3.",
    );

    let gantt = report.render_gantt(90);
    (t, gantt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2m3_sim::Phase;

    #[test]
    fn timeline_has_all_phases() {
        let r = s2m3_timeline();
        let has = |f: fn(&Phase) -> bool| r.spans.iter().any(|s| f(&s.phase));
        assert!(has(|p| matches!(p, Phase::ModelLoading(_))));
        assert!(has(|p| matches!(p, Phase::InputTx(_))));
        assert!(has(|p| matches!(p, Phase::Encode(_))));
        assert!(has(|p| matches!(p, Phase::Head(_))));
    }

    #[test]
    fn encoders_overlap_in_time() {
        // The core of Fig. 3: image and text encoding run simultaneously
        // on different devices (steady state: models already loaded).
        let r = s2m3_serving_timeline();
        let encodes: Vec<_> = r
            .spans
            .iter()
            .filter(|s| matches!(s.phase, Phase::Encode(_)))
            .collect();
        assert_eq!(encodes.len(), 2);
        let (a, b) = (encodes[0], encodes[1]);
        assert_ne!(a.device, b.device);
        let overlap = a.start.max(b.start) < a.end.min(b.end);
        assert!(overlap, "encoder spans must overlap: {a:?} vs {b:?}");
    }

    #[test]
    fn transmission_is_nearly_invisible() {
        let r = s2m3_serving_timeline();
        let tx_total: f64 = r
            .spans
            .iter()
            .filter(|s| matches!(s.phase, Phase::InputTx(_) | Phase::OutputTx(_)))
            .map(|s| s.end - s.start)
            .sum();
        assert!(tx_total < 0.15, "transmission total {tx_total:.3}");
    }

    #[test]
    fn summary_table_and_gantt_render() {
        let (t, gantt) = run();
        assert_eq!(t.rows.len(), 3);
        assert!(gantt.contains("legend"));
        assert!(gantt.contains('E'));
    }
}
