//! Trial-to-trial fleet perturbation.
//!
//! The paper averages every latency over five trials because real
//! networks and schedulers are noisy. Our simulator is deterministic, so
//! trials are realized by perturbing device speeds and link conditions
//! with a seeded RNG (±10% speed, ±20% latency) — the same magnitude of
//! run-to-run variation the paper's testbed exhibits.

use rand_chacha::rand_core::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use s2m3_net::fleet::Fleet;
use s2m3_net::link::LinkSpec;
use s2m3_net::topology::Topology;
use s2m3_tensor::seed::seed_from_label;

/// Returns a copy of `fleet` with per-trial perturbations derived from
/// `label` (use e.g. `"trial/3"`).
pub fn perturbed_fleet(fleet: &Fleet, label: &str) -> Fleet {
    let mut rng = ChaCha8Rng::from_seed(seed_from_label(&format!("perturb/{label}")));
    let mut uniform = move |lo: f64, hi: f64| {
        let u = (rng.next_u32() >> 8) as f64 / (1u32 << 24) as f64;
        lo + u * (hi - lo)
    };

    let mut devices = fleet.devices().to_vec();
    for d in &mut devices {
        d.speed_gflops *= uniform(0.9, 1.1);
        d.exec_overhead_s *= uniform(0.85, 1.15);
    }
    let mut topology = Topology::new();
    for d in fleet.devices() {
        // Rebuild each access link with jitter.
        let base = fleet
            .topology()
            .path(&d.id, fleet.requester())
            .unwrap_or_else(|_| LinkSpec::loopback());
        let jitter_lat = uniform(0.8, 1.2);
        let jitter_bw = uniform(0.85, 1.1);
        topology.set_access(
            d.id.clone(),
            LinkSpec::new(
                (base.bandwidth_bps * jitter_bw).max(1.0e6),
                (base.latency_s * 0.5 * jitter_lat).max(1.0e-4),
            ),
        );
    }
    Fleet::new(devices, topology, fleet.requester().clone())
        .expect("perturbation keeps the fleet valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perturbation_is_deterministic_per_label() {
        let f = Fleet::edge_testbed();
        let a = perturbed_fleet(&f, "trial/0");
        let b = perturbed_fleet(&f, "trial/0");
        let c = perturbed_fleet(&f, "trial/1");
        assert_eq!(
            a.device("laptop").unwrap().speed_gflops,
            b.device("laptop").unwrap().speed_gflops
        );
        assert_ne!(
            a.device("laptop").unwrap().speed_gflops,
            c.device("laptop").unwrap().speed_gflops
        );
    }

    #[test]
    fn perturbation_stays_within_bounds() {
        let f = Fleet::edge_testbed();
        for t in 0..10 {
            let p = perturbed_fleet(&f, &format!("trial/{t}"));
            for (d, base) in p.devices().iter().zip(f.devices()) {
                let ratio = d.speed_gflops / base.speed_gflops;
                assert!((0.9..=1.1).contains(&ratio), "{ratio}");
            }
        }
    }
}
