//! Minimal tabular report type shared by all experiments.

use serde::{Deserialize, Serialize};

/// A rendered experiment table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Experiment title (e.g. `"Table VI — deployment cost and latency"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (paper-vs-measured commentary).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Appends a note.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(c.len());
                } else {
                    widths.push(c.len());
                }
            }
        }
        let line = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    format!(
                        "{:<width$}",
                        c,
                        width = widths.get(i).copied().unwrap_or(c.len()) + 2
                    )
                })
                .collect::<String>()
                .trim_end()
                .to_string()
        };
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&line(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().map(|w| w + 2).sum::<usize>().min(120)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// Renders as a GitHub-flavored markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        for n in &self.notes {
            out.push_str(&format!("\n> {n}\n"));
        }
        out
    }
}

/// Formats seconds with 2 decimals, or "–" for `None` (the paper's dash
/// for infeasible cells).
pub fn fmt_secs(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.2}"),
        None => "–".to_string(),
    }
}

/// Formats a parameter count in millions (`"124M"`) or billions.
pub fn fmt_params(params: u64) -> String {
    if params >= 1_000_000_000 {
        format!("{:.1}B", params as f64 / 1.0e9)
    } else if params >= 1_000_000 {
        format!("{}M", params / 1_000_000)
    } else if params >= 1_000 {
        format!("{}K", params / 1_000)
    } else {
        format!("{params}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_and_includes_notes() {
        let mut t = Table::new("Demo", &["a", "bbbb"]);
        t.push_row(vec!["xxxxx".into(), "1".into()]);
        t.push_note("hello");
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("xxxxx"));
        assert!(s.contains("note: hello"));
        let md = t.render_markdown();
        assert!(md.contains("| a | bbbb |"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(Some(2.484)), "2.48");
        assert_eq!(fmt_secs(None), "–");
        assert_eq!(fmt_params(124_000_000), "124M");
        assert_eq!(fmt_params(1_017_000_000), "1.0B");
        assert_eq!(fmt_params(52_000), "52K");
        assert_eq!(fmt_params(17), "17");
    }
}
