//! Churn under load: the serving control plane stressed by fleet changes.
//!
//! The paper's Sec. VI-C sketches adaptive reallocation qualitatively;
//! this experiment quantifies it end-to-end with `s2m3-serve`. A
//! sustained Poisson stream runs against the edge-only starting fleet
//! (standard universe, server initially absent) while the desktop drops
//! out and the GPU server joins mid-run. Three admission policies
//! face the same seeded stream, with live replanning on and off, and the
//! table reports what a serving operator would watch: tail latency,
//! deadline misses, sheds, and accepted migrations.

use s2m3_serve::{serve, AdmissionPolicy, BatchPolicy, ReplanPolicy, ServeReport, ServeScenario};

use crate::table::Table;

/// Requests per churn run (kept below the CLI default so the full
/// experiment suite stays fast; the `serve` command runs the 10k version).
pub const REQUESTS: usize = 2_000;

/// The churn scenario under a given admission policy and replan horizon.
pub fn scenario(policy: AdmissionPolicy, horizon_s: f64) -> ServeScenario {
    ServeScenario {
        requests: REQUESTS,
        admission: policy,
        replan: ReplanPolicy {
            horizon_s,
            charge_switching_downtime: true,
            ..ReplanPolicy::default()
        },
        ..ServeScenario::churn_default()
    }
}

/// Runs one churn configuration.
///
/// # Panics
///
/// On serve-loop failures (the default scenario is valid).
pub fn point(policy: AdmissionPolicy, horizon_s: f64) -> ServeReport {
    serve(&scenario(policy, horizon_s)).expect("churn scenario serves")
}

/// The churn scenario with module-level batching enabled (the workload
/// layer's `batch` knob wired through the kernel's `max_batch`).
pub fn batched_point(policy: AdmissionPolicy, horizon_s: f64, max_batch: usize) -> ServeReport {
    let mut s = scenario(policy, horizon_s);
    s.batch = Some(BatchPolicy {
        max_batch,
        per_kind: vec![],
    });
    serve(&s).expect("batched churn scenario serves")
}

/// Regenerates the churn-under-load table.
pub fn run() -> Table {
    let mut t = Table::new(
        "Churn under load — 2k-request Poisson stream, desktop leaves @1800s, server joins @4200s",
        &[
            "Policy", "Replans", "p50 (s)", "p95 (s)", "p99 (s)", "Miss %", "Shed", "Retried",
        ],
    );
    let configs: [(&str, AdmissionPolicy, f64); 4] = [
        ("FIFO", AdmissionPolicy::Fifo, 600.0),
        ("EDF", AdmissionPolicy::EarliestDeadlineFirst, 600.0),
        (
            "Shed(48)",
            AdmissionPolicy::ShedOnOverload { max_queue: 48 },
            600.0,
        ),
        ("FIFO, no opportunistic replan", AdmissionPolicy::Fifo, 0.0),
    ];
    let mut push = |name: &str, r: &ServeReport| {
        t.push_row(vec![
            name.to_string(),
            format!("{}/{}", r.accepted_replans(), r.replans.len()),
            format!("{:.2}", r.latency.p50_s),
            format!("{:.2}", r.latency.p95_s),
            format!("{:.2}", r.latency.p99_s),
            format!("{:.1}", 100.0 * r.miss_rate),
            r.shed.to_string(),
            r.retried.to_string(),
        ]);
    };
    for (name, policy, horizon) in configs {
        push(name, &point(policy, horizon));
    }
    push(
        "FIFO + Batch(4)",
        &batched_point(AdmissionPolicy::Fifo, 600.0, 4),
    );
    t.push_note(
        "Losing the desktop forces a mandatory migration for every policy; the server join is \
         an opportunistic replan the controller accepts only when its break-even request count \
         amortizes within the horizon — the zero-horizon row keeps serving on the degraded \
         placement and pays for it in the tail. The batched row merges same-module runs at \
         dispatch (the kernel's max_batch, on a scenario knob), amortizing per-execution \
         overhead through the storm phases.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_conserves_requests_across_policies() {
        for policy in [
            AdmissionPolicy::Fifo,
            AdmissionPolicy::EarliestDeadlineFirst,
            AdmissionPolicy::ShedOnOverload { max_queue: 48 },
        ] {
            let r = point(policy, 600.0);
            assert_eq!(r.arrived as usize, REQUESTS);
            assert_eq!(r.completed + r.shed, r.arrived);
            // The mandatory desktop-leave replan always applies.
            assert!(r.accepted_replans() >= 1);
        }
    }

    #[test]
    fn opportunistic_replan_improves_the_tail() {
        let with = point(AdmissionPolicy::Fifo, 600.0);
        let without = point(AdmissionPolicy::Fifo, 0.0);
        // Identical streams; accepting the server migration must not make
        // the tail worse, and should accept strictly more replans.
        assert!(with.accepted_replans() > without.accepted_replans());
        assert!(
            with.latency.p95_s <= without.latency.p95_s + 0.5,
            "replanned p95 {:.2} vs static {:.2}",
            with.latency.p95_s,
            without.latency.p95_s
        );
    }

    #[test]
    fn table_renders_all_configs() {
        let t = run();
        assert_eq!(t.rows.len(), 5);
        assert!(t.render().contains("EDF"));
        assert!(t.render().contains("Batch(4)"));
    }

    #[test]
    fn batched_churn_conserves_and_stays_deterministic() {
        let a = batched_point(AdmissionPolicy::Fifo, 600.0, 4);
        assert_eq!(a.completed + a.shed, a.arrived);
        assert_eq!(a, batched_point(AdmissionPolicy::Fifo, 600.0, 4));
    }
}
