//! Table IX: device availability — latency and per-device memory as the
//! available fleet varies (requester is always Jetson A).

use s2m3_baselines::centralized::centralized_latency;
use s2m3_core::objective::total_latency;
use s2m3_core::plan::Plan;
use s2m3_core::problem::Instance;
use s2m3_net::fleet::Fleet;

use crate::table::{fmt_params, fmt_secs, Table};

const MODEL: &str = "CLIP ViT-B/16";
const CANDIDATES: usize = 101;

/// S2M3 latency on a device subset (names per Table III shorthand).
pub fn s2m3_on(names: &[&str]) -> Option<f64> {
    let fleet = Fleet::standard_testbed().restricted_to(names).ok()?;
    let i = Instance::on_fleet(fleet, &[(MODEL, CANDIDATES)]).ok()?;
    let q = i.request(0, MODEL).ok()?;
    let plan = Plan::greedy(&i, vec![q.clone()]).ok()?;
    total_latency(&i, &plan.routed[0].1, &q).ok()
}

/// Regenerates Table IX.
pub fn run() -> Table {
    let full = Instance::on_fleet(Fleet::standard_testbed(), &[(MODEL, CANDIDATES)]).unwrap();
    let model = &full.deployment(MODEL).unwrap().model;

    let mut t = Table::new(
        "Table IX — device availability (requester: Jetson A)",
        &["Deployment", "Devices", "Latency (s)", "#Param/device"],
    );
    let central = fmt_params(model.total_params());
    let split = fmt_params(model.max_module_params());

    t.push_row(vec![
        "Centralized (cloud)".into(),
        "S + J-A".into(),
        fmt_secs(centralized_latency(&full, MODEL, "server").ok()),
        central.clone(),
    ]);
    t.push_row(vec![
        "Centralized (local)".into(),
        "J-A".into(),
        fmt_secs(centralized_latency(&full, MODEL, "jetson-a").ok()),
        central,
    ]);
    for (label, names) in [
        ("S2M3", vec!["jetson-b", "jetson-a"]),
        ("S2M3", vec!["desktop", "laptop", "jetson-a"]),
        ("S2M3", vec!["desktop", "laptop", "jetson-b", "jetson-a"]),
        (
            "S2M3 (+ Server)",
            vec!["server", "desktop", "laptop", "jetson-b", "jetson-a"],
        ),
    ] {
        t.push_row(vec![
            label.into(),
            names
                .iter()
                .map(|n| shorthand(n))
                .collect::<Vec<_>>()
                .join(" + "),
            fmt_secs(s2m3_on(&names)),
            split.clone(),
        ]);
    }
    t.push_note(
        "Paper: cloud 2.44, local 45.19, two Jetsons 42.70, +D+L 2.49, full edge 2.48, \
         +server 1.74 (the GPU overlaps both encoders, beating the sequential cloud).",
    );
    t
}

fn shorthand(name: &str) -> &'static str {
    match name {
        "server" => "S",
        "desktop" => "D",
        "laptop" => "L",
        "jetson-b" => "J-B",
        "jetson-a" => "J-A",
        _ => "?",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_rows() {
        assert_eq!(run().rows.len(), 6);
    }

    #[test]
    fn two_jetsons_are_barely_better_than_one() {
        // Paper: 45.19 → 42.70 (parallelism helps a little even on two
        // slow devices).
        let full = Instance::on_fleet(Fleet::standard_testbed(), &[(MODEL, CANDIDATES)]).unwrap();
        let local = centralized_latency(&full, MODEL, "jetson-a").unwrap();
        let two = s2m3_on(&["jetson-b", "jetson-a"]).unwrap();
        assert!(two < local, "two jetsons {two:.2} vs one {local:.2}");
        assert!(
            two > 0.8 * local,
            "gain should be modest: {two:.2} vs {local:.2}"
        );
    }

    #[test]
    fn adding_the_server_beats_the_cloud() {
        // Paper's headline Table IX result: S2M3+server (1.74) < cloud
        // (2.44), because S2M3 overlaps module executions on the GPU.
        let full = Instance::on_fleet(Fleet::standard_testbed(), &[(MODEL, CANDIDATES)]).unwrap();
        let cloud = centralized_latency(&full, MODEL, "server").unwrap();
        let with_server =
            s2m3_on(&["server", "desktop", "laptop", "jetson-b", "jetson-a"]).unwrap();
        assert!(
            with_server < cloud,
            "S2M3+server {with_server:.2} must beat cloud {cloud:.2}"
        );
    }

    #[test]
    fn edge_fleets_land_in_paper_regime() {
        let three = s2m3_on(&["desktop", "laptop", "jetson-a"]).unwrap();
        let four = s2m3_on(&["desktop", "laptop", "jetson-b", "jetson-a"]).unwrap();
        // Paper: 2.49 / 2.48 — essentially identical.
        assert!((three - four).abs() < 0.3, "{three:.2} vs {four:.2}");
        assert!((1.5..3.5).contains(&four));
    }
}
