//! Footnote 4: module-level batch inference scaling (LLaVA-Next-7B on an
//! L40S at batch sizes 1/10/20), the paper's answer to shared-module
//! queuing (Sec. VI-C).

use s2m3_models::catalog::Catalog;
use s2m3_sim::batching::{batch_latency, batch_throughput, l40s};

use crate::table::Table;

/// Tokens per generated answer in the footnote's setting.
const TOKENS: f64 = 128.0;

/// Regenerates the footnote-4 batch-scaling measurement.
pub fn run() -> Table {
    let catalog = Catalog::standard();
    let vicuna = catalog
        .get_by_name("llm/Vicuna-7B")
        .expect("catalog LLM")
        .clone();
    let gpu = l40s();
    let mut t = Table::new(
        "Footnote 4 — batch inference scaling (LLaVA-Next-7B on L40S)",
        &[
            "Batch size",
            "Latency (s)",
            "Paper (s)",
            "Throughput (req/s)",
        ],
    );
    for (batch, paper) in [(1usize, 1.28), (10, 4.90), (20, 9.16)] {
        let lat = batch_latency(&gpu, &vicuna, batch, TOKENS);
        let thr = batch_throughput(&gpu, &vicuna, batch, TOKENS);
        t.push_row(vec![
            batch.to_string(),
            format!("{lat:.2}"),
            format!("{paper:.2}"),
            format!("{thr:.2}"),
        ]);
    }
    t.push_note(
        "Near-linear latency in batch size with a fixed setup cost: batching amortizes the \
         per-execution overhead, which is how module-level batching absorbs the Table X \
         queuing delay.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_batch_sizes_tracking_paper() {
        let t = run();
        assert_eq!(t.rows.len(), 3);
        for r in &t.rows {
            let measured: f64 = r[1].parse().unwrap();
            let paper: f64 = r[2].parse().unwrap();
            assert!(
                (measured - paper).abs() / paper < 0.25,
                "batch {}: measured {measured} vs paper {paper}",
                r[0]
            );
        }
    }

    #[test]
    fn throughput_rises_with_batch() {
        let t = run();
        let thr: Vec<f64> = t.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        assert!(thr[0] < thr[1] && thr[1] < thr[2]);
    }
}
