//! Load sweep: sustained multi-task load against the shared deployment.
//!
//! The paper evaluates one simultaneous burst (Table X); this experiment
//! extends the analysis the way its Sec. VI-C discussion points: sweep
//! the offered Poisson rate over the four-task deployment and measure
//! p50/p95 latency for (a) shared modules, (b) dedicated modules, and
//! (c) shared modules with module-level batching. The interesting output
//! is the *knee*: the rate where sharing's queuing delay takes off, and
//! how far batching pushes it.

use s2m3_core::plan::Plan;
use s2m3_core::problem::Instance;
use s2m3_net::fleet::Fleet;
use s2m3_sim::workload::{latency_stats, ArrivalProcess, LatencyStats, WorkloadSpec};
use s2m3_sim::{simulate, SimConfig};

use crate::table::Table;

/// Requests per sweep point.
pub const REQUESTS: usize = 40;
/// Offered rates to sweep, requests/second.
pub const RATES: [f64; 5] = [0.1, 0.2, 0.4, 0.8, 1.6];

/// The four-task deployment of Table X.
pub fn instance() -> Instance {
    Instance::on_fleet(
        Fleet::edge_testbed(),
        &[
            ("CLIP ViT-B/16", 101),
            ("Encoder-only VQA (Small)", 1),
            ("AlignBind-B", 16),
            ("CLIP-Classifier Food-101", 0),
        ],
    )
    .unwrap()
}

/// Runs one sweep point: the offered load is a [`WorkloadSpec`] — the
/// same unified layer `s2m3-serve` streams from — materialized into a
/// bounded request set plus aligned arrival times.
///
/// # Panics
///
/// On internal plan/simulation failures (the standard instance is valid).
pub fn point(instance: &Instance, rate: f64, max_batch: Option<usize>) -> LatencyStats {
    let spec = WorkloadSpec::single_source(
        ArrivalProcess::Poisson { rate_per_s: rate },
        format!("sweep/{rate}"),
    );
    let (requests, arrivals) = spec
        .materialize(instance, REQUESTS)
        .expect("workload materializes");
    let plan = Plan::greedy(instance, requests).expect("plan builds");
    let report = simulate(
        instance,
        &plan,
        &SimConfig {
            arrivals: Some(arrivals),
            max_batch,
            ..SimConfig::default()
        },
    )
    .expect("simulation runs");
    latency_stats(&report)
}

/// Regenerates the load sweep.
pub fn run() -> Table {
    let shared = instance();
    let dedicated = shared.dedicated();
    let mut t = Table::new(
        "Load sweep — four-task deployment under Poisson load (p50 / p95 s)",
        &["Rate (req/s)", "Shared", "Dedicated", "Shared+Batching(8)"],
    );
    for rate in RATES {
        let s = point(&shared, rate, None);
        let d = point(&dedicated, rate, None);
        let b = point(&shared, rate, Some(8));
        t.push_row(vec![
            format!("{rate:.1}"),
            format!("{:.2} / {:.2}", s.p50, s.p95),
            format!("{:.2} / {:.2}", d.p50, d.p95),
            format!("{:.2} / {:.2}", b.p50, b.p95),
        ]);
    }
    t.push_note(
        "Sharing matches dedicated at low rates (memory for free), queues earlier as load \
         grows, and module-level batching recovers most of the gap — quantifying the Sec. VI-C \
         discussion.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_rate_sharing_is_free() {
        let shared = instance();
        let dedicated = shared.dedicated();
        let s = point(&shared, 0.1, None);
        let d = point(&dedicated, 0.1, None);
        assert!(
            s.p50 < d.p50 * 1.4 + 0.5,
            "shared p50 {:.2} vs dedicated {:.2}",
            s.p50,
            d.p50
        );
    }

    #[test]
    fn latency_is_monotone_in_offered_load() {
        let shared = instance();
        let lo = point(&shared, 0.1, None);
        let hi = point(&shared, 1.6, None);
        assert!(hi.p95 >= lo.p95, "p95 {:.2} vs {:.2}", hi.p95, lo.p95);
        assert!(hi.mean > lo.mean);
    }

    #[test]
    fn batching_relieves_high_load() {
        let shared = instance();
        let plain = point(&shared, 1.6, None);
        let batched = point(&shared, 1.6, Some(8));
        assert!(
            batched.p95 < plain.p95,
            "batched p95 {:.2} vs plain {:.2}",
            batched.p95,
            plain.p95
        );
    }

    #[test]
    fn sweep_table_has_all_rates() {
        let t = run();
        assert_eq!(t.rows.len(), RATES.len());
    }
}
