//! The §VI-A optimality experiment: greedy vs brute-force optimal over
//! 19 (benchmark, model) combinations × 5 perturbed trials = 95
//! instances. The paper reports the greedy optimal in 89/95 (93.7%).

use s2m3_core::objective::total_latency;
use s2m3_core::plan::Plan;
use s2m3_core::problem::Instance;
use s2m3_core::upper::optimal_placement;
use s2m3_net::fleet::Fleet;

use crate::perturb::perturbed_fleet;
use crate::table::Table;

/// Relative latency tolerance under which greedy counts as optimal.
/// The paper decides optimality from *measured* wall-clock averaged over
/// five noisy trials; with the ±10% run-to-run perturbation modeled in
/// [`crate::perturb`], a five-trial mean resolves differences down to
/// roughly 3–4% — gaps below that are indistinguishable from the optimum
/// on the real testbed (e.g. a 5 ms head-transfer difference on a 0.19 s
/// encoder-VQA request).
pub const OPT_TOLERANCE: f64 = 0.03;

/// The 19 (model, candidate-count, label) combinations: 5 retrieval
/// benchmarks × 2 CLIP towers, 3 VQA benchmarks × 2 LLaVA-family models,
/// MS COCO × 2 encoder-only models, and As-A × the tri-modal aligner.
pub fn combinations() -> Vec<(&'static str, usize, String)> {
    let mut out = Vec::new();
    for bench in [
        ("food101", 101),
        ("cifar10", 10),
        ("cifar100", 100),
        ("country211", 211),
        ("flowers102", 102),
    ] {
        for model in ["CLIP ViT-B/16", "CLIP ViT-L/14@336"] {
            out.push((model, bench.1, format!("{model} x {}", bench.0)));
        }
    }
    for bench in ["vqa-v2", "scienceqa", "textvqa"] {
        for model in ["Flint-v0.5-1B", "LLaVA-v1.5-7B"] {
            out.push((model, 1, format!("{model} x {bench}")));
        }
    }
    for model in ["Encoder-only VQA (Small)", "Encoder-only VQA (Large)"] {
        out.push((model, 1, format!("{model} x coco")));
    }
    out.push(("AlignBind-B", 16, "AlignBind-B x as-a".to_string()));
    out
}

/// Result of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimalityResult {
    /// Instances where greedy latency matches the brute-force optimum
    /// within [`OPT_TOLERANCE`].
    pub optimal: usize,
    /// Total instances evaluated.
    pub total: usize,
    /// Worst relative gap observed (greedy/optimal − 1).
    pub worst_gap: f64,
    /// Per-combination optimal counts (label, optimal-of-trials).
    pub per_combo: Vec<(String, usize)>,
}

impl OptimalityResult {
    /// Optimality rate in percent.
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        100.0 * self.optimal as f64 / self.total as f64
    }
}

/// Runs the 19 × `trials` sweep.
///
/// Protocol (mirroring the paper's): placement and routing are decided
/// **once** from the profiled cost model — for both the greedy and the
/// brute-force Upper — and each trial then *evaluates* those fixed
/// decisions under perturbed runtime conditions (the measurement noise
/// of a real testbed). Greedy counts as optimal in a trial when its
/// evaluated latency is within [`OPT_TOLERANCE`] of the Upper plan's.
pub fn sweep(trials: usize) -> OptimalityResult {
    let base = Fleet::edge_testbed();
    let mut optimal = 0;
    let mut total = 0;
    let mut worst_gap = 0.0_f64;
    let mut per_combo = Vec::new();
    for (model, candidates, label) in combinations() {
        let Ok(base_instance) = Instance::on_fleet(base.clone(), &[(model, candidates)]) else {
            per_combo.push((label, 0));
            continue;
        };
        let Ok(request) = base_instance.request(0, model) else {
            per_combo.push((label, 0));
            continue;
        };
        // Decide both plans on the profiled (unperturbed) cost model.
        let Ok(greedy_plan) = Plan::greedy(&base_instance, vec![request.clone()]) else {
            per_combo.push((label, 0));
            continue;
        };
        let Ok(upper) = optimal_placement(&base_instance) else {
            per_combo.push((label, 0));
            continue;
        };
        let Ok(upper_plan) = Plan::route_all(
            &base_instance,
            upper.placement.clone(),
            vec![request.clone()],
        ) else {
            per_combo.push((label, 0));
            continue;
        };

        let mut combo_optimal = 0;
        for trial in 0..trials {
            let fleet = perturbed_fleet(&base, &format!("{label}/trial/{trial}"));
            let Ok(instance) = base_instance.with_fleet(fleet) else {
                continue;
            };
            let (Ok(g), Ok(o)) = (
                total_latency(&instance, &greedy_plan.routed[0].1, &request),
                total_latency(&instance, &upper_plan.routed[0].1, &request),
            ) else {
                continue;
            };
            total += 1;
            let gap = (g / o - 1.0).max(0.0);
            worst_gap = worst_gap.max(gap);
            if gap < OPT_TOLERANCE {
                optimal += 1;
                combo_optimal += 1;
            }
        }
        per_combo.push((label, combo_optimal));
    }
    OptimalityResult {
        optimal,
        total,
        worst_gap,
        per_combo,
    }
}

/// Regenerates the optimality claim as a table.
pub fn run() -> Table {
    let result = sweep(5);
    let mut t = Table::new(
        "§VI-A — greedy vs brute-force optimal placement (19 combos x 5 trials)",
        &["Combination", "Optimal trials"],
    );
    for (label, k) in &result.per_combo {
        t.push_row(vec![label.clone(), format!("{k}/5")]);
    }
    t.push_note(format!(
        "Greedy optimal in {}/{} instances ({:.1}%); worst relative gap {:.2}%. \
         Paper: 89/95 (93.7%).",
        result.optimal,
        result.total,
        result.rate(),
        result.worst_gap * 100.0
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nineteen_combinations() {
        assert_eq!(combinations().len(), 19);
    }

    #[test]
    fn greedy_matches_paper_optimality_rate() {
        // Two trials per combo keeps the test quick; the full 5-trial
        // sweep runs in the binary. The paper's rate is 93.7%.
        let r = sweep(2);
        assert_eq!(r.total, 38);
        assert!(
            r.rate() >= 85.0,
            "optimality rate {:.1}% (got {}/{})",
            r.rate(),
            r.optimal,
            r.total
        );
        assert!(r.worst_gap < 0.35, "worst gap {:.1}%", r.worst_gap * 100.0);
    }
}
