//! Criterion benchmarks for the tensor kernels backing module execution.
use criterion::{criterion_group, criterion_main, Criterion};
use s2m3_tensor::{ops, Matrix};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let a = Matrix::seeded_gaussian("bench/a", 64, 64, 1.0);
    let b = Matrix::seeded_gaussian("bench/b", 64, 512, 1.0);
    let big = Matrix::seeded_gaussian("bench/big", 211, 512, 1.0);
    c.bench_function("matmul/64x64x512", |bch| {
        bch.iter(|| ops::matmul(black_box(&a), black_box(&b)).unwrap())
    });
    c.bench_function("softmax/211x512", |bch| {
        bch.iter(|| ops::softmax(black_box(&big)))
    });
    c.bench_function("l2_normalize/211x512", |bch| {
        bch.iter(|| ops::l2_normalize(black_box(&big)))
    });
    c.bench_function("cosine_similarity/1x512-vs-211x512", |bch| {
        let q = Matrix::seeded_gaussian("bench/q", 1, 512, 1.0);
        bch.iter(|| ops::cosine_similarity(black_box(&q), black_box(&big)).unwrap())
    });
    c.bench_function("seeded_gaussian/64x512", |bch| {
        bch.iter(|| Matrix::seeded_gaussian(black_box("bench/seed"), 64, 512, 1.0))
    });
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
