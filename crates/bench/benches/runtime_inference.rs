//! Criterion benchmark for the in-process distributed runtime.
use criterion::{criterion_group, criterion_main, Criterion};
use s2m3_core::plan::Plan;
use s2m3_core::problem::Instance;
use s2m3_runtime::{RequestInput, Runtime};
use std::hint::black_box;

fn bench_runtime(c: &mut Criterion) {
    let i = Instance::single_model("CLIP ViT-B/16", 16).unwrap();
    let q = i.request(0, "CLIP ViT-B/16").unwrap();
    let plan = Plan::greedy(&i, vec![q.clone()]).unwrap();
    let model = &i.deployment("CLIP ViT-B/16").unwrap().model;
    let input = RequestInput::synthetic(model, "bench", 16);
    let rt = Runtime::start(&i, &plan).unwrap();
    c.bench_function("runtime_infer/clip-b16-16c", |b| {
        b.iter(|| {
            rt.infer(
                black_box(&q),
                black_box(&plan.routed[0].1),
                black_box(&input),
            )
            .unwrap()
        })
    });
    rt.shutdown();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
