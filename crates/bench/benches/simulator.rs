//! Criterion benchmarks for the discrete-event simulator.
use criterion::{criterion_group, criterion_main, Criterion};
use s2m3_core::plan::Plan;
use s2m3_core::problem::Instance;
use s2m3_sim::{simulate, SimConfig};
use std::hint::black_box;

fn bench_sim(c: &mut Criterion) {
    let i = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
    for n in [1usize, 16, 128] {
        let requests: Vec<_> = (0..n as u64)
            .map(|k| i.request(k, "CLIP ViT-B/16").unwrap())
            .collect();
        let plan = Plan::greedy(&i, requests).unwrap();
        c.bench_function(&format!("simulate/{n}-requests"), |b| {
            b.iter(|| simulate(black_box(&i), black_box(&plan), &SimConfig::default()).unwrap())
        });
    }
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
