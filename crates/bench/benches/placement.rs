//! Criterion benchmarks for the placement and routing algorithms.
use criterion::{criterion_group, criterion_main, Criterion};
use s2m3_core::placement::greedy_place;
use s2m3_core::plan::Plan;
use s2m3_core::problem::Instance;
use s2m3_core::routing::route_request;
use s2m3_core::upper::optimal_placement;
use s2m3_net::fleet::Fleet;
use std::hint::black_box;

fn single_instance() -> Instance {
    Instance::single_model("CLIP ViT-B/16", 101).unwrap()
}

fn multi_instance() -> Instance {
    Instance::on_fleet(
        Fleet::standard_testbed(),
        &[
            ("CLIP ViT-B/16", 101),
            ("Encoder-only VQA (Small)", 1),
            ("AlignBind-B", 16),
            ("CLIP-Classifier Food-101", 0),
            ("Flint-v0.5-1B", 1),
        ],
    )
    .unwrap()
}

fn bench_placement(c: &mut Criterion) {
    let single = single_instance();
    let multi = multi_instance();
    c.bench_function("greedy_place/single-model", |b| {
        b.iter(|| greedy_place(black_box(&single)).unwrap())
    });
    c.bench_function("greedy_place/five-task", |b| {
        b.iter(|| greedy_place(black_box(&multi)).unwrap())
    });
    c.bench_function("optimal_placement/single-model", |b| {
        b.iter(|| optimal_placement(black_box(&single)).unwrap())
    });
}

fn bench_routing(c: &mut Criterion) {
    let i = multi_instance();
    let requests: Vec<_> = i
        .deployments()
        .iter()
        .enumerate()
        .map(|(k, d)| i.request(k as u64, &d.model.name).unwrap())
        .collect();
    let placement = greedy_place(&i).unwrap();
    c.bench_function("route_request/five-task", |b| {
        b.iter(|| {
            for q in &requests {
                route_request(black_box(&i), black_box(&placement), q).unwrap();
            }
        })
    });
    c.bench_function("plan_greedy/five-task", |b| {
        b.iter(|| Plan::greedy(black_box(&i), requests.clone()).unwrap())
    });
}

criterion_group!(benches, bench_placement, bench_routing);
criterion_main!(benches);
