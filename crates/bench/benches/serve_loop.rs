//! Criterion benchmarks for the serving control plane's hot path:
//! admission + dispatch throughput of the online discrete-event loop,
//! measured as whole scenario runs per simulated workload shape.
use criterion::{criterion_group, criterion_main, Criterion};
use s2m3_serve::{serve, AdmissionPolicy, ServeScenario};
use s2m3_sim::workload::ArrivalProcess;
use std::hint::black_box;

fn steady_scenario(n: usize, policy: AdmissionPolicy) -> ServeScenario {
    ServeScenario {
        requests: n,
        admission: policy,
        events: vec![],
        ..ServeScenario::churn_default()
    }
}

fn bench_serve_loop(c: &mut Criterion) {
    // The pure scheduler path: steady Poisson load, no churn.
    let fifo = steady_scenario(500, AdmissionPolicy::Fifo);
    c.bench_function("serve_loop/500req_fifo", |b| {
        b.iter(|| serve(black_box(&fifo)).unwrap())
    });

    // EDF pays an O(queue) scan per dispatch — the policy's hot-path tax.
    let edf = steady_scenario(500, AdmissionPolicy::EarliestDeadlineFirst);
    c.bench_function("serve_loop/500req_edf", |b| {
        b.iter(|| serve(black_box(&edf)).unwrap())
    });

    // Overload: admission queues stay full, shedding active every arrival.
    let overload = ServeScenario {
        arrivals: ArrivalProcess::Poisson { rate_per_s: 3.0 },
        deadline_s: 10.0,
        ..steady_scenario(500, AdmissionPolicy::ShedOnOverload { max_queue: 16 })
    };
    c.bench_function("serve_loop/500req_overload_shed", |b| {
        b.iter(|| serve(black_box(&overload)).unwrap())
    });

    // Churn: fleet events + replans + request re-admission on top.
    let churn = ServeScenario {
        requests: 500,
        ..ServeScenario::churn_default()
    };
    c.bench_function("serve_loop/500req_churn_replan", |b| {
        b.iter(|| serve(black_box(&churn)).unwrap())
    });
}

criterion_group!(benches, bench_serve_loop);
criterion_main!(benches);
