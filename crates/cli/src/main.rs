//! `s2m3` — the command-line face of the reproduction.

mod args;
mod commands;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::parse(
        &argv,
        &["replicate", "upper", "json", "print-config", "streaming"],
    ) {
        Ok(a) => a,
        Err(args::ArgError::MissingCommand) => {
            print!("{}", commands::USAGE);
            return;
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::USAGE);
            std::process::exit(2);
        }
    };
    match commands::dispatch(&parsed) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
