//! Minimal dependency-free argument parsing.
//!
//! Grammar: `s2m3 <command> [--flag value]... [--switch]...`. Flags take
//! exactly one value unless listed as boolean switches by the caller.

use std::collections::BTreeMap;

/// Parsed command line.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (first positional).
    pub command: String,
    /// `--flag value` pairs.
    pub flags: BTreeMap<String, String>,
    /// Bare `--switch` occurrences.
    pub switches: Vec<String>,
}

/// Parse errors with enough context for a usage message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// A `--flag` that expected a value hit the end of input or another
    /// flag.
    MissingValue(String),
    /// A positional argument appeared after the subcommand.
    UnexpectedPositional(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "missing subcommand"),
            ArgError::MissingValue(flag) => write!(f, "flag --{flag} expects a value"),
            ArgError::UnexpectedPositional(p) => write!(f, "unexpected argument '{p}'"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Parses `argv` (without the program name). `switches` names the
/// boolean flags that take no value.
pub fn parse(argv: &[String], switches: &[&str]) -> Result<Args, ArgError> {
    let mut it = argv.iter().peekable();
    let command = it.next().ok_or(ArgError::MissingCommand)?.clone();
    let mut args = Args {
        command,
        ..Default::default()
    };
    while let Some(tok) = it.next() {
        if let Some(name) = tok.strip_prefix("--") {
            if switches.contains(&name) {
                args.switches.push(name.to_string());
            } else {
                let value = it
                    .next()
                    .filter(|v| !v.starts_with("--"))
                    .ok_or_else(|| ArgError::MissingValue(name.to_string()))?;
                args.flags.insert(name.to_string(), value.clone());
            }
        } else {
            return Err(ArgError::UnexpectedPositional(tok.clone()));
        }
    }
    Ok(args)
}

impl Args {
    /// A string flag with a default.
    pub fn get_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.flags.get(name).map(String::as_str).unwrap_or(default)
    }

    /// A parsed numeric flag with a default.
    pub fn get_num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.flags
            .get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Whether a boolean switch was given.
    pub fn has(&self, switch: &str) -> bool {
        self.switches.iter().any(|s| s == switch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_switches() {
        let a = parse(
            &v(&[
                "plan",
                "--model",
                "CLIP ViT-B/16",
                "--candidates",
                "101",
                "--upper",
            ]),
            &["upper"],
        )
        .unwrap();
        assert_eq!(a.command, "plan");
        assert_eq!(a.get_or("model", ""), "CLIP ViT-B/16");
        assert_eq!(a.get_num("candidates", 0usize), 101);
        assert!(a.has("upper"));
        assert!(!a.has("replicate"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&v(&["zoo"]), &[]).unwrap();
        assert_eq!(a.get_or("fleet", "edge"), "edge");
        assert_eq!(a.get_num("samples", 300usize), 300);
    }

    #[test]
    fn errors_are_typed() {
        assert_eq!(parse(&v(&[]), &[]), Err(ArgError::MissingCommand));
        assert_eq!(
            parse(&v(&["plan", "--model"]), &[]),
            Err(ArgError::MissingValue("model".into()))
        );
        assert_eq!(
            parse(&v(&["plan", "oops"]), &[]),
            Err(ArgError::UnexpectedPositional("oops".into()))
        );
        // A flag followed by another flag is also a missing value.
        assert_eq!(
            parse(&v(&["plan", "--model", "--upper"]), &["upper"]),
            Err(ArgError::MissingValue("model".into()))
        );
    }
}
