//! CLI command implementations. Every command returns its output as a
//! `String` so tests can exercise it without spawning processes.

use std::fmt::Write as _;

use s2m3_baselines::centralized::centralized_latency;
use s2m3_core::objective::total_latency;
use s2m3_core::placement::{greedy_place_with, PlacementOptions};
use s2m3_core::plan::Plan;
use s2m3_core::problem::Instance;
use s2m3_core::upper::optimal_placement;
use s2m3_data::{evaluate, Benchmark, Dataset};
use s2m3_models::zoo::Zoo;
use s2m3_net::fleet::Fleet;
use s2m3_runtime::{reference, RequestInput, Runtime};
use s2m3_serve::{
    serve as serve_scenario, AdmissionPolicy, BatchPolicy, ServeScenario, SloReplanTrigger,
    StreamingConfig,
};
use s2m3_sim::workload::{latency_stats, mixed_stream, ArrivalProcess, ModelMix, ModelWeight};
use s2m3_sim::{simulate, SimConfig};
use s2m3_sweep::{run_sweep, SweepSpec};

use crate::args::Args;

/// Top-level usage text.
pub const USAGE: &str = "\
s2m3 — split-and-share multi-modal inference on the edge

USAGE: s2m3 <command> [options]

COMMANDS:
  zoo                          list the model zoo (Table II)
  fleet      [--fleet F]       show devices and network (Table III)
  plan       --model M [--candidates N] [--fleet F] [--replicate] [--upper]
                               greedy placement + predicted latency
  simulate   --model M [--requests N] [--rate R] [--batch B] [--candidates N]
                               sustained-load simulation with p50/p95/p99
  serve      [--config FILE] [--requests N] [--rate R] [--deadline S]
             [--policy fifo|edf|shed] [--queue N] [--seed S] [--json]
             [--slo-replan COOLDOWN_S] [--mix M=W,M=W,...] [--batch N]
             [--streaming] [--sink FILE] [--max-windows N] [--threads N]
             [--budget-cap COST] [--budget-metric energy|device-seconds|custom:RATE]
             [--budget-window S] [--budget-mode defer|shed|defer-shed]
             [--trace FILE] [--capture-trace FILE] [--print-config]
                               online serving control plane: admission
                               control, SLO windows, live replanning under
                               fleet churn (default: 10k-request churn run);
                               --slo-replan also replans on rolling-p95
                               breaches; --mix weights the model mix
                               (default: round-robin); --batch merges up
                               to N same-module runs per dispatch;
                               multi-source traffic, per-source mixes,
                               deadline classes, and per-kind batch caps
                               via the config file; --streaming serves in
                               O(in-flight) memory (sketch percentiles,
                               <=1% error), --sink streams per-completion
                               rows to a columnar file, --max-windows
                               caps snapshot history; --threads N shards
                               the event loop across N threads (identical
                               bytes, 0|1 = sequential); --trace replays
                               a recorded workload file, --capture-trace
                               records this run's arrivals for replay;
                               --budget-cap enforces a per-window
                               fleet-wide cost cap online (deferring or
                               shedding the lowest-priority work first),
                               priced in device-seconds, joules
                               (--budget-metric energy), or a flat
                               per-device-second rate (custom:RATE)
  sweep      [--config FILE] [--seeds N] [--requests N] [--threads N]
             [--budget F] [--json] [--print-config]
                               parallel Monte Carlo sweep: the serving
                               scenario fanned over a seed x rate x
                               fleet-size grid on a thread pool, with
                               p50/p95/p99 bands across replicas and the
                               capacity frontier (max rate at <1% miss);
                               --config takes a SweepSpec JSON (default:
                               quick grid over the churn scenario);
                               deterministic: same grid => byte-identical
                               report at any --threads
  evaluate   --model M --benchmark B [--samples N]
                               zero-shot accuracy on a synthetic benchmark
  infer      --model M [--label L] [--candidates N]
                               one distributed inference on the runtime,
                               verified bit-identical vs centralized
  compare    --model M [--candidates N]
                               S2M3 vs every centralized deployment
  experiments                  list the paper-reproduction binaries

FLEETS: edge (default; desktop+laptop+2 Jetsons) | standard (adds the GPU server)
";

/// Command errors (message-carrying).
pub type CmdResult = Result<String, String>;

fn fleet_for(args: &Args) -> Result<Fleet, String> {
    match args.get_or("fleet", "edge") {
        "edge" => Ok(Fleet::edge_testbed()),
        "standard" => Ok(Fleet::standard_testbed()),
        other => Err(format!("unknown fleet '{other}' (edge|standard)")),
    }
}

fn instance_for(args: &Args) -> Result<(Instance, String, usize), String> {
    let model = args
        .flags
        .get("model")
        .ok_or("--model is required (see `s2m3 zoo`)")?
        .clone();
    let candidates = args.get_num("candidates", 101usize);
    let instance =
        Instance::on_fleet(fleet_for(args)?, &[(&model, candidates)]).map_err(|e| e.to_string())?;
    Ok((instance, model, candidates))
}

/// `s2m3 zoo`.
pub fn zoo(_args: &Args) -> CmdResult {
    let zoo = Zoo::standard();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:<22} {:>9} {:>10}",
        "model", "task", "params", "max module"
    );
    for m in zoo.models() {
        let _ = writeln!(
            out,
            "{:<28} {:<22} {:>8}M {:>9}M",
            m.name,
            m.task.to_string(),
            m.total_params() / 1_000_000,
            m.max_module_params() / 1_000_000
        );
    }
    Ok(out)
}

/// `s2m3 fleet`.
pub fn fleet(args: &Args) -> CmdResult {
    let f = fleet_for(args)?;
    let mut out = String::new();
    let _ = writeln!(out, "requester: {}", f.requester());
    for d in f.devices() {
        let _ = writeln!(
            out,
            "{:<10} {:>7.0} GFLOP/s  {:>5.1} GB  x{}  {}",
            d.id.as_str(),
            d.speed_gflops,
            d.memory_bytes as f64 / 1e9,
            d.parallelism,
            d.description
        );
    }
    Ok(out)
}

/// `s2m3 plan`.
pub fn plan(args: &Args) -> CmdResult {
    let (instance, model, _) = instance_for(args)?;
    let placement = greedy_place_with(
        &instance,
        PlacementOptions {
            replicate: args.has("replicate"),
        },
    )
    .map_err(|e| e.to_string())?;
    let request = instance.request(0, &model).map_err(|e| e.to_string())?;
    let plan =
        Plan::route_all(&instance, placement, vec![request.clone()]).map_err(|e| e.to_string())?;
    let latency =
        total_latency(&instance, &plan.routed[0].1, &request).map_err(|e| e.to_string())?;

    let mut out = String::new();
    let _ = writeln!(out, "placement (greedy, Algorithm 1):");
    for (m, d) in plan.placement.iter() {
        let _ = writeln!(out, "  {m} -> {d}");
    }
    let _ = writeln!(out, "predicted latency: {latency:.2} s");
    if args.has("upper") {
        let opt = optimal_placement(&instance).map_err(|e| e.to_string())?;
        let tag = if (latency - opt.latency).abs() < 1e-6 {
            "greedy = optimal"
        } else {
            "greedy > optimal"
        };
        let _ = writeln!(out, "brute-force optimum: {:.2} s  ({tag})", opt.latency);
    }
    Ok(out)
}

/// `s2m3 simulate`.
pub fn simulate_cmd(args: &Args) -> CmdResult {
    let (instance, _, _) = instance_for(args)?;
    let n = args.get_num("requests", 20usize);
    let rate = args.get_num("rate", 0.5f64);
    let batch = args.flags.get("batch").and_then(|v| v.parse().ok());
    let requests = mixed_stream(&instance, n).map_err(|e| e.to_string())?;
    let plan = Plan::greedy(&instance, requests).map_err(|e| e.to_string())?;
    let arrivals = ArrivalProcess::Poisson { rate_per_s: rate }.arrivals(n, "cli");
    let report = simulate(
        &instance,
        &plan,
        &SimConfig {
            arrivals: Some(arrivals),
            max_batch: batch,
            ..SimConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let stats = latency_stats(&report);
    Ok(format!(
        "{n} requests @ {rate:.2} req/s{}\n\
         mean {:.2} s   p50 {:.2}   p95 {:.2}   p99 {:.2}   max {:.2}\n\
         throughput {:.2} req/s over {:.2} s of virtual time\n",
        batch
            .map(|b: usize| format!("  (batching x{b})"))
            .unwrap_or_default(),
        stats.mean,
        stats.p50,
        stats.p95,
        stats.p99,
        stats.max,
        stats.throughput,
        report.makespan
    ))
}

/// `s2m3 serve`.
pub fn serve_cmd(args: &Args) -> CmdResult {
    let mut scenario = match args.flags.get("config") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read config `{path}`: {e}"))?;
            ServeScenario::from_json(&text)?
        }
        None => ServeScenario::churn_default(),
    };
    // Flag overrides on top of the config (or the default scenario).
    if let Some(n) = args.flags.get("requests") {
        scenario.requests = n.parse().map_err(|_| "bad --requests")?;
    }
    if let Some(r) = args.flags.get("rate") {
        let rate_per_s = r.parse().map_err(|_| "bad --rate")?;
        scenario.arrivals = ArrivalProcess::Poisson { rate_per_s };
    }
    if let Some(d) = args.flags.get("deadline") {
        scenario.deadline_s = d.parse().map_err(|_| "bad --deadline")?;
    }
    if let Some(s) = args.flags.get("seed") {
        scenario.seed = s.clone();
    }
    if let Some(p) = args.flags.get("policy") {
        scenario.admission = match p.as_str() {
            "fifo" => AdmissionPolicy::Fifo,
            "edf" => AdmissionPolicy::EarliestDeadlineFirst,
            // Keep the scenario's existing bound; --queue overrides below.
            "shed" => match scenario.admission {
                AdmissionPolicy::ShedOnOverload { .. } => scenario.admission.clone(),
                _ => AdmissionPolicy::ShedOnOverload { max_queue: 48 },
            },
            other => return Err(format!("unknown policy `{other}` (fifo|edf|shed)")),
        };
    }
    if let Some(q) = args.flags.get("queue") {
        let q = q.parse::<usize>().map_err(|_| "bad --queue")?;
        match &mut scenario.admission {
            AdmissionPolicy::ShedOnOverload { max_queue } => *max_queue = q,
            _ => {
                return Err(
                    "--queue only applies to the shed admission policy (use --policy shed)"
                        .to_string(),
                )
            }
        }
    }
    if let Some(cooldown) = args.flags.get("slo-replan") {
        scenario.replan.slo_trigger = Some(SloReplanTrigger {
            cooldown_s: cooldown.parse().map_err(|_| "bad --slo-replan cooldown")?,
            ..SloReplanTrigger::default()
        });
    }
    if let Some(mix) = args.flags.get("mix") {
        // `model=weight` pairs, comma-separated; weights apply to the
        // scenario's deployed models via the unified workload layer.
        let weights: Vec<ModelWeight> = mix
            .split(',')
            .map(|pair| {
                let (model, weight) = pair
                    .rsplit_once('=')
                    .ok_or_else(|| format!("bad --mix entry `{pair}` (want model=weight)"))?;
                Ok(ModelWeight {
                    model: model.trim().to_string(),
                    weight: weight
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad --mix weight in `{pair}`"))?,
                })
            })
            .collect::<Result<_, String>>()?;
        scenario.mix = Some(ModelMix::Weighted { weights });
    }
    if let Some(batch) = args.flags.get("batch") {
        scenario.batch = Some(BatchPolicy {
            max_batch: batch.parse().map_err(|_| "bad --batch")?,
            per_kind: vec![],
        });
    }
    if args.has("streaming") {
        scenario
            .streaming
            .get_or_insert_with(StreamingConfig::default);
    }
    if let Some(path) = args.flags.get("sink") {
        let streaming = scenario
            .streaming
            .get_or_insert_with(StreamingConfig::default);
        streaming.sink = Some(path.clone());
    }
    if let Some(w) = args.flags.get("max-windows") {
        scenario.max_windows = Some(w.parse().map_err(|_| "bad --max-windows")?);
    }
    if let Some(t) = args.flags.get("threads") {
        scenario.threads = t.parse().map_err(|_| "bad --threads")?;
    }
    if let Some(cap) = args.flags.get("budget-cap") {
        let policy = scenario
            .budget
            .get_or_insert_with(|| s2m3_serve::BudgetPolicy::device_seconds(0.0));
        policy.cap_per_window = cap.parse().map_err(|_| "bad --budget-cap")?;
    }
    if let Some(metric) = args.flags.get("budget-metric") {
        let policy = scenario
            .budget
            .as_mut()
            .ok_or("--budget-metric needs --budget-cap (or a config with a budget)")?;
        policy.metric = match metric.as_str() {
            "energy" => s2m3_serve::BudgetMetric::Energy,
            "device-seconds" => s2m3_serve::BudgetMetric::DeviceSeconds,
            other => match other.strip_prefix("custom:").and_then(|r| r.parse().ok()) {
                Some(per_device_rate) => s2m3_serve::BudgetMetric::Custom { per_device_rate },
                None => {
                    return Err(format!(
                        "bad --budget-metric '{other}' (energy|device-seconds|custom:RATE)"
                    ))
                }
            },
        };
    }
    if let Some(w) = args.flags.get("budget-window") {
        let policy = scenario
            .budget
            .as_mut()
            .ok_or("--budget-window needs --budget-cap (or a config with a budget)")?;
        policy.window_s = w.parse().map_err(|_| "bad --budget-window")?;
    }
    if let Some(mode) = args.flags.get("budget-mode") {
        let policy = scenario
            .budget
            .as_mut()
            .ok_or("--budget-mode needs --budget-cap (or a config with a budget)")?;
        policy.enforcement = match mode.as_str() {
            "defer" => s2m3_serve::BudgetEnforcement::Defer,
            "shed" => s2m3_serve::BudgetEnforcement::Shed,
            "defer-shed" => s2m3_serve::BudgetEnforcement::DeferThenShed,
            other => {
                return Err(format!(
                    "bad --budget-mode '{other}' (defer|shed|defer-shed)"
                ))
            }
        };
    }
    if let Some(path) = args.flags.get("trace") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read trace `{path}`: {e}"))?;
        let records = s2m3_serve::trace::parse(&text)?;
        s2m3_serve::trace::apply(&mut scenario, &records)?;
    }
    if let Some(path) = args.flags.get("capture-trace") {
        // Materialize the scenario's merged arrival stream to a replay
        // file, then serve as usual; `--trace FILE` re-serves it.
        let records = s2m3_serve::trace::capture(&scenario)?;
        std::fs::write(path, s2m3_serve::trace::render(&records))
            .map_err(|e| format!("cannot write trace `{path}`: {e}"))?;
    }
    if args.has("print-config") {
        return scenario.to_json();
    }
    let report = serve_scenario(&scenario).map_err(|e| e.to_string())?;
    if args.has("json") {
        report.to_json().map_err(|e| e.to_string())
    } else {
        Ok(report.render_summary())
    }
}

/// `s2m3 sweep`.
pub fn sweep_cmd(args: &Args) -> CmdResult {
    let mut spec = match args.flags.get("config") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read config `{path}`: {e}"))?;
            SweepSpec::from_json(&text)?
        }
        None => {
            // A quick grid over the churn scenario, kept modest so the
            // default invocation finishes in seconds.
            let mut base = ServeScenario::churn_default();
            base.requests = 400;
            base.snapshot_every = 50;
            SweepSpec::quick(base)
        }
    };
    if let Some(n) = args.flags.get("seeds") {
        spec.seeds = n.parse().map_err(|_| "bad --seeds")?;
    }
    if let Some(n) = args.flags.get("requests") {
        spec.base.requests = n.parse().map_err(|_| "bad --requests")?;
    }
    if let Some(n) = args.flags.get("threads") {
        spec.threads = n.parse().map_err(|_| "bad --threads")?;
    }
    if let Some(b) = args.flags.get("budget") {
        spec.miss_budget = b.parse().map_err(|_| "bad --budget")?;
    }
    if args.has("print-config") {
        return spec.to_json();
    }
    let report = run_sweep(&spec).map_err(|e| e.to_string())?;
    if args.has("json") {
        report.to_json().map_err(|e| e.to_string())
    } else {
        Ok(report.render_summary())
    }
}

/// `s2m3 evaluate`.
pub fn evaluate_cmd(args: &Args) -> CmdResult {
    let model_name = args
        .flags
        .get("model")
        .ok_or("--model is required")?
        .clone();
    let bench_name = args.get_or("benchmark", "cifar10");
    let samples = args.get_num("samples", 300usize);
    let bench = Benchmark::by_name(bench_name)
        .ok_or_else(|| format!("unknown benchmark '{bench_name}'"))?;
    let zoo = Zoo::standard();
    let model = zoo
        .model(&model_name)
        .ok_or_else(|| format!("unknown model '{model_name}'"))?;
    let dataset = Dataset::generate(&bench, samples);
    let result = evaluate(model, &dataset).map_err(|e| e.to_string())?;
    Ok(format!(
        "{model_name} on {bench_name}: {:.1}% ({}/{} over synthetic samples)\n",
        result.percent(),
        result.correct,
        result.total
    ))
}

/// `s2m3 infer`.
pub fn infer(args: &Args) -> CmdResult {
    let (instance, model_name, candidates) = instance_for(args)?;
    let label = args.get_or("label", "cli-input");
    let request = instance
        .request(0, &model_name)
        .map_err(|e| e.to_string())?;
    let plan = Plan::greedy(&instance, vec![request.clone()]).map_err(|e| e.to_string())?;
    let model = instance
        .deployment(&model_name)
        .ok_or("model not deployed")?
        .model
        .clone();
    let input = RequestInput::synthetic(&model, label, candidates.max(1));
    let runtime = Runtime::start(&instance, &plan).map_err(|e| e.to_string())?;
    let output = runtime
        .infer(&request, &plan.routed[0].1, &input)
        .map_err(|e| e.to_string())?;
    runtime.shutdown();
    let central = reference::run_model(&model, &input).map_err(|e| e.to_string())?;
    let identical = output == central;
    let top = s2m3_tensor::ops::argmax_rows(&output).map_err(|e| e.to_string())?[0];
    Ok(format!(
        "distributed inference complete: top-1 index {top} over {} candidates\n\
         split == centralized (bit-identical): {identical}\n",
        output.cols()
    ))
}

/// `s2m3 compare`.
pub fn compare(args: &Args) -> CmdResult {
    let model = args
        .flags
        .get("model")
        .ok_or("--model is required")?
        .clone();
    let candidates = args.get_num("candidates", 101usize);
    let full = Instance::on_fleet(Fleet::standard_testbed(), &[(&model, candidates)])
        .map_err(|e| e.to_string())?;
    let mut out = String::new();
    for dev in ["server", "desktop", "laptop", "jetson-a"] {
        match centralized_latency(&full, &model, dev) {
            Ok(t) => {
                let _ = writeln!(out, "centralized {dev:<10} {t:>7.2} s");
            }
            Err(_) => {
                let _ = writeln!(out, "centralized {dev:<10}       – (does not fit)");
            }
        }
    }
    let edge = Instance::on_fleet(Fleet::edge_testbed(), &[(&model, candidates)])
        .map_err(|e| e.to_string())?;
    let request = edge.request(0, &model).map_err(|e| e.to_string())?;
    let plan = Plan::greedy(&edge, vec![request.clone()]).map_err(|e| e.to_string())?;
    let t = total_latency(&edge, &plan.routed[0].1, &request).map_err(|e| e.to_string())?;
    let _ = writeln!(out, "S2M3 (edge fleet)     {t:>7.2} s");
    Ok(out)
}

/// `s2m3 experiments`.
pub fn experiments(_args: &Args) -> CmdResult {
    Ok(
        "The evaluation lives in the s2m3-bench crate; regenerate any artifact with:

  cargo run --release -p s2m3-bench --bin table6        Table VI   cost & latency per architecture
  cargo run --release -p s2m3-bench --bin table7        Table VII  deployment comparison (+ loading)
  cargo run --release -p s2m3-bench --bin fig3          Fig. 3     inference timeline (ASCII Gantt)
  cargo run --release -p s2m3-bench --bin table8        Table VIII zero-shot accuracy
  cargo run --release -p s2m3-bench --bin table9        Table IX   device availability
  cargo run --release -p s2m3-bench --bin table10       Table X    multi-task sharing
  cargo run --release -p s2m3-bench --bin table11       Table XI   baseline comparison
  cargo run --release -p s2m3-bench --bin optimality    Sec. VI-A  greedy vs brute force (19x5)
  cargo run --release -p s2m3-bench --bin batching      footnote 4 batch scaling
  cargo run --release -p s2m3-bench --bin ablations     mechanism ablations
  cargo run --release -p s2m3-bench --bin load_sweep    queuing knee under Poisson load
  cargo run --release -p s2m3-bench --bin churn         serving SLOs under fleet churn
  cargo run --release -p s2m3-bench --bin sweep         Monte Carlo capacity frontier (all cores)
  cargo run --release -p s2m3-bench --bin scalability   placement cost vs fleet size
  cargo run --release -p s2m3-bench --bin all_experiments  everything + markdown export
"
        .to_string(),
    )
}

/// Dispatches a parsed command.
pub fn dispatch(args: &Args) -> CmdResult {
    match args.command.as_str() {
        "zoo" => zoo(args),
        "experiments" => experiments(args),
        "fleet" => fleet(args),
        "plan" => plan(args),
        "simulate" => simulate_cmd(args),
        "serve" => serve_cmd(args),
        "sweep" => sweep_cmd(args),
        "evaluate" => evaluate_cmd(args),
        "infer" => infer(args),
        "compare" => compare(args),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn run(argv: &[&str]) -> CmdResult {
        let v: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let args = parse(
            &v,
            &["replicate", "upper", "json", "print-config", "streaming"],
        )
        .map_err(|e| e.to_string())?;
        dispatch(&args)
    }

    #[test]
    fn zoo_lists_models() {
        let out = run(&["zoo"]).unwrap();
        assert!(out.contains("CLIP ViT-B/16"));
        assert!(out.contains("ImageBind"));
        assert!(out.lines().count() > 15);
    }

    #[test]
    fn fleet_shows_devices() {
        let out = run(&["fleet", "--fleet", "standard"]).unwrap();
        assert!(out.contains("server"));
        assert!(out.contains("jetson-a"));
        let edge = run(&["fleet"]).unwrap();
        assert!(!edge.contains("server"));
        assert!(run(&["fleet", "--fleet", "mars"]).is_err());
    }

    #[test]
    fn plan_places_and_optionally_compares_upper() {
        let out = run(&["plan", "--model", "CLIP ViT-B/16", "--upper"]).unwrap();
        assert!(out.contains("vision/ViT-B-16"));
        assert!(out.contains("predicted latency"));
        assert!(out.contains("greedy = optimal"));
        assert!(run(&["plan"]).is_err(), "--model required");
    }

    #[test]
    fn simulate_reports_stats() {
        let out = run(&[
            "simulate",
            "--model",
            "CLIP ViT-B/16",
            "--requests",
            "8",
            "--rate",
            "0.5",
        ])
        .unwrap();
        assert!(out.contains("p95"));
        assert!(out.contains("throughput"));
        let batched = run(&[
            "simulate",
            "--model",
            "CLIP ViT-B/16",
            "--requests",
            "8",
            "--batch",
            "4",
        ])
        .unwrap();
        assert!(batched.contains("batching x4"));
    }

    #[test]
    fn serve_runs_summary_json_and_config_modes() {
        // Small stream so the test stays fast; the default churn events
        // still fire (after the last completion) and exercise replanning.
        let out = run(&[
            "serve",
            "--requests",
            "60",
            "--rate",
            "0.5",
            "--deadline",
            "30",
            "--seed",
            "cli-test",
        ])
        .unwrap();
        assert!(out.contains("60 arrived"));
        assert!(out.contains("p95"));
        let json = run(&[
            "serve",
            "--requests",
            "60",
            "--rate",
            "0.5",
            "--deadline",
            "30",
            "--seed",
            "cli-test",
            "--json",
        ])
        .unwrap();
        assert!(json.contains("\"arrived\": 60"));
        let config = run(&["serve", "--print-config"]).unwrap();
        assert!(config.contains("\"requests\": 10000"));
        assert!(run(&["serve", "--policy", "bogus"]).is_err());
        assert!(run(&["serve", "--config", "/nonexistent.json"]).is_err());
        // --slo-replan enables the rolling-p95 trigger with the given
        // cooldown; bad cooldowns are rejected.
        let slo_config = run(&["serve", "--slo-replan", "45", "--print-config"]).unwrap();
        assert!(slo_config.contains("slo_trigger"));
        assert!(slo_config.contains("\"cooldown_s\": 45"));
        assert!(run(&["serve", "--slo-replan", "soon"]).is_err());
    }

    #[test]
    fn serve_mix_and_batch_flags_shape_the_scenario() {
        // --batch merges same-module runs; the run still conserves.
        let batched = run(&[
            "serve",
            "--requests",
            "60",
            "--rate",
            "2.0",
            "--batch",
            "4",
            "--seed",
            "b",
        ])
        .unwrap();
        assert!(batched.contains("60 arrived"));
        let config = run(&["serve", "--batch", "8", "--print-config"]).unwrap();
        assert!(config.contains("\"max_batch\": 8"));

        // --mix takes model=weight pairs against the deployed models.
        let mix_config = run(&["serve", "--mix", "CLIP ViT-B/16=3", "--print-config"]).unwrap();
        assert!(mix_config.contains("Weighted"));
        assert!(mix_config.contains("\"weight\": 3"));
        let mixed = run(&[
            "serve",
            "--requests",
            "40",
            "--rate",
            "0.5",
            "--mix",
            "CLIP ViT-B/16=1",
            "--seed",
            "m",
        ])
        .unwrap();
        assert!(mixed.contains("40 arrived"));

        // Malformed mixes and unknown models fail loudly.
        assert!(run(&["serve", "--mix", "CLIP ViT-B/16"]).is_err());
        assert!(run(&["serve", "--mix", "CLIP ViT-B/16=lots"]).is_err());
        assert!(run(&["serve", "--requests", "10", "--mix", "nope=1"]).is_err());
        assert!(run(&["serve", "--batch", "many"]).is_err());
    }

    #[test]
    fn serve_budget_flags_enable_and_shape_the_cap() {
        // --budget-cap alone turns the budget on (device-seconds,
        // defer-then-shed defaults) and the summary reports adherence.
        let out = run(&[
            "serve",
            "--requests",
            "60",
            "--rate",
            "2.0",
            "--seed",
            "b",
            "--budget-cap",
            "2.5",
        ])
        .unwrap();
        assert!(out.contains("budget cap 2.50/60s window"), "{out}");
        assert!(out.contains("adherence 100.0%"), "{out}");
        let json = run(&[
            "serve",
            "--requests",
            "60",
            "--rate",
            "2.0",
            "--seed",
            "b",
            "--budget-cap",
            "2.5",
            "--json",
        ])
        .unwrap();
        assert!(json.contains("\"adherence\": 1.0"), "{json}");

        // The satellite flags reshape metric, window, and enforcement.
        let config = run(&[
            "serve",
            "--budget-cap",
            "900",
            "--budget-metric",
            "energy",
            "--budget-window",
            "30",
            "--budget-mode",
            "shed",
            "--print-config",
        ])
        .unwrap();
        assert!(config.contains("\"cap_per_window\": 900"), "{config}");
        assert!(config.contains("Energy"), "{config}");
        assert!(config.contains("\"window_s\": 30"), "{config}");
        assert!(config.contains("Shed"), "{config}");
        let custom = run(&[
            "serve",
            "--budget-cap",
            "5",
            "--budget-metric",
            "custom:0.25",
            "--print-config",
        ])
        .unwrap();
        assert!(custom.contains("\"per_device_rate\": 0.25"), "{custom}");

        // Budget-free scenarios carry a null policy and keep the
        // budget section out of the report entirely.
        let free = run(&["serve", "--print-config"]).unwrap();
        assert!(free.contains("\"budget\": null"), "{free}");

        // Modifier flags without a cap, and malformed values, fail loudly.
        assert!(run(&["serve", "--budget-metric", "energy"]).is_err());
        assert!(run(&["serve", "--budget-window", "30"]).is_err());
        assert!(run(&["serve", "--budget-mode", "shed"]).is_err());
        assert!(run(&["serve", "--budget-cap", "lots"]).is_err());
        assert!(run(&["serve", "--budget-cap", "5", "--budget-metric", "carbon"]).is_err());
        assert!(run(&["serve", "--budget-cap", "5", "--budget-mode", "panic"]).is_err());
        assert!(
            run(&["serve", "--budget-cap", "-1"]).is_err(),
            "validate() rejects"
        );
    }

    #[test]
    fn serve_queue_flag_requires_shed_policy() {
        // --queue alone tightens the default shed bound.
        let tight = run(&[
            "serve",
            "--requests",
            "60",
            "--rate",
            "2.0",
            "--queue",
            "3",
            "--seed",
            "qq",
        ])
        .unwrap();
        assert!(tight.contains("shed"));
        // --queue with a non-shed policy is an error, not a silent no-op.
        let err = run(&[
            "serve",
            "--requests",
            "10",
            "--policy",
            "fifo",
            "--queue",
            "5",
        ])
        .unwrap_err();
        assert!(err.contains("--queue"), "{err}");
    }

    #[test]
    fn serve_policies_parse() {
        for policy in ["fifo", "edf", "shed"] {
            let out = run(&[
                "serve",
                "--requests",
                "20",
                "--rate",
                "1.0",
                "--policy",
                policy,
                "--seed",
                "p",
            ])
            .unwrap();
            assert!(out.contains("20 arrived"), "{policy}: {out}");
        }
    }

    #[test]
    fn sweep_runs_grid_and_prints_frontier() {
        let out = run(&[
            "sweep",
            "--requests",
            "40",
            "--seeds",
            "1",
            "--threads",
            "2",
        ])
        .unwrap();
        assert!(out.contains("capacity frontier"), "{out}");
        assert!(out.contains("replicas"));
        let json = run(&[
            "sweep",
            "--requests",
            "40",
            "--seeds",
            "1",
            "--threads",
            "2",
            "--json",
        ])
        .unwrap();
        assert!(json.contains("\"frontier\""));
        let config = run(&["sweep", "--print-config"]).unwrap();
        assert!(config.contains("\"rate_scales\""));
        assert!(run(&["sweep", "--seeds", "none"]).is_err());
        assert!(run(&["sweep", "--config", "/nonexistent.json"]).is_err());
    }

    #[test]
    fn evaluate_and_infer_roundtrip() {
        let out = run(&[
            "evaluate",
            "--model",
            "CLIP ViT-B/16",
            "--benchmark",
            "cifar10",
            "--samples",
            "60",
        ])
        .unwrap();
        assert!(out.contains('%'));
        let inf = run(&["infer", "--model", "CLIP ViT-B/16", "--candidates", "8"]).unwrap();
        assert!(inf.contains("bit-identical): true"));
    }

    #[test]
    fn compare_includes_infeasible_dashes() {
        let out = run(&["compare", "--model", "ImageBind", "--candidates", "8"]).unwrap();
        assert!(out.contains("does not fit"));
        assert!(out.contains("S2M3"));
    }

    #[test]
    fn experiments_lists_all_binaries() {
        let out = run(&["experiments"]).unwrap();
        for bin in [
            "table6",
            "table11",
            "optimality",
            "scalability",
            "all_experiments",
        ] {
            assert!(out.contains(bin), "missing {bin}");
        }
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run(&["help"]).unwrap().contains("USAGE"));
        let err = run(&["frobnicate"]).unwrap_err();
        assert!(err.contains("unknown command"));
    }

    #[test]
    fn serve_streaming_flags_work_end_to_end() {
        // --streaming alone: memory-flat run, same counters in the
        // summary, streaming block in the echoed config.
        let out = run(&[
            "serve",
            "--requests",
            "60",
            "--rate",
            "0.5",
            "--seed",
            "cli-stream",
            "--streaming",
        ])
        .unwrap();
        assert!(out.contains("60 arrived"));
        let config = run(&[
            "serve",
            "--streaming",
            "--max-windows",
            "32",
            "--print-config",
        ])
        .unwrap();
        assert!(config.contains("\"streaming\""));
        assert!(config.contains("\"max_windows\": 32"));
        assert!(!config.contains("\"sink\": \""), "no sink unless asked");

        // --sink implies streaming and writes a readable columnar file.
        let path = std::env::temp_dir().join(format!("s2m3_cli_sink_{}.bin", std::process::id()));
        let sink = path.to_string_lossy().into_owned();
        let json = run(&[
            "serve",
            "--requests",
            "60",
            "--rate",
            "0.5",
            "--seed",
            "cli-stream",
            "--sink",
            &sink,
            "--json",
        ])
        .unwrap();
        assert!(json.contains("\"arrived\": 60"));
        let rows = s2m3_data::sink::read_rows(std::fs::File::open(&path).unwrap()).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(!rows.is_empty());
        assert!(run(&["serve", "--max-windows", "zero?"]).is_err());
    }

    #[test]
    fn serve_threads_flag_shards_without_changing_bytes() {
        let baseline = run(&["serve", "--requests", "300", "--seed", "cli-par", "--json"]).unwrap();
        let sharded = run(&[
            "serve",
            "--requests",
            "300",
            "--seed",
            "cli-par",
            "--threads",
            "4",
            "--json",
        ])
        .unwrap();
        assert_eq!(baseline, sharded, "parallel serve must be byte-identical");
        let config = run(&["serve", "--threads", "2", "--print-config"]).unwrap();
        assert!(config.contains("\"threads\": 2"));
        assert!(run(&["serve", "--threads", "many"]).is_err());
    }

    #[test]
    fn serve_capture_trace_then_replay_reproduces_the_run() {
        let path =
            std::env::temp_dir().join(format!("s2m3_cli_trace_{}.jsonl", std::process::id()));
        let trace = path.to_string_lossy().into_owned();
        let captured = run(&[
            "serve",
            "--requests",
            "120",
            "--seed",
            "cli-trace",
            "--capture-trace",
            &trace,
            "--json",
        ])
        .unwrap();
        let replayed = run(&[
            "serve",
            "--requests",
            "120",
            "--seed",
            "cli-trace",
            "--trace",
            &trace,
            "--json",
        ]);
        let _ = std::fs::remove_file(&path);
        let replayed = replayed.unwrap();
        // The replay regenerates arrivals from recorded gaps; outcomes
        // must match the captured run.
        for key in ["\"arrived\":", "\"completed\":", "\"shed\":"] {
            let field = |s: &str| {
                let i = s.find(key).unwrap();
                s[i..].chars().take_while(|c| *c != ',').collect::<String>()
            };
            assert_eq!(field(&captured), field(&replayed), "{key}");
        }
        assert!(run(&["serve", "--trace", "/nonexistent.jsonl"]).is_err());
    }
}
