//! # S2M3 — Split-and-Share Multi-Modal Models
//!
//! A from-scratch Rust reproduction of *"S2M3: Split-and-Share
//! Multi-Modal Models for Distributed Multi-Task Inference on the Edge"*
//! (ICDCS 2025). This facade crate re-exports the whole workspace:
//!
//! - [`tensor`] — deterministic `f32` kernels;
//! - [`models`] — the functional-module catalog and 14+ model zoo
//!   (Tables II/V), with executable synthetic modules;
//! - [`net`] — the Table III device fleet and home-PAN/MAN network;
//! - [`core`] — the paper's contribution: split-and-share placement
//!   (Algorithm 1), per-request parallel routing, objective (Eqs. 1–4),
//!   and the brute-force Upper baseline;
//! - [`sim`] — discrete-event execution (queuing, pipelining, loading,
//!   Fig. 3 timelines);
//! - [`serve`] — the online serving control plane: admission control,
//!   rolling SLO windows, and live adaptive replanning under fleet churn;
//! - [`sweep`] — parallel Monte Carlo sweeps: seeded replica grids on a
//!   work-stealing pool, aggregated into deterministic distribution
//!   bands and a capacity frontier;
//! - [`runtime`] — an executable distributed runtime over real threads
//!   and channels with bit-identical split-vs-centralized outputs;
//! - [`data`] — ten synthetic benchmarks and the Table VIII accuracy
//!   harness;
//! - [`baselines`] — centralized, Megatron-style TP, Optimus/DistMM
//!   estimates, and the paper's own ablations.
//!
//! ## Quickstart
//!
//! ```
//! use s2m3::prelude::*;
//!
//! // Deploy CLIP ViT-B/16 for zero-shot retrieval over the paper's
//! // edge fleet (desktop + laptop + two Jetson Nanos).
//! let instance = Instance::single_model("CLIP ViT-B/16", 101)?;
//! let request = instance.request(0, "CLIP ViT-B/16")?;
//! let plan = Plan::greedy(&instance, vec![request.clone()])?;
//!
//! // Analytic end-to-end latency (Eq. 1): parallel encoders + head.
//! let latency = total_latency(&instance, &plan.routed[0].1, &request)?;
//! assert!(latency < 4.0, "edge inference stays in the paper's regime");
//! # Ok::<(), s2m3::core::CoreError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use s2m3_baselines as baselines;
pub use s2m3_core as core;
pub use s2m3_data as data;
pub use s2m3_models as models;
pub use s2m3_net as net;
pub use s2m3_runtime as runtime;
pub use s2m3_serve as serve;
pub use s2m3_sim as sim;
pub use s2m3_sweep as sweep;
pub use s2m3_tensor as tensor;

/// Everything most applications need.
pub mod prelude {
    pub use s2m3_core::prelude::*;
    pub use s2m3_data::{evaluate, Benchmark, Dataset};
    pub use s2m3_models::zoo::{ModelSpec, Task, Zoo};
    pub use s2m3_net::fleet::Fleet;
    pub use s2m3_runtime::{reference, RequestInput, Runtime};
    pub use s2m3_serve::{serve, AdmissionPolicy, ServeReport, ServeScenario};
    pub use s2m3_sim::{simulate, SimConfig, SimReport};
    pub use s2m3_sweep::{run_sweep, SweepReport, SweepSpec};
}
