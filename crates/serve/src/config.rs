//! Serving-scenario configuration: what to deploy, how requests arrive,
//! what the SLO is, and how the fleet churns.

use serde::{Deserialize, Serialize};

use s2m3_models::module::ModuleKind;
use s2m3_sim::workload::{ArrivalProcess, ClassShare, ModelMix, SourceSpec, WorkloadSpec};

/// How a device's admission queue orders and bounds waiting requests.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// First-in first-out, unbounded.
    #[default]
    Fifo,
    /// Earliest deadline first, unbounded: the request whose SLO deadline
    /// is nearest dispatches next.
    EarliestDeadlineFirst,
    /// FIFO with load shedding: an arrival finding `max_queue` requests
    /// already waiting at its device is rejected immediately (and counted
    /// as shed, which the SLO tracker treats as a deadline miss).
    ShedOnOverload {
        /// Queue-length bound per device.
        max_queue: usize,
    },
}

/// One model to deploy in the scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelDeployment {
    /// Zoo model name (see `s2m3 zoo`).
    pub name: String,
    /// Benchmark candidate count (drives the text-encoder batch).
    pub candidates: usize,
}

/// What happens to the fleet, and when.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FleetEventKind {
    /// A device (named in the universe fleet) joins the active fleet.
    DeviceJoin {
        /// Device name, e.g. `"server"`.
        device: String,
    },
    /// An active device leaves; its in-flight work is re-admitted.
    DeviceLeave {
        /// Device name, e.g. `"desktop"`.
        device: String,
    },
    /// An active device's effective compute speed is scaled by `factor`
    /// (e.g. `0.5` = half speed, thermal throttling; `1.0` restores).
    DeviceSlowdown {
        /// Device name.
        device: String,
        /// Speed multiplier applied to the device's base GFLOP/s.
        factor: f64,
    },
}

/// A scheduled fleet change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetEvent {
    /// Simulated time at which the change takes effect, seconds.
    pub at_s: f64,
    /// The change.
    pub kind: FleetEventKind,
}

/// The SLO-breach replan trigger: on top of fleet events, the replan
/// controller may also fire when the *rolling* p95 latency exceeds the
/// deadline — the signal that the current placement underperforms even
/// though the fleet itself did not change (e.g. after a rejected
/// event-replan, or under traffic the analytic model did not foresee).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloReplanTrigger {
    /// Completions required in the rolling window before the trigger
    /// arms (avoids reacting to startup noise).
    pub min_window: usize,
    /// Minimum virtual seconds between trigger evaluations; the window
    /// is sampled at most once per cooldown.
    pub cooldown_s: f64,
}

impl Default for SloReplanTrigger {
    fn default() -> Self {
        SloReplanTrigger {
            min_window: 64,
            cooldown_s: 60.0,
        }
    }
}

/// Replan-controller knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplanPolicy {
    /// Horizon over which a switch must amortize, seconds: a replan is
    /// accepted when its `break_even_requests` is at most the observed
    /// arrival rate times this horizon (mandatory replans always apply).
    pub horizon_s: f64,
    /// Whether migration costs are charged as downtime on destination
    /// devices (they cannot start new work while weights stream in).
    pub charge_switching_downtime: bool,
    /// Optional SLO-breach trigger: when set, a rolling-p95 breach of
    /// the deadline also wakes the replan controller (same break-even
    /// gate as fleet events). `None` (the default) reacts to fleet
    /// events only.
    pub slo_trigger: Option<SloReplanTrigger>,
}

impl Default for ReplanPolicy {
    fn default() -> Self {
        ReplanPolicy {
            horizon_s: 600.0,
            charge_switching_downtime: true,
            slo_trigger: None,
        }
    }
}

/// One extra request source: a fleet device that emits its own seeded
/// arrival stream (see [`ServeScenario::sources`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficSource {
    /// Device name in the universe fleet. Must be active at t = 0 and
    /// may never leave (like the requester).
    pub device: String,
    /// The source's arrival process, seeded independently per source.
    pub arrivals: ArrivalProcess,
    /// Relative share of the scenario's bounded request budget. All
    /// sources `null` (the default, and what pre-weight JSON parses as)
    /// keeps the legacy equal round-robin split.
    pub weight: Option<f64>,
    /// Per-source model mix, overriding [`ServeScenario::mix`]. `null`
    /// inherits the scenario mix.
    pub mix: Option<ModelMix>,
}

/// Module-level batching for the online serving loop: when a device
/// lane frees, up to `max_batch` queued executions of the same module
/// merge into one run, paying the per-execution overhead once (the
/// kernel's Sec. VI-C lever, previously wired only into the offline
/// simulator).
///
/// **Fixture rule:** batching changes every completion time, so the
/// golden `ServeReport` fixtures in `tests/fixtures/` are captured per
/// batching mode — `serve_churn_default.json` pins `batch: None` (which
/// must stay byte-identical across refactors) and
/// `serve_churn_batched.json` pins this knob. Changing batched-dispatch
/// semantics intentionally means regenerating *only* the batched
/// fixture via `capture_fixtures`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchPolicy {
    /// Global per-dispatch batch cap (≥ 2 to have any effect).
    pub max_batch: usize,
    /// Per-module-kind overrides of the global cap (e.g. batch text
    /// encoders 8-deep but never batch generative heads: `max_batch: 1`
    /// for [`ModuleKind::LanguageModel`]).
    pub per_kind: Vec<KindBatchCap>,
}

/// One module kind's batch cap (see [`BatchPolicy::per_kind`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KindBatchCap {
    /// The module kind the override applies to.
    pub kind: ModuleKind,
    /// Batch cap for modules of this kind (1 disables batching).
    pub max_batch: usize,
}

/// `#[serde(with)]` adapter treating a missing/`null` field as an empty
/// list, so scenario JSON predating a list-valued field keeps parsing
/// (the vendored serde derive has no `#[serde(default)]`; it hands the
/// adapter `Null` for absent fields). Generic: the `with` call sites
/// infer the element type.
mod vec_or_empty {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<T: Serialize, S: Serializer>(v: &[T], s: S) -> Result<S::Ok, S::Error> {
        v.serialize(s)
    }

    pub fn deserialize<'de, T: Deserialize<'de>, D: Deserializer<'de>>(
        d: D,
    ) -> Result<Vec<T>, D::Error> {
        match d.into_value()? {
            serde::value::Value::Null => Ok(Vec::new()),
            v => serde::from_value(v).map_err(D::Error::from),
        }
    }
}

/// `#[serde(with)]` adapter treating a missing/`null` numeric field as
/// zero, so scenario JSON predating the field keeps parsing (same
/// contract as [`vec_or_empty`], for counters whose zero means "off").
mod zero_or_count {
    use serde::{Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(v: &usize, s: S) -> Result<S::Ok, S::Error> {
        v.serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<usize, D::Error> {
        match d.into_value()? {
            serde::value::Value::Null => Ok(0),
            v => serde::from_value(v).map_err(D::Error::from),
        }
    }
}

/// Memory-flat streaming mode for the serving loop (see the README's
/// "Memory-flat serving" section). When set on a scenario:
///
/// - arrivals are pulled lazily from the workload stream (never
///   materialized as a vector),
/// - driver-side request slots recycle through a free-list slab, and
///   the kernel recycles its task table, so resident state is
///   proportional to *in-flight* work rather than total arrivals,
/// - latency summaries (global and per-class) come from the fixed-size
///   [`LatencySketch`](s2m3_core::sketch::LatencySketch): count, mean,
///   and max stay exact, percentiles carry a ≤ 1% relative error.
///
/// `None` (the default) keeps the exact path byte-identical to the
/// golden fixtures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct StreamingConfig {
    /// Optional path for the columnar completion-event sink (one row
    /// per completed request; see `s2m3_data::sink`). `None` records
    /// nothing.
    pub sink: Option<String>,
}

/// A complete serving scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeScenario {
    /// Universe fleet: `"edge"` (no server) or `"standard"`. Devices in
    /// the universe but not in `initial_devices` may join later.
    pub fleet: String,
    /// Names of the devices active at t = 0.
    pub initial_devices: Vec<String>,
    /// Models deployed for the whole run.
    pub models: Vec<ModelDeployment>,
    /// The request arrival process (of the fleet requester when
    /// [`ServeScenario::sources`] is empty; ignored otherwise).
    pub arrivals: ArrivalProcess,
    /// Extra traffic sources. Empty (the default) keeps the classic
    /// single-source behavior: the fleet requester emits `arrivals`.
    /// Non-empty replaces it: each listed device emits its own seeded
    /// stream and the union is merged deterministically by
    /// `(arrival time, source rank, per-source id)`, where rank is the
    /// position in this list.
    #[serde(with = "vec_or_empty")]
    pub sources: Vec<TrafficSource>,
    /// Scenario-wide model mix for sources without their own. `null`
    /// (the default) is [`ModelMix::LegacyRoundRobin`]: request `rid`
    /// of the merged stream asks for model `rid % n_models` — the
    /// byte-pinned historic behavior.
    pub mix: Option<ModelMix>,
    /// Weighted deadline/priority classes sampled per request (seeded by
    /// the scenario seed). A classed request's deadline replaces
    /// [`ServeScenario::deadline_s`], and its priority orders EDF
    /// admission ahead of the deadline. Empty (and `null`): every
    /// request uses the scenario deadline at priority 0.
    #[serde(with = "vec_or_empty")]
    pub classes: Vec<ClassShare>,
    /// Module-level batching in the serve loop. `None` (the default)
    /// dispatches singletons — the byte-pinned historic behavior.
    pub batch: Option<BatchPolicy>,
    /// Total number of requests in the stream.
    pub requests: usize,
    /// Seed label: equal labels ⇒ identical streams and reports.
    pub seed: String,
    /// Per-request latency SLO, seconds (deadline = arrival + this).
    pub deadline_s: f64,
    /// Admission queue policy.
    pub admission: AdmissionPolicy,
    /// Concurrent requests a device serves before queuing more.
    pub max_inflight_per_device: usize,
    /// Replan-controller knobs.
    pub replan: ReplanPolicy,
    /// Scheduled fleet churn.
    pub events: Vec<FleetEvent>,
    /// SLO ring-buffer window size, in completed requests.
    pub slo_window: usize,
    /// Emit a windowed SLO snapshot every this many completions.
    pub snapshot_every: usize,
    /// Memory-flat streaming mode. `None` (the default, and what every
    /// pre-streaming scenario JSON parses as — absent and `null` both
    /// deserialize to `None`) keeps the exact path.
    pub streaming: Option<StreamingConfig>,
    /// Cap on retained SLO window snapshots: when the report would
    /// exceed this, every other snapshot is dropped and the snapshot
    /// stride doubles, bounding `report.windows` for unbounded runs.
    /// `None` (the default) retains every snapshot.
    pub max_windows: Option<usize>,
    /// Worker-thread budget for the sharded serving backend (total,
    /// including the calling thread): `0` or `1` runs the classic
    /// sequential loop; `2+` offloads workload generation, accounting,
    /// and — when the partition is viable — the encoder-device shard
    /// onto dedicated workers. Any thread count produces a report
    /// byte-identical to the sequential run (ambiguous schedules are
    /// detected and replayed sequentially), so this knob only ever
    /// trades threads for wall-clock. Absent/`null` parses as `0`.
    #[serde(with = "zero_or_count")]
    pub threads: usize,
    /// Optional per-window fleet-wide cost cap (see [`crate::budget`]).
    /// `None` (the default, and what every pre-budget scenario JSON
    /// parses as) serves uncapped — byte-identical to the golden
    /// fixtures.
    pub budget: Option<crate::budget::BudgetPolicy>,
}

impl ServeScenario {
    /// The default churn-under-load scenario: a 10,000-request Poisson
    /// stream over the *standard* fleet universe, starting edge-only
    /// (the GPU server exists but is initially absent), with the desktop
    /// dropping out and the server joining mid-run — one mandatory
    /// replan and one opportunity-driven replan.
    pub fn churn_default() -> Self {
        ServeScenario {
            fleet: "standard".to_string(),
            initial_devices: vec![
                "desktop".to_string(),
                "laptop".to_string(),
                "jetson-b".to_string(),
                "jetson-a".to_string(),
            ],
            models: vec![ModelDeployment {
                name: "CLIP ViT-B/16".to_string(),
                candidates: 101,
            }],
            arrivals: ArrivalProcess::Poisson { rate_per_s: 0.3 },
            sources: Vec::new(),
            mix: None,
            classes: Vec::new(),
            batch: None,
            requests: 10_000,
            seed: "serve/churn-default".to_string(),
            deadline_s: 15.0,
            admission: AdmissionPolicy::ShedOnOverload { max_queue: 48 },
            max_inflight_per_device: 4,
            replan: ReplanPolicy::default(),
            events: vec![
                FleetEvent {
                    at_s: 1800.0,
                    kind: FleetEventKind::DeviceLeave {
                        device: "desktop".to_string(),
                    },
                },
                FleetEvent {
                    at_s: 4200.0,
                    kind: FleetEventKind::DeviceJoin {
                        device: "server".to_string(),
                    },
                },
            ],
            slo_window: 256,
            snapshot_every: 500,
            streaming: None,
            max_windows: None,
            threads: 0,
            budget: None,
        }
    }

    /// The scenario's traffic as a unified [`WorkloadSpec`] — the same
    /// layer the offline simulator materializes requests from. An empty
    /// [`ServeScenario::sources`] list becomes the classic single
    /// default-origin source whose arrival label is the bare scenario
    /// seed (bit-for-bit the pre-multi-source stream); explicit sources
    /// get labels `"{seed}/source-{rank}"` exactly as before.
    pub fn workload(&self) -> WorkloadSpec {
        let sources = if self.sources.is_empty() {
            vec![SourceSpec {
                device: None,
                arrivals: self.arrivals.clone(),
                label: self.seed.clone(),
                weight: None,
                mix: None,
            }]
        } else {
            self.sources
                .iter()
                .enumerate()
                .map(|(i, s)| SourceSpec {
                    device: Some(s.device.clone()),
                    arrivals: s.arrivals.clone(),
                    label: format!("{}/source-{i}", self.seed),
                    weight: s.weight,
                    mix: s.mix.clone(),
                })
                .collect()
        };
        WorkloadSpec {
            sources,
            mix: self.mix.clone().unwrap_or(ModelMix::LegacyRoundRobin),
            classes: self.classes.clone(),
            seed: self.seed.clone(),
        }
    }

    /// Parses a scenario from JSON.
    ///
    /// # Errors
    ///
    /// A human-readable message on malformed JSON or shape mismatch.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("bad scenario config: {e}"))
    }

    /// Serializes the scenario to pretty JSON.
    ///
    /// # Errors
    ///
    /// A human-readable message on serialization failure (not expected).
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string_pretty(self).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scenario_meets_acceptance_shape() {
        let s = ServeScenario::churn_default();
        assert!(s.requests >= 10_000);
        assert!(matches!(s.arrivals, ArrivalProcess::Poisson { .. }));
        let leaves = s
            .events
            .iter()
            .filter(|e| matches!(e.kind, FleetEventKind::DeviceLeave { .. }))
            .count();
        let joins = s
            .events
            .iter()
            .filter(|e| matches!(e.kind, FleetEventKind::DeviceJoin { .. }))
            .count();
        assert!(leaves >= 1 && joins >= 1);
    }

    #[test]
    fn streaming_fields_roundtrip_and_default_off() {
        let mut s = ServeScenario::churn_default();
        // Pre-streaming scenario JSON — no `streaming`/`max_windows`/
        // `threads` keys at all — must parse with every knob off.
        let legacy_json = s
            .to_json()
            .unwrap()
            .lines()
            .filter(|l| {
                !l.contains("\"streaming\"")
                    && !l.contains("\"max_windows\"")
                    && !l.contains("\"threads\"")
                    && !l.contains("\"budget\"")
            })
            .collect::<Vec<_>>()
            .join("\n")
            .replace("\"snapshot_every\": 500,", "\"snapshot_every\": 500");
        let parsed = ServeScenario::from_json(&legacy_json).unwrap();
        assert_eq!(parsed.streaming, None);
        assert_eq!(parsed.max_windows, None);
        assert_eq!(parsed.threads, 0);
        assert_eq!(parsed.budget, None);
        assert_eq!(parsed, s);

        s.streaming = Some(StreamingConfig {
            sink: Some("completions.bin".to_string()),
        });
        s.max_windows = Some(64);
        s.budget = Some(crate::budget::BudgetPolicy::device_seconds(3.5));
        let back = ServeScenario::from_json(&s.to_json().unwrap()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn scenario_json_roundtrip() {
        let s = ServeScenario::churn_default();
        let j = s.to_json().unwrap();
        let back = ServeScenario::from_json(&j).unwrap();
        assert_eq!(s, back);
        assert!(ServeScenario::from_json("{not json").is_err());
    }
}
