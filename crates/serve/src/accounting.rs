//! Run accounting as a *record stream consumer*: SLO windows, latency
//! aggregation, per-class counters, per-device usage, and the optional
//! columnar completion sink, extracted from the serving driver so the
//! same math can run either inline (sequential mode) or on a dedicated
//! accounting worker fed a FIFO of [`ARec`]s (sharded mode). The
//! records carry everything the math needs, in the exact order the
//! sequential loop would have produced it, so both homes are
//! byte-identical by construction.

use s2m3_core::sketch::LatencySketch;
use s2m3_data::sink::{ColumnWriter, CompletionRow};

use crate::engine::ServeError;
use crate::report::LatencySummary;
use crate::slo::{DeviceUsage, Outcome, SloWindow, WindowSnapshot};

/// Latency accumulator behind [`LatencySummary`]: the exact path keeps
/// every sample (sorted once at `finish`, byte-identical to the golden
/// fixtures), the streaming path folds into a fixed-size
/// [`LatencySketch`] so memory stays flat over unbounded runs.
#[derive(Debug, Clone)]
pub(crate) enum LatAgg {
    /// Every sample, summarized by an in-place sort at the end.
    Exact(Vec<f64>),
    /// Fixed-memory log-bucket histogram (≤ 1% quantile error).
    Sketch(LatencySketch),
}

impl Default for LatAgg {
    fn default() -> Self {
        LatAgg::Exact(Vec::new())
    }
}

impl LatAgg {
    pub(crate) fn new(streaming: bool, capacity: usize) -> Self {
        if streaming {
            LatAgg::Sketch(LatencySketch::new())
        } else {
            LatAgg::Exact(Vec::with_capacity(capacity))
        }
    }

    #[inline]
    pub(crate) fn record(&mut self, v: f64) {
        match self {
            LatAgg::Exact(samples) => samples.push(v),
            LatAgg::Sketch(sketch) => sketch.record(v),
        }
    }

    /// Folds the accumulator into a summary. Sorts the exact buffer in
    /// place — one pass, no clone or reallocation.
    pub(crate) fn summarize(&mut self) -> LatencySummary {
        match self {
            LatAgg::Exact(samples) => {
                samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                LatencySummary::from_sorted(samples)
            }
            LatAgg::Sketch(sketch) => LatencySummary::from_sketch(sketch),
        }
    }
}

/// Running per-deadline-class counters, folded into
/// [`ClassReport`](crate::report::ClassReport)s at the end of the run.
#[derive(Debug, Clone, Default)]
pub(crate) struct ClassStats {
    pub arrived: u64,
    pub completed: u64,
    pub shed: u64,
    pub late: u64,
    pub latencies: LatAgg,
}

/// One accounting record: a compact, order-preserving replay of the
/// bookkeeping a driver event performed. Sequential mode applies these
/// inline as it goes; sharded mode batches them over a channel to the
/// accounting worker. Either way [`Accounting::apply`] is the only
/// consumer, so the two modes cannot diverge.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ARec {
    /// A request completed (drives counters, latency aggregation, the
    /// SLO window, and the optional sink row).
    Complete {
        arrival_ns: u64,
        finish_ns: u64,
        /// Universe index of the head device (`u32::MAX`: none).
        device: u32,
        class: Option<u32>,
        missed: bool,
        latency_s: f64,
    },
    /// A request was shed at `at_s` (counters + SLO window only — no
    /// latency sample, no sink row).
    Shed {
        at_s: f64,
        latency_s: f64,
        class: Option<u32>,
    },
    /// A classed request arrived.
    ClassArrived { class: u32 },
    /// A device finished an execution whose lane survived: charge busy
    /// time and bump the execution count.
    Charge { ui: u32, dur_ns: u64 },
    /// A device joined the fleet at `at_s`.
    Join { ui: u32, at_s: f64 },
    /// A device left the fleet at `at_s`.
    Leave { ui: u32, at_s: f64 },
}

/// The accounting state of one serving run. Owns everything the report
/// derives from completions: the SLO ring, snapshot cadence, latency
/// aggregators, class counters, per-device usage/executions, and the
/// streaming sink.
#[derive(Debug)]
pub(crate) struct Accounting {
    pub slo: SloWindow,
    /// Completions between window snapshots. Starts at the scenario's
    /// `snapshot_every` and doubles whenever `max_windows` forces a
    /// downsample.
    pub snapshot_stride: u64,
    /// Outcomes left until the next snapshot — the running remainder
    /// of `snapshot_stride`, kept so the per-outcome hot path is a
    /// decrement instead of a 64-bit modulo.
    pub until_snapshot: u64,
    /// Snapshot-count cap (`None`: retain every snapshot).
    pub max_windows: Option<usize>,
    pub last_snapshot_seen: u64,
    pub latencies: LatAgg,
    pub class_stats: Vec<ClassStats>,
    /// Per-universe-device usage, indexed by universe device index.
    pub usage: Vec<DeviceUsage>,
    /// Per-universe-device execution counts.
    pub executions: Vec<u64>,
    /// Optional columnar per-completion event sink (streaming mode
    /// only): one row per completed request, O(1) memory.
    pub sink: Option<ColumnWriter<std::io::BufWriter<std::fs::File>>>,
    pub completed: u64,
    pub late: u64,
    pub shed: u64,
    /// Rolling-window snapshots, in completion order (moved into the
    /// report at `finish`).
    pub windows: Vec<WindowSnapshot>,
    pub last_completion_ns: u64,
}

impl Accounting {
    /// Applies one record. The only mutation path for accounting state
    /// in both execution modes.
    #[inline]
    pub fn apply(&mut self, rec: ARec) -> Result<(), ServeError> {
        match rec {
            ARec::Complete {
                arrival_ns,
                finish_ns,
                device,
                class,
                missed,
                latency_s,
            } => {
                if let Some(w) = self.sink.as_mut() {
                    w.push(CompletionRow {
                        arrival_ns,
                        finish_ns,
                        device,
                        class,
                        latency_s,
                    })
                    .map_err(|e| ServeError::Sink(e.to_string()))?;
                }
                self.completed += 1;
                if missed {
                    self.late += 1;
                }
                if let Some(ci) = class {
                    let cs = &mut self.class_stats[ci as usize];
                    cs.completed += 1;
                    if missed {
                        cs.late += 1;
                    }
                    cs.latencies.record(latency_s);
                }
                self.latencies.record(latency_s);
                self.last_completion_ns = self.last_completion_ns.max(finish_ns);
                self.outcome(Outcome {
                    completed_at_s: finish_ns as f64 / 1.0e9,
                    latency_s,
                    missed,
                });
            }
            ARec::Shed {
                at_s,
                latency_s,
                class,
            } => {
                self.shed += 1;
                if let Some(ci) = class {
                    self.class_stats[ci as usize].shed += 1;
                }
                // A shed request is an SLO miss; the window records it
                // at the deadline bound so percentiles reflect the
                // rejection.
                self.outcome(Outcome {
                    completed_at_s: at_s,
                    latency_s,
                    missed: true,
                });
            }
            ARec::ClassArrived { class } => {
                self.class_stats[class as usize].arrived += 1;
            }
            ARec::Charge { ui, dur_ns } => {
                self.usage[ui as usize].busy_s += dur_ns as f64 / 1.0e9;
                self.executions[ui as usize] += 1;
            }
            ARec::Join { ui, at_s } => {
                let u = &mut self.usage[ui as usize];
                u.active = true;
                u.active_since_s = at_s;
            }
            ARec::Leave { ui, at_s } => {
                let u = &mut self.usage[ui as usize];
                if u.active {
                    u.active = false;
                    u.active_s += (at_s - u.active_since_s).max(0.0);
                }
            }
        }
        Ok(())
    }

    /// Pushes one outcome into the SLO ring and emits a window snapshot
    /// on the running cadence (with `max_windows` downsampling).
    fn outcome(&mut self, outcome: Outcome) {
        self.slo.push(outcome);
        self.until_snapshot -= 1;
        if self.until_snapshot == 0 {
            let mut snap = self.slo.snapshot(outcome.completed_at_s);
            snap.utilization = self.utilization(outcome.completed_at_s);
            self.windows.push(snap);
            self.last_snapshot_seen = self.slo.total_seen();
            // Bounded-report mode: over the cap, drop every other
            // retained snapshot and double the stride, so `windows`
            // holds at most `max_windows` entries at a geometrically
            // coarsening (still deterministic) cadence.
            if let Some(cap) = self.max_windows {
                if self.windows.len() >= cap.max(2) {
                    let mut keep = false;
                    self.windows.retain(|_| {
                        keep = !keep;
                        keep
                    });
                    self.snapshot_stride = self.snapshot_stride.saturating_mul(2);
                }
            }
            // Re-arm: `total_seen` is a multiple of the old stride, so
            // against a doubled stride the remainder is 0 or the old
            // stride — exactly what the modulo formulation produced.
            let rem = self.slo.total_seen() % self.snapshot_stride;
            self.until_snapshot = self.snapshot_stride - rem;
        }
    }

    /// Fleet-wide utilization at `now_s`: busy lane-seconds over
    /// offered lane-seconds summed in universe device order
    /// (deterministic).
    pub fn utilization(&self, now_s: f64) -> f64 {
        let mut busy = 0.0;
        let mut offered = 0.0;
        for u in &self.usage {
            busy += u.busy_s;
            offered += u.active_total_s(now_s) * u.lanes.max(1) as f64;
        }
        if offered <= 0.0 {
            0.0
        } else {
            (busy / offered).min(1.0)
        }
    }
}
