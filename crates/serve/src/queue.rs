//! Per-device admission queues: policy-ordered waiting rooms between
//! request arrival and dispatch into the execution engine.

use std::collections::VecDeque;

use crate::config::AdmissionPolicy;

/// A queued request: everything the dispatcher needs to order it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedRequest {
    /// Request id (index into the scenario's stream).
    pub id: u64,
    /// Arrival time, nanoseconds of virtual time.
    pub arrival_ns: u64,
    /// SLO deadline, nanoseconds of virtual time.
    pub deadline_ns: u64,
}

/// What happened when a request was offered to a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The request is waiting in the queue.
    Queued,
    /// The request was rejected by shed-on-overload.
    Shed,
}

/// One device's admission queue.
///
/// FIFO and shed-on-overload use arrival order; earliest-deadline-first
/// always dispatches the waiting request with the nearest deadline (ties
/// broken by arrival, then id, keeping the whole control plane
/// deterministic).
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    policy: AdmissionPolicy,
    waiting: VecDeque<QueuedRequest>,
}

impl AdmissionQueue {
    /// An empty queue under `policy`.
    pub fn new(policy: AdmissionPolicy) -> Self {
        AdmissionQueue {
            policy,
            waiting: VecDeque::new(),
        }
    }

    /// Offers a request; shed-on-overload may reject it.
    pub fn offer(&mut self, request: QueuedRequest) -> Admission {
        if let AdmissionPolicy::ShedOnOverload { max_queue } = self.policy {
            if self.waiting.len() >= max_queue {
                return Admission::Shed;
            }
        }
        self.waiting.push_back(request);
        Admission::Queued
    }

    /// Removes and returns the next request to dispatch, per policy.
    pub fn pop(&mut self) -> Option<QueuedRequest> {
        match self.policy {
            AdmissionPolicy::Fifo | AdmissionPolicy::ShedOnOverload { .. } => {
                self.waiting.pop_front()
            }
            AdmissionPolicy::EarliestDeadlineFirst => {
                let best = self
                    .waiting
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, r)| (r.deadline_ns, r.arrival_ns, r.id))?
                    .0;
                self.waiting.remove(best)
            }
        }
    }

    /// Requests currently waiting.
    pub fn len(&self) -> usize {
        self.waiting.len()
    }

    /// Whether nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.waiting.is_empty()
    }

    /// Drains every waiting request (used when a device leaves and its
    /// queue must be re-admitted elsewhere).
    pub fn drain(&mut self) -> Vec<QueuedRequest> {
        self.waiting.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, arrival_ns: u64, deadline_ns: u64) -> QueuedRequest {
        QueuedRequest {
            id,
            arrival_ns,
            deadline_ns,
        }
    }

    #[test]
    fn fifo_preserves_arrival_order() {
        let mut q = AdmissionQueue::new(AdmissionPolicy::Fifo);
        for i in 0..4 {
            assert_eq!(q.offer(req(i, i, 1000 - i)), Admission::Queued);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|r| r.id).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn edf_orders_by_deadline_with_stable_ties() {
        let mut q = AdmissionQueue::new(AdmissionPolicy::EarliestDeadlineFirst);
        q.offer(req(0, 0, 300));
        q.offer(req(1, 1, 100));
        q.offer(req(2, 2, 100));
        q.offer(req(3, 3, 200));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|r| r.id).collect();
        assert_eq!(order, vec![1, 2, 3, 0]);
    }

    #[test]
    fn shed_rejects_above_capacity_only() {
        let mut q = AdmissionQueue::new(AdmissionPolicy::ShedOnOverload { max_queue: 2 });
        assert_eq!(q.offer(req(0, 0, 10)), Admission::Queued);
        assert_eq!(q.offer(req(1, 1, 10)), Admission::Queued);
        assert_eq!(q.offer(req(2, 2, 10)), Admission::Shed);
        q.pop();
        assert_eq!(q.offer(req(3, 3, 10)), Admission::Queued);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn drain_empties_the_queue() {
        let mut q = AdmissionQueue::new(AdmissionPolicy::Fifo);
        q.offer(req(0, 0, 1));
        q.offer(req(1, 1, 2));
        let drained = q.drain();
        assert_eq!(drained.len(), 2);
        assert!(q.is_empty());
    }
}
