//! Per-device admission queues: policy-ordered waiting rooms between
//! request arrival and dispatch into the execution engine.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::config::AdmissionPolicy;

/// A queued request: everything the dispatcher needs to order it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedRequest {
    /// Request id: the request's arrival sequence number. Unique and
    /// monotone in arrival order, so it stays the ordering tie-breaker
    /// regardless of how driver-side storage numbers its slots.
    pub id: u64,
    /// Packed [`ReqHandle`](crate::slab::ReqHandle) of the request's
    /// driver-side slot. Never participates in ordering (ids already
    /// total-order the keys); carried so dispatch is an O(1) slab
    /// lookup.
    pub handle: u64,
    /// Arrival time, nanoseconds of virtual time.
    pub arrival_ns: u64,
    /// SLO deadline, nanoseconds of virtual time.
    pub deadline_ns: u64,
    /// Deadline-class priority (larger dispatches first under EDF);
    /// class-free workloads leave every request at 0, reproducing the
    /// pure deadline order byte-for-byte.
    pub priority: u32,
}

/// What happened when a request was offered to a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The request is waiting in the queue.
    Queued,
    /// The request was rejected by shed-on-overload.
    Shed,
}

/// EDF heap key: `(inverted priority, deadline_ns, arrival_ns, id,
/// packed slab handle)`. The handle trails the (unique) id, so it
/// never affects the order.
type EdfKey = (u32, u64, u64, u64, u64);

/// One device's admission queue.
///
/// FIFO and shed-on-overload use arrival order (a `VecDeque`);
/// earliest-deadline-first always dispatches the waiting request with
/// the highest priority class, nearest deadline first within a class,
/// and keeps a `BinaryHeap` keyed on
/// `(inverted priority, deadline_ns, arrival_ns, id)` — an `O(log n)`
/// pop with a total order (ids are unique), so reports stay
/// byte-identical per seed. Workloads without deadline classes put
/// every request at priority 0, collapsing the key to the historic
/// deadline → arrival → id order.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    policy: AdmissionPolicy,
    /// Arrival-ordered waiting room (FIFO / shed-on-overload).
    waiting: VecDeque<QueuedRequest>,
    /// Priority+deadline-ordered waiting room (EDF). The first key
    /// component is `u32::MAX - priority` so larger priorities pop
    /// first from the min-heap.
    by_deadline: BinaryHeap<Reverse<EdfKey>>,
}

impl AdmissionQueue {
    /// An empty queue under `policy`.
    pub fn new(policy: AdmissionPolicy) -> Self {
        AdmissionQueue {
            policy,
            waiting: VecDeque::new(),
            by_deadline: BinaryHeap::new(),
        }
    }

    fn is_edf(&self) -> bool {
        matches!(self.policy, AdmissionPolicy::EarliestDeadlineFirst)
    }

    /// Offers a request; shed-on-overload may reject it.
    pub fn offer(&mut self, request: QueuedRequest) -> Admission {
        if let AdmissionPolicy::ShedOnOverload { max_queue } = self.policy {
            if self.waiting.len() >= max_queue {
                return Admission::Shed;
            }
        }
        if self.is_edf() {
            self.by_deadline.push(Reverse((
                u32::MAX - request.priority,
                request.deadline_ns,
                request.arrival_ns,
                request.id,
                request.handle,
            )));
        } else {
            self.waiting.push_back(request);
        }
        Admission::Queued
    }

    /// Removes and returns the next request to dispatch, per policy.
    pub fn pop(&mut self) -> Option<QueuedRequest> {
        if self.is_edf() {
            let Reverse((inv_priority, deadline_ns, arrival_ns, id, handle)) =
                self.by_deadline.pop()?;
            return Some(QueuedRequest {
                id,
                handle,
                arrival_ns,
                deadline_ns,
                priority: u32::MAX - inv_priority,
            });
        }
        self.waiting.pop_front()
    }

    /// Requests currently waiting.
    pub fn len(&self) -> usize {
        self.waiting.len() + self.by_deadline.len()
    }

    /// Whether nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains every waiting request (used when a device leaves and its
    /// queue must be re-admitted elsewhere). Returned in arrival order
    /// (`(arrival_ns, id)`), the canonical re-admission order.
    pub fn drain(&mut self) -> Vec<QueuedRequest> {
        let mut out: Vec<QueuedRequest> = self.waiting.drain(..).collect();
        out.extend(self.by_deadline.drain().map(
            |Reverse((inv_priority, deadline_ns, arrival_ns, id, handle))| QueuedRequest {
                id,
                handle,
                arrival_ns,
                deadline_ns,
                priority: u32::MAX - inv_priority,
            },
        ));
        out.sort_by_key(|qr| (qr.arrival_ns, qr.id));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, arrival_ns: u64, deadline_ns: u64) -> QueuedRequest {
        QueuedRequest {
            id,
            handle: id,
            arrival_ns,
            deadline_ns,
            priority: 0,
        }
    }

    #[test]
    fn edf_priority_classes_preempt_the_deadline_order() {
        let mut q = AdmissionQueue::new(AdmissionPolicy::EarliestDeadlineFirst);
        q.offer(req(0, 0, 100)); // priority 0, earliest deadline
        q.offer(QueuedRequest {
            priority: 5,
            ..req(1, 1, 900)
        });
        q.offer(QueuedRequest {
            priority: 5,
            ..req(2, 2, 400)
        });
        // Higher class first; deadlines order within a class.
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|r| r.id).collect();
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn fifo_preserves_arrival_order() {
        let mut q = AdmissionQueue::new(AdmissionPolicy::Fifo);
        for i in 0..4 {
            assert_eq!(q.offer(req(i, i, 1000 - i)), Admission::Queued);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|r| r.id).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn edf_orders_by_deadline_with_stable_ties() {
        let mut q = AdmissionQueue::new(AdmissionPolicy::EarliestDeadlineFirst);
        q.offer(req(0, 0, 300));
        q.offer(req(1, 1, 100));
        q.offer(req(2, 2, 100));
        q.offer(req(3, 3, 200));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|r| r.id).collect();
        assert_eq!(order, vec![1, 2, 3, 0]);
    }

    #[test]
    fn shed_rejects_above_capacity_only() {
        let mut q = AdmissionQueue::new(AdmissionPolicy::ShedOnOverload { max_queue: 2 });
        assert_eq!(q.offer(req(0, 0, 10)), Admission::Queued);
        assert_eq!(q.offer(req(1, 1, 10)), Admission::Queued);
        assert_eq!(q.offer(req(2, 2, 10)), Admission::Shed);
        q.pop();
        assert_eq!(q.offer(req(3, 3, 10)), Admission::Queued);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn drain_empties_the_queue() {
        let mut q = AdmissionQueue::new(AdmissionPolicy::Fifo);
        q.offer(req(0, 0, 1));
        q.offer(req(1, 1, 2));
        let drained = q.drain();
        assert_eq!(drained.len(), 2);
        assert!(q.is_empty());
    }

    #[test]
    fn edf_heap_matches_naive_scan_under_interleaving() {
        // The heap must reproduce the old O(n) min-scan's order exactly,
        // including across interleaved offers and pops.
        let mut q = AdmissionQueue::new(AdmissionPolicy::EarliestDeadlineFirst);
        let mut naive: Vec<QueuedRequest> = Vec::new();
        let mut popped = Vec::new();
        for step in 0u64..200 {
            // Pseudo-random but deterministic offer/pop pattern.
            let deadline = 1_000 + (step * 7919) % 97;
            let r = req(step, step, deadline);
            q.offer(r);
            naive.push(r);
            if step % 3 == 0 {
                let got = q.pop().unwrap();
                let best = naive
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, r)| (r.deadline_ns, r.arrival_ns, r.id))
                    .unwrap()
                    .0;
                assert_eq!(got, naive.remove(best));
                popped.push(got);
            }
        }
        while let Some(got) = q.pop() {
            let best = naive
                .iter()
                .enumerate()
                .min_by_key(|(_, r)| (r.deadline_ns, r.arrival_ns, r.id))
                .unwrap()
                .0;
            assert_eq!(got, naive.remove(best));
        }
        assert!(naive.is_empty() && q.is_empty());
    }

    #[test]
    fn edf_drain_returns_arrival_order() {
        let mut q = AdmissionQueue::new(AdmissionPolicy::EarliestDeadlineFirst);
        q.offer(req(2, 20, 100));
        q.offer(req(0, 5, 900));
        q.offer(req(1, 5, 500));
        let drained: Vec<u64> = q.drain().iter().map(|r| r.id).collect();
        assert_eq!(drained, vec![0, 1, 2]);
        assert!(q.is_empty());
    }
}
