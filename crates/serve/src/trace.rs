//! Trace workload files: capture a scenario's arrival stream to a
//! portable text file, and replay such a file as the scenario's
//! workload.
//!
//! A trace file is JSON Lines — one record per request, in arrival
//! order:
//!
//! ```text
//! {"at_s":0.131,"model":"CLIP ViT-B/16"}
//! {"at_s":2.774,"model":"CLIP ViT-B/16"}
//! ```
//!
//! `at_s` is the absolute arrival time in seconds; `model` is the zoo
//! name of the requested model and must be deployed by the replaying
//! scenario. Replay maps the records onto
//! [`ArrivalProcess::Trace`](s2m3_sim::workload::ArrivalProcess) (the
//! consecutive inter-arrival gaps) and
//! [`ModelMix::Trace`](s2m3_sim::workload::ModelMix) (the model
//! sequence), collapsing any multi-source traffic into the single
//! merged stream the original run produced. Replay is fully
//! deterministic: serving the same trace file twice yields
//! byte-identical reports. Reconstructing arrival instants from gap
//! sums can differ from the captured absolutes by float-rounding ulps,
//! so a replayed run is equivalent to — but not guaranteed bit-for-bit
//! identical with — the run it was captured from.

use crate::config::ServeScenario;
use s2m3_sim::workload::{ArrivalProcess, ModelMix};
use serde::{Deserialize, Serialize};

/// One recorded request of a trace file: when it arrived and which
/// deployed model it asked for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Absolute arrival time, seconds from run start.
    pub at_s: f64,
    /// Zoo model name (must be deployed by the replaying scenario).
    pub model: String,
}

/// Materializes the scenario's workload into trace records — the same
/// merged stream [`serve`](crate::serve) would consume, request for
/// request.
///
/// # Errors
///
/// A human-readable message when the scenario's workload spec is
/// invalid (e.g. a mix referencing an undeployed model).
pub fn capture(scenario: &ServeScenario) -> Result<Vec<TraceRecord>, String> {
    let model_names: Vec<String> = scenario.models.iter().map(|m| m.name.clone()).collect();
    let mut stream = scenario
        .workload()
        .stream(scenario.requests, &model_names)
        .map_err(|e| format!("trace capture: {e}"))?;
    let mut records = Vec::with_capacity(scenario.requests);
    while let Some(req) = stream.next_request() {
        records.push(TraceRecord {
            at_s: req.at_s,
            model: model_names[req.model as usize].clone(),
        });
    }
    Ok(records)
}

/// Rewrites the scenario's traffic to replay `records`: arrivals become
/// the recorded inter-arrival gaps, the mix becomes the recorded model
/// sequence, and any multi-source configuration is cleared (a trace is
/// the already-merged stream). `scenario.requests` is left untouched —
/// trace workloads cycle, so serving more requests than the trace holds
/// repeats it from the top.
///
/// # Errors
///
/// A human-readable message when `records` is empty, a time is
/// non-finite or decreasing, or a model is not deployed by `scenario`.
pub fn apply(scenario: &mut ServeScenario, records: &[TraceRecord]) -> Result<(), String> {
    if records.is_empty() {
        return Err("trace replay: empty trace".into());
    }
    let mut gaps = Vec::with_capacity(records.len());
    let mut prev = 0.0f64;
    for (i, r) in records.iter().enumerate() {
        if !r.at_s.is_finite() || r.at_s < 0.0 {
            return Err(format!("trace replay: record {i}: bad at_s {}", r.at_s));
        }
        if r.at_s < prev {
            return Err(format!(
                "trace replay: record {i}: at_s {} decreases below {prev}",
                r.at_s
            ));
        }
        if !scenario.models.iter().any(|m| m.name == r.model) {
            return Err(format!(
                "trace replay: record {i}: model {:?} is not deployed",
                r.model
            ));
        }
        gaps.push(r.at_s - prev);
        prev = r.at_s;
    }
    scenario.sources.clear();
    scenario.arrivals = ArrivalProcess::Trace {
        inter_arrival_s: gaps,
    };
    scenario.mix = Some(ModelMix::Trace {
        models: records.iter().map(|r| r.model.clone()).collect(),
    });
    Ok(())
}

/// Renders trace records as JSON Lines (one record per line, trailing
/// newline).
#[must_use]
pub fn render(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        // TraceRecord is a flat struct of a float and a string — its
        // serialization is infallible.
        out.push_str(&serde_json::to_string(r).expect("trace record serializes"));
        out.push('\n');
    }
    out
}

/// Parses a JSON Lines trace file; blank lines and `#` comment lines
/// are skipped.
///
/// # Errors
///
/// A human-readable message naming the first malformed line.
pub fn parse(text: &str) -> Result<Vec<TraceRecord>, String> {
    let mut records = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let record: TraceRecord =
            serde_json::from_str(line).map_err(|e| format!("trace line {}: {e}", lineno + 1))?;
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve;

    fn small_scenario() -> ServeScenario {
        let mut s = ServeScenario::churn_default();
        s.requests = 120;
        s.events.clear();
        s
    }

    #[test]
    fn capture_produces_one_record_per_request_in_order() {
        let scenario = small_scenario();
        let records = capture(&scenario).unwrap();
        assert_eq!(records.len(), scenario.requests);
        for w in records.windows(2) {
            assert!(w[0].at_s <= w[1].at_s);
        }
        for r in &records {
            assert!(scenario.models.iter().any(|m| m.name == r.model));
        }
    }

    #[test]
    fn render_parse_round_trips_bitwise() {
        let records = capture(&small_scenario()).unwrap();
        let parsed = parse(&render(&records)).unwrap();
        assert_eq!(records, parsed);
        for (a, b) in records.iter().zip(&parsed) {
            assert_eq!(a.at_s.to_bits(), b.at_s.to_bits());
        }
    }

    #[test]
    fn parse_skips_blanks_and_comments_and_names_bad_lines() {
        let text = "# a comment\n\n{\"at_s\":1.5,\"model\":\"m\"}\n";
        let records = parse(text).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].model, "m");
        let err = parse("{\"at_s\":1.5,\"model\":\"m\"}\nnot json\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn apply_rejects_bad_traces() {
        let mut scenario = small_scenario();
        assert!(apply(&mut scenario, &[]).is_err());
        let unknown = vec![TraceRecord {
            at_s: 0.0,
            model: "no-such-model".into(),
        }];
        assert!(apply(&mut scenario, &unknown)
            .unwrap_err()
            .contains("not deployed"));
        let model = scenario.models[0].name.clone();
        let decreasing = vec![
            TraceRecord {
                at_s: 2.0,
                model: model.clone(),
            },
            TraceRecord { at_s: 1.0, model },
        ];
        assert!(apply(&mut scenario, &decreasing)
            .unwrap_err()
            .contains("decreases"));
    }

    #[test]
    fn captured_trace_replays_the_run() {
        let original = small_scenario();
        let base = serve(&original).unwrap();
        let records = capture(&original).unwrap();

        let mut replayed = original.clone();
        apply(&mut replayed, &records).unwrap();
        let a = serve(&replayed).unwrap();
        let b = serve(&replayed).unwrap();
        // Replay is deterministic: two runs of the same trace are
        // byte-identical.
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        // And the replay reproduces the captured run's traffic: same
        // arrivals, same outcomes.
        assert_eq!(a.arrived, base.arrived);
        assert_eq!(a.completed, base.completed);
        assert_eq!(a.shed, base.shed);
    }
}
