//! Rolling SLO tracking: a fixed-size ring buffer of recent request
//! outcomes, summarized into latency percentiles and deadline-miss rates.

use serde::{Deserialize, Serialize};

/// One finished request as the SLO tracker sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outcome {
    /// Completion time, seconds of virtual time.
    pub completed_at_s: f64,
    /// Latency (completion − arrival), seconds.
    pub latency_s: f64,
    /// Whether the request finished past its deadline (shed requests are
    /// recorded with `missed = true` and their queueing latency).
    pub missed: bool,
}

/// A fixed-capacity ring buffer of the most recent [`Outcome`]s.
#[derive(Debug, Clone)]
pub struct SloWindow {
    /// Configured ring size (`Vec::capacity` may over-allocate, so the
    /// bound is stored explicitly to keep eviction deterministic).
    capacity: usize,
    buf: Vec<Outcome>,
    /// Next write position.
    head: usize,
    /// Total outcomes ever recorded.
    seen: u64,
}

impl SloWindow {
    /// A window retaining the last `capacity` outcomes (≥1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SloWindow {
            capacity,
            buf: Vec::with_capacity(capacity),
            head: 0,
            seen: 0,
        }
    }

    /// Records an outcome, evicting the oldest when full.
    pub fn push(&mut self, outcome: Outcome) {
        if self.buf.len() < self.capacity {
            self.buf.push(outcome);
        } else {
            self.buf[self.head] = outcome;
        }
        self.head += 1;
        if self.head == self.capacity {
            self.head = 0;
        }
        self.seen += 1;
    }

    /// Outcomes recorded over the window's lifetime.
    pub fn total_seen(&self) -> u64 {
        self.seen
    }

    /// Configured ring size.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Outcomes currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Summarizes the current window contents at virtual time `now_s`.
    pub fn snapshot(&self, now_s: f64) -> WindowSnapshot {
        let mut latencies: Vec<f64> = self.buf.iter().map(|o| o.latency_s).collect();
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = latencies.len();
        let missed = self.buf.iter().filter(|o| o.missed).count();
        WindowSnapshot {
            at_s: now_s,
            window: n,
            p50_s: percentile_sorted(&latencies, 0.50),
            p95_s: percentile_sorted(&latencies, 0.95),
            p99_s: percentile_sorted(&latencies, 0.99),
            miss_rate: if n == 0 {
                0.0
            } else {
                missed as f64 / n as f64
            },
            // The window tracks outcomes only; the serving loop stamps
            // the fleet-wide busy fraction before a snapshot is recorded.
            utilization: 0.0,
        }
    }
}

/// Ceil-rank percentile over an ascending-sorted slice (0 when empty):
/// the single percentile definition shared by the rolling windows and
/// the end-of-run [`LatencySummary`](crate::report::LatencySummary).
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    sorted[((p * n as f64).ceil() as usize).clamp(1, n) - 1]
}

/// A point-in-time summary of the rolling window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowSnapshot {
    /// Virtual time of the snapshot, seconds.
    pub at_s: f64,
    /// Outcomes in the window when taken.
    pub window: usize,
    /// Median latency, seconds.
    pub p50_s: f64,
    /// 95th-percentile latency, seconds.
    pub p95_s: f64,
    /// 99th-percentile latency, seconds.
    pub p99_s: f64,
    /// Fraction of windowed requests that missed their deadline.
    pub miss_rate: f64,
    /// Fleet-wide utilization when the snapshot was taken: busy
    /// lane-seconds over offered lane-seconds across active devices.
    pub utilization: f64,
}

/// Per-device busy-time accounting for utilization reporting.
#[derive(Debug, Clone, Default)]
pub struct DeviceUsage {
    /// Seconds of lane-busy time accumulated.
    pub busy_s: f64,
    /// Virtual time at which the device became active (joined), seconds.
    pub active_since_s: f64,
    /// Seconds of active membership accumulated over completed stints.
    pub active_s: f64,
    /// Whether the device is currently in the active fleet.
    pub active: bool,
    /// Lanes the device offers while active.
    pub lanes: usize,
}

impl DeviceUsage {
    /// Closes the books at `now_s` and returns total active seconds.
    pub fn active_total_s(&self, now_s: f64) -> f64 {
        self.active_s
            + if self.active {
                (now_s - self.active_since_s).max(0.0)
            } else {
                0.0
            }
    }

    /// Utilization in `[0, 1]`: busy lane-seconds over offered
    /// lane-seconds at `now_s`.
    pub fn utilization(&self, now_s: f64) -> f64 {
        let offered = self.active_total_s(now_s) * self.lanes.max(1) as f64;
        if offered <= 0.0 {
            0.0
        } else {
            (self.busy_s / offered).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(latency: f64, missed: bool) -> Outcome {
        Outcome {
            completed_at_s: 0.0,
            latency_s: latency,
            missed,
        }
    }

    #[test]
    fn window_evicts_oldest() {
        let mut w = SloWindow::new(3);
        for (i, l) in [10.0, 20.0, 30.0, 40.0].iter().enumerate() {
            w.push(outcome(*l, i % 2 == 0));
        }
        assert_eq!(w.total_seen(), 4);
        let s = w.snapshot(5.0);
        assert_eq!(s.window, 3);
        // 10.0 evicted: remaining {20, 30, 40}.
        assert_eq!(s.p50_s, 30.0);
        assert_eq!(s.p99_s, 40.0);
        assert!((s.miss_rate - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_window_snapshot_is_zero() {
        let s = SloWindow::new(8).snapshot(1.0);
        assert_eq!(s.window, 0);
        assert_eq!(s.p95_s, 0.0);
        assert_eq!(s.miss_rate, 0.0);
    }

    #[test]
    fn percentiles_use_ceiling_rank() {
        let mut w = SloWindow::new(100);
        for i in 1..=100 {
            w.push(outcome(i as f64, false));
        }
        let s = w.snapshot(0.0);
        assert_eq!(s.p50_s, 50.0);
        assert_eq!(s.p95_s, 95.0);
        assert_eq!(s.p99_s, 99.0);
    }

    #[test]
    fn utilization_accounts_membership_stints() {
        let mut u = DeviceUsage {
            lanes: 2,
            active: true,
            active_since_s: 10.0,
            ..DeviceUsage::default()
        };
        u.busy_s = 30.0;
        // Active from t=10 to t=40: offered 2 lanes × 30 s = 60 s.
        assert!((u.utilization(40.0) - 0.5).abs() < 1e-12);
        // Leaving closes the stint.
        u.active_s += 30.0;
        u.active = false;
        assert!((u.utilization(100.0) - 0.5).abs() < 1e-12);
    }
}
