//! The per-window budget engine: serve under a fleet-wide cost cap.
//!
//! A [`BudgetPolicy`] caps what the fleet may *spend* per accounting
//! window of `window_s` virtual seconds. Spend is priced by a
//! [`CostModel`](s2m3_core::cost::CostModel) built from the policy's
//! [`BudgetMetric`]: marginal energy (joules, from the
//! `s2m3_sim::energy` power profiles), raw busy device-seconds, or a
//! custom flat rate. The serve engine reserves a request's full route
//! cost — head plus encoder compute seconds, each times its device's
//! rate — at dispatch time, so a window's recorded spend can never
//! exceed the cap.
//!
//! When a dispatch would breach the cap, [`BudgetEnforcement`] decides
//! what happens. Admission queues pop EDF-ordered (priority first, then
//! deadline), so the remaining headroom always goes to the
//! highest-priority work and the *lowest*-`DeadlineClass`-priority
//! requests are the first deferred or shed:
//!
//! - `Shed` — reject the request outright (an SLO miss, like any shed);
//! - `Defer` — park it in an EDF-ordered heap and re-admit when the
//!   next window opens fresh headroom;
//! - `DeferThenShed` — defer while the request's deadline is still
//!   ahead, shed once it has passed.
//!
//! A request whose solo cost exceeds the cap can never fit any window
//! and is shed under every mode (deferring it would stall it forever).
//!
//! The engine also keeps an *uncapped shadow counter* — what the run
//! would have spent had every request dispatched on first attempt — and
//! the *latency price*: the total extra seconds deferred requests spent
//! parked. Both land in the final [`BudgetReport`], next to per-window
//! rows and per-class defer/shed counts, so a sweep can chart the
//! cost × SLO trade-off frontier.
//!
//! All budget decisions run on the session thread (dispatch is always
//! head-side), so budget-capped reports stay byte-identical at any
//! thread count — the same contract every other serve feature holds.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

/// What a unit of spend measures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BudgetMetric {
    /// Marginal energy, joules: each device's busy seconds cost
    /// `active_w - idle_w` from the `s2m3_sim::energy` default
    /// profiles (devices without a profile cost nothing).
    Energy,
    /// Raw busy device-seconds: every device costs `1.0` per second.
    DeviceSeconds,
    /// A flat custom rate (e.g. $/device-second) applied to every
    /// device.
    Custom {
        /// Cost units per busy device-second.
        per_device_rate: f64,
    },
}

/// What to do with a request the current window cannot afford.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BudgetEnforcement {
    /// Park it EDF-ordered; re-admit when the next window opens.
    Defer,
    /// Reject it outright (counts as a shed, hence an SLO miss).
    Shed,
    /// Defer while its deadline is ahead, shed once it has passed.
    DeferThenShed,
}

/// A per-window fleet-wide cost cap, enforced online by the serve
/// engine's admission/dispatch path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetPolicy {
    /// Maximum spend per accounting window, in the metric's units.
    pub cap_per_window: f64,
    /// How spend is priced.
    pub metric: BudgetMetric,
    /// Accounting-window width, virtual seconds.
    pub window_s: f64,
    /// What happens to work the window cannot afford.
    pub enforcement: BudgetEnforcement,
}

impl BudgetPolicy {
    /// A device-seconds cap with the default 60 s window and
    /// `DeferThenShed` enforcement — the CLI's `--budget-cap` shape.
    pub fn device_seconds(cap_per_window: f64) -> Self {
        BudgetPolicy {
            cap_per_window,
            metric: BudgetMetric::DeviceSeconds,
            window_s: 60.0,
            enforcement: BudgetEnforcement::DeferThenShed,
        }
    }

    /// Validates the policy's numbers.
    ///
    /// # Errors
    ///
    /// A human-readable message on a non-finite/negative cap, a
    /// non-positive window, or a non-finite custom rate.
    pub fn validate(&self) -> Result<(), String> {
        if !self.cap_per_window.is_finite() || self.cap_per_window < 0.0 {
            return Err("budget cap_per_window must be finite and >= 0".into());
        }
        if !self.window_s.is_finite() || self.window_s <= 0.0 {
            return Err("budget window_s must be finite and > 0".into());
        }
        if let BudgetMetric::Custom { per_device_rate } = self.metric {
            if !per_device_rate.is_finite() || per_device_rate < 0.0 {
                return Err("budget per_device_rate must be finite and >= 0".into());
            }
        }
        Ok(())
    }
}

/// One closed accounting window's spend record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetWindow {
    /// Window index (`floor(virtual time / window_s)`).
    pub index: u64,
    /// Spend actually reserved by dispatches in this window.
    pub spend: f64,
    /// What the uncapped run would have spent (first-attempt pricing).
    pub shadow_spend: f64,
    /// Requests dispatched within budget.
    pub dispatched: u64,
    /// Requests first deferred in this window.
    pub deferred: u64,
    /// Requests budget-shed in this window.
    pub shed: u64,
}

/// Per-class budget enforcement counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetClassReport {
    /// Deadline-class name.
    pub class: String,
    /// Scheduling priority of the class (shed order is lowest-first).
    pub priority: u32,
    /// Requests of this class the budget deferred at least once.
    pub deferred: u64,
    /// Requests of this class the budget shed.
    pub shed: u64,
}

/// The budget section of a [`ServeReport`](crate::ServeReport):
/// present only when the scenario ran with a [`BudgetPolicy`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetReport {
    /// The enforced cap, per window.
    pub cap_per_window: f64,
    /// Accounting-window width, seconds.
    pub window_s: f64,
    /// How spend was priced.
    pub metric: BudgetMetric,
    /// The enforcement mode.
    pub enforcement: BudgetEnforcement,
    /// Windows that saw any budget activity.
    pub windows_total: u64,
    /// Active windows whose recorded spend exceeded the cap (0 by
    /// construction: the gate reserves before dispatching).
    pub windows_over_cap: u64,
    /// Fraction of active windows within the cap (1.0 when none).
    pub adherence: f64,
    /// Total spend reserved across the run.
    pub spend_total: f64,
    /// What an uncapped run would have spent.
    pub shadow_spend_total: f64,
    /// Requests dispatched within budget.
    pub dispatched: u64,
    /// Requests deferred at least once.
    pub deferred: u64,
    /// Requests shed by budget enforcement.
    pub shed: u64,
    /// Total extra seconds deferred requests spent parked before their
    /// eventual dispatch — the latency price of the cap.
    pub latency_price_s: f64,
    /// Per-class defer/shed counts (classed scenarios only).
    pub classes: Vec<BudgetClassReport>,
    /// Per-window rows, oldest first (capped at
    /// [`MAX_WINDOW_ROWS`](BudgetReport::MAX_WINDOW_ROWS); the scalar
    /// totals above always cover the whole run).
    pub windows: Vec<BudgetWindow>,
}

impl BudgetReport {
    /// Retained per-window rows: long streaming runs keep the newest
    /// activity bounded while the scalar totals stay exact.
    pub const MAX_WINDOW_ROWS: usize = 512;
}

/// A parked request awaiting headroom, EDF-ordered: priority first
/// (`urgency` is `u32::MAX - priority`, so lower priority pops later),
/// then deadline, arrival, and the monotone arrival sequence number —
/// the same key shape the EDF admission queue uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct Deferred {
    pub urgency: u32,
    pub deadline_ns: u64,
    pub arrival_ns: u64,
    pub seq: u64,
    /// Packed [`ReqHandle`](crate::slab::ReqHandle) of the parked slot.
    pub handle: u64,
}

/// Running accumulator for the window currently open.
#[derive(Debug, Clone, Copy, Default)]
struct WindowAccum {
    spend: f64,
    shadow: f64,
    dispatched: u64,
    deferred: u64,
    shed: u64,
}

impl WindowAccum {
    fn active(&self) -> bool {
        self.dispatched + self.deferred + self.shed > 0 || self.shadow > 0.0
    }
}

/// The engine-side budget state: window accounting, the deferred heap,
/// and the running totals the final [`BudgetReport`] folds from. Lives
/// on the session thread only.
#[derive(Debug)]
pub(crate) struct BudgetState {
    pub policy: BudgetPolicy,
    window_ns: u64,
    cur_index: u64,
    cur: WindowAccum,
    windows: Vec<BudgetWindow>,
    windows_total: u64,
    windows_over_cap: u64,
    spend_total: f64,
    shadow_total: f64,
    dispatched: u64,
    deferred_total: u64,
    shed_total: u64,
    latency_price_ns: u64,
    /// `[deferred, shed]` per deadline class.
    by_class: Vec<[u64; 2]>,
    deferred: BinaryHeap<Reverse<Deferred>>,
    /// Virtual time of the pending `BudgetWake` event, if one is
    /// scheduled (dedups wake pushes).
    pub wake_at: Option<u64>,
}

impl BudgetState {
    /// Builds the engine state for a validated policy.
    pub fn new(policy: BudgetPolicy, n_classes: usize) -> Self {
        let window_ns = ((policy.window_s * 1.0e9).round() as u64).max(1);
        BudgetState {
            policy,
            window_ns,
            cur_index: 0,
            cur: WindowAccum::default(),
            windows: Vec::new(),
            windows_total: 0,
            windows_over_cap: 0,
            spend_total: 0.0,
            shadow_total: 0.0,
            dispatched: 0,
            deferred_total: 0,
            shed_total: 0,
            latency_price_ns: 0,
            by_class: vec![[0, 0]; n_classes],
            deferred: BinaryHeap::new(),
            wake_at: None,
        }
    }

    /// Advances window accounting to `now`, closing the open window
    /// (and recording it, if it saw activity) when `now` has crossed
    /// its end. Idle windows in between are skipped entirely.
    pub fn roll(&mut self, now_ns: u64) {
        let idx = now_ns / self.window_ns;
        if idx <= self.cur_index {
            return;
        }
        self.close_current();
        self.cur_index = idx;
    }

    fn close_current(&mut self) {
        if !self.cur.active() {
            return;
        }
        self.windows_total += 1;
        if self.cur.spend > self.policy.cap_per_window {
            self.windows_over_cap += 1;
        }
        if self.windows.len() < BudgetReport::MAX_WINDOW_ROWS {
            self.windows.push(BudgetWindow {
                index: self.cur_index,
                spend: self.cur.spend,
                shadow_spend: self.cur.shadow,
                dispatched: self.cur.dispatched,
                deferred: self.cur.deferred,
                shed: self.cur.shed,
            });
        }
        self.cur = WindowAccum::default();
    }

    /// Whether `cost` still fits under the open window's cap.
    pub fn fits(&self, cost: f64) -> bool {
        self.cur.spend + cost <= self.policy.cap_per_window
    }

    /// Reserves `cost` in the open window (the request dispatches).
    pub fn charge(&mut self, cost: f64) {
        self.cur.spend += cost;
        self.cur.dispatched += 1;
        self.spend_total += cost;
        self.dispatched += 1;
    }

    /// Accrues `cost` on the uncapped shadow counter (once per
    /// request, at its first budget evaluation).
    pub fn charge_shadow(&mut self, cost: f64) {
        self.cur.shadow += cost;
        self.shadow_total += cost;
    }

    /// Records a request's first deferral.
    pub fn note_deferred(&mut self, class: Option<u32>) {
        self.cur.deferred += 1;
        self.deferred_total += 1;
        if let Some(ci) = class {
            self.by_class[ci as usize][0] += 1;
        }
    }

    /// Records a budget shed.
    pub fn note_shed(&mut self, class: Option<u32>) {
        self.cur.shed += 1;
        self.shed_total += 1;
        if let Some(ci) = class {
            self.by_class[ci as usize][1] += 1;
        }
    }

    /// Accrues the waiting time a deferred request paid before its
    /// eventual dispatch.
    pub fn pay_latency_price(&mut self, waited_ns: u64) {
        self.latency_price_ns += waited_ns;
    }

    /// Parks a request in the deferred heap.
    pub fn push_deferred(&mut self, d: Deferred) {
        self.deferred.push(Reverse(d));
    }

    /// Whether any request is parked.
    pub fn has_deferred(&self) -> bool {
        !self.deferred.is_empty()
    }

    /// Drains every parked request into `into`, EDF order (highest
    /// priority, then earliest deadline, first).
    pub fn drain_deferred_into(&mut self, into: &mut Vec<Deferred>) {
        into.clear();
        while let Some(Reverse(d)) = self.deferred.pop() {
            into.push(d);
        }
    }

    /// Start of the window after the one currently open, ns.
    pub fn next_window_start_ns(&self) -> u64 {
        (self.cur_index + 1).saturating_mul(self.window_ns)
    }

    /// Closes the open window and folds everything into the report.
    pub fn finish(mut self, class_names: &[String], class_priorities: &[u32]) -> BudgetReport {
        self.close_current();
        let adherence = if self.windows_total == 0 {
            1.0
        } else {
            (self.windows_total - self.windows_over_cap) as f64 / self.windows_total as f64
        };
        let classes = class_names
            .iter()
            .zip(class_priorities)
            .zip(&self.by_class)
            .map(|((name, &priority), &[deferred, shed])| BudgetClassReport {
                class: name.clone(),
                priority,
                deferred,
                shed,
            })
            .collect();
        BudgetReport {
            cap_per_window: self.policy.cap_per_window,
            window_s: self.policy.window_s,
            metric: self.policy.metric,
            enforcement: self.policy.enforcement,
            windows_total: self.windows_total,
            windows_over_cap: self.windows_over_cap,
            adherence,
            spend_total: self.spend_total,
            shadow_spend_total: self.shadow_total,
            dispatched: self.dispatched,
            deferred: self.deferred_total,
            shed: self.shed_total,
            latency_price_s: self.latency_price_ns as f64 / 1.0e9,
            classes,
            windows: self.windows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(cap: f64, enforcement: BudgetEnforcement) -> BudgetPolicy {
        BudgetPolicy {
            cap_per_window: cap,
            metric: BudgetMetric::DeviceSeconds,
            window_s: 10.0,
            enforcement,
        }
    }

    #[test]
    fn validation_rejects_bad_numbers() {
        assert!(policy(1.0, BudgetEnforcement::Shed).validate().is_ok());
        assert!(policy(-1.0, BudgetEnforcement::Shed).validate().is_err());
        assert!(policy(f64::NAN, BudgetEnforcement::Shed)
            .validate()
            .is_err());
        let mut p = policy(1.0, BudgetEnforcement::Defer);
        p.window_s = 0.0;
        assert!(p.validate().is_err());
        let mut p = policy(1.0, BudgetEnforcement::Defer);
        p.metric = BudgetMetric::Custom {
            per_device_rate: f64::INFINITY,
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn windows_roll_and_skip_idle_spans() {
        let mut b = BudgetState::new(policy(5.0, BudgetEnforcement::Shed), 0);
        b.charge(2.0);
        // Jump 5 windows ahead: only the active one is recorded.
        b.roll(52_000_000_000);
        b.charge(1.0);
        let r = b.finish(&[], &[]);
        assert_eq!(r.windows_total, 2);
        assert_eq!(r.windows.len(), 2);
        assert_eq!(r.windows[0].index, 0);
        assert_eq!(r.windows[1].index, 5);
        assert_eq!(r.spend_total, 3.0);
        assert_eq!(r.windows_over_cap, 0);
        assert_eq!(r.adherence, 1.0);
    }

    #[test]
    fn fits_is_exact_at_the_cap() {
        let mut b = BudgetState::new(policy(5.0, BudgetEnforcement::Shed), 0);
        assert!(b.fits(5.0));
        b.charge(5.0);
        assert!(!b.fits(0.1));
        assert!(b.fits(0.0));
        b.roll(10_000_000_000);
        assert!(b.fits(5.0), "a fresh window restores headroom");
    }

    #[test]
    fn deferred_heap_pops_priority_then_deadline() {
        let mut b = BudgetState::new(policy(0.0, BudgetEnforcement::Defer), 0);
        let d = |urgency, deadline_ns, seq| Deferred {
            urgency,
            deadline_ns,
            arrival_ns: 0,
            seq,
            handle: seq,
        };
        b.push_deferred(d(u32::MAX, 50, 0)); // priority 0, late deadline
        b.push_deferred(d(u32::MAX - 7, 90, 1)); // priority 7
        b.push_deferred(d(u32::MAX, 10, 2)); // priority 0, early deadline
        let mut out = Vec::new();
        b.drain_deferred_into(&mut out);
        let seqs: Vec<u64> = out.iter().map(|d| d.seq).collect();
        assert_eq!(seqs, vec![1, 2, 0]);
    }

    #[test]
    fn report_folds_classes_and_latency_price() {
        let names = vec!["interactive".to_string(), "batch".to_string()];
        let prios = vec![5, 0];
        let mut b = BudgetState::new(policy(1.0, BudgetEnforcement::DeferThenShed), 2);
        b.charge_shadow(3.0);
        b.note_deferred(Some(1));
        b.note_shed(Some(1));
        b.note_shed(None);
        b.pay_latency_price(2_500_000_000);
        let r = b.finish(&names, &prios);
        assert_eq!(r.deferred, 1);
        assert_eq!(r.shed, 2);
        assert_eq!(r.classes.len(), 2);
        assert_eq!(r.classes[1].class, "batch");
        assert_eq!(r.classes[1].deferred, 1);
        assert_eq!(r.classes[1].shed, 1);
        assert_eq!(r.classes[0].deferred, 0);
        assert_eq!(r.latency_price_s, 2.5);
        assert_eq!(r.shadow_spend_total, 3.0);
    }

    #[test]
    fn budget_policy_json_roundtrip() {
        for p in [
            policy(2.5, BudgetEnforcement::Shed),
            BudgetPolicy {
                cap_per_window: 100.0,
                metric: BudgetMetric::Energy,
                window_s: 30.0,
                enforcement: BudgetEnforcement::Defer,
            },
            BudgetPolicy {
                cap_per_window: 1.0,
                metric: BudgetMetric::Custom {
                    per_device_rate: 0.004,
                },
                window_s: 1.0,
                enforcement: BudgetEnforcement::DeferThenShed,
            },
        ] {
            let json = serde_json::to_string(&p).unwrap();
            let back: BudgetPolicy = serde_json::from_str(&json).unwrap();
            assert_eq!(p, back);
        }
    }
}
