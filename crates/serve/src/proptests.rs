//! Property-based invariants for the serving control plane.
//!
//! The two guarantees the ISSUE demands, stated as properties over
//! randomized scenarios:
//!
//! 1. **Determinism** — the same scenario (including its seed) produces
//!    an identical [`ServeReport`](crate::report::ServeReport);
//! 2. **Conservation** — no request is lost or duplicated across
//!    admission, shedding, device churn, and replanning: every arrival is
//!    exactly one completion or one shed.
//!
//! Plus the kernel-resumability guarantee the shared-event-loop refactor
//! introduced: pausing a [`ServeSession`](crate::engine::ServeSession)
//! at arbitrary virtual times and resuming is invisible — the final
//! report is byte-identical to an uninterrupted run.

use proptest::prelude::*;

use s2m3_sim::workload::ArrivalProcess;

use s2m3_core::sketch::LatencySketch;

use crate::budget::{BudgetEnforcement, BudgetMetric, BudgetPolicy};
use crate::config::{AdmissionPolicy, FleetEvent, FleetEventKind, ReplanPolicy, ServeScenario};
use crate::engine::{serve, ServeSession};
use crate::report::LatencySummary;

fn arb_policy() -> impl Strategy<Value = AdmissionPolicy> {
    prop_oneof![
        Just(AdmissionPolicy::Fifo),
        Just(AdmissionPolicy::EarliestDeadlineFirst),
        (2usize..32).prop_map(|max_queue| AdmissionPolicy::ShedOnOverload { max_queue }),
    ]
}

fn arb_arrivals() -> impl Strategy<Value = ArrivalProcess> {
    prop_oneof![
        (0.1f64..3.0).prop_map(|rate_per_s| ArrivalProcess::Poisson { rate_per_s }),
        (0.5f64..5.0).prop_map(|interval_s| ArrivalProcess::Uniform { interval_s }),
        (0.05f64..0.5, 0.5f64..3.0).prop_map(|(calm, storm)| ArrivalProcess::Mmpp {
            rates_per_s: vec![calm, storm],
            mean_dwell_s: 60.0,
        }),
    ]
}

/// Churn schedules that keep the scenario valid: the desktop may leave
/// once, the server may join once, the laptop may throttle.
fn arb_events() -> impl Strategy<Value = Vec<FleetEvent>> {
    (proptest::collection::vec(10.0f64..400.0, 0..3), 0usize..4)
        .prop_map(|(times, shape)| {
            let kinds = [
                FleetEventKind::DeviceLeave {
                    device: "desktop".to_string(),
                },
                FleetEventKind::DeviceJoin {
                    device: "server".to_string(),
                },
                FleetEventKind::DeviceSlowdown {
                    device: "laptop".to_string(),
                    factor: 0.5,
                },
            ];
            let mut sorted = times;
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            // `shape` rotates which event kinds appear; kinds are applied
            // in a fixed order so leave/join stay consistent.
            sorted
                .into_iter()
                .zip(kinds.iter().cycle().skip(shape))
                .map(|(at_s, kind)| FleetEvent {
                    at_s,
                    kind: kind.clone(),
                })
                .collect()
        })
        .prop_map(|events: Vec<FleetEvent>| {
            // Keep at most one of each kind, in time order, so a device
            // never leaves twice or joins while present.
            let mut seen_leave = false;
            let mut seen_join = false;
            let mut seen_slow = false;
            events
                .into_iter()
                .filter(|e| match e.kind {
                    FleetEventKind::DeviceLeave { .. } => !std::mem::replace(&mut seen_leave, true),
                    FleetEventKind::DeviceJoin { .. } => !std::mem::replace(&mut seen_join, true),
                    FleetEventKind::DeviceSlowdown { .. } => {
                        !std::mem::replace(&mut seen_slow, true)
                    }
                })
                .collect()
        })
}

fn arb_enforcement() -> impl Strategy<Value = BudgetEnforcement> {
    prop_oneof![
        Just(BudgetEnforcement::Defer),
        Just(BudgetEnforcement::Shed),
        Just(BudgetEnforcement::DeferThenShed),
    ]
}

fn arb_budget() -> impl Strategy<Value = BudgetPolicy> {
    (0.2f64..8.0, 5.0f64..120.0, arb_enforcement()).prop_map(|(cap, window_s, enforcement)| {
        BudgetPolicy {
            cap_per_window: cap,
            metric: BudgetMetric::DeviceSeconds,
            window_s,
            enforcement,
        }
    })
}

fn scenario(
    policy: AdmissionPolicy,
    arrivals: ArrivalProcess,
    events: Vec<FleetEvent>,
    n: usize,
    seed: String,
) -> ServeScenario {
    ServeScenario {
        requests: n,
        admission: policy,
        arrivals,
        events,
        seed,
        deadline_s: 12.0,
        replan: ReplanPolicy {
            horizon_s: 300.0,
            charge_switching_downtime: true,
            ..ReplanPolicy::default()
        },
        ..ServeScenario::churn_default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same scenario ⇒ byte-identical report; different seed ⇒ different
    /// stream (and report).
    #[test]
    fn same_seed_same_report(
        policy in arb_policy(),
        arrivals in arb_arrivals(),
        events in arb_events(),
        n in 20usize..120,
        seed in "[a-z]{1,8}",
    ) {
        let s = scenario(policy, arrivals, events, n, format!("prop/{seed}"));
        let a = serve(&s).unwrap();
        let b = serve(&s).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(
            a.to_json().unwrap(),
            b.to_json().unwrap(),
            "JSON export must be stable too"
        );
    }

    /// No request is ever lost or double-counted: arrivals split exactly
    /// into completions and sheds, under every policy and churn schedule.
    #[test]
    fn requests_conserved_across_churn(
        policy in arb_policy(),
        arrivals in arb_arrivals(),
        events in arb_events(),
        n in 20usize..150,
    ) {
        let s = scenario(policy, arrivals, events, n, "prop/conserve".to_string());
        let report = serve(&s).unwrap();
        prop_assert_eq!(report.arrived as usize, n, "every request must arrive");
        prop_assert_eq!(
            report.completed + report.shed,
            report.arrived,
            "completed {} + shed {} != arrived {}",
            report.completed,
            report.shed,
            report.arrived
        );
        // Completed-side accounting is consistent.
        prop_assert_eq!(report.latency.completed, report.completed);
        prop_assert!(report.late <= report.completed);
        let expected_miss =
            (report.late + report.shed) as f64 / report.arrived.max(1) as f64;
        prop_assert!((report.miss_rate - expected_miss).abs() < 1e-12);
    }

    /// Pause-at-arbitrary-time + resume is invisible: running the
    /// session in arbitrary virtual-time slices then draining it yields
    /// a report byte-identical to the uninterrupted run, whatever the
    /// policy, traffic, churn schedule, or pause points.
    #[test]
    fn pause_resume_is_byte_invisible(
        policy in arb_policy(),
        arrivals in arb_arrivals(),
        events in arb_events(),
        n in 20usize..100,
        mut pauses in proptest::collection::vec(0.0f64..2_000.0, 1..6),
    ) {
        let s = scenario(policy, arrivals, events, n, "prop/resume".to_string());
        let uninterrupted = serve(&s).unwrap();
        let mut session = ServeSession::new(&s).unwrap();
        pauses.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for t in pauses {
            session.run_until(t).unwrap();
            // ns() rounds, so an event tick may land up to half a
            // nanosecond past the raw pause point.
            prop_assert!(session.now_s() <= t + 1e-9 || session.is_idle());
        }
        session.run_to_idle().unwrap();
        prop_assert!(session.is_idle());
        let resumed = session.finish();
        prop_assert_eq!(&resumed, &uninterrupted);
        prop_assert_eq!(
            resumed.to_json().unwrap(),
            uninterrupted.to_json().unwrap(),
            "JSON export must be identical too"
        );
    }

    /// Wheel-specific resumability: pause points landing *inside* a
    /// level-0 bucket (2^21 ns ≈ 2.1 ms spans) while the near heap is
    /// part-drained must be invisible. The timing wheel is plain state
    /// with no drain-ahead, so slicing the run into sub-bucket steps at
    /// odd nanosecond offsets yields a byte-identical report.
    #[test]
    fn pause_mid_bucket_is_byte_invisible(
        policy in arb_policy(),
        n in 30usize..90,
        step_us in 997u64..4999,
    ) {
        let s = scenario(
            policy,
            ArrivalProcess::Poisson { rate_per_s: 2.0 },
            Vec::new(),
            n,
            "prop/midbucket".to_string(),
        );
        let uninterrupted = serve(&s).unwrap();
        let mut session = ServeSession::new(&s).unwrap();
        let mut t = 0.0;
        while !session.is_idle() {
            // Odd microsecond-scale steps: virtually every pause falls
            // mid-bucket, often between two same-bucket events.
            t += step_us as f64 * 1e-6;
            session.run_until(t).unwrap();
        }
        let resumed = session.finish();
        prop_assert_eq!(&resumed, &uninterrupted);
    }

    /// Sharded serving is invisible in the output: for arbitrary
    /// policies, traffic, churn schedules, and request counts, the
    /// report JSON at 2 and 4 threads is byte-identical to the
    /// sequential run. This is the parallel backend's contract — any
    /// protocol change that reorders even one event fails here.
    #[test]
    fn parallel_serve_is_byte_identical_at_any_thread_count(
        policy in arb_policy(),
        arrivals in arb_arrivals(),
        events in arb_events(),
        n in 20usize..120,
        seed in "[a-z]{1,8}",
    ) {
        let s = scenario(policy, arrivals, events, n, format!("prop/par/{seed}"));
        let sequential = serve(&s).unwrap().to_json().unwrap();
        for threads in [1, 2, 4] {
            let mut sharded = s.clone();
            sharded.threads = threads;
            let report = serve(&sharded).unwrap().to_json().unwrap();
            prop_assert_eq!(
                &report,
                &sequential,
                "threads={} diverged from sequential",
                threads
            );
        }
    }

    /// Pause/resume stays invisible *under sharding*: slicing a
    /// parallel session at arbitrary virtual times (which replays the
    /// caps through the conservative-sync protocol) still reproduces
    /// the uninterrupted sequential report byte for byte.
    #[test]
    fn pause_resume_under_sharding_is_byte_invisible(
        policy in arb_policy(),
        events in arb_events(),
        n in 20usize..80,
        threads in 2usize..5,
        mut pauses in proptest::collection::vec(0.0f64..2_000.0, 1..5),
    ) {
        let mut s = scenario(
            policy,
            ArrivalProcess::Poisson { rate_per_s: 1.5 },
            events,
            n,
            "prop/par-resume".to_string(),
        );
        let uninterrupted = serve(&s).unwrap();
        s.threads = threads;
        let mut session = ServeSession::new(&s).unwrap();
        pauses.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for t in pauses {
            session.run_until(t).unwrap();
            prop_assert!(session.now_s() <= t + 1e-9 || session.is_idle());
        }
        session.run_to_idle().unwrap();
        prop_assert!(session.is_idle());
        let resumed = session.finish();
        prop_assert_eq!(&resumed, &uninterrupted);
        prop_assert_eq!(
            resumed.to_json().unwrap(),
            uninterrupted.to_json().unwrap(),
            "JSON export must be identical too"
        );
    }

    /// Windows are time-ordered with coherent percentiles, and device
    /// utilization stays in [0, 1] whatever the churn.
    #[test]
    fn report_internal_consistency(
        policy in arb_policy(),
        events in arb_events(),
        n in 20usize..100,
    ) {
        let s = scenario(
            policy,
            ArrivalProcess::Poisson { rate_per_s: 1.0 },
            events,
            n,
            "prop/consistency".to_string(),
        );
        let report = serve(&s).unwrap();
        prop_assert!(report.windows.windows(2).all(|w| w[0].at_s <= w[1].at_s));
        for w in &report.windows {
            prop_assert!(w.p50_s <= w.p95_s + 1e-12);
            prop_assert!(w.p95_s <= w.p99_s + 1e-12);
            prop_assert!((0.0..=1.0).contains(&w.miss_rate));
        }
        for d in &report.devices {
            prop_assert!((0.0..=1.0).contains(&d.utilization), "{:?}", d);
        }
    }

    /// Streaming mode agrees with the exact run on everything except
    /// latency percentiles, which stay within the sketch's error bound —
    /// over arbitrary policies, traffic, and churn schedules.
    #[test]
    fn streaming_mode_tracks_exact_mode(
        policy in arb_policy(),
        arrivals in arb_arrivals(),
        events in arb_events(),
        n in 20usize..120,
    ) {
        let exact = scenario(policy, arrivals, events, n, "prop/streaming".to_string());
        let mut streaming = exact.clone();
        streaming.streaming = Some(crate::config::StreamingConfig::default());
        let e = serve(&exact).unwrap();
        let s = serve(&streaming).unwrap();
        let mut s_cmp = s.clone();
        s_cmp.latency = e.latency;
        for (cs, ce) in s_cmp.classes.iter_mut().zip(e.classes.iter()) {
            cs.latency = ce.latency;
        }
        prop_assert_eq!(&s_cmp, &e, "streaming may differ only in latency summaries");
        prop_assert_eq!(s.latency.completed, e.latency.completed);
        for (got, want) in [
            (s.latency.mean_s, e.latency.mean_s),
            (s.latency.max_s, e.latency.max_s),
        ] {
            prop_assert!((got - want).abs() <= 1e-9 * want.abs().max(1.0));
        }
        for (got, want) in [
            (s.latency.p50_s, e.latency.p50_s),
            (s.latency.p95_s, e.latency.p95_s),
            (s.latency.p99_s, e.latency.p99_s),
        ] {
            let err = if want == 0.0 { got.abs() } else { (got - want).abs() / want };
            prop_assert!(err < 0.01, "sketch {} vs exact {}: {}% error", got, want, 100.0 * err);
        }
    }

    /// The budget gate reserves a request's full route cost *before*
    /// dispatching it, so no window's recorded spend can exceed the cap
    /// — under every enforcement mode, traffic shape, and churn
    /// schedule (the ISSUE states this for `Shed`; it holds by
    /// construction for all three).
    #[test]
    fn budget_spend_never_exceeds_the_cap_per_window(
        policy in arb_policy(),
        arrivals in arb_arrivals(),
        events in arb_events(),
        budget in arb_budget(),
        n in 20usize..120,
    ) {
        let mut s = scenario(policy, arrivals, events, n, "prop/budget-cap".to_string());
        let cap = budget.cap_per_window;
        s.budget = Some(budget);
        let report = serve(&s).unwrap();
        let b = report.budget.as_ref().expect("budget report present");
        prop_assert_eq!(b.windows_over_cap, 0);
        prop_assert!((b.adherence - 1.0).abs() < 1e-12);
        let mut window_sum = 0.0;
        for w in &b.windows {
            prop_assert!(
                w.spend <= cap + 1e-9,
                "window {} spent {} over cap {}",
                w.index, w.spend, cap
            );
            window_sum += w.spend;
        }
        // Short runs never truncate window rows, so the rows must
        // account for the exact scalar total.
        prop_assert!((window_sum - b.spend_total).abs() < 1e-6);
        // The shadow counter prices each request once, at its *first*
        // evaluation; retries re-reserve, and churn can reroute a
        // deferred request onto a costlier path before it dispatches —
        // so the bound only binds on undisturbed runs.
        if report.retried == 0 && report.events.is_empty() {
            prop_assert!(b.shadow_spend_total >= b.spend_total - 1e-9);
        }
    }

    /// Deferral never loses a request: whatever the budget parks and
    /// re-admits, every arrival still resolves as exactly one completion
    /// or one shed, and the budget's own counters stay consistent.
    #[test]
    fn budget_deferred_requests_are_conserved(
        policy in arb_policy(),
        arrivals in arb_arrivals(),
        events in arb_events(),
        budget in arb_budget(),
        n in 20usize..120,
    ) {
        let mut s = scenario(policy, arrivals, events, n, "prop/budget-conserve".to_string());
        let shed_mode = budget.enforcement == BudgetEnforcement::Shed;
        s.budget = Some(budget);
        let report = serve(&s).unwrap();
        prop_assert_eq!(report.arrived as usize, n);
        prop_assert_eq!(
            report.completed + report.shed,
            report.arrived,
            "completed {} + shed {} != arrived {}",
            report.completed, report.shed, report.arrived
        );
        let b = report.budget.as_ref().unwrap();
        prop_assert!(b.deferred <= report.arrived);
        prop_assert!(b.shed <= report.shed, "budget sheds are a subset of all sheds");
        if shed_mode {
            prop_assert_eq!(b.deferred, 0, "Shed mode never defers");
            prop_assert_eq!(b.latency_price_s, 0.0);
        }
        let class_deferred: u64 = b.classes.iter().map(|c| c.deferred).sum();
        let class_shed: u64 = b.classes.iter().map(|c| c.shed).sum();
        prop_assert!(class_deferred <= b.deferred);
        prop_assert!(class_shed <= b.shed);
    }

    /// Budget sheds are monotone in class priority: with a uniform
    /// per-request cost and EDF admission, a single exhausted window
    /// never sheds a high-priority request while dispatching a
    /// low-priority one — if any high-priority work was shed, *all*
    /// low-priority work was.
    #[test]
    fn budget_shed_order_is_monotone_in_class_priority(
        cap in 0.0f64..40.0,
        n in 20usize..80,
    ) {
        use s2m3_core::problem::DeadlineClass;
        use s2m3_sim::workload::ClassShare;
        let mut s = scenario(
            AdmissionPolicy::EarliestDeadlineFirst,
            ArrivalProcess::Simultaneous,
            Vec::new(),
            n,
            "prop/budget-priority".to_string(),
        );
        // One model ⇒ one route cost, so affordability is the same for
        // every request and the EDF pop order alone decides who sheds.
        s.models.truncate(1);
        s.mix = None;
        s.deadline_s = 10_000.0;
        // One in-flight slot: only the very first arrival can dispatch
        // before the queue builds, so every later pop is EDF-ordered.
        s.max_inflight_per_device = 1;
        s.classes = vec![
            ClassShare {
                class: DeadlineClass {
                    name: "interactive".to_string(),
                    deadline_s: 10_000.0,
                    priority: 10,
                },
                weight: 1.0,
            },
            ClassShare {
                class: DeadlineClass {
                    name: "batch".to_string(),
                    deadline_s: 10_000.0,
                    priority: 0,
                },
                weight: 1.0,
            },
        ];
        s.budget = Some(BudgetPolicy {
            cap_per_window: cap,
            metric: BudgetMetric::DeviceSeconds,
            // One window spans the whole run: headroom never refreshes.
            window_s: 1.0e6,
            enforcement: BudgetEnforcement::Shed,
        });
        let report = serve(&s).unwrap();
        let b = report.budget.as_ref().unwrap();
        prop_assert_eq!(b.classes[0].class.as_str(), "interactive");
        if b.classes[0].shed > 0 {
            // The first arrival dispatches before the queue exists and
            // may be batch-class; everything after it pops EDF-ordered,
            // so at most that one batch request escapes the shed.
            let batch_arrived = report.classes[1].arrived;
            prop_assert!(
                b.classes[1].shed + 1 >= batch_arrived,
                "interactive shed but only {} of {} batch requests shed",
                b.classes[1].shed, batch_arrived
            );
        }
    }

    /// Budget enforcement stays byte-deterministic under sharding: the
    /// report JSON at 1/2/4 threads matches the sequential run with a
    /// budget active (all budget decisions run on the session thread).
    #[test]
    fn budget_reports_are_byte_identical_at_any_thread_count(
        policy in arb_policy(),
        events in arb_events(),
        budget in arb_budget(),
        n in 20usize..90,
    ) {
        let mut s = scenario(
            policy,
            ArrivalProcess::Poisson { rate_per_s: 1.5 },
            events,
            n,
            "prop/budget-par".to_string(),
        );
        s.budget = Some(budget);
        let sequential = serve(&s).unwrap().to_json().unwrap();
        for threads in [1, 2, 4] {
            let mut sharded = s.clone();
            sharded.threads = threads;
            let report = serve(&sharded).unwrap().to_json().unwrap();
            prop_assert_eq!(
                &report,
                &sequential,
                "threads={} diverged from sequential under budget",
                threads
            );
        }
    }

    /// The sketch's quantile error bound holds for *arbitrary* latency
    /// distributions, not just the ones serving runs happen to produce:
    /// every percentile of `from_sketch` lands within 1% of the exact
    /// `from_latencies` value.
    #[test]
    fn sketch_summary_tracks_exact_summary(
        mut latencies in proptest::collection::vec(1e-6f64..1e4, 1..400),
        scale in 1e-3f64..1e3,
    ) {
        for v in &mut latencies {
            *v *= scale;
        }
        let exact = LatencySummary::from_latencies(latencies.clone());
        let mut sketch = LatencySketch::new();
        for &v in &latencies {
            sketch.record(v);
        }
        let approx = LatencySummary::from_sketch(&sketch);
        prop_assert_eq!(approx.completed, exact.completed);
        prop_assert!((approx.mean_s - exact.mean_s).abs() <= 1e-9 * exact.mean_s.abs());
        prop_assert!((approx.max_s - exact.max_s).abs() <= f64::EPSILON * exact.max_s);
        for (got, want) in [
            (approx.p50_s, exact.p50_s),
            (approx.p95_s, exact.p95_s),
            (approx.p99_s, exact.p99_s),
        ] {
            let err = (got - want).abs() / want;
            prop_assert!(err < 0.01, "sketch {} vs exact {}: {}% error", got, want, 100.0 * err);
        }
    }
}
