//! A free-list slab for per-request driver state: the storage that
//! keeps the online loop's request table **O(in-flight)** instead of
//! O(arrivals).
//!
//! Slots are dense `u32` indices (the kernel's fan-in table and the
//! admission queues address requests by slot, allocation-free), and
//! every slot carries a monotonically bumped *generation* so a
//! [`ReqHandle`] held across a free/reuse boundary is detectably stale
//! instead of silently aliasing the new occupant.
//!
//! Recycling is a mode, not a given: with `recycle = false` the slab is
//! a pure append-only `Vec` — slot i is always the i-th insertion — so
//! the exact (non-streaming) serve path runs through the *same* code
//! with byte-identical slot numbering to the historic `Vec<ReqInfo>`.
//! In that mode every generation is 0, which gives the hot handle
//! checks a branch-free fast path (see [`Slab::is_current`]).
//!
//! Values and slot state live in separate arrays (`values` /
//! packed `gen | occupied` words), so handle validation never pulls a
//! whole `ReqInfo` cache line, and freeing keeps the value in place —
//! a recycled slot's heap buffers (e.g. a task list) retain their
//! capacity for the next occupant instead of being dropped to
//! `T::default()`.

/// A generation-tagged reference to one slab slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReqHandle {
    /// Dense slot index (the kernel-facing request id).
    pub slot: u32,
    /// Generation of the slot at allocation; stale after a free.
    pub gen: u32,
}

impl ReqHandle {
    /// Packs the handle into one `u64` (`gen` high, `slot` low) for
    /// embedding in ordering keys and queue records.
    pub fn pack(self) -> u64 {
        (u64::from(self.gen) << 32) | u64::from(self.slot)
    }

    /// Unpacks a handle packed by [`ReqHandle::pack`].
    pub fn unpack(bits: u64) -> Self {
        ReqHandle {
            slot: bits as u32,
            gen: (bits >> 32) as u32,
        }
    }
}

/// Occupancy flag, packed into each state word's low bit (generation in
/// the high 31 bits).
const OCCUPIED: u32 = 1;

/// A generation-checked free-list slab (see the module docs).
#[derive(Debug, Clone)]
pub struct Slab<T> {
    values: Vec<T>,
    /// Per-slot `generation << 1 | occupied`.
    state: Vec<u32>,
    free: Vec<u32>,
    recycle: bool,
    live: usize,
}

impl<T: Default> Slab<T> {
    /// An empty slab. With `recycle` unset, slots are append-only
    /// (slot == insertion rank); with it set, freed slots are reused
    /// LIFO before the table grows.
    pub fn new(recycle: bool, capacity: usize) -> Self {
        Slab {
            values: Vec::with_capacity(capacity),
            state: Vec::with_capacity(capacity),
            free: Vec::new(),
            recycle,
            live: 0,
        }
    }

    /// Inserts a value, returning its handle. Reuses a freed slot (and
    /// bumps its generation) when recycling.
    pub fn insert(&mut self, value: T) -> ReqHandle {
        self.insert_with(|v| *v = value)
    }

    /// Inserts by resetting a slot in place, returning its handle. On a
    /// recycled slot `reset` receives the *previous occupant's* value —
    /// the caller must overwrite every field, and in exchange keeps any
    /// heap capacity the old value held. Fresh slots receive
    /// `T::default()`.
    pub fn insert_with(&mut self, reset: impl FnOnce(&mut T)) -> ReqHandle {
        self.live += 1;
        if self.recycle {
            if let Some(slot) = self.free.pop() {
                let st = &mut self.state[slot as usize];
                debug_assert!(*st & OCCUPIED == 0);
                // Bump the generation and re-occupy in one word.
                *st = st.wrapping_add(2) | OCCUPIED;
                let gen = *st >> 1;
                reset(&mut self.values[slot as usize]);
                return ReqHandle { slot, gen };
            }
        }
        let slot = self.values.len() as u32;
        let mut value = T::default();
        reset(&mut value);
        self.values.push(value);
        self.state.push(OCCUPIED);
        ReqHandle { slot, gen: 0 }
    }

    /// Releases a slot back to the free list (no-op append-only mode
    /// keeps the value in place, preserving slot == insertion rank).
    /// The value itself is *not* reset — the next [`Slab::insert_with`]
    /// reuses it in place.
    pub fn free(&mut self, slot: usize) {
        debug_assert!(
            self.state[slot] & OCCUPIED != 0,
            "double free of slot {slot}"
        );
        if !self.recycle {
            return;
        }
        self.live -= 1;
        self.state[slot] &= !OCCUPIED;
        self.free.push(slot as u32);
    }

    /// The current handle of an occupied slot.
    pub fn handle_of(&self, slot: usize) -> ReqHandle {
        debug_assert!(self.state[slot] & OCCUPIED != 0);
        ReqHandle {
            slot: slot as u32,
            gen: self.state[slot] >> 1,
        }
    }

    /// Whether `handle` still names the value it was issued for.
    #[inline]
    pub fn is_current(&self, handle: ReqHandle) -> bool {
        // Append-only mode never frees and never bumps generations:
        // any gen-0 handle inside the table is current, no state load.
        if !self.recycle {
            return handle.gen == 0 && (handle.slot as usize) < self.values.len();
        }
        self.state
            .get(handle.slot as usize)
            .is_some_and(|&st| st == (handle.gen << 1) | OCCUPIED)
    }

    /// Live (occupied) entries.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total slots ever allocated (the table's high-water mark).
    pub fn slots(&self) -> usize {
        self.values.len()
    }

    /// Iterates occupied `(slot, value)` pairs in slot order.
    pub fn iter_occupied(&self) -> impl Iterator<Item = (usize, &T)> {
        self.values
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.state[i] & OCCUPIED != 0)
    }
}

impl<T> std::ops::Index<usize> for Slab<T> {
    type Output = T;

    #[inline]
    fn index(&self, slot: usize) -> &T {
        debug_assert!(
            self.state[slot] & OCCUPIED != 0,
            "read of freed slot {slot}"
        );
        &self.values[slot]
    }
}

impl<T> std::ops::IndexMut<usize> for Slab<T> {
    #[inline]
    fn index_mut(&mut self, slot: usize) -> &mut T {
        debug_assert!(
            self.state[slot] & OCCUPIED != 0,
            "write to freed slot {slot}"
        );
        &mut self.values[slot]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_only_mode_numbers_slots_by_insertion() {
        let mut s: Slab<u64> = Slab::new(false, 4);
        for i in 0..10u64 {
            assert_eq!(s.insert(i).slot as u64, i);
        }
        s.free(3);
        // Freeing is a no-op append-only: the slot survives and the
        // table keeps growing at the end.
        assert_eq!(s[3], 3);
        assert_eq!(s.insert(10).slot, 10);
        assert_eq!(s.slots(), 11);
    }

    #[test]
    fn recycling_reuses_slots_and_bumps_generations() {
        let mut s: Slab<u64> = Slab::new(true, 4);
        let a = s.insert(7);
        let b = s.insert(8);
        assert_eq!((a.slot, b.slot), (0, 1));
        s.free(a.slot as usize);
        assert!(!s.is_current(a));
        let c = s.insert(9);
        assert_eq!(c.slot, 0, "freed slot is reused before growth");
        assert_eq!(c.gen, 1, "reuse bumps the generation");
        assert!(s.is_current(c));
        assert!(!s.is_current(a), "the old handle is stale");
        assert_eq!(s[0], 9);
        assert_eq!(s.live(), 2);
        assert_eq!(s.slots(), 2);
    }

    #[test]
    fn handles_pack_and_unpack_losslessly() {
        let h = ReqHandle {
            slot: 0xDEAD_BEEF,
            gen: 0x1234_5678,
        };
        assert_eq!(ReqHandle::unpack(h.pack()), h);
    }

    #[test]
    fn iter_occupied_skips_freed_slots() {
        let mut s: Slab<u64> = Slab::new(true, 4);
        for i in 0..5u64 {
            s.insert(i);
        }
        s.free(1);
        s.free(3);
        let seen: Vec<(usize, u64)> = s.iter_occupied().map(|(i, &v)| (i, v)).collect();
        assert_eq!(seen, vec![(0, 0), (2, 2), (4, 4)]);
    }

    #[test]
    fn insert_with_keeps_recycled_heap_capacity() {
        let mut s: Slab<Vec<u64>> = Slab::new(true, 2);
        let a = s.insert_with(|v| v.extend([1, 2, 3]));
        let cap = s[a.slot as usize].capacity();
        assert!(cap >= 3);
        s.free(a.slot as usize);
        // The freed value keeps its buffer; the next occupant resets
        // the contents but reuses the allocation.
        let b = s.insert_with(|v| {
            v.clear();
            v.push(9);
        });
        assert_eq!(b.slot, a.slot);
        assert_eq!(s[b.slot as usize], vec![9]);
        assert!(s[b.slot as usize].capacity() >= cap);
    }
}
