//! The online serving loop: a discrete-event control plane that admits a
//! continuous request stream, executes module tasks on per-device lanes
//! (the same semantics as `s2m3_sim::engine`), applies scheduled fleet
//! churn, and replans live through `s2m3_core::adaptive`.
//!
//! ## Control flow
//!
//! Requests arrive from a seeded
//! [`ArrivalProcess`](s2m3_sim::workload::ArrivalProcess) and enter the
//! admission queue of their route's *head* device. A device dispatches a
//! queued request when it has a free request slot
//! (`max_inflight_per_device`); dispatching expands the request into
//! encoder tasks (with modeled input-transfer delays) plus one head task
//! that fires when the last embedding lands, exactly as the offline
//! simulator does. Lane counts, FIFO module queues, and head-priority
//! dispatch mirror `s2m3_sim::engine`.
//!
//! [`FleetEvent`](crate::config::FleetEvent)s change the active fleet at
//! simulated timestamps. Every event wakes the replan controller, which
//! calls [`s2m3_core::adaptive::replan`] against the pre-event placement
//! and accepts the migration when it is mandatory (the old placement lost
//! a module) or when its
//! [`break_even_requests`](s2m3_core::adaptive::ReplanDecision::break_even_requests)
//! clears the requests expected within the configured horizon at the
//! *observed* arrival rate. Accepted migrations charge their download +
//! load cost as downtime on the destination devices. Requests caught on a
//! leaving device are re-admitted (counted in
//! [`ServeReport::retried`](crate::report::ServeReport)) — no request is
//! ever silently lost: every arrival ends as exactly one completion or
//! one shed.
//!
//! ## Hot-path representation
//!
//! The loop runs entirely on [`ResolvedInstance`] indices: devices and
//! modules are dense `u32`/`usize` ids, per-device state lives in `Vec`s
//! indexed by *universe* device index, events carry indices, and the
//! per-model route (placement and instance change only at fleet events)
//! is cached as a [`ModelRoute`] of precomputed transfer times. String
//! ids survive only at the boundary: scenario parsing, replan diffs, and
//! the serialized [`ServeReport`].

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};

use s2m3_core::adaptive::replan;
use s2m3_core::error::CoreError;
use s2m3_core::placement::{greedy_place_resolved, PlacementOptions};
use s2m3_core::problem::{Instance, Placement};
use s2m3_core::resolved::ResolvedInstance;
use s2m3_models::module::ModuleKind;
use s2m3_net::fleet::Fleet;

use crate::config::{FleetEventKind, ServeScenario};
use crate::queue::{Admission, AdmissionQueue, QueuedRequest};
use crate::report::{DeviceReport, EventRecord, LatencySummary, ReplanRecord, ServeReport};
use crate::slo::{DeviceUsage, Outcome, SloWindow};

/// Errors surfaced by the serving loop.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The scenario is internally inconsistent.
    BadScenario(String),
    /// A core placement/routing operation failed.
    Core(CoreError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadScenario(msg) => write!(f, "bad scenario: {msg}"),
            ServeError::Core(e) => write!(f, "core error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

const NS: f64 = 1.0e9;

fn ns(t: f64) -> u64 {
    (t * NS).round() as u64
}

fn secs(t: u64) -> f64 {
    t as f64 / NS
}

#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// A scheduled fleet change (index into the time-sorted event list).
    Fleet(usize),
    /// Request `rid` arrives.
    Arrival(usize),
    /// A module task becomes ready to queue on its device.
    TaskReady(usize),
    /// A module task finishes executing.
    TaskDone(usize),
    /// Wake a device's scheduler (end of migration downtime), by
    /// universe device index.
    Kick(usize),
}

#[derive(Debug, Clone)]
struct TaskState {
    /// Dense request id (index into `Loop::requests`).
    rid: usize,
    /// Interned module index.
    module: u32,
    /// Universe device index the task executes on.
    device: usize,
    /// Work units of this execution (profile-dependent), fixed at
    /// dispatch.
    units: f64,
    is_head: bool,
    /// Embedding transfer time to the head device (encoders only), ns.
    output_tx_ns: u64,
    cancelled: bool,
    /// The device's lane epoch when this task was dispatched; a stale
    /// epoch means the device's lane counter was force-reset (it left
    /// the fleet) and this task no longer holds a lane.
    lane_epoch: u64,
    /// Execution duration fixed at dispatch, ns (0 until dispatched).
    dur_ns: u64,
    /// Set when the task's `TaskDone` fires: its work (and output) has
    /// left the device, so a later device-leave no longer disturbs it.
    finished: bool,
}

#[derive(Debug, Clone, Default)]
struct RequestState {
    arrival_ns: u64,
    deadline_ns: u64,
    pending_encoders: usize,
    head_ready_ns: u64,
    head_task: usize,
    /// Universe index of the device charged with this request's
    /// in-flight slot, when dispatched.
    inflight_on: Option<usize>,
    /// Task indices of the current attempt.
    tasks: Vec<usize>,
    done: bool,
}

#[derive(Debug)]
struct DevState {
    lanes_total: usize,
    lanes_busy: usize,
    /// Bumped whenever `lanes_busy` is force-reset (device leave), so
    /// completions of tasks dispatched before the reset do not free
    /// phantom lanes after a rejoin.
    lane_epoch: u64,
    /// The device cannot start new tasks before this time (weight loads
    /// from accepted migrations).
    open_at_ns: u64,
    /// Head tasks dispatch before queued encoder work.
    fifo_heads: VecDeque<usize>,
    fifo: VecDeque<usize>,
    /// Requests dispatched and not yet finished whose head lives here.
    inflight: usize,
    admission: AdmissionQueue,
    usage: DeviceUsage,
    executions: u64,
}

/// One routed encoder of a cached per-model route.
#[derive(Debug, Clone)]
struct EncRoute {
    module: u32,
    /// Universe device index.
    uni: usize,
    units: f64,
    input_tx_ns: u64,
    output_tx_ns: u64,
}

/// The Eq. 7 route of one deployed model under the current placement
/// and instance, with every dispatch-time transfer precomputed. Valid
/// until the next fleet event (placement and instance only change
/// there); every request of the model shares it.
#[derive(Debug, Clone)]
struct ModelRoute {
    head_module: u32,
    head_uni: usize,
    head_units: f64,
    /// Raw-query transfer to the head device (generative heads), ns.
    head_query_tx_ns: u64,
    /// Encoders in dispatch order (longest compute first).
    encoders: Vec<EncRoute>,
}

struct Loop {
    universe: Fleet,
    /// Universe device names, by universe index.
    uni_names: Vec<String>,
    /// Universe indices in lexicographic name order (the iteration
    /// order the string-keyed maps used).
    by_name_order: Vec<usize>,
    active: Vec<bool>,
    slowdown: Vec<Option<f64>>,
    instance: Instance,
    resolved: ResolvedInstance,
    /// Universe index of each resolved (active-fleet) device.
    uni_of_res: Vec<usize>,
    /// Resolved index of each universe device (`None` while inactive).
    res_of_uni: Vec<Option<u32>>,
    placement: Placement,
    /// Cached route per deployed model (`None` = placement cannot serve
    /// it; arrivals shed).
    model_routes: Vec<Option<ModelRoute>>,
    n_models: usize,
    devices: Vec<DevState>,
    tasks: Vec<TaskState>,
    requests: Vec<RequestState>,
    queue: BinaryHeap<Reverse<(u64, u64, Ev)>>,
    seq: u64,
    // --- workload ---
    arrivals_ns: Vec<u64>,
    deadline_ns: u64,
    max_inflight: usize,
    horizon_s: f64,
    charge_switching_downtime: bool,
    // --- accounting ---
    slo: SloWindow,
    snapshot_every: u64,
    last_snapshot_seen: u64,
    latencies: Vec<f64>,
    report: ServeReport,
    last_completion_ns: u64,
}

impl Loop {
    fn push(&mut self, at: u64, ev: Ev) {
        self.seq += 1;
        self.queue.push(Reverse((at, self.seq, ev)));
    }

    fn uni_index(&self, name: &str) -> Option<usize> {
        self.uni_names.iter().position(|n| n == name)
    }

    /// Rebuilds the instance over the active fleet with slowdowns
    /// applied, re-interning the resolved view and the index maps.
    fn rebuild_instance(&mut self) -> Result<(), ServeError> {
        let mut specs = Vec::new();
        let mut uni_of_res = Vec::new();
        for (ui, d) in self.universe.devices().iter().enumerate() {
            if !self.active[ui] {
                continue;
            }
            let mut spec = d.clone();
            if let Some(factor) = self.slowdown[ui] {
                spec.speed_gflops = (d.speed_gflops * factor).max(1e-6);
            }
            specs.push(spec);
            uni_of_res.push(ui);
        }
        let fleet = Fleet::new(
            specs,
            self.universe.topology().clone(),
            self.universe.requester().clone(),
        )
        .map_err(ServeError::BadScenario)?;
        self.instance = self.instance.with_fleet(fleet)?;
        self.resolved = ResolvedInstance::new(&self.instance)?;
        self.res_of_uni = vec![None; self.uni_names.len()];
        for (ri, &ui) in uni_of_res.iter().enumerate() {
            self.res_of_uni[ui] = Some(ri as u32);
        }
        self.uni_of_res = uni_of_res;
        Ok(())
    }

    /// Recomputes the per-model route cache against the current
    /// placement and instance. Called after every placement change.
    fn refresh_model_routes(&mut self) {
        let hosts = self.resolved.resolve_placement(&self.placement);
        let source = self.resolved.requester();
        let mut routes = Vec::with_capacity(self.n_models);
        for k in 0..self.n_models {
            let profile = self.resolved.models()[k].profile;
            let Some(route) = self.resolved.route_model(k, &profile, &hosts) else {
                routes.push(None);
                continue;
            };
            let &(head_m, head_d) = route.last().expect("route includes the head");
            let head_kind = self.resolved.module_kind(head_m);
            let head_query_tx_ns = if head_kind == ModuleKind::LanguageModel {
                ns(self.resolved.transfer_time(
                    source,
                    head_d,
                    profile.input_bytes(ModuleKind::LanguageModel),
                ))
            } else {
                0
            };
            // Dispatch order: longest compute first, module id (==
            // index) breaking ties — Algorithm 1's send rule.
            let mut encs: Vec<(u32, u32, f64)> = route[..route.len() - 1]
                .iter()
                .map(|&(m, d)| {
                    let units = profile.units(self.resolved.module_kind(m));
                    (m, d, self.resolved.compute_time_units(m, d, units))
                })
                .collect();
            encs.sort_by(|a, b| {
                b.2.partial_cmp(&a.2)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.0.cmp(&b.0))
            });
            let encoders = encs
                .iter()
                .map(|&(m, d, _)| {
                    let kind = self.resolved.module_kind(m);
                    let units = profile.units(kind);
                    EncRoute {
                        module: m,
                        uni: self.uni_of_res[d as usize],
                        units,
                        input_tx_ns: ns(self.resolved.transfer_time(
                            source,
                            d,
                            profile.input_bytes(kind),
                        )),
                        output_tx_ns: ns(self.resolved.transfer_time(
                            d,
                            head_d,
                            self.resolved.module_spec(m).output_bytes(units),
                        )),
                    }
                })
                .collect();
            routes.push(Some(ModelRoute {
                head_module: head_m,
                head_uni: self.uni_of_res[head_d as usize],
                head_units: profile.units(head_kind),
                head_query_tx_ns,
                encoders,
            }));
        }
        self.model_routes = routes;
    }

    /// Offers a request to its head device's admission queue.
    fn admit(&mut self, rid: usize, now: u64) {
        let Some(head_uni) = self.model_routes[rid % self.n_models]
            .as_ref()
            .map(|mr| mr.head_uni)
        else {
            self.record_shed(rid, now);
            return;
        };
        let (arrival_ns, deadline_ns) = {
            let r = &self.requests[rid];
            (r.arrival_ns, r.deadline_ns)
        };
        let outcome = self.devices[head_uni].admission.offer(QueuedRequest {
            id: rid as u64,
            arrival_ns,
            deadline_ns,
        });
        if outcome == Admission::Shed {
            self.record_shed(rid, now);
        } else {
            self.drain_admission(head_uni, now);
        }
    }

    /// Dispatches queued requests while the device has free request slots.
    fn drain_admission(&mut self, device: usize, now: u64) {
        loop {
            let popped = {
                let dev = &mut self.devices[device];
                if !self.active[device] || dev.inflight >= self.max_inflight {
                    return;
                }
                dev.admission.pop()
            };
            let Some(qr) = popped else { return };
            self.dispatch_request(qr.id as usize, now);
        }
    }

    /// Expands a request into module tasks from its model's cached route.
    fn dispatch_request(&mut self, rid: usize, now: u64) {
        if self.model_routes[rid % self.n_models].is_none() {
            self.record_shed(rid, now);
            return;
        }
        let mr = self.model_routes[rid % self.n_models]
            .as_ref()
            .expect("checked above");
        let head_uni = mr.head_uni;
        let head_ready = now + mr.head_query_tx_ns;

        let head_task = self.tasks.len();
        self.tasks.push(TaskState {
            rid,
            module: mr.head_module,
            device: head_uni,
            units: mr.head_units,
            is_head: true,
            output_tx_ns: 0,
            cancelled: false,
            lane_epoch: 0,
            dur_ns: 0,
            finished: false,
        });
        let mut task_ids = vec![head_task];

        let mut pending = 0usize;
        let mut ready_events = Vec::with_capacity(mr.encoders.len());
        for e in &mr.encoders {
            let tid = self.tasks.len();
            self.tasks.push(TaskState {
                rid,
                module: e.module,
                device: e.uni,
                units: e.units,
                is_head: false,
                output_tx_ns: e.output_tx_ns,
                cancelled: false,
                lane_epoch: 0,
                dur_ns: 0,
                finished: false,
            });
            task_ids.push(tid);
            ready_events.push((now + e.input_tx_ns, tid));
            pending += 1;
        }

        {
            let r = &mut self.requests[rid];
            r.pending_encoders = pending;
            r.head_ready_ns = head_ready;
            r.head_task = head_task;
            r.tasks = task_ids;
            r.inflight_on = Some(head_uni);
        }
        self.devices[head_uni].inflight += 1;

        for (at, tid) in ready_events {
            self.push(at, Ev::TaskReady(tid));
        }
        if pending == 0 {
            self.push(head_ready, Ev::TaskReady(head_task));
        }
    }

    /// Queues a ready task on its device and tries to dispatch.
    fn task_ready(&mut self, tid: usize, now: u64) {
        if self.tasks[tid].cancelled {
            return;
        }
        let device = self.tasks[tid].device;
        let dev = &mut self.devices[device];
        if self.tasks[tid].is_head {
            dev.fifo_heads.push_back(tid);
        } else {
            dev.fifo.push_back(tid);
        }
        self.try_dispatch(device, now);
    }

    /// The per-device lane scheduler (mirrors the offline engine).
    fn try_dispatch(&mut self, device: usize, now: u64) {
        if !self.active[device] {
            return;
        }
        loop {
            // Find the next non-cancelled task while a lane is free.
            let tid = {
                let dev = &mut self.devices[device];
                if now < dev.open_at_ns || dev.lanes_busy >= dev.lanes_total {
                    return;
                }
                let mut next = None;
                while let Some(t) = dev.fifo_heads.pop_front().or_else(|| dev.fifo.pop_front()) {
                    if !self.tasks[t].cancelled {
                        next = Some(t);
                        break;
                    }
                }
                match next {
                    None => return,
                    Some(t) => t,
                }
            };
            let dur_s = {
                let task = &self.tasks[tid];
                match self.res_of_uni[task.device] {
                    Some(rd) => self
                        .resolved
                        .compute_time_units(task.module, rd, task.units),
                    // Defensive: the device left between queueing and
                    // dispatch (its tasks are normally cancelled first).
                    None => 0.1,
                }
            };
            let dev = &mut self.devices[device];
            dev.lanes_busy += 1;
            self.tasks[tid].lane_epoch = dev.lane_epoch;
            self.tasks[tid].dur_ns = ns(dur_s);
            self.push(now + ns(dur_s), Ev::TaskDone(tid));
        }
    }

    fn task_done(&mut self, tid: usize, now: u64) {
        let (device, cancelled, is_head, rid, output_tx_ns, lane_epoch, dur_ns) = {
            let t = &self.tasks[tid];
            (
                t.device,
                t.cancelled,
                t.is_head,
                t.rid,
                t.output_tx_ns,
                t.lane_epoch,
                t.dur_ns,
            )
        };
        self.tasks[tid].finished = true;
        {
            let dev = &mut self.devices[device];
            // Only account a task whose lane survived to completion: a
            // leave resets the counter (and bumps the epoch), so stale
            // completions neither free lanes after a rejoin nor charge
            // busy seconds the departed device never finished serving.
            if dev.lane_epoch == lane_epoch {
                dev.lanes_busy = dev.lanes_busy.saturating_sub(1);
                dev.usage.busy_s += secs(dur_ns);
                dev.executions += 1;
            }
        }
        if cancelled {
            self.try_dispatch(device, now);
            return;
        }
        if is_head {
            self.complete_request(rid, now);
        } else {
            let fire_head = {
                let r = &mut self.requests[rid];
                r.head_ready_ns = r.head_ready_ns.max(now + output_tx_ns);
                r.pending_encoders -= 1;
                (r.pending_encoders == 0).then_some((r.head_task, r.head_ready_ns))
            };
            if let Some((head_task, at)) = fire_head {
                self.push(at.max(now), Ev::TaskReady(head_task));
            }
        }
        self.try_dispatch(device, now);
    }

    fn record_outcome(&mut self, outcome: Outcome) {
        self.slo.push(outcome);
        if self.slo.total_seen().is_multiple_of(self.snapshot_every) {
            let snap = self.slo.snapshot(outcome.completed_at_s);
            self.report.windows.push(snap);
            self.last_snapshot_seen = self.slo.total_seen();
        }
    }

    fn complete_request(&mut self, rid: usize, now: u64) {
        let (arrival_ns, deadline_ns, head_dev) = {
            let r = &mut self.requests[rid];
            r.done = true;
            (r.arrival_ns, r.deadline_ns, r.inflight_on.take())
        };
        if let Some(ui) = head_dev {
            self.devices[ui].inflight = self.devices[ui].inflight.saturating_sub(1);
        }
        let latency = secs(now - arrival_ns);
        let missed = now > deadline_ns;
        self.report.completed += 1;
        if missed {
            self.report.late += 1;
        }
        self.latencies.push(latency);
        self.last_completion_ns = self.last_completion_ns.max(now);
        self.record_outcome(Outcome {
            completed_at_s: secs(now),
            latency_s: latency,
            missed,
        });
        if let Some(ui) = head_dev {
            self.drain_admission(ui, now);
        }
    }

    fn record_shed(&mut self, rid: usize, now: u64) {
        let (deadline_ns, arrival_ns) = {
            let r = &mut self.requests[rid];
            r.done = true;
            (r.deadline_ns, r.arrival_ns)
        };
        self.report.shed += 1;
        // A shed request is an SLO miss; the window records it at the
        // deadline bound so percentiles reflect the rejection.
        self.record_outcome(Outcome {
            completed_at_s: secs(now),
            latency_s: secs(deadline_ns.saturating_sub(arrival_ns)),
            missed: true,
        });
    }

    /// Cancels a request's current attempt and re-admits it.
    fn requeue_request(&mut self, rid: usize, now: u64) {
        let (task_ids, inflight_on) = {
            let r = &mut self.requests[rid];
            if r.done {
                return;
            }
            (std::mem::take(&mut r.tasks), r.inflight_on.take())
        };
        if let Some(ui) = inflight_on {
            self.devices[ui].inflight = self.devices[ui].inflight.saturating_sub(1);
        }
        for tid in task_ids {
            self.tasks[tid].cancelled = true;
        }
        self.report.retried += 1;
        self.admit(rid, now);
    }

    /// Applies one fleet event and runs the replan controller.
    fn fleet_event(
        &mut self,
        kind: &FleetEventKind,
        at_s: f64,
        now: u64,
    ) -> Result<(), ServeError> {
        let description = match kind {
            FleetEventKind::DeviceJoin { device } => {
                let Some(ui) = self.uni_index(device) else {
                    return Err(ServeError::BadScenario(format!(
                        "unknown device `{device}` in join event"
                    )));
                };
                if self.active[ui] {
                    return Err(ServeError::BadScenario(format!(
                        "device `{device}` joined but was already active"
                    )));
                }
                self.active[ui] = true;
                let dev = &mut self.devices[ui];
                dev.usage.active = true;
                dev.usage.active_since_s = at_s;
                format!("{device} joins")
            }
            FleetEventKind::DeviceLeave { device } => {
                if device == self.universe.requester().as_str() {
                    return Err(ServeError::BadScenario(format!(
                        "requester {device} cannot leave the fleet"
                    )));
                }
                let leaving = self.uni_index(device).filter(|&ui| self.active[ui]);
                let Some(ui) = leaving else {
                    return Err(ServeError::BadScenario(format!(
                        "device `{device}` left but was not active"
                    )));
                };
                self.active[ui] = false;
                let dev = &mut self.devices[ui];
                if dev.usage.active {
                    dev.usage.active = false;
                    dev.usage.active_s += (at_s - dev.usage.active_since_s).max(0.0);
                }
                format!("{device} leaves")
            }
            FleetEventKind::DeviceSlowdown { device, factor } => {
                let slowed = self.uni_index(device).filter(|&ui| self.active[ui]);
                let Some(ui) = slowed else {
                    return Err(ServeError::BadScenario(format!(
                        "device `{device}` slowed but is not active"
                    )));
                };
                self.slowdown[ui] = Some(factor.max(1e-3));
                format!("{device} slows to {factor:.2}x")
            }
        };
        self.report.events.push(EventRecord {
            at_s,
            description: description.clone(),
        });

        // Collect every request disturbed by a leave: queued in the
        // departed device's admission queue, or with live tasks there.
        let mut disturbed: BTreeSet<usize> = BTreeSet::new();
        if let FleetEventKind::DeviceLeave { device } = kind {
            let ui = self.uni_index(device).expect("validated above");
            let dev = &mut self.devices[ui];
            for qr in dev.admission.drain() {
                disturbed.insert(qr.id as usize);
            }
            dev.fifo_heads.clear();
            dev.fifo.clear();
            dev.lanes_busy = 0;
            dev.lane_epoch += 1;
            dev.inflight = 0;
            for t in &self.tasks {
                if !t.cancelled && !t.finished && t.device == ui && !self.requests[t.rid].done {
                    disturbed.insert(t.rid);
                }
            }
        }

        let old_placement = self.placement.clone();
        self.rebuild_instance()?;

        // Replan controller: mandatory switches always apply; optional
        // ones must amortize within the horizon at the observed rate.
        let decision = replan(&self.instance, &old_placement)?;
        let observed_rate = if now == 0 {
            0.0
        } else {
            self.report.arrived as f64 / secs(now)
        };
        let expected_in_horizon = observed_rate * self.horizon_s;
        let break_even = decision.break_even_requests();
        let accepted = decision.mandatory()
            || matches!(break_even, Some(b) if (b as f64) <= expected_in_horizon);
        self.report.replans.push(ReplanRecord {
            at_s,
            trigger: description,
            mandatory: decision.mandatory(),
            break_even_requests: break_even,
            observed_rate_per_s: observed_rate,
            accepted,
            switching_cost_s: if accepted {
                decision.switching_cost_s
            } else {
                0.0
            },
            migrations: if accepted {
                decision.migrations.len()
            } else {
                0
            },
        });

        if accepted {
            self.placement = decision.placement;
            if self.charge_switching_downtime {
                let mut per_dev: BTreeMap<String, f64> = BTreeMap::new();
                for m in &decision.migrations {
                    *per_dev.entry(m.to.as_str().to_string()).or_default() += m.cost_s;
                }
                for (name, cost) in per_dev {
                    let ui = self.uni_index(&name).expect("migration target exists");
                    let dev = &mut self.devices[ui];
                    dev.open_at_ns = dev.open_at_ns.max(now + ns(cost));
                    // Wake the scheduler when the weights finish loading;
                    // without this, queued tasks could strand on a device
                    // that receives no further events.
                    let at = dev.open_at_ns;
                    self.push(at, Ev::Kick(ui));
                }
            }
        } else {
            // Keep serving on the surviving subset of the old placement.
            let mut surviving = Placement::new();
            for (m, d) in old_placement.iter() {
                let survives = self.uni_index(d.as_str()).is_some_and(|ui| self.active[ui]);
                if survives {
                    surviving.place(m.clone(), d.clone());
                }
            }
            self.placement = surviving;
        }
        self.refresh_model_routes();

        // Re-key every waiting request against the (possibly new)
        // placement, oldest arrivals first, then re-admit the disturbed.
        let mut waiting: Vec<QueuedRequest> = Vec::new();
        for &ui in &self.by_name_order.clone() {
            waiting.extend(self.devices[ui].admission.drain());
        }
        waiting.sort_by_key(|qr| (qr.arrival_ns, qr.id));
        for qr in waiting {
            self.admit(qr.id as usize, now);
        }
        for rid in disturbed {
            self.requeue_request(rid, now);
        }
        for i in 0..self.by_name_order.len() {
            let ui = self.by_name_order[i];
            self.try_dispatch(ui, now);
            self.drain_admission(ui, now);
        }
        Ok(())
    }

    fn arrival(&mut self, rid: usize, now: u64) {
        self.report.arrived += 1;
        debug_assert_eq!(self.requests.len(), rid);
        self.requests.push(RequestState {
            arrival_ns: now,
            deadline_ns: now + self.deadline_ns,
            ..RequestState::default()
        });
        // Schedule the next arrival lazily to keep the heap small.
        let next = rid + 1;
        if next < self.arrivals_ns.len() {
            self.push(self.arrivals_ns[next], Ev::Arrival(next));
        }
        self.admit(rid, now);
    }

    fn finish(mut self) -> ServeReport {
        let now = self.last_completion_ns;
        // Defensive flush: anything still waiting (a bug if it happens)
        // is recorded as shed so arrivals always balance.
        let leftover: Vec<usize> = self
            .by_name_order
            .clone()
            .into_iter()
            .flat_map(|ui| self.devices[ui].admission.drain())
            .map(|qr| qr.id as usize)
            .collect();
        for rid in leftover {
            self.record_shed(rid, now);
        }

        let now_s = secs(now);
        self.report.makespan_s = now_s;
        self.report.latency = LatencySummary::from_latencies(std::mem::take(&mut self.latencies));
        self.report.throughput_per_s = if now_s > 0.0 {
            self.report.completed as f64 / now_s
        } else {
            0.0
        };
        self.report.miss_rate = if self.report.arrived == 0 {
            0.0
        } else {
            (self.report.late + self.report.shed) as f64 / self.report.arrived as f64
        };
        // Final rolling-window snapshot (unless one just landed there).
        if self.slo.total_seen() != self.last_snapshot_seen {
            let final_snap = self.slo.snapshot(now_s);
            self.report.windows.push(final_snap);
        }
        self.report.devices = self
            .by_name_order
            .iter()
            .map(|&ui| {
                let d = &self.devices[ui];
                DeviceReport {
                    device: self.uni_names[ui].clone(),
                    executions: d.executions,
                    busy_s: d.usage.busy_s,
                    active_s: d.usage.active_total_s(now_s),
                    utilization: d.usage.utilization(now_s),
                }
            })
            .collect();
        self.report
    }
}

/// Runs a serving scenario to completion and returns its deterministic
/// report: same scenario (including seed) ⇒ byte-identical report.
///
/// # Errors
///
/// [`ServeError::BadScenario`] on inconsistent configuration (unknown
/// fleet/devices/models, requester leaving, empty stream);
/// [`ServeError::Core`] if placement or routing fails irrecoverably.
pub fn serve(scenario: &ServeScenario) -> Result<ServeReport, ServeError> {
    // --- Universe fleet and initial membership. ---
    let universe = match scenario.fleet.as_str() {
        "edge" => Fleet::edge_testbed(),
        "standard" => Fleet::standard_testbed(),
        other => {
            return Err(ServeError::BadScenario(format!(
                "unknown fleet `{other}` (edge|standard)"
            )))
        }
    };
    if scenario.models.is_empty() {
        return Err(ServeError::BadScenario("no models deployed".into()));
    }
    if scenario.requests == 0 {
        return Err(ServeError::BadScenario("empty request stream".into()));
    }
    let uni_names: Vec<String> = universe
        .devices()
        .iter()
        .map(|d| d.id.as_str().to_string())
        .collect();
    let by_name_order = {
        let mut order: Vec<usize> = (0..uni_names.len()).collect();
        order.sort_by(|&a, &b| uni_names[a].cmp(&uni_names[b]));
        order
    };
    let mut active = vec![false; uni_names.len()];
    for name in &scenario.initial_devices {
        let Some(ui) = uni_names.iter().position(|n| n == name) else {
            return Err(ServeError::BadScenario(format!(
                "initial device `{name}` is not in the {} fleet",
                scenario.fleet
            )));
        };
        active[ui] = true;
    }
    let requester = universe.requester().as_str().to_string();
    let requester_active = uni_names
        .iter()
        .position(|n| *n == requester)
        .is_some_and(|ui| active[ui]);
    if !requester_active {
        return Err(ServeError::BadScenario(format!(
            "initial devices must include the requester `{requester}`"
        )));
    }

    // --- Instance, placement, resolved index maps. ---
    let model_pairs: Vec<(&str, usize)> = scenario
        .models
        .iter()
        .map(|m| (m.name.as_str(), m.candidates))
        .collect();
    let initial_fleet = {
        let devices: Vec<_> = universe
            .devices()
            .iter()
            .zip(&active)
            .filter(|(_, &a)| a)
            .map(|(d, _)| d.clone())
            .collect();
        Fleet::new(
            devices,
            universe.topology().clone(),
            universe.requester().clone(),
        )
        .map_err(ServeError::BadScenario)?
    };
    let instance = Instance::on_fleet(initial_fleet, &model_pairs)?;
    let resolved = ResolvedInstance::new(&instance)?;
    let placement = greedy_place_resolved(&resolved, PlacementOptions::default())?;
    let uni_of_res: Vec<usize> = (0..uni_names.len()).filter(|&ui| active[ui]).collect();
    let mut res_of_uni: Vec<Option<u32>> = vec![None; uni_names.len()];
    for (ri, &ui) in uni_of_res.iter().enumerate() {
        res_of_uni[ui] = Some(ri as u32);
    }
    let n_models = instance.deployments().len();

    // --- Device runtime state over the whole universe. ---
    let devices: Vec<DevState> = universe
        .devices()
        .iter()
        .enumerate()
        .map(|(ui, d)| DevState {
            lanes_total: d.parallelism.max(1),
            lanes_busy: 0,
            lane_epoch: 0,
            open_at_ns: 0,
            fifo_heads: VecDeque::new(),
            fifo: VecDeque::new(),
            inflight: 0,
            admission: AdmissionQueue::new(scenario.admission.clone()),
            usage: DeviceUsage {
                busy_s: 0.0,
                active_since_s: 0.0,
                active_s: 0.0,
                active: active[ui],
                lanes: d.parallelism.max(1),
            },
            executions: 0,
        })
        .collect();

    // --- Workload. ---
    let arrivals = scenario
        .arrivals
        .arrivals(scenario.requests, &scenario.seed);
    let arrivals_ns: Vec<u64> = arrivals.iter().map(|&t| ns(t)).collect();

    let mut events = scenario.events.clone();
    events.sort_by(|a, b| {
        a.at_s
            .partial_cmp(&b.at_s)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut state = Loop {
        universe,
        uni_names,
        by_name_order,
        active,
        slowdown: vec![None; res_of_uni.len()],
        instance,
        resolved,
        uni_of_res,
        res_of_uni,
        placement,
        model_routes: Vec::new(),
        n_models,
        devices,
        tasks: Vec::new(),
        requests: Vec::with_capacity(scenario.requests),
        queue: BinaryHeap::new(),
        seq: 0,
        arrivals_ns,
        deadline_ns: ns(scenario.deadline_s.max(1e-3)),
        max_inflight: scenario.max_inflight_per_device.max(1),
        horizon_s: scenario.replan.horizon_s.max(0.0),
        charge_switching_downtime: scenario.replan.charge_switching_downtime,
        slo: SloWindow::new(scenario.slo_window.max(1)),
        snapshot_every: scenario.snapshot_every.max(1) as u64,
        last_snapshot_seen: 0,
        latencies: Vec::with_capacity(scenario.requests),
        report: ServeReport {
            seed: scenario.seed.clone(),
            ..ServeReport::default()
        },
        last_completion_ns: 0,
    };
    state.refresh_model_routes();

    for (idx, ev) in events.iter().enumerate() {
        state.push(ns(ev.at_s.max(0.0)), Ev::Fleet(idx));
    }
    state.push(state.arrivals_ns[0], Ev::Arrival(0));

    while let Some(Reverse((now, _, ev))) = state.queue.pop() {
        match ev {
            Ev::Fleet(idx) => {
                let kind = events[idx].kind.clone();
                state.fleet_event(&kind, events[idx].at_s, now)?;
            }
            Ev::Arrival(rid) => state.arrival(rid, now),
            Ev::TaskReady(tid) => state.task_ready(tid, now),
            Ev::TaskDone(tid) => state.task_done(tid, now),
            Ev::Kick(ui) => {
                state.try_dispatch(ui, now);
                state.drain_admission(ui, now);
            }
        }
    }

    Ok(state.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AdmissionPolicy, FleetEvent, ModelDeployment, ReplanPolicy};
    use s2m3_sim::workload::ArrivalProcess;

    fn small_scenario(n: usize) -> ServeScenario {
        ServeScenario {
            requests: n,
            events: vec![],
            ..ServeScenario::churn_default()
        }
    }

    #[test]
    fn every_arrival_completes_or_sheds() {
        let report = serve(&small_scenario(300)).unwrap();
        assert_eq!(report.arrived, 300);
        assert_eq!(report.completed + report.shed, 300);
        assert!(report.latency.p50_s > 0.0);
        assert!(report.throughput_per_s > 0.0);
        assert!(!report.windows.is_empty());
    }

    #[test]
    fn same_seed_identical_reports_different_seed_differs() {
        let scenario = ServeScenario {
            requests: 400,
            ..ServeScenario::churn_default()
        };
        let a = serve(&scenario).unwrap();
        let b = serve(&scenario).unwrap();
        assert_eq!(a, b);
        let other = ServeScenario {
            seed: "serve/other".to_string(),
            ..scenario
        };
        let c = serve(&other).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn device_leave_forces_accepted_replan_and_loses_nothing() {
        let mut s = small_scenario(250);
        s.arrivals = ArrivalProcess::Poisson { rate_per_s: 2.0 };
        s.events = vec![FleetEvent {
            at_s: 30.0,
            kind: FleetEventKind::DeviceLeave {
                device: "desktop".to_string(),
            },
        }];
        let report = serve(&s).unwrap();
        assert_eq!(report.completed + report.shed, report.arrived);
        assert_eq!(report.replans.len(), 1);
        let r = &report.replans[0];
        assert!(r.accepted, "losing a module host must force a replan");
        assert!(r.mandatory);
        assert!(r.migrations >= 1);
        assert!(r.switching_cost_s > 0.0);
        // The desktop stops accumulating active time after it leaves.
        let desktop = report
            .devices
            .iter()
            .find(|d| d.device == "desktop")
            .unwrap();
        assert!(desktop.active_s <= 30.0 + 1e-6);
    }

    #[test]
    fn server_join_is_accepted_only_under_sufficient_load() {
        let join = FleetEvent {
            at_s: 60.0,
            kind: FleetEventKind::DeviceJoin {
                device: "server".to_string(),
            },
        };
        // Busy stream, long horizon: worth switching.
        let mut busy = small_scenario(400);
        busy.arrivals = ArrivalProcess::Poisson { rate_per_s: 2.0 };
        busy.events = vec![join.clone()];
        busy.replan = ReplanPolicy {
            horizon_s: 3600.0,
            charge_switching_downtime: true,
        };
        let busy_report = serve(&busy).unwrap();
        assert_eq!(busy_report.replans.len(), 1);
        assert!(
            busy_report.replans[0].accepted,
            "break-even {:?} at rate {:.2} should clear a 1 h horizon",
            busy_report.replans[0].break_even_requests, busy_report.replans[0].observed_rate_per_s
        );
        assert!(busy_report.accepted_replans() >= 1);

        // Trickle stream, tiny horizon: not worth the switching cost.
        let mut idle = small_scenario(40);
        idle.arrivals = ArrivalProcess::Poisson { rate_per_s: 0.02 };
        idle.deadline_s = 120.0;
        idle.events = vec![join];
        idle.replan = ReplanPolicy {
            horizon_s: 1.0,
            charge_switching_downtime: true,
        };
        let idle_report = serve(&idle).unwrap();
        assert_eq!(idle_report.replans.len(), 1);
        assert!(!idle_report.replans[0].accepted);
        assert!(!idle_report.replans[0].mandatory);
        // Rejected replans keep serving: nothing is lost either way.
        assert_eq!(
            idle_report.completed + idle_report.shed,
            idle_report.arrived
        );
    }

    #[test]
    fn shed_on_overload_sheds_under_burst_fifo_does_not() {
        let burst = ArrivalProcess::Simultaneous;
        let mut fifo = small_scenario(120);
        fifo.arrivals = burst.clone();
        fifo.admission = AdmissionPolicy::Fifo;
        fifo.deadline_s = 10_000.0;
        let fifo_report = serve(&fifo).unwrap();
        assert_eq!(fifo_report.shed, 0);
        assert_eq!(fifo_report.completed, 120);

        let mut shed = small_scenario(120);
        shed.arrivals = burst;
        shed.admission = AdmissionPolicy::ShedOnOverload { max_queue: 8 };
        shed.deadline_s = 10_000.0;
        let shed_report = serve(&shed).unwrap();
        assert!(
            shed_report.shed > 0,
            "a 120-request burst must overflow 8 slots"
        );
        assert_eq!(shed_report.completed + shed_report.shed, 120);
        // Shedding keeps served latency lower than serving everything.
        assert!(shed_report.latency.p99_s < fifo_report.latency.p99_s);
    }

    #[test]
    fn edf_beats_fifo_on_mixed_deadlines_under_load() {
        // Two models with very different service times share the fleet;
        // EDF should not miss more deadlines than FIFO on the same stream.
        let base = ServeScenario {
            models: vec![
                ModelDeployment {
                    name: "CLIP ViT-B/16".to_string(),
                    candidates: 64,
                },
                ModelDeployment {
                    name: "CLIP-Classifier Food-101".to_string(),
                    candidates: 0,
                },
            ],
            arrivals: ArrivalProcess::Poisson { rate_per_s: 1.5 },
            requests: 300,
            deadline_s: 10.0,
            events: vec![],
            ..ServeScenario::churn_default()
        };
        let fifo = serve(&ServeScenario {
            admission: AdmissionPolicy::Fifo,
            ..base.clone()
        })
        .unwrap();
        let edf = serve(&ServeScenario {
            admission: AdmissionPolicy::EarliestDeadlineFirst,
            ..base
        })
        .unwrap();
        assert_eq!(edf.completed, 300);
        assert!(
            edf.miss_rate <= fifo.miss_rate + 1e-9,
            "EDF miss rate {:.3} vs FIFO {:.3}",
            edf.miss_rate,
            fifo.miss_rate
        );
    }

    #[test]
    fn slowdown_event_triggers_replan_evaluation() {
        let mut s = small_scenario(150);
        s.arrivals = ArrivalProcess::Poisson { rate_per_s: 1.0 };
        s.events = vec![FleetEvent {
            at_s: 20.0,
            kind: FleetEventKind::DeviceSlowdown {
                device: "laptop".to_string(),
                factor: 0.25,
            },
        }];
        let report = serve(&s).unwrap();
        assert_eq!(report.events.len(), 1);
        assert!(report.events[0].description.contains("slows"));
        assert_eq!(report.replans.len(), 1);
        assert_eq!(report.completed + report.shed, report.arrived);
    }

    #[test]
    fn bad_scenarios_are_rejected() {
        let mut no_requester = small_scenario(10);
        no_requester.initial_devices = vec!["desktop".to_string(), "laptop".to_string()];
        assert!(matches!(
            serve(&no_requester),
            Err(ServeError::BadScenario(_))
        ));

        let mut requester_leaves = small_scenario(10);
        requester_leaves.events = vec![FleetEvent {
            at_s: 1.0,
            kind: FleetEventKind::DeviceLeave {
                device: "jetson-a".to_string(),
            },
        }];
        assert!(matches!(
            serve(&requester_leaves),
            Err(ServeError::BadScenario(_))
        ));

        let mut bad_fleet = small_scenario(10);
        bad_fleet.fleet = "mars".to_string();
        assert!(serve(&bad_fleet).is_err());

        let mut unknown_model = small_scenario(10);
        unknown_model.models = vec![ModelDeployment {
            name: "CLIP ViT-Z/99".to_string(),
            candidates: 1,
        }];
        assert!(matches!(serve(&unknown_model), Err(ServeError::Core(_))));
    }

    #[test]
    fn leave_then_rejoin_keeps_lane_accounting_sane() {
        // The desktop leaves while it is executing work, then rejoins:
        // completions of pre-leave tasks must not free phantom lanes
        // after the rejoin. With correct accounting the run conserves
        // requests and keeps utilization within bounds.
        let mut s = small_scenario(300);
        s.arrivals = ArrivalProcess::Poisson { rate_per_s: 2.0 };
        s.events = vec![
            FleetEvent {
                at_s: 20.0,
                kind: FleetEventKind::DeviceLeave {
                    device: "desktop".to_string(),
                },
            },
            FleetEvent {
                at_s: 40.0,
                kind: FleetEventKind::DeviceJoin {
                    device: "desktop".to_string(),
                },
            },
        ];
        let report = serve(&s).unwrap();
        assert_eq!(report.completed + report.shed, report.arrived);
        assert_eq!(report.events.len(), 2);
        for d in &report.devices {
            assert!((0.0..=1.0).contains(&d.utilization), "{d:?}");
        }
        // Determinism still holds through the leave/rejoin cycle.
        assert_eq!(report, serve(&s).unwrap());
    }

    #[test]
    fn joining_an_active_device_is_rejected() {
        let mut s = small_scenario(20);
        s.events = vec![FleetEvent {
            at_s: 5.0,
            kind: FleetEventKind::DeviceJoin {
                device: "laptop".to_string(),
            },
        }];
        assert!(matches!(serve(&s), Err(ServeError::BadScenario(_))));
    }

    #[test]
    fn utilization_is_bounded_and_windows_monotone_in_time() {
        let report = serve(&small_scenario(200)).unwrap();
        for d in &report.devices {
            assert!((0.0..=1.0).contains(&d.utilization), "{d:?}");
            assert!(d.busy_s >= 0.0);
        }
        let times: Vec<f64> = report.windows.iter().map(|w| w.at_s).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
        for w in &report.windows {
            assert!(w.p50_s <= w.p95_s + 1e-12);
            assert!(w.p95_s <= w.p99_s + 1e-12);
            assert!((0.0..=1.0).contains(&w.miss_rate));
        }
    }
}
