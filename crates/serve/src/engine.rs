//! The online serving loop: the *online driver* over the shared
//! discrete-event kernel in [`s2m3_sim::kernel`]. It admits continuous
//! request streams (one per traffic source), executes module tasks on
//! per-device lanes, applies scheduled fleet churn, and replans live
//! through `s2m3_core::adaptive`.
//!
//! ## Control flow
//!
//! Requests arrive from seeded
//! [`ArrivalProcess`](s2m3_sim::workload::ArrivalProcess)es (the fleet
//! requester's by default; any set of devices via
//! [`ServeScenario::sources`]) and enter the admission queue of their
//! route's *head* device. A device dispatches a queued request when it
//! has a free request slot (`max_inflight_per_device`); dispatching
//! expands the request into encoder tasks (with modeled input-transfer
//! delays) plus one head task that fires when the last embedding lands.
//! Lane counts, FIFO module queues, and head-priority dispatch are the
//! kernel's — the *same* event loop the offline simulator runs; this
//! module only supplies the online hooks (admission, SLO windows,
//! churn, replanning).
//!
//! [`FleetEvent`](crate::config::FleetEvent)s change the active fleet at
//! simulated timestamps. Every event wakes the replan controller, which
//! calls [`s2m3_core::adaptive::replan`] against the pre-event placement
//! and accepts the migration when it is mandatory (the old placement lost
//! a module) or when its
//! [`break_even_requests`](s2m3_core::adaptive::ReplanDecision::break_even_requests)
//! clears the requests expected within the configured horizon at the
//! *observed* arrival rate. With
//! [`ReplanPolicy::slo_trigger`](crate::config::ReplanPolicy) set, a
//! rolling-p95 breach of the deadline wakes the same controller between
//! fleet events. Accepted migrations charge their download + load cost
//! as downtime on the destination devices; the controller runs while
//! the kernel is paused between events — drain, requeue, resume — so no
//! request is ever silently lost: every arrival ends as exactly one
//! completion or one shed.
//!
//! ## Hot-path representation
//!
//! The loop runs entirely on [`ResolvedInstance`] indices: devices and
//! modules are dense `u32`/`usize` ids, per-device state lives in `Vec`s
//! indexed by *universe* device index, events carry indices, and the
//! per-model, per-source route (placement and instance change only at
//! replans) is cached as a [`ModelRoute`] of precomputed transfer
//! times. String ids survive only at the boundary: scenario parsing,
//! replan diffs, and the serialized [`ServeReport`].

use std::collections::BTreeSet;
use std::sync::Arc;

use s2m3_core::adaptive::replan;
use s2m3_core::error::CoreError;
use s2m3_core::placement::{greedy_place_resolved, PlacementOptions};
use s2m3_core::problem::{Instance, Placement};
use s2m3_core::resolved::ResolvedInstance;
use s2m3_data::sink::ColumnWriter;
use s2m3_models::module::ModuleKind;
use s2m3_net::fleet::Fleet;
use s2m3_sim::kernel::{
    Device as LaneDevice, Driver, Kernel, Policy as KernelPolicy, RequestSlot, Scheduler,
};
use s2m3_sim::workload::{WorkloadRequest, WorkloadStream};

use crate::accounting::{ARec, Accounting, ClassStats, LatAgg};
use crate::budget::{BudgetEnforcement, BudgetMetric, BudgetState, Deferred};
use crate::config::{FleetEventKind, ServeScenario, SloReplanTrigger};
use crate::queue::{Admission, AdmissionQueue, QueuedRequest};
use crate::report::{ClassReport, DeviceReport, EventRecord, ReplanRecord, ServeReport};
use crate::slab::{ReqHandle, Slab};
use crate::slo::{DeviceUsage, SloWindow};

mod parallel;

/// Errors surfaced by the serving loop.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The scenario is internally inconsistent.
    BadScenario(String),
    /// A core placement/routing operation failed.
    Core(CoreError),
    /// Writing the streaming completion sink failed.
    Sink(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadScenario(msg) => write!(f, "bad scenario: {msg}"),
            ServeError::Core(e) => write!(f, "core error: {e}"),
            ServeError::Sink(msg) => write!(f, "completion sink: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

const NS: f64 = 1.0e9;

fn ns(t: f64) -> u64 {
    (t * NS).round() as u64
}

fn secs(t: u64) -> f64 {
    t as f64 / NS
}

/// Driver-defined events injected into the kernel.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum ServeEv {
    /// A scheduled fleet change (index into the time-sorted event list).
    Fleet(usize),
    /// Request `rid` arrives.
    Arrival(usize),
    /// A fresh budget window opens: re-admit deferred requests.
    BudgetWake,
}

/// What the budget gate decided for a popped request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BudgetVerdict {
    /// Within budget (or no budget): dispatch now.
    Dispatch,
    /// Parked in the deferred heap until the next window.
    Defer,
    /// Rejected by enforcement (counts as a shed).
    Shed,
}

/// Per-task payload stored inline in the kernel's task table.
#[derive(Debug, Clone, Copy, Default)]
struct TaskInfo {
    /// Work units of this execution (profile-dependent), fixed at
    /// dispatch.
    units: f64,
    /// Embedding transfer time to the head device (encoders only), ns.
    output_tx_ns: u64,
    /// Execution duration fixed at dispatch, ns (0 until dispatched).
    dur_ns: u64,
}

/// Driver-side request bookkeeping (the kernel keeps the fan-in state).
#[derive(Debug, Clone, Default)]
struct ReqInfo {
    /// Arrival sequence number: unique and monotone in arrival order.
    /// Queue ordering and re-admission tie-breaks key on this, never on
    /// the (recyclable) slab slot, so streaming-mode slot reuse cannot
    /// perturb dispatch order.
    seq: u64,
    arrival_ns: u64,
    deadline_ns: u64,
    /// Rank of the traffic source that emitted this request.
    source: usize,
    /// Deployed-model index this request asks for (assigned by the
    /// workload layer's model mix).
    model: usize,
    /// Admission priority from the request's deadline class (0 without
    /// classes).
    priority: u32,
    /// Deadline-class index (`None` for unclassed scenarios).
    class: Option<u32>,
    /// Universe index of the device charged with this request's
    /// in-flight slot, when dispatched.
    inflight_on: Option<usize>,
    /// Whether the budget gate has priced this request (the uncapped
    /// shadow counter charges once per request).
    budget_seen: bool,
    /// When the budget first deferred this request (`u64::MAX`: never);
    /// the latency price accrues from here at eventual dispatch.
    first_defer_ns: u64,
    /// Task indices of the current attempt.
    tasks: Vec<usize>,
    done: bool,
}

/// Driver-side per-device serving state (the kernel owns lanes/queues;
/// usage accounting lives in [`Accounting`]).
#[derive(Debug)]
struct DevExtra {
    /// Requests dispatched and not yet finished whose head lives here.
    inflight: usize,
    admission: AdmissionQueue,
}

/// One resolved traffic source.
#[derive(Debug, Clone)]
struct SourceState {
    name: String,
    /// Universe device index.
    uni: usize,
}

/// One routed encoder of a cached per-model route.
#[derive(Debug, Clone, Copy)]
struct EncRoute {
    module: u32,
    /// Universe device index.
    uni: usize,
    units: f64,
    input_tx_ns: u64,
    output_tx_ns: u64,
}

/// The Eq. 7 route of one deployed model under the current placement
/// and instance *for one traffic source*, with every dispatch-time
/// transfer precomputed. Valid until the next replan; every request of
/// the (model, source) pair shares it.
#[derive(Debug, Clone, Copy)]
struct ModelRoute {
    head_module: u32,
    head_uni: usize,
    head_units: f64,
    /// Raw-query transfer to the head device (generative heads), ns.
    head_query_tx_ns: u64,
    /// Start of this route's encoders in [`Online::route_encs`], in
    /// dispatch order (longest compute first).
    enc_start: u32,
    /// Number of encoders in this route.
    enc_len: u32,
}

/// The online driver: everything scenario-specific the kernel does not
/// own.
struct Online {
    universe: Fleet,
    /// Universe device names, by universe index.
    uni_names: Vec<String>,
    /// Universe indices in lexicographic name order (the iteration
    /// order the string-keyed maps used).
    by_name_order: Vec<usize>,
    slowdown: Vec<Option<f64>>,
    instance: Instance,
    /// The interned hot-path view, behind `Arc` so parallel replicas of
    /// the same scenario share one table set instead of re-interning.
    resolved: Arc<ResolvedInstance>,
    /// Universe index of each resolved (active-fleet) device.
    uni_of_res: Vec<usize>,
    /// Resolved index of each universe device (`None` while inactive).
    res_of_uni: Vec<Option<u32>>,
    placement: Placement,
    /// Traffic sources, in scenario order (rank = index).
    sources: Vec<SourceState>,
    /// Cached route per deployed model and source rank, flattened as
    /// `model * n_sources + source` (`None` = placement cannot serve
    /// it; arrivals shed).
    model_routes: Vec<Option<ModelRoute>>,
    /// Flattened encoder pool: every [`ModelRoute`] names its encoders
    /// as a `(start, len)` slice here, so a route refresh refills one
    /// allocation instead of one `Vec` per (model, source) pair.
    route_encs: Vec<EncRoute>,
    /// Per-module host table reused across route refreshes.
    hosts_scratch: Vec<Vec<u32>>,
    /// Module-route scratch reused across route refreshes.
    route_scratch: Vec<(u32, u32)>,
    /// Dispatch-order scratch (`(module, device, t_compute)`) reused
    /// across route refreshes.
    encs_scratch: Vec<(u32, u32, f64)>,
    /// Universe-indexed migration-cost accumulator
    /// ([`Online::charge_migrations`] scratch).
    migrate_cost: Vec<f64>,
    /// Devices touched by the migration batch being charged.
    migrate_hit: Vec<bool>,
    n_models: usize,
    devices: Vec<DevExtra>,
    /// Per-universe-device execution overhead, amortized when batching
    /// merges runs (mirrors the bounded engine's batch arithmetic).
    exec_overhead_s: Vec<f64>,
    /// Driver-side request table. Slot-indexed (the kernel's request
    /// ids are slots); streaming mode recycles completed/shed slots
    /// through the slab's free list so the table stays O(in-flight).
    requests: Slab<ReqInfo>,
    // --- workload ---
    /// The lazily pulled merged arrival stream: the driver holds at
    /// most one sampled batch (in `arrival_buf`) plus the
    /// constant-size per-source stream states — never the full
    /// materialized schedule. `None` while a stream worker owns it
    /// (sharded mode; see [`parallel`]).
    stream: Option<WorkloadStream>,
    /// Pre-sampled arrival batches from the stream worker, when one is
    /// installed (replaces direct `stream` pulls, same draw order).
    feed: Option<parallel::FeedLink>,
    /// The encoder-shard hand-off link, once a shard is active:
    /// dispatches route owned-device encoder tasks here instead of the
    /// local event queue.
    enc: Option<parallel::EncLink>,
    /// The accounting off-load link, when an accounting worker owns
    /// `acct` (records stream to it in apply order).
    acct_tx: Option<parallel::AcctLink>,
    /// Upcoming arrivals, sampled in batches so the per-source stream
    /// merge amortizes; the event queue still holds at most one future
    /// arrival at a time, and draw order matches one-at-a-time pulls
    /// exactly (the stream owns its generators). Consumed front to
    /// back via `arrival_cursor`, then refilled in place — a plain
    /// `Vec` + index, so the per-arrival reads are straight-line
    /// indexing with no ring-buffer wrap math.
    arrival_buf: Vec<WorkloadRequest>,
    /// Next unconsumed index into `arrival_buf`.
    arrival_cursor: usize,
    /// Arrival sequence counter (`ReqInfo::seq` of the next arrival).
    next_seq: u64,
    /// Per-class `(deadline_ns, priority)` from the scenario's workload
    /// classes, indexed by class id.
    class_table: Vec<(u64, u32)>,
    /// Class names, indexed by class id (report boundary).
    class_names: Vec<String>,
    events: Vec<crate::config::FleetEvent>,
    deadline_ns: u64,
    deadline_s: f64,
    max_inflight: usize,
    horizon_s: f64,
    charge_switching_downtime: bool,
    slo_trigger: Option<SloReplanTrigger>,
    /// Last virtual time the SLO trigger sampled the window, ns.
    last_slo_eval_ns: u64,
    // --- accounting ---
    /// The extracted accounting state ([`crate::accounting`]): applied
    /// inline here in sequential mode, streamed to a worker in sharded
    /// mode.
    acct: Accounting,
    // --- budget ---
    /// Budget-enforcement state (`scenario.budget`); `None` serves
    /// uncapped, byte-identical to the pre-budget engine. Lives on the
    /// session thread only: dispatch is always head-side, so budget
    /// decisions never reach the encoder shard.
    budget: Option<BudgetState>,
    /// Per-universe-device cost rate (spend units per busy second),
    /// priced from the policy's metric. Empty without a budget.
    cost_rates: Vec<f64>,
    /// Per-model route cost under the current placement — head plus
    /// encoder compute seconds, each times its host's rate. Refreshed
    /// with the route cache; empty without a budget.
    route_costs: Vec<f64>,
    /// Re-admission scratch: the deferred heap drains here before
    /// requests re-enter `admit` (which may re-defer into the heap).
    budget_wake_scratch: Vec<Deferred>,
    report: ServeReport,
}

type K = Kernel<ServeEv, TaskInfo>;

/// Boxed error for the kernel-facing hooks: hot-path `Result`s stay
/// pointer-sized; the box is only paid on the (rare) error paths.
type BoxedErr = Box<ServeError>;

impl Driver for Online {
    type Custom = ServeEv;
    type Payload = TaskInfo;
    type Error = BoxedErr;

    #[inline]
    fn dispatched(
        &mut self,
        k: &mut K,
        device: usize,
        group: &[usize],
        now: u64,
    ) -> Result<u64, BoxedErr> {
        // With `batch: None` the group is always a single task (the hot
        // path); under a `BatchPolicy` same-module queued runs merge and
        // the per-execution overhead is paid once — the same arithmetic
        // the bounded engine uses for `SimConfig::max_batch`.
        let rd = self.res_of_uni[device];
        let mut dur_s = 0.0;
        for &tid in group {
            dur_s += match rd {
                Some(rd) => self.resolved.compute_time_units(
                    k.tasks.module(tid),
                    rd,
                    k.tasks.payload(tid).units,
                ),
                // Defensive: the device left between queueing and
                // dispatch (its tasks are normally cancelled first).
                None => 0.1,
            };
        }
        if group.len() > 1 {
            dur_s -= (group.len() - 1) as f64 * self.exec_overhead_s[device];
        }
        let dur_ns = ns(dur_s);
        // The leader owns the lane: busy time (and the device's
        // execution count) charges once per merged run, followers ride
        // along at zero.
        k.tasks.payload_mut(group[0]).dur_ns = dur_ns;
        for &tid in &group[1..] {
            k.tasks.payload_mut(tid).dur_ns = 0;
        }
        Ok(now + dur_ns)
    }

    #[inline]
    fn task_finished(
        &mut self,
        k: &mut K,
        tid: usize,
        _now: u64,
        lane_live: bool,
    ) -> Result<(), BoxedErr> {
        // Only account a task whose lane survived to completion: a
        // leave resets the counter (and bumps the epoch), so stale
        // completions do not charge busy seconds the departed device
        // never finished serving.
        if lane_live {
            self.acct_infallible(ARec::Charge {
                ui: k.tasks.device(tid) as u32,
                dur_ns: k.tasks.payload(tid).dur_ns,
            });
        }
        Ok(())
    }

    #[inline]
    fn encoder_ready_ns(&mut self, k: &mut K, tid: usize, now: u64) -> Result<u64, BoxedErr> {
        Ok(now + k.tasks.payload(tid).output_tx_ns)
    }

    fn head_done(&mut self, k: &mut K, req: usize, now: u64) -> Result<(), BoxedErr> {
        self.complete_request(k, req, now)
    }

    fn device_opened(&mut self, k: &mut K, device: usize, now: u64) -> Result<(), BoxedErr> {
        self.drain_admission(k, device, now);
        Ok(())
    }

    fn custom(&mut self, k: &mut K, event: ServeEv, now: u64) -> Result<(), BoxedErr> {
        match event {
            ServeEv::Fleet(idx) => {
                // Lend the event's kind to the handler without cloning
                // its strings: swap a placeholder in, restore after.
                let at_s = self.events[idx].at_s;
                let kind = std::mem::replace(
                    &mut self.events[idx].kind,
                    FleetEventKind::DeviceJoin {
                        device: String::new(),
                    },
                );
                let out = self.fleet_event(k, &kind, at_s, now);
                self.events[idx].kind = kind;
                out
            }
            ServeEv::Arrival(rid) => {
                self.arrival(k, rid, now);
                Ok(())
            }
            ServeEv::BudgetWake => {
                self.budget_wake(k, now);
                Ok(())
            }
        }
    }
}

impl Online {
    fn uni_index(&self, name: &str) -> Option<usize> {
        self.uni_names.iter().position(|n| n == name)
    }

    /// Rebuilds the instance over the active fleet with slowdowns
    /// applied, re-interning the resolved view and the index maps.
    fn rebuild_instance(&mut self, k: &K) -> Result<(), ServeError> {
        let mut specs = Vec::new();
        let mut uni_of_res = Vec::new();
        for (ui, d) in self.universe.devices().iter().enumerate() {
            if !k.devices[ui].active {
                continue;
            }
            let mut spec = d.clone();
            if let Some(factor) = self.slowdown[ui] {
                spec.speed_gflops = (d.speed_gflops * factor).max(1e-6);
            }
            specs.push(spec);
            uni_of_res.push(ui);
        }
        let fleet = Fleet::new(
            specs,
            self.universe.topology().clone(),
            self.universe.requester().clone(),
        )
        .map_err(ServeError::BadScenario)?;
        self.instance = self.instance.with_fleet(fleet)?;
        self.resolved = Arc::new(ResolvedInstance::new(&self.instance)?);
        self.res_of_uni = vec![None; self.uni_names.len()];
        for (ri, &ui) in uni_of_res.iter().enumerate() {
            self.res_of_uni[ui] = Some(ri as u32);
        }
        self.uni_of_res = uni_of_res;
        Ok(())
    }

    /// Recomputes the per-(model, source) route cache against the
    /// current placement and instance. Called after every placement
    /// change. Allocation-free after warm-up: the host table, the
    /// route/dispatch-order scratch, and the flattened encoder pool all
    /// refill in place.
    fn refresh_model_routes(&mut self) {
        self.resolved
            .resolve_placement_into(&self.placement, &mut self.hosts_scratch);
        let n_sources = self.sources.len();
        self.model_routes.clear();
        self.route_encs.clear();
        self.route_costs.clear();
        let mut route = std::mem::take(&mut self.route_scratch);
        let mut encs = std::mem::take(&mut self.encs_scratch);
        for m in 0..self.n_models {
            let profile = self.resolved.models()[m].profile;
            if !self
                .resolved
                .route_model_into(m, &profile, &self.hosts_scratch, &mut route)
            {
                self.model_routes.extend((0..n_sources).map(|_| None));
                if self.budget.is_some() {
                    // Unroutable models shed at admission, before the
                    // budget gate: the placeholder keeps model indexing.
                    self.route_costs.push(0.0);
                }
                continue;
            }
            let &(head_m, head_d) = route.last().expect("route includes the head");
            let head_kind = self.resolved.module_kind(head_m);
            // Dispatch order: longest compute first, module id (==
            // index) breaking ties — Algorithm 1's send rule. Shared by
            // every source (routing ignores the query's origin).
            encs.clear();
            encs.extend(route[..route.len() - 1].iter().map(|&(em, ed)| {
                let units = profile.units(self.resolved.module_kind(em));
                (em, ed, self.resolved.compute_time_units(em, ed, units))
            }));
            encs.sort_by(|a, b| {
                b.2.partial_cmp(&a.2)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.0.cmp(&b.0))
            });
            if self.budget.is_some() {
                // Price the route once per model (routing ignores the
                // query's origin, so every source shares the cost).
                let head_t =
                    self.resolved
                        .compute_time_units(head_m, head_d, profile.units(head_kind));
                let mut cost = head_t * self.cost_rates[self.uni_of_res[head_d as usize]];
                for &(_, ed, t) in encs.iter() {
                    cost += t * self.cost_rates[self.uni_of_res[ed as usize]];
                }
                self.route_costs.push(cost);
            }
            for src in &self.sources {
                let source = self.res_of_uni[src.uni].expect("sources never leave the fleet");
                let head_query_tx_ns = if head_kind == ModuleKind::LanguageModel {
                    ns(self.resolved.transfer_time(
                        source,
                        head_d,
                        profile.input_bytes(ModuleKind::LanguageModel),
                    ))
                } else {
                    0
                };
                let enc_start = self.route_encs.len() as u32;
                self.route_encs.extend(encs.iter().map(|&(em, ed, _)| {
                    let kind = self.resolved.module_kind(em);
                    let units = profile.units(kind);
                    EncRoute {
                        module: em,
                        uni: self.uni_of_res[ed as usize],
                        units,
                        input_tx_ns: ns(self.resolved.transfer_time(
                            source,
                            ed,
                            profile.input_bytes(kind),
                        )),
                        output_tx_ns: ns(self.resolved.transfer_time(
                            ed,
                            head_d,
                            self.resolved.module_spec(em).output_bytes(units),
                        )),
                    }
                }));
                self.model_routes.push(Some(ModelRoute {
                    head_module: head_m,
                    head_uni: self.uni_of_res[head_d as usize],
                    head_units: profile.units(head_kind),
                    head_query_tx_ns,
                    enc_start,
                    enc_len: self.route_encs.len() as u32 - enc_start,
                }));
            }
        }
        self.route_scratch = route;
        self.encs_scratch = encs;
    }

    /// Offers a request to its head device's admission queue.
    fn admit(&mut self, k: &mut K, rid: usize, now: u64) {
        let (model, source, seq, arrival_ns, deadline_ns, priority) = {
            let r = &self.requests[rid];
            (
                r.model,
                r.source,
                r.seq,
                r.arrival_ns,
                r.deadline_ns,
                r.priority,
            )
        };
        let Some(head_uni) = self.model_routes[model * self.sources.len() + source]
            .as_ref()
            .map(|mr| mr.head_uni)
        else {
            self.record_shed(rid, now);
            return;
        };
        let outcome = self.devices[head_uni].admission.offer(QueuedRequest {
            id: seq,
            handle: self.requests.handle_of(rid).pack(),
            arrival_ns,
            deadline_ns,
            priority,
        });
        if outcome == Admission::Shed {
            self.record_shed(rid, now);
        } else {
            self.drain_admission(k, head_uni, now);
        }
    }

    /// Dispatches queued requests while the device has free request slots.
    fn drain_admission(&mut self, k: &mut K, device: usize, now: u64) {
        loop {
            let popped = {
                let dev = &mut self.devices[device];
                // Empty-queue first: the common case bails without
                // touching the kernel's device table at all.
                if dev.admission.is_empty()
                    || dev.inflight >= self.max_inflight
                    || !k.devices[device].active
                {
                    return;
                }
                dev.admission.pop()
            };
            let Some(qr) = popped else { return };
            let handle = ReqHandle::unpack(qr.handle);
            debug_assert!(self.requests.is_current(handle));
            match self.budget_gate(k, &qr, now) {
                BudgetVerdict::Dispatch => self.dispatch_request(k, handle.slot as usize, now),
                // Parked (or rejected): the pop freed no request slot,
                // so keep draining — EDF pop order already gave this
                // window's headroom to the highest-priority work first.
                BudgetVerdict::Defer => {}
                BudgetVerdict::Shed => self.record_shed(handle.slot as usize, now),
            }
        }
    }

    /// Prices a popped request against the open budget window. Always
    /// `Dispatch` without a budget (the zero-cost fast path).
    fn budget_gate(&mut self, k: &mut K, qr: &QueuedRequest, now: u64) -> BudgetVerdict {
        let Some(budget) = self.budget.as_mut() else {
            return BudgetVerdict::Dispatch;
        };
        let slot = ReqHandle::unpack(qr.handle).slot as usize;
        let (model, class) = {
            let r = &self.requests[slot];
            (r.model, r.class)
        };
        let cost = self.route_costs[model];
        budget.roll(now);
        if !self.requests[slot].budget_seen {
            self.requests[slot].budget_seen = true;
            budget.charge_shadow(cost);
        }
        if budget.fits(cost) {
            budget.charge(cost);
            let first_defer = self.requests[slot].first_defer_ns;
            if first_defer != u64::MAX {
                budget.pay_latency_price(now.saturating_sub(first_defer));
            }
            return BudgetVerdict::Dispatch;
        }
        // The open window cannot afford it. A request whose solo cost
        // exceeds the cap can never fit any window: shed it under every
        // mode rather than park it forever.
        let shed = cost > budget.policy.cap_per_window
            || match budget.policy.enforcement {
                BudgetEnforcement::Shed => true,
                BudgetEnforcement::Defer => false,
                BudgetEnforcement::DeferThenShed => now > qr.deadline_ns,
            };
        if shed {
            budget.note_shed(class);
            return BudgetVerdict::Shed;
        }
        if self.requests[slot].first_defer_ns == u64::MAX {
            self.requests[slot].first_defer_ns = now;
            budget.note_deferred(class);
        }
        budget.push_deferred(Deferred {
            urgency: u32::MAX - qr.priority,
            deadline_ns: qr.deadline_ns,
            arrival_ns: qr.arrival_ns,
            seq: qr.id,
            handle: qr.handle,
        });
        self.schedule_budget_wake(k);
        BudgetVerdict::Defer
    }

    /// Schedules a `BudgetWake` at the next window boundary (deduped:
    /// at most one pending wake) while any request sits parked.
    fn schedule_budget_wake(&mut self, k: &mut K) {
        let Some(budget) = self.budget.as_mut() else {
            return;
        };
        if !budget.has_deferred() {
            return;
        }
        let at = budget.next_window_start_ns();
        if budget.wake_at != Some(at) {
            budget.wake_at = Some(at);
            k.push_custom(at, ServeEv::BudgetWake);
        }
    }

    /// A fresh budget window opened: re-admit every parked request,
    /// EDF order. Re-admission runs through the normal `admit` path, so
    /// a request the new window still cannot afford simply re-parks
    /// (via the drained scratch, never the live heap — no livelock).
    fn budget_wake(&mut self, k: &mut K, now: u64) {
        let mut scratch = std::mem::take(&mut self.budget_wake_scratch);
        {
            let Some(budget) = self.budget.as_mut() else {
                return;
            };
            if budget.wake_at == Some(now) {
                budget.wake_at = None;
            }
            budget.roll(now);
            budget.drain_deferred_into(&mut scratch);
        }
        for d in &scratch {
            let handle = ReqHandle::unpack(d.handle);
            // Parked requests can be resolved elsewhere (an early
            // `finish` sheds them): skip anything no longer live.
            if !self.requests.is_current(handle) || self.requests[handle.slot as usize].done {
                continue;
            }
            self.admit(k, handle.slot as usize, now);
        }
        scratch.clear();
        self.budget_wake_scratch = scratch;
        self.schedule_budget_wake(k);
    }

    /// Expands a request into module tasks from its model's cached route.
    fn dispatch_request(&mut self, k: &mut K, rid: usize, now: u64) {
        let (model, source) = {
            let r = &self.requests[rid];
            (r.model, r.source)
        };
        let Some(mr) = self.model_routes[model * self.sources.len() + source] else {
            self.record_shed(rid, now);
            return;
        };
        let head_uni = mr.head_uni;
        let head_ready = now + mr.head_query_tx_ns;

        let head_task = k.spawn_task(
            rid,
            mr.head_module,
            head_uni,
            true,
            TaskInfo {
                units: mr.head_units,
                output_tx_ns: 0,
                dur_ns: 0,
            },
        );
        // The attempt's task list rebuilds inside the slot's existing
        // buffer (taken so the slab borrow does not overlap the kernel
        // calls below); recycled slots dispatch with zero allocations.
        let mut task_ids = std::mem::take(&mut self.requests[rid].tasks);
        task_ids.clear();
        task_ids.push(head_task);

        // Ready events push inline: task spawning never touches the
        // event queue, so the push sequence (hence the run) is the same
        // as staging them — without a second per-request allocation.
        let encs = mr.enc_start as usize..(mr.enc_start + mr.enc_len) as usize;
        let mut pending = 0usize;
        for ei in encs {
            let e = self.route_encs[ei];
            let tid = k.spawn_task(
                rid,
                e.module,
                e.uni,
                false,
                TaskInfo {
                    units: e.units,
                    output_tx_ns: e.output_tx_ns,
                    dur_ns: 0,
                },
            );
            task_ids.push(tid);
            // An encoder on a shard-owned device executes remotely: the
            // ready event ships over the link (stamped with the same
            // arrival time the local push would have used) instead of
            // entering this kernel's queue. The local task slot stays
            // reserved so ids, fan-in state, and the free list match
            // the sequential run exactly.
            match self.enc.as_mut() {
                Some(link) if link.owned[e.uni] => link.send_ready(
                    now + e.input_tx_ns,
                    parallel::ReadyMsg {
                        tid: tid as u32,
                        req: rid as u32,
                        module: e.module,
                        uni: e.uni as u32,
                        units: e.units,
                        output_tx_ns: e.output_tx_ns,
                    },
                ),
                _ => k.push_ready(now + e.input_tx_ns, tid),
            }
            pending += 1;
        }

        k.set_request(
            rid,
            RequestSlot {
                pending_encoders: pending,
                head_ready_ns: head_ready,
                head_task,
            },
        );
        {
            let r = &mut self.requests[rid];
            r.tasks = task_ids;
            r.inflight_on = Some(head_uni);
        }
        self.devices[head_uni].inflight += 1;

        if pending == 0 {
            k.push_ready(head_ready, head_task);
        }
    }

    /// Applies a record that carries no sink row (those are the only
    /// fallible kind) to the accounting stream.
    #[inline]
    fn acct_infallible(&mut self, rec: ARec) {
        if let Some(link) = self.acct_tx.as_mut() {
            link.push(rec);
            return;
        }
        self.acct
            .apply(rec)
            .expect("only completion records can fail");
    }

    /// Applies any record to the accounting stream: inline in
    /// sequential mode, via the off-load link in sharded mode (where
    /// sink errors surface asynchronously at the next slice boundary).
    #[inline]
    fn acct_apply(&mut self, rec: ARec) -> Result<(), BoxedErr> {
        if let Some(link) = self.acct_tx.as_mut() {
            link.push(rec);
            return Ok(());
        }
        self.acct.apply(rec).map_err(Box::new)
    }

    fn complete_request(&mut self, k: &mut K, rid: usize, now: u64) -> Result<(), BoxedErr> {
        let (arrival_ns, deadline_ns, head_dev, class) = {
            let r = &mut self.requests[rid];
            r.done = true;
            (r.arrival_ns, r.deadline_ns, r.inflight_on.take(), r.class)
        };
        if let Some(ui) = head_dev {
            self.devices[ui].inflight = self.devices[ui].inflight.saturating_sub(1);
        }
        let latency = secs(now - arrival_ns);
        let missed = now > deadline_ns;
        self.acct_apply(ARec::Complete {
            arrival_ns,
            finish_ns: now,
            device: head_dev.map_or(u32::MAX, |u| u as u32),
            class,
            missed,
            latency_s: latency,
        })?;
        if let Some(ui) = head_dev {
            self.drain_admission(k, ui, now);
        }
        self.maybe_slo_replan(k, now)?;
        // The request is fully accounted: release its slot (a no-op in
        // exact mode, where the slab is append-only).
        self.requests.free(rid);
        Ok(())
    }

    fn record_shed(&mut self, rid: usize, now: u64) {
        let (deadline_ns, arrival_ns, class) = {
            let r = &mut self.requests[rid];
            r.done = true;
            (r.deadline_ns, r.arrival_ns, r.class)
        };
        // A shed request is an SLO miss; the window records it at the
        // deadline bound so percentiles reflect the rejection.
        self.acct_infallible(ARec::Shed {
            at_s: secs(now),
            latency_s: secs(deadline_ns.saturating_sub(arrival_ns)),
            class,
        });
        self.requests.free(rid);
    }

    /// Cancels a request's current attempt and re-admits it.
    fn requeue_request(&mut self, k: &mut K, handle: ReqHandle, now: u64) {
        // A stale handle means the slot was resolved (and possibly
        // reused) since the caller collected it; nothing to requeue.
        if !self.requests.is_current(handle) {
            return;
        }
        let rid = handle.slot as usize;
        if self.requests[rid].done {
            return;
        }
        if let Some(ui) = self.requests[rid].inflight_on.take() {
            self.devices[ui].inflight = self.devices[ui].inflight.saturating_sub(1);
        }
        // Cancel in place — the task list is cleared rather than taken,
        // so the slot keeps its buffer for the next attempt. Only
        // cancel a task that still belongs to this attempt: with task
        // recycling, finished slots may already host another request's
        // task.
        for i in 0..self.requests[rid].tasks.len() {
            let tid = self.requests[rid].tasks[i];
            if k.tasks.req(tid) == rid && !k.tasks.finished(tid) {
                k.tasks.cancel(tid);
            }
        }
        self.requests[rid].tasks.clear();
        self.report.retried += 1;
        self.admit(k, rid, now);
    }

    /// Charges accepted migrations as downtime on their destination
    /// devices and schedules scheduler wake-ups when the weights land.
    fn charge_migrations(
        &mut self,
        k: &mut K,
        now: u64,
        migrations: &[s2m3_core::adaptive::Migration],
    ) {
        // Accumulate per-destination cost in universe-indexed scratch;
        // the name-ordered sweep below reproduces the event order the
        // old string-keyed map iteration gave — including the wake-up
        // pushed for zero-cost destinations.
        for m in migrations {
            let ui = self
                .uni_index(m.to.as_str())
                .expect("migration target exists");
            self.migrate_cost[ui] += m.cost_s;
            self.migrate_hit[ui] = true;
        }
        for i in 0..self.by_name_order.len() {
            let ui = self.by_name_order[i];
            if !self.migrate_hit[ui] {
                continue;
            }
            let cost = self.migrate_cost[ui];
            self.migrate_hit[ui] = false;
            self.migrate_cost[ui] = 0.0;
            let dev = &mut k.devices[ui];
            dev.open_at_ns = dev.open_at_ns.max(now + ns(cost));
            // Wake the scheduler when the weights finish loading;
            // without this, queued tasks could strand on a device
            // that receives no further events.
            let at = dev.open_at_ns;
            k.push_device_open(at, ui);
        }
    }

    /// Re-keys every waiting request against the current placement,
    /// oldest arrivals first.
    fn rekey_waiting(&mut self, k: &mut K, now: u64) {
        let mut waiting: Vec<QueuedRequest> = Vec::new();
        for i in 0..self.by_name_order.len() {
            let ui = self.by_name_order[i];
            waiting.extend(self.devices[ui].admission.drain());
        }
        waiting.sort_by_key(|qr| (qr.arrival_ns, qr.id));
        for qr in waiting {
            self.admit(k, ReqHandle::unpack(qr.handle).slot as usize, now);
        }
    }

    /// One dispatch + admission round over every device, in name order.
    fn kick_all(&mut self, k: &mut K, now: u64) -> Result<(), BoxedErr> {
        for i in 0..self.by_name_order.len() {
            let ui = self.by_name_order[i];
            k.try_dispatch(ui, now, self)?;
            self.drain_admission(k, ui, now);
        }
        Ok(())
    }

    /// Applies one fleet event and runs the replan controller.
    fn fleet_event(
        &mut self,
        k: &mut K,
        kind: &FleetEventKind,
        at_s: f64,
        now: u64,
    ) -> Result<(), BoxedErr> {
        let description = match kind {
            FleetEventKind::DeviceJoin { device } => {
                let Some(ui) = self.uni_index(device) else {
                    return Err(Box::new(ServeError::BadScenario(format!(
                        "unknown device `{device}` in join event"
                    ))));
                };
                if k.devices[ui].active {
                    return Err(Box::new(ServeError::BadScenario(format!(
                        "device `{device}` joined but was already active"
                    ))));
                }
                k.devices[ui].active = true;
                self.acct_infallible(ARec::Join {
                    ui: ui as u32,
                    at_s,
                });
                format!("{device} joins")
            }
            FleetEventKind::DeviceLeave { device } => {
                if device == self.universe.requester().as_str() {
                    return Err(Box::new(ServeError::BadScenario(format!(
                        "requester {device} cannot leave the fleet"
                    ))));
                }
                if self.sources.iter().any(|s| &s.name == device) {
                    return Err(Box::new(ServeError::BadScenario(format!(
                        "traffic source {device} cannot leave the fleet"
                    ))));
                }
                let leaving = self.uni_index(device).filter(|&ui| k.devices[ui].active);
                let Some(ui) = leaving else {
                    return Err(Box::new(ServeError::BadScenario(format!(
                        "device `{device}` left but was not active"
                    ))));
                };
                k.devices[ui].active = false;
                self.acct_infallible(ARec::Leave {
                    ui: ui as u32,
                    at_s,
                });
                format!("{device} leaves")
            }
            FleetEventKind::DeviceSlowdown { device, factor } => {
                let slowed = self.uni_index(device).filter(|&ui| k.devices[ui].active);
                let Some(ui) = slowed else {
                    return Err(Box::new(ServeError::BadScenario(format!(
                        "device `{device}` slowed but is not active"
                    ))));
                };
                self.slowdown[ui] = Some(factor.max(1e-3));
                format!("{device} slows to {factor:.2}x")
            }
        };
        self.report.events.push(EventRecord {
            at_s,
            description: description.clone(),
        });

        // Collect every request disturbed by a leave: queued in the
        // departed device's admission queue, or with live tasks there.
        // Keyed `(seq, handle)` so re-admission runs oldest-arrival
        // first regardless of slab slot numbering.
        let mut disturbed: BTreeSet<(u64, u64)> = BTreeSet::new();
        if let FleetEventKind::DeviceLeave { device } = kind {
            let ui = self.uni_index(device).expect("validated above");
            for qr in self.devices[ui].admission.drain() {
                disturbed.insert((qr.id, qr.handle));
            }
            self.devices[ui].inflight = 0;
            // Scan for stranded live tasks *before* resetting the
            // lanes: with task recycling the reset releases the
            // device's queued task slots, severing their request links.
            for tid in 0..k.tasks.len() {
                if k.tasks.cancelled(tid) || k.tasks.finished(tid) || k.tasks.device(tid) != ui {
                    continue;
                }
                let req = k.tasks.req(tid);
                if !self.requests[req].done {
                    let seq = self.requests[req].seq;
                    disturbed.insert((seq, self.requests.handle_of(req).pack()));
                }
            }
            k.reset_device_lanes(ui);
        }

        self.rebuild_instance(k).map_err(Box::new)?;

        // Replan controller: mandatory switches always apply; optional
        // ones must amortize within the horizon at the observed rate.
        // (`rebuild_instance` never touches the placement and the gate
        // only swaps it on accept, so replanning reads the current
        // placement in place — no clone.)
        let decision =
            replan(&self.instance, &self.placement).map_err(|e| Box::new(ServeError::Core(e)))?;
        let accepted = self.gate_and_apply_replan(k, decision, description, at_s, now, 0);
        if !accepted {
            // Keep serving on the surviving subset of the old
            // placement: drop departed hosts in place.
            let uni_names = &self.uni_names;
            let devices = &k.devices;
            self.placement.retain(|_, d| {
                uni_names
                    .iter()
                    .position(|n| n == d.as_str())
                    .is_some_and(|ui| devices[ui].active)
            });
        }
        self.refresh_model_routes();

        // Re-key every waiting request against the (possibly new)
        // placement, oldest arrivals first, then re-admit the disturbed.
        self.rekey_waiting(k, now);
        for (_, handle) in disturbed {
            self.requeue_request(k, ReqHandle::unpack(handle), now);
        }
        self.kick_all(k, now)
    }

    /// Requests waiting in admission queues across the fleet — the
    /// backlog a replan would drain.
    fn total_queued(&self) -> u64 {
        self.devices.iter().map(|d| d.admission.len() as u64).sum()
    }

    /// Mean per-request route cost (over routable models) the fleet
    /// would pay under `placement`, priced by the active cost rates.
    /// Clobbers the routing scratch — callers always run
    /// [`Online::refresh_model_routes`] after any placement change, so
    /// the scratch is re-derived either way.
    fn mean_route_cost(&mut self, placement: &Placement) -> f64 {
        self.resolved
            .resolve_placement_into(placement, &mut self.hosts_scratch);
        let mut route = std::mem::take(&mut self.route_scratch);
        let mut total = 0.0;
        let mut routable = 0usize;
        for m in 0..self.n_models {
            let profile = self.resolved.models()[m].profile;
            if !self
                .resolved
                .route_model_into(m, &profile, &self.hosts_scratch, &mut route)
            {
                continue;
            }
            // The route's last entry is the head: summing every module
            // covers head + encoders alike.
            let mut cost = 0.0;
            for &(em, ed) in route.iter() {
                let units = profile.units(self.resolved.module_kind(em));
                cost += self.resolved.compute_time_units(em, ed, units)
                    * self.cost_rates[self.uni_of_res[ed as usize]];
            }
            total += cost;
            routable += 1;
        }
        self.route_scratch = route;
        if routable == 0 {
            0.0
        } else {
            total / routable as f64
        }
    }

    /// The shared replan gate: computes the observed-rate break-even
    /// acceptance test, records the evaluation in the report, and — if
    /// accepted — installs the new placement and charges migration
    /// downtime. Both the fleet-event controller and the SLO-breach
    /// trigger go through here, so the gate cannot diverge between
    /// them. Returns whether the switch was accepted.
    ///
    /// `queued` is the queue-drain credit
    /// ([`ReplanDecision::break_even_requests_with_queue`]): waiting
    /// requests realize the per-request gain immediately, so an
    /// overloaded fleet accepts earlier than the steady-state gate
    /// would. The fleet-event path passes 0 (pure steady-state, the
    /// byte-pinned historic behavior); the SLO-breach path — which only
    /// fires *because* of backlog symptoms — passes the live queue
    /// depth. The record keeps the steady-state break-even so both
    /// paths stay comparable in reports.
    ///
    /// [`ReplanDecision::break_even_requests_with_queue`]:
    /// s2m3_core::adaptive::ReplanDecision::break_even_requests_with_queue
    fn gate_and_apply_replan(
        &mut self,
        k: &mut K,
        decision: s2m3_core::adaptive::ReplanDecision,
        trigger: String,
        at_s: f64,
        now: u64,
        queued: u64,
    ) -> bool {
        let observed_rate = if now == 0 {
            0.0
        } else {
            self.report.arrived as f64 / secs(now)
        };
        let expected_in_horizon = observed_rate * self.horizon_s;
        let break_even = decision.break_even_requests();
        let effective = decision.break_even_requests_with_queue(queued);
        // Budget-feasibility term: a candidate whose steady-state spend
        // (observed rate × window × mean route cost) would breach the
        // cap is rejected before the latency comparison. Mandatory
        // switches bypass it — refusing them would strand the fleet.
        let budget_feasible = match self
            .budget
            .as_ref()
            .map(|b| (b.policy.window_s, b.policy.cap_per_window))
        {
            Some((window_s, cap)) if !decision.mandatory() => {
                observed_rate * window_s * self.mean_route_cost(&decision.placement) <= cap
            }
            _ => true,
        };
        let accepted = decision.mandatory()
            || (budget_feasible
                && matches!(effective, Some(b) if (b as f64) <= expected_in_horizon));
        self.report.replans.push(ReplanRecord {
            at_s,
            trigger,
            mandatory: decision.mandatory(),
            break_even_requests: break_even,
            observed_rate_per_s: observed_rate,
            accepted,
            switching_cost_s: if accepted {
                decision.switching_cost_s
            } else {
                0.0
            },
            migrations: if accepted {
                decision.migrations.len()
            } else {
                0
            },
        });
        if accepted {
            let migrations = decision.migrations;
            self.placement = decision.placement;
            if self.charge_switching_downtime {
                self.charge_migrations(k, now, &migrations);
            }
        }
        accepted
    }

    /// The SLO-breach replan path ([`ReplanPolicy::slo_trigger`]): at
    /// most once per cooldown, sample the rolling window; when its p95
    /// exceeds the deadline and a migration is on the table, run the
    /// same break-even gate the fleet-event controller uses.
    ///
    /// [`ReplanPolicy::slo_trigger`]: crate::config::ReplanPolicy
    fn maybe_slo_replan(&mut self, k: &mut K, now: u64) -> Result<(), BoxedErr> {
        let Some(trig) = self.slo_trigger else {
            return Ok(());
        };
        // `min_window` is clamped to the ring's capacity: a scenario
        // whose `slo_window` is smaller than the trigger's arming
        // threshold would otherwise never evaluate.
        let arm_at = trig.min_window.max(1).min(self.acct.slo.capacity());
        if self.acct.slo.len() < arm_at
            || now
                < self
                    .last_slo_eval_ns
                    .saturating_add(ns(trig.cooldown_s.max(0.0)))
        {
            return Ok(());
        }
        self.last_slo_eval_ns = now;
        let snap = self.acct.slo.snapshot(secs(now));
        if snap.p95_s <= self.deadline_s {
            return Ok(());
        }
        let decision =
            replan(&self.instance, &self.placement).map_err(|e| Box::new(ServeError::Core(e)))?;
        if decision.migrations.is_empty() {
            // The breach is real but greedy has nothing better to offer
            // (pure overload): no decision to record.
            return Ok(());
        }
        let trigger = format!(
            "SLO breach: rolling p95 {:.2}s exceeds {:.2}s deadline",
            snap.p95_s, self.deadline_s
        );
        let queued = self.total_queued();
        if self.gate_and_apply_replan(k, decision, trigger, secs(now), now, queued) {
            self.refresh_model_routes();
            self.rekey_waiting(k, now);
            self.kick_all(k, now)?;
        }
        Ok(())
    }

    /// Arrivals sampled from the workload stream per buffer refill.
    const ARRIVAL_BATCH: usize = 64;

    /// The next unscheduled arrival, sampling a fresh batch from the
    /// stream when the buffer runs dry. Draws stay in stream order, so
    /// batching is invisible to the generated workload.
    fn peek_arrival(&mut self) -> Option<&WorkloadRequest> {
        if self.arrival_cursor == self.arrival_buf.len() {
            self.arrival_cursor = 0;
            if let Some(feed) = self.feed.as_ref() {
                // Sharded mode: swap in the stream worker's next
                // pre-sampled batch and return the spent buffer as a
                // credit. A closed channel (stream dry, worker gone)
                // reads as an empty batch.
                let batch = feed.rx.recv().unwrap_or_default();
                let spent = std::mem::replace(&mut self.arrival_buf, batch);
                let _ = feed.credit.send(spent);
            } else {
                self.arrival_buf.clear();
                let stream = self
                    .stream
                    .as_mut()
                    .expect("sequential mode retains the stream");
                for _ in 0..Self::ARRIVAL_BATCH {
                    match stream.next_request() {
                        Some(r) => self.arrival_buf.push(r),
                        None => break,
                    }
                }
            }
        }
        self.arrival_buf.get(self.arrival_cursor)
    }

    fn arrival(&mut self, k: &mut K, rid: usize, now: u64) {
        self.report.arrived += 1;
        let rec = *self
            .arrival_buf
            .get(self.arrival_cursor)
            .expect("arrival event fired without a buffered record");
        self.arrival_cursor += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        debug_assert_eq!(seq as usize, rid);
        // A classed request carries its own SLO; unclassed requests use
        // the scenario-wide deadline at priority 0.
        let (deadline_ns, priority) = match rec.class {
            Some(ci) => self.class_table[ci as usize],
            None => (self.deadline_ns, 0),
        };
        if let Some(ci) = rec.class {
            self.acct_infallible(ARec::ClassArrived { class: ci });
        }
        // `insert_with` resets every field in place: a recycled slot
        // keeps its task buffer's capacity instead of dropping it.
        let handle = self.requests.insert_with(|r| {
            r.seq = seq;
            r.arrival_ns = now;
            r.deadline_ns = now + deadline_ns;
            r.source = rec.source as usize;
            r.model = rec.model as usize;
            r.priority = priority;
            r.class = rec.class;
            r.inflight_on = None;
            r.budget_seen = false;
            r.first_defer_ns = u64::MAX;
            r.tasks.clear();
            r.done = false;
        });
        let slot = handle.slot as usize;
        k.set_request(slot, RequestSlot::default());
        // Schedule the next arrival lazily: the event queue holds at
        // most one future arrival at a time.
        if let Some(at_ns) = self.peek_arrival().map(|r| r.at_ns) {
            k.push_custom(at_ns, ServeEv::Arrival(rid + 1));
        }
        self.admit(k, slot, now);
    }

    fn finish(mut self) -> ServeReport {
        let now = self.acct.last_completion_ns;
        // Flush everything still unresolved so arrivals always balance:
        // first the admission queues (a bug if non-empty after an idle
        // run), then any request caught mid-flight — which exists only
        // when a session is finished before running to idle (its kernel
        // events are dropped with the session, so the request can never
        // complete; shedding it keeps `arrived == completed + shed`).
        let leftover: Vec<usize> = self
            .by_name_order
            .clone()
            .into_iter()
            .flat_map(|ui| self.devices[ui].admission.drain())
            .map(|qr| ReqHandle::unpack(qr.handle).slot as usize)
            .collect();
        for rid in leftover {
            self.record_shed(rid, now);
        }
        // Mid-flight requests, shed oldest arrival first: seq order is
        // slot order in exact mode (byte-identical to the historic
        // scan) and keeps streaming mode deterministic under slot
        // reuse.
        let mut inflight: Vec<(u64, usize)> = self
            .requests
            .iter_occupied()
            .filter(|(_, r)| !r.done)
            .map(|(slot, r)| (r.seq, slot))
            .collect();
        inflight.sort_unstable();
        for (_, rid) in inflight {
            self.record_shed(rid, now);
        }

        // Flush the sink's buffered tail. Best-effort: `finish()` has
        // no error channel, and every full row group already surfaced
        // its write errors through `complete_request`.
        if let Some(w) = self.acct.sink.take() {
            let _ = w.finish();
        }

        // Fold the extracted accounting state into the report.
        self.report.completed = self.acct.completed;
        self.report.late = self.acct.late;
        self.report.shed = self.acct.shed;
        self.report.windows = std::mem::take(&mut self.acct.windows);

        let now_s = secs(now);
        self.report.makespan_s = now_s;
        self.report.latency = self.acct.latencies.summarize();
        self.report.throughput_per_s = if now_s > 0.0 {
            self.report.completed as f64 / now_s
        } else {
            0.0
        };
        self.report.miss_rate = if self.report.arrived == 0 {
            0.0
        } else {
            (self.report.late + self.report.shed) as f64 / self.report.arrived as f64
        };
        // Final rolling-window snapshot (unless one just landed there).
        if self.acct.slo.total_seen() != self.acct.last_snapshot_seen {
            let mut final_snap = self.acct.slo.snapshot(now_s);
            final_snap.utilization = self.acct.utilization(now_s);
            self.report.windows.push(final_snap);
        }
        let class_names = std::mem::take(&mut self.class_names);
        let mut class_stats = std::mem::take(&mut self.acct.class_stats);
        self.report.classes = class_names
            .iter()
            .zip(class_stats.iter_mut())
            .map(|(name, cs)| ClassReport {
                class: name.clone(),
                arrived: cs.arrived,
                completed: cs.completed,
                shed: cs.shed,
                late: cs.late,
                miss_rate: if cs.arrived == 0 {
                    0.0
                } else {
                    (cs.late + cs.shed) as f64 / cs.arrived as f64
                },
                latency: cs.latencies.summarize(),
            })
            .collect();
        self.report.devices = self
            .by_name_order
            .iter()
            .map(|&ui| {
                let u = &self.acct.usage[ui];
                DeviceReport {
                    device: self.uni_names[ui].clone(),
                    executions: self.acct.executions[ui],
                    busy_s: u.busy_s,
                    active_s: u.active_total_s(now_s),
                    utilization: u.utilization(now_s),
                }
            })
            .collect();
        if let Some(budget) = self.budget.take() {
            let priorities: Vec<u32> = self.class_table.iter().map(|&(_, p)| p).collect();
            self.report.budget = Some(budget.finish(&class_names, &priorities));
        }
        self.report
    }
}

/// Builds the [`CostModel`](s2m3_core::CostModel) a budget metric
/// prices busy device-seconds with.
fn budget_cost_model(metric: &BudgetMetric) -> s2m3_core::CostModel {
    match metric {
        BudgetMetric::DeviceSeconds => s2m3_core::CostModel::uniform(1.0),
        BudgetMetric::Custom { per_device_rate } => s2m3_core::CostModel::uniform(*per_device_rate),
        // Marginal energy: joules per busy second above idle, from the
        // simulator's default power profiles. Unprofiled devices cost
        // nothing (the model's default rate stays 0).
        BudgetMetric::Energy => {
            let mut model = s2m3_core::CostModel::uniform(0.0);
            for (device, profile) in s2m3_sim::energy::default_profiles() {
                model.set_rate(device, (profile.active_w - profile.idle_w).max(0.0));
            }
            model
        }
    }
}

/// Resolves the scenario's universe fleet by name.
fn universe_fleet(fleet: &str) -> Result<Fleet, ServeError> {
    match fleet {
        "edge" => Ok(Fleet::edge_testbed()),
        "standard" => Ok(Fleet::standard_testbed()),
        other => Err(ServeError::BadScenario(format!(
            "unknown fleet `{other}` (edge|standard)"
        ))),
    }
}

/// Resolves the scenario's initial membership over `uni_names`,
/// validating every name and that the requester starts active.
fn initial_active(
    scenario: &ServeScenario,
    uni_names: &[String],
    requester: &str,
) -> Result<Vec<bool>, ServeError> {
    let mut active = vec![false; uni_names.len()];
    for name in &scenario.initial_devices {
        let Some(ui) = uni_names.iter().position(|n| n == name) else {
            return Err(ServeError::BadScenario(format!(
                "initial device `{name}` is not in the {} fleet",
                scenario.fleet
            )));
        };
        active[ui] = true;
    }
    let requester_active = uni_names
        .iter()
        .position(|n| n == requester)
        .is_some_and(|ui| active[ui]);
    if !requester_active {
        return Err(ServeError::BadScenario(format!(
            "initial devices must include the requester `{requester}`"
        )));
    }
    Ok(active)
}

/// The replica-invariant prefix of a serving run: the initial instance,
/// its interned [`ResolvedInstance`] view, and the greedy starting
/// placement. These depend only on the scenario's fleet, initial
/// devices, and model set — not on its seed, traffic, or events — so a
/// sweep builds one `SharedStart` per grid cell and every seeded
/// replica clones the `Arc` instead of re-interning the tables.
///
/// Produced by [`prepare`]; consumed by [`ServeSession::with_shared`].
#[derive(Debug, Clone)]
pub struct SharedStart {
    /// Scenario bits the shared state was derived from, re-validated at
    /// session construction so a `SharedStart` cannot silently be
    /// replayed against a different deployment.
    fleet: String,
    initial_devices: Vec<String>,
    models: Vec<(String, usize)>,
    instance: Instance,
    resolved: Arc<ResolvedInstance>,
    placement: Placement,
}

impl SharedStart {
    /// The shared interned view (one allocation for all replicas).
    pub fn resolved(&self) -> &Arc<ResolvedInstance> {
        &self.resolved
    }

    /// Whether `scenario` deploys the same fleet, initial devices, and
    /// models this shared start was built from.
    pub fn matches(&self, scenario: &ServeScenario) -> bool {
        self.fleet == scenario.fleet
            && self.initial_devices == scenario.initial_devices
            && self.models.len() == scenario.models.len()
            && self
                .models
                .iter()
                .zip(&scenario.models)
                .all(|(a, b)| a.0 == b.name && a.1 == b.candidates)
    }
}

/// Builds the replica-invariant prefix of a serving run once: initial
/// fleet → [`Instance`] → `Arc<`[`ResolvedInstance`]`>` → greedy
/// placement. [`ServeSession::new`] calls this internally; sweeps call
/// it per grid cell and fan the result out with
/// [`ServeSession::with_shared`].
///
/// # Errors
///
/// [`ServeError::BadScenario`] on inconsistent configuration;
/// [`ServeError::Core`] if placement fails.
pub fn prepare(scenario: &ServeScenario) -> Result<SharedStart, ServeError> {
    let universe = universe_fleet(&scenario.fleet)?;
    if scenario.models.is_empty() {
        return Err(ServeError::BadScenario("no models deployed".into()));
    }
    let uni_names: Vec<String> = universe
        .devices()
        .iter()
        .map(|d| d.id.as_str().to_string())
        .collect();
    let requester = universe.requester().as_str().to_string();
    let active = initial_active(scenario, &uni_names, &requester)?;
    let initial_fleet = {
        let devices: Vec<_> = universe
            .devices()
            .iter()
            .zip(&active)
            .filter(|(_, &a)| a)
            .map(|(d, _)| d.clone())
            .collect();
        Fleet::new(
            devices,
            universe.topology().clone(),
            universe.requester().clone(),
        )
        .map_err(ServeError::BadScenario)?
    };
    let model_pairs: Vec<(&str, usize)> = scenario
        .models
        .iter()
        .map(|m| (m.name.as_str(), m.candidates))
        .collect();
    let instance = Instance::on_fleet(initial_fleet, &model_pairs)?;
    let resolved = Arc::new(ResolvedInstance::new(&instance)?);
    let placement = greedy_place_resolved(&resolved, PlacementOptions::default())?;
    Ok(SharedStart {
        fleet: scenario.fleet.clone(),
        initial_devices: scenario.initial_devices.clone(),
        models: scenario
            .models
            .iter()
            .map(|m| (m.name.clone(), m.candidates))
            .collect(),
        instance,
        resolved,
        placement,
    })
}

/// A serving run as a *resumable* session over the shared kernel: run
/// it in slices of virtual time ([`ServeSession::run_until`]), pause,
/// resume, and [`ServeSession::finish`] when idle. Pausing is
/// invisible: any schedule of `run_until` calls followed by
/// [`ServeSession::run_to_idle`] yields a report byte-identical to an
/// uninterrupted [`serve`] (property-tested in this crate).
pub struct ServeSession {
    kernel: K,
    driver: Online,
    /// Parallel backend state (`ServeScenario::threads ≥ 2`). Declared
    /// after `driver` so the links disconnect before the pool joins.
    par: Option<parallel::Par>,
}

impl ServeSession {
    /// Builds the session: universe fleet, initial placement, merged
    /// arrival stream, kernel state.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadScenario`] on inconsistent configuration;
    /// [`ServeError::Core`] if placement or routing fails.
    pub fn new(scenario: &ServeScenario) -> Result<Self, ServeError> {
        ServeSession::with_shared(scenario, &prepare(scenario)?)
    }

    /// Builds the session from a prepared [`SharedStart`], sharing its
    /// `Arc<ResolvedInstance>` instead of re-interning: the constructor
    /// parallel sweeps use for every replica of a grid cell. Behavior
    /// is byte-identical to [`ServeSession::new`] on the same scenario.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadScenario`] when `shared` was prepared for a
    /// different fleet/devices/models (or the scenario is otherwise
    /// inconsistent); [`ServeError::Core`] if routing fails.
    pub fn with_shared(scenario: &ServeScenario, shared: &SharedStart) -> Result<Self, ServeError> {
        if !shared.matches(scenario) {
            return Err(ServeError::BadScenario(
                "shared start was prepared for a different fleet/devices/models".into(),
            ));
        }
        // --- Universe fleet and initial membership. ---
        let universe = universe_fleet(&scenario.fleet)?;
        if scenario.requests == 0 {
            return Err(ServeError::BadScenario("empty request stream".into()));
        }
        let uni_names: Vec<String> = universe
            .devices()
            .iter()
            .map(|d| d.id.as_str().to_string())
            .collect();
        let by_name_order = {
            let mut order: Vec<usize> = (0..uni_names.len()).collect();
            order.sort_by(|&a, &b| uni_names[a].cmp(&uni_names[b]));
            order
        };
        let requester = universe.requester().as_str().to_string();
        let active = initial_active(scenario, &uni_names, &requester)?;

        // --- The merged arrival stream, from the unified workload
        //     layer: sim and serve share this generator (see
        //     `s2m3_sim::workload::WorkloadSpec`). An empty source list
        //     is the classic single-source scenario: the requester
        //     emits `scenario.arrivals` under the scenario seed
        //     (bit-for-bit the pre-workload stream).
        let workload = scenario.workload();
        let model_names: Vec<String> = scenario.models.iter().map(|m| m.name.clone()).collect();
        let stream = workload
            .stream(scenario.requests, &model_names)
            .map_err(|e| ServeError::BadScenario(e.to_string()))?;
        let mut sources = Vec::with_capacity(workload.sources.len());
        for spec in &workload.sources {
            let name = spec.device.clone().unwrap_or_else(|| requester.clone());
            let Some(ui) = uni_names.iter().position(|n| *n == name) else {
                return Err(ServeError::BadScenario(format!(
                    "traffic source `{name}` is not in the {} fleet",
                    scenario.fleet
                )));
            };
            if !active[ui] {
                return Err(ServeError::BadScenario(format!(
                    "traffic source `{name}` must be active at t = 0"
                )));
            }
            sources.push(SourceState { name, uni: ui });
        }
        let class_table: Vec<(u64, u32)> = workload
            .classes
            .iter()
            .map(|c| (ns(c.class.deadline_s.max(1e-3)), c.class.priority))
            .collect();
        let class_names: Vec<String> = workload
            .classes
            .iter()
            .map(|c| c.class.name.clone())
            .collect();
        let streaming = scenario.streaming.is_some();
        let class_stats: Vec<ClassStats> = (0..class_names.len())
            .map(|_| ClassStats {
                latencies: LatAgg::new(streaming, 0),
                ..ClassStats::default()
            })
            .collect();

        // --- Budget enforcement: validate the policy and price every
        //     universe device once (rates never change mid-run). ---
        let budget = match &scenario.budget {
            Some(policy) => {
                policy.validate().map_err(ServeError::BadScenario)?;
                Some(BudgetState::new(policy.clone(), class_names.len()))
            }
            None => None,
        };
        let cost_rates: Vec<f64> = match &scenario.budget {
            Some(policy) => {
                let cost_model = budget_cost_model(&policy.metric);
                uni_names
                    .iter()
                    .map(|n| cost_model.rate(&n.as_str().into()))
                    .collect()
            }
            None => Vec::new(),
        };

        // --- Instance, placement, resolved index maps: the
        //     replica-invariant prefix, shared instead of rebuilt. ---
        let instance = shared.instance.clone();
        let resolved = Arc::clone(&shared.resolved);
        let placement = shared.placement.clone();
        let uni_of_res: Vec<usize> = (0..uni_names.len()).filter(|&ui| active[ui]).collect();
        let mut res_of_uni: Vec<Option<u32>> = vec![None; uni_names.len()];
        for (ri, &ui) in uni_of_res.iter().enumerate() {
            res_of_uni[ui] = Some(ri as u32);
        }
        let n_models = instance.deployments().len();

        // --- Kernel + driver device state over the whole universe. ---
        let lane_devices: Vec<LaneDevice> = universe
            .devices()
            .iter()
            .enumerate()
            .map(|(ui, d)| {
                let mut lanes = LaneDevice::new(d.parallelism.max(1), 0);
                lanes.active = active[ui];
                lanes
            })
            .collect();
        let devices: Vec<DevExtra> = universe
            .devices()
            .iter()
            .map(|_| DevExtra {
                inflight: 0,
                admission: AdmissionQueue::new(scenario.admission.clone()),
            })
            .collect();
        let usage: Vec<DeviceUsage> = universe
            .devices()
            .iter()
            .enumerate()
            .map(|(ui, d)| DeviceUsage {
                busy_s: 0.0,
                active_since_s: 0.0,
                active_s: 0.0,
                active: active[ui],
                lanes: d.parallelism.max(1),
            })
            .collect();

        let mut events = scenario.events.clone();
        events.sort_by(|a, b| {
            a.at_s
                .partial_cmp(&b.at_s)
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        // Tasks per request: one head plus one per encoder; size for
        // the largest deployed fan-out so the table never reallocates.
        let max_fanout = 1 + resolved
            .models()
            .iter()
            .map(|m| m.encoders.len())
            .max()
            .unwrap_or(0);
        // Batching policy: `None` keeps the singleton fast path (and
        // the golden fixtures); a `BatchPolicy` enables the kernel's
        // same-module merge with per-module caps resolved from the
        // per-kind overrides (module interning is stable across fleet
        // rebuilds — the model set never changes — so the cap table
        // survives replans).
        let batch = scenario.batch.as_ref().map(|b| b.max_batch.max(1));
        let module_batch_caps: Vec<usize> = match &scenario.batch {
            Some(b) if !b.per_kind.is_empty() => (0..resolved.module_count() as u32)
                .map(|m| {
                    let kind = resolved.module_kind(m);
                    b.per_kind
                        .iter()
                        .find(|c| c.kind == kind)
                        .map_or(b.max_batch.max(1), |c| c.max_batch.max(1))
                })
                .collect(),
            _ => Vec::new(),
        };
        // Streaming runs are unbounded by design: capacity hints clamp
        // to the in-flight scale (tables recycle and stay small)
        // instead of pre-pinning O(requests) memory up front. Task-slot
        // recycling is on in both modes — task ids are invisible to
        // every report, so the exact path stays byte-identical while
        // the table keeps O(in-flight) growth.
        let cap_requests = if streaming {
            scenario.requests.min(1024)
        } else {
            scenario.requests
        };
        let sink = match scenario.streaming.as_ref().and_then(|c| c.sink.as_deref()) {
            Some(path) => {
                let file = std::fs::File::create(path)
                    .map_err(|e| ServeError::Sink(format!("create {path}: {e}")))?;
                Some(
                    ColumnWriter::new(std::io::BufWriter::new(file))
                        .map_err(|e| ServeError::Sink(format!("write {path}: {e}")))?,
                )
            }
            None => None,
        };
        let mut kernel: K = Kernel::with_capacity(
            lane_devices,
            KernelPolicy {
                immediate_head_fire: false,
                max_batch: batch,
                recycle_tasks: true,
                // Adaptive: heap while the in-flight event set stays
                // small (the measured steady state here), timing wheel
                // if it ever grows past the spill threshold.
                scheduler: Scheduler::Auto,
            },
            cap_requests.saturating_mul(max_fanout),
            cap_requests,
        );
        kernel.module_batch_caps = module_batch_caps;
        let exec_overhead_s: Vec<f64> = universe
            .devices()
            .iter()
            .map(|d| d.exec_overhead_s)
            .collect();
        let n_uni = uni_names.len();
        let mut driver = Online {
            universe,
            uni_names,
            by_name_order,
            slowdown: vec![None; res_of_uni.len()],
            instance,
            resolved,
            uni_of_res,
            res_of_uni,
            placement,
            sources,
            model_routes: Vec::new(),
            route_encs: Vec::new(),
            hosts_scratch: Vec::new(),
            route_scratch: Vec::new(),
            encs_scratch: Vec::new(),
            migrate_cost: vec![0.0; n_uni],
            migrate_hit: vec![false; n_uni],
            n_models,
            devices,
            exec_overhead_s,
            requests: Slab::new(streaming, cap_requests),
            stream: Some(stream),
            feed: None,
            enc: None,
            acct_tx: None,
            arrival_buf: Vec::new(),
            arrival_cursor: 0,
            next_seq: 0,
            class_table,
            class_names,
            events,
            deadline_ns: ns(scenario.deadline_s.max(1e-3)),
            deadline_s: scenario.deadline_s.max(1e-3),
            max_inflight: scenario.max_inflight_per_device.max(1),
            horizon_s: scenario.replan.horizon_s.max(0.0),
            charge_switching_downtime: scenario.replan.charge_switching_downtime,
            slo_trigger: scenario.replan.slo_trigger,
            last_slo_eval_ns: 0,
            acct: Accounting {
                slo: SloWindow::new(scenario.slo_window.max(1)),
                snapshot_stride: scenario.snapshot_every.max(1) as u64,
                until_snapshot: scenario.snapshot_every.max(1) as u64,
                max_windows: scenario.max_windows,
                last_snapshot_seen: 0,
                latencies: LatAgg::new(streaming, cap_requests),
                class_stats,
                usage,
                executions: vec![0; n_uni],
                sink,
                completed: 0,
                late: 0,
                shed: 0,
                windows: Vec::new(),
                last_completion_ns: 0,
            },
            budget,
            cost_rates,
            route_costs: Vec::new(),
            budget_wake_scratch: Vec::new(),
            report: ServeReport {
                seed: scenario.seed.clone(),
                ..ServeReport::default()
            },
        };
        driver.refresh_model_routes();

        for (idx, ev) in driver.events.iter().enumerate() {
            kernel.push_custom(ns(ev.at_s.max(0.0)), ServeEv::Fleet(idx));
        }
        let first_at_ns = driver
            .peek_arrival()
            .expect("a non-empty stream yields a first arrival")
            .at_ns;
        kernel.push_custom(first_at_ns, ServeEv::Arrival(0));

        let mut session = ServeSession {
            kernel,
            driver,
            par: None,
        };
        // `threads ≥ 2` installs the parallel backend (workload
        // pre-sampling, accounting off-load, and — once the fleet
        // stops churning — the encoder shard). Reports stay
        // byte-identical to the sequential run either way.
        parallel::install(&mut session, scenario, shared);
        Ok(session)
    }

    /// Processes every event up to `until_s` seconds of virtual time,
    /// then pauses. Returns the number of events processed.
    ///
    /// # Errors
    ///
    /// Scenario errors surfaced by fleet events or replanning.
    pub fn run_until(&mut self, until_s: f64) -> Result<u64, ServeError> {
        let cap = ns(until_s.max(0.0));
        if self.par.is_some() {
            return self.par_run(cap);
        }
        self.kernel.run_until(&mut self.driver, cap).map_err(|e| *e)
    }

    /// Runs the session to idle (no events left).
    ///
    /// # Errors
    ///
    /// Scenario errors surfaced by fleet events or replanning.
    pub fn run_to_idle(&mut self) -> Result<u64, ServeError> {
        if self.par.is_some() {
            return self.par_run(u64::MAX);
        }
        self.kernel.run_until_idle(&mut self.driver).map_err(|e| *e)
    }

    /// Whether every event has been processed (on every shard, in
    /// sharded mode).
    pub fn is_idle(&self) -> bool {
        self.kernel.pending_events() == 0
            && self.driver.enc.as_ref().is_none_or(|l| l.outstanding == 0)
            && self
                .par
                .as_ref()
                .and_then(|p| p.enc.as_ref())
                .is_none_or(|st| st.staged.is_empty() && st.e_promise == u64::MAX)
    }

    /// Virtual time of the last processed event, seconds (the furthest
    /// shard's clock, in sharded mode).
    pub fn now_s(&self) -> f64 {
        let e_now = self
            .par
            .as_ref()
            .and_then(|p| p.enc.as_ref())
            .map_or(0, |st| st.e_now_ns);
        secs(self.kernel.now().max(e_now))
    }

    /// Consumes the session and produces the final report. Normally
    /// called once idle; finishing early sheds every request that has
    /// arrived but not completed (queued *or* mid-flight — its pending
    /// events die with the session), so `arrived == completed + shed`
    /// holds in every report this type produces.
    pub fn finish(self) -> ServeReport {
        let ServeSession {
            kernel: _,
            mut driver,
            par,
        } = self;
        if let Some(par) = par {
            parallel::shutdown(&mut driver, par);
        }
        driver.finish()
    }
}

/// Runs a serving scenario to completion and returns its deterministic
/// report: same scenario (including seed) ⇒ byte-identical report.
///
/// # Errors
///
/// [`ServeError::BadScenario`] on inconsistent configuration (unknown
/// fleet/devices/models, requester or a traffic source leaving, empty
/// stream); [`ServeError::Core`] if placement or routing fails
/// irrecoverably.
pub fn serve(scenario: &ServeScenario) -> Result<ServeReport, ServeError> {
    let mut session = ServeSession::new(scenario)?;
    session.run_to_idle()?;
    Ok(session.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{
        AdmissionPolicy, FleetEvent, ModelDeployment, ReplanPolicy, TrafficSource,
    };
    use s2m3_sim::workload::ArrivalProcess;

    fn small_scenario(n: usize) -> ServeScenario {
        ServeScenario {
            requests: n,
            events: vec![],
            ..ServeScenario::churn_default()
        }
    }

    #[test]
    fn every_arrival_completes_or_sheds() {
        let report = serve(&small_scenario(300)).unwrap();
        assert_eq!(report.arrived, 300);
        assert_eq!(report.completed + report.shed, 300);
        assert!(report.latency.p50_s > 0.0);
        assert!(report.throughput_per_s > 0.0);
        assert!(!report.windows.is_empty());
    }

    #[test]
    #[ignore]
    fn time_parallel_configs() {
        let rate: f64 = std::env::var("PAR_RATE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.3);
        let requests: usize = std::env::var("PAR_REQ")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2000);
        let mut scenario = ServeScenario {
            requests,
            ..ServeScenario::churn_default()
        };
        scenario.arrivals = ArrivalProcess::Poisson { rate_per_s: rate };
        scenario.streaming = Some(crate::config::StreamingConfig::default());
        scenario.max_windows = Some(64);
        if let Ok(q) = std::env::var("PAR_QUEUE") {
            scenario.admission = AdmissionPolicy::ShedOnOverload {
                max_queue: q.parse().unwrap(),
            };
        }
        if let Ok(i) = std::env::var("PAR_INFLIGHT") {
            scenario.max_inflight_per_device = i.parse().unwrap();
        }
        for threads in [0usize, 2, 4] {
            let s = ServeScenario {
                threads,
                ..scenario.clone()
            };
            let t0 = std::time::Instant::now();
            let r = serve(&s).unwrap();
            eprintln!(
                "threads={threads}: {:?} completed={} shed={}",
                t0.elapsed(),
                r.completed,
                r.shed
            );
        }
    }

    fn budget_policy(
        cap: f64,
        window_s: f64,
        enforcement: BudgetEnforcement,
    ) -> crate::budget::BudgetPolicy {
        crate::budget::BudgetPolicy {
            cap_per_window: cap,
            metric: crate::budget::BudgetMetric::DeviceSeconds,
            window_s,
            enforcement,
        }
    }

    #[test]
    fn roomy_budget_changes_nothing_but_adds_the_report() {
        let uncapped = serve(&small_scenario(300)).unwrap();
        let mut s = small_scenario(300);
        s.budget = Some(budget_policy(1e18, 60.0, BudgetEnforcement::DeferThenShed));
        let mut capped = serve(&s).unwrap();
        let b = capped.budget.take().expect("budget report present");
        assert_eq!(capped, uncapped, "a roomy cap must not alter serving");
        assert_eq!(b.deferred, 0);
        assert_eq!(b.shed, 0);
        assert_eq!(b.adherence, 1.0);
        assert!(b.spend_total > 0.0);
        assert!((b.spend_total - b.shadow_spend_total).abs() < 1e-9);
        assert_eq!(b.dispatched, capped.completed);
    }

    #[test]
    fn tight_budget_defers_within_cap_and_recovers() {
        let uncapped = serve(&small_scenario(200)).unwrap();
        let busy: f64 = uncapped.devices.iter().map(|d| d.busy_s).sum();
        let cost_per_req = busy / uncapped.completed as f64;
        let mut s = small_scenario(200);
        s.budget = Some(budget_policy(
            3.0 * cost_per_req,
            uncapped.makespan_s / 10.0,
            BudgetEnforcement::Defer,
        ));
        let r = serve(&s).unwrap();
        assert_eq!(r.arrived, 200);
        assert_eq!(r.completed + r.shed, 200, "deferred requests are conserved");
        let b = r.budget.as_ref().unwrap();
        assert!(b.deferred > 0, "a ~3-requests-per-window cap must defer");
        assert!(b.latency_price_s > 0.0);
        assert_eq!(
            b.windows_over_cap, 0,
            "reserve-at-dispatch never overspends"
        );
        assert_eq!(b.adherence, 1.0);
        for w in &b.windows {
            assert!(w.spend <= b.cap_per_window + 1e-9);
        }
        assert!(b.shadow_spend_total >= b.spend_total - 1e-9);
        assert!(
            r.latency.p95_s >= uncapped.latency.p95_s,
            "deferral cannot speed requests up"
        );
    }

    #[test]
    fn budget_shed_mode_rejects_what_it_cannot_afford() {
        let uncapped = serve(&small_scenario(200)).unwrap();
        let busy: f64 = uncapped.devices.iter().map(|d| d.busy_s).sum();
        let cost_per_req = busy / uncapped.completed as f64;
        let mut s = small_scenario(200);
        s.budget = Some(budget_policy(
            2.0 * cost_per_req,
            uncapped.makespan_s / 5.0,
            BudgetEnforcement::Shed,
        ));
        let r = serve(&s).unwrap();
        let b = r.budget.as_ref().unwrap();
        assert_eq!(r.completed + r.shed, r.arrived);
        assert!(b.shed > 0, "a tight cap under Shed must reject work");
        assert_eq!(b.deferred, 0, "Shed mode never defers");
        assert!(r.shed >= b.shed, "budget sheds are sheds");
        for w in &b.windows {
            assert!(w.spend <= b.cap_per_window + 1e-9);
        }
    }

    #[test]
    fn budget_reports_match_across_thread_counts() {
        let uncapped = serve(&small_scenario(200)).unwrap();
        let busy: f64 = uncapped.devices.iter().map(|d| d.busy_s).sum();
        let cost_per_req = busy / uncapped.completed as f64;
        let mut scenario = ServeScenario {
            requests: 1000,
            ..ServeScenario::churn_default()
        };
        scenario.budget = Some(budget_policy(
            4.0 * cost_per_req,
            uncapped.makespan_s / 10.0,
            BudgetEnforcement::DeferThenShed,
        ));
        let seq = serde_json::to_string(&serve(&scenario).unwrap()).unwrap();
        for threads in [2usize, 4] {
            let par = ServeScenario {
                threads,
                ..scenario.clone()
            };
            let got = serde_json::to_string(&serve(&par).unwrap()).unwrap();
            assert_eq!(got, seq, "threads={threads}");
        }
    }

    #[test]
    fn parallel_serve_matches_sequential_bytes() {
        let scenario = ServeScenario {
            requests: 2000,
            ..ServeScenario::churn_default()
        };
        let seq = serde_json::to_string(&serve(&scenario).unwrap()).unwrap();
        for threads in [2usize, 3, 4] {
            let par = ServeScenario {
                threads,
                ..scenario.clone()
            };
            let got = serde_json::to_string(&serve(&par).unwrap()).unwrap();
            assert_eq!(got, seq, "threads={threads}");
        }
    }

    #[test]
    fn same_seed_identical_reports_different_seed_differs() {
        let scenario = ServeScenario {
            requests: 400,
            ..ServeScenario::churn_default()
        };
        let a = serve(&scenario).unwrap();
        let b = serve(&scenario).unwrap();
        assert_eq!(a, b);
        let other = ServeScenario {
            seed: "serve/other".to_string(),
            ..scenario
        };
        let c = serve(&other).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn device_leave_forces_accepted_replan_and_loses_nothing() {
        let mut s = small_scenario(250);
        s.arrivals = ArrivalProcess::Poisson { rate_per_s: 2.0 };
        s.events = vec![FleetEvent {
            at_s: 30.0,
            kind: FleetEventKind::DeviceLeave {
                device: "desktop".to_string(),
            },
        }];
        let report = serve(&s).unwrap();
        assert_eq!(report.completed + report.shed, report.arrived);
        assert_eq!(report.replans.len(), 1);
        let r = &report.replans[0];
        assert!(r.accepted, "losing a module host must force a replan");
        assert!(r.mandatory);
        assert!(r.migrations >= 1);
        assert!(r.switching_cost_s > 0.0);
        // The desktop stops accumulating active time after it leaves.
        let desktop = report
            .devices
            .iter()
            .find(|d| d.device == "desktop")
            .unwrap();
        assert!(desktop.active_s <= 30.0 + 1e-6);
    }

    #[test]
    fn server_join_is_accepted_only_under_sufficient_load() {
        let join = FleetEvent {
            at_s: 60.0,
            kind: FleetEventKind::DeviceJoin {
                device: "server".to_string(),
            },
        };
        // Busy stream, long horizon: worth switching.
        let mut busy = small_scenario(400);
        busy.arrivals = ArrivalProcess::Poisson { rate_per_s: 2.0 };
        busy.events = vec![join.clone()];
        busy.replan = ReplanPolicy {
            horizon_s: 3600.0,
            charge_switching_downtime: true,
            ..ReplanPolicy::default()
        };
        let busy_report = serve(&busy).unwrap();
        assert_eq!(busy_report.replans.len(), 1);
        assert!(
            busy_report.replans[0].accepted,
            "break-even {:?} at rate {:.2} should clear a 1 h horizon",
            busy_report.replans[0].break_even_requests, busy_report.replans[0].observed_rate_per_s
        );
        assert!(busy_report.accepted_replans() >= 1);

        // Trickle stream, tiny horizon: not worth the switching cost.
        let mut idle = small_scenario(40);
        idle.arrivals = ArrivalProcess::Poisson { rate_per_s: 0.02 };
        idle.deadline_s = 120.0;
        idle.events = vec![join];
        idle.replan = ReplanPolicy {
            horizon_s: 1.0,
            charge_switching_downtime: true,
            ..ReplanPolicy::default()
        };
        let idle_report = serve(&idle).unwrap();
        assert_eq!(idle_report.replans.len(), 1);
        assert!(!idle_report.replans[0].accepted);
        assert!(!idle_report.replans[0].mandatory);
        // Rejected replans keep serving: nothing is lost either way.
        assert_eq!(
            idle_report.completed + idle_report.shed,
            idle_report.arrived
        );
    }

    #[test]
    fn shed_on_overload_sheds_under_burst_fifo_does_not() {
        let burst = ArrivalProcess::Simultaneous;
        let mut fifo = small_scenario(120);
        fifo.arrivals = burst.clone();
        fifo.admission = AdmissionPolicy::Fifo;
        fifo.deadline_s = 10_000.0;
        let fifo_report = serve(&fifo).unwrap();
        assert_eq!(fifo_report.shed, 0);
        assert_eq!(fifo_report.completed, 120);

        let mut shed = small_scenario(120);
        shed.arrivals = burst;
        shed.admission = AdmissionPolicy::ShedOnOverload { max_queue: 8 };
        shed.deadline_s = 10_000.0;
        let shed_report = serve(&shed).unwrap();
        assert!(
            shed_report.shed > 0,
            "a 120-request burst must overflow 8 slots"
        );
        assert_eq!(shed_report.completed + shed_report.shed, 120);
        // Shedding keeps served latency lower than serving everything.
        assert!(shed_report.latency.p99_s < fifo_report.latency.p99_s);
    }

    #[test]
    fn edf_beats_fifo_on_mixed_deadlines_under_load() {
        // Two models with very different service times share the fleet;
        // EDF should not miss more deadlines than FIFO on the same stream.
        let base = ServeScenario {
            models: vec![
                ModelDeployment {
                    name: "CLIP ViT-B/16".to_string(),
                    candidates: 64,
                },
                ModelDeployment {
                    name: "CLIP-Classifier Food-101".to_string(),
                    candidates: 0,
                },
            ],
            arrivals: ArrivalProcess::Poisson { rate_per_s: 1.5 },
            requests: 300,
            deadline_s: 10.0,
            events: vec![],
            ..ServeScenario::churn_default()
        };
        let fifo = serve(&ServeScenario {
            admission: AdmissionPolicy::Fifo,
            ..base.clone()
        })
        .unwrap();
        let edf = serve(&ServeScenario {
            admission: AdmissionPolicy::EarliestDeadlineFirst,
            ..base
        })
        .unwrap();
        assert_eq!(edf.completed, 300);
        assert!(
            edf.miss_rate <= fifo.miss_rate + 1e-9,
            "EDF miss rate {:.3} vs FIFO {:.3}",
            edf.miss_rate,
            fifo.miss_rate
        );
    }

    #[test]
    fn slowdown_event_triggers_replan_evaluation() {
        let mut s = small_scenario(150);
        s.arrivals = ArrivalProcess::Poisson { rate_per_s: 1.0 };
        s.events = vec![FleetEvent {
            at_s: 20.0,
            kind: FleetEventKind::DeviceSlowdown {
                device: "laptop".to_string(),
                factor: 0.25,
            },
        }];
        let report = serve(&s).unwrap();
        assert_eq!(report.events.len(), 1);
        assert!(report.events[0].description.contains("slows"));
        assert_eq!(report.replans.len(), 1);
        assert_eq!(report.completed + report.shed, report.arrived);
    }

    #[test]
    fn bad_scenarios_are_rejected() {
        let mut no_requester = small_scenario(10);
        no_requester.initial_devices = vec!["desktop".to_string(), "laptop".to_string()];
        assert!(matches!(
            serve(&no_requester),
            Err(ServeError::BadScenario(_))
        ));

        let mut requester_leaves = small_scenario(10);
        requester_leaves.events = vec![FleetEvent {
            at_s: 1.0,
            kind: FleetEventKind::DeviceLeave {
                device: "jetson-a".to_string(),
            },
        }];
        assert!(matches!(
            serve(&requester_leaves),
            Err(ServeError::BadScenario(_))
        ));

        let mut bad_fleet = small_scenario(10);
        bad_fleet.fleet = "mars".to_string();
        assert!(serve(&bad_fleet).is_err());

        let mut unknown_model = small_scenario(10);
        unknown_model.models = vec![ModelDeployment {
            name: "CLIP ViT-Z/99".to_string(),
            candidates: 1,
        }];
        assert!(matches!(serve(&unknown_model), Err(ServeError::Core(_))));
    }

    #[test]
    fn leave_then_rejoin_keeps_lane_accounting_sane() {
        // The desktop leaves while it is executing work, then rejoins:
        // completions of pre-leave tasks must not free phantom lanes
        // after the rejoin. With correct accounting the run conserves
        // requests and keeps utilization within bounds.
        let mut s = small_scenario(300);
        s.arrivals = ArrivalProcess::Poisson { rate_per_s: 2.0 };
        s.events = vec![
            FleetEvent {
                at_s: 20.0,
                kind: FleetEventKind::DeviceLeave {
                    device: "desktop".to_string(),
                },
            },
            FleetEvent {
                at_s: 40.0,
                kind: FleetEventKind::DeviceJoin {
                    device: "desktop".to_string(),
                },
            },
        ];
        let report = serve(&s).unwrap();
        assert_eq!(report.completed + report.shed, report.arrived);
        assert_eq!(report.events.len(), 2);
        for d in &report.devices {
            assert!((0.0..=1.0).contains(&d.utilization), "{d:?}");
        }
        // Determinism still holds through the leave/rejoin cycle.
        assert_eq!(report, serve(&s).unwrap());
    }

    #[test]
    fn joining_an_active_device_is_rejected() {
        let mut s = small_scenario(20);
        s.events = vec![FleetEvent {
            at_s: 5.0,
            kind: FleetEventKind::DeviceJoin {
                device: "laptop".to_string(),
            },
        }];
        assert!(matches!(serve(&s), Err(ServeError::BadScenario(_))));
    }

    #[test]
    fn utilization_is_bounded_and_windows_monotone_in_time() {
        let report = serve(&small_scenario(200)).unwrap();
        for d in &report.devices {
            assert!((0.0..=1.0).contains(&d.utilization), "{d:?}");
            assert!(d.busy_s >= 0.0);
        }
        let times: Vec<f64> = report.windows.iter().map(|w| w.at_s).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
        for w in &report.windows {
            assert!(w.p50_s <= w.p95_s + 1e-12);
            assert!(w.p95_s <= w.p99_s + 1e-12);
            assert!((0.0..=1.0).contains(&w.miss_rate));
        }
    }

    /// The SLO-trigger churn scenario: the GPU server joins during an
    /// MMPP calm phase, so the break-even gate rejects the migration at
    /// event time (0.02 req/s × 120 s horizon < 8-request break-even).
    /// The storm phase then floods the server-less placement, the
    /// rolling p95 breaches the deadline, and the trigger re-runs the
    /// same gate — now clearing it at the risen observed rate.
    fn slo_trigger_scenario(trigger: Option<SloReplanTrigger>) -> ServeScenario {
        let mut s = small_scenario(400);
        s.seed = "serve/slo-breach-12".to_string();
        s.deadline_s = 8.0;
        s.arrivals = ArrivalProcess::Mmpp {
            rates_per_s: vec![0.02, 2.0],
            mean_dwell_s: 150.0,
        };
        s.admission = AdmissionPolicy::Fifo;
        s.slo_window = 64;
        s.events = vec![FleetEvent {
            at_s: 50.0,
            kind: FleetEventKind::DeviceJoin {
                device: "server".to_string(),
            },
        }];
        s.replan = ReplanPolicy {
            horizon_s: 120.0,
            charge_switching_downtime: true,
            slo_trigger: trigger,
        };
        s
    }

    #[test]
    fn slo_breach_fires_replan_that_the_event_gate_rejected() {
        let with = serve(&slo_trigger_scenario(Some(SloReplanTrigger {
            min_window: 32,
            cooldown_s: 60.0,
        })))
        .unwrap();
        assert_eq!(with.completed + with.shed, with.arrived);
        assert_eq!(with.replans.len(), 2, "{:#?}", with.replans);
        let event_replan = &with.replans[0];
        assert!(event_replan.trigger.contains("joins"));
        assert!(
            !event_replan.accepted,
            "the calm-phase join must not clear the gate"
        );
        let slo_replan = &with.replans[1];
        assert!(slo_replan.trigger.contains("SLO breach"), "{slo_replan:?}");
        assert!(!slo_replan.mandatory);
        assert!(slo_replan.accepted);
        assert!(slo_replan.migrations >= 1);
        assert!(slo_replan.switching_cost_s > 0.0);
        assert!(slo_replan.observed_rate_per_s > event_replan.observed_rate_per_s);

        // Without the trigger the rejected join is never revisited and
        // the storm runs on the slow placement: strictly worse SLO.
        let without = serve(&slo_trigger_scenario(None)).unwrap();
        assert_eq!(without.replans.len(), 1);
        assert!(without
            .replans
            .iter()
            .all(|r| !r.trigger.contains("SLO breach")));
        assert!(
            with.late < without.late,
            "trigger on: {} late, off: {} late",
            with.late,
            without.late
        );
        assert!(with.latency.p95_s < without.latency.p95_s);

        // Deterministic like every other serve path.
        let again = serve(&slo_trigger_scenario(Some(SloReplanTrigger {
            min_window: 32,
            cooldown_s: 60.0,
        })))
        .unwrap();
        assert_eq!(with, again);
    }

    #[test]
    fn slo_trigger_respects_cooldown_spacing() {
        let mut s = slo_trigger_scenario(Some(SloReplanTrigger {
            min_window: 16,
            cooldown_s: 45.0,
        }));
        // No fleet events at all: pure overload. The trigger may sample
        // and (with nothing better to place) record nothing, but any
        // records it does produce must be spaced by the cooldown.
        s.events.clear();
        let report = serve(&s).unwrap();
        let slo_times: Vec<f64> = report
            .replans
            .iter()
            .filter(|r| r.trigger.contains("SLO breach"))
            .map(|r| r.at_s)
            .collect();
        assert!(
            slo_times.windows(2).all(|w| w[1] - w[0] >= 45.0 - 1e-6),
            "{slo_times:?}"
        );
        assert_eq!(report.completed + report.shed, report.arrived);
    }

    #[test]
    fn session_pause_resume_matches_one_shot_run() {
        let s = ServeScenario {
            requests: 300,
            ..ServeScenario::churn_default()
        };
        let one_shot = serve(&s).unwrap();
        let mut session = ServeSession::new(&s).unwrap();
        // Pause at several mid-run times, including one inside the
        // churn window.
        for t in [10.0, 300.0, 1800.5, 4200.5] {
            session.run_until(t).unwrap();
            assert!(session.now_s() <= t + 1e-9 || session.is_idle());
        }
        session.run_to_idle().unwrap();
        assert!(session.is_idle());
        assert_eq!(session.finish(), one_shot);
    }

    #[test]
    fn finishing_a_paused_session_sheds_inflight_and_conserves() {
        let s = ServeScenario {
            requests: 200,
            events: vec![],
            ..ServeScenario::churn_default()
        };
        let mut session = ServeSession::new(&s).unwrap();
        session.run_until(120.0).unwrap();
        assert!(!session.is_idle(), "a 200-request stream outlives 120s");
        let report = session.finish();
        assert!(report.arrived > 0);
        assert!(report.arrived < 200, "the stream must be cut mid-run");
        assert_eq!(
            report.completed + report.shed,
            report.arrived,
            "early finish must shed, not drop, unresolved requests"
        );
    }

    #[test]
    fn multi_source_streams_merge_and_conserve() {
        let mut s = small_scenario(240);
        s.sources = vec![
            TrafficSource {
                device: "jetson-a".to_string(),
                arrivals: ArrivalProcess::Poisson { rate_per_s: 0.4 },
                weight: None,
                mix: None,
            },
            TrafficSource {
                device: "laptop".to_string(),
                arrivals: ArrivalProcess::Uniform { interval_s: 3.0 },
                weight: None,
                mix: None,
            },
            TrafficSource {
                device: "desktop".to_string(),
                arrivals: ArrivalProcess::Poisson { rate_per_s: 0.2 },
                weight: None,
                mix: None,
            },
        ];
        let report = serve(&s).unwrap();
        assert_eq!(report.arrived, 240);
        assert_eq!(report.completed + report.shed, 240);
        // Deterministic under replay.
        assert_eq!(report, serve(&s).unwrap());
        // A different source mix produces different traffic.
        let mut other = s.clone();
        other.sources.pop();
        let other_report = serve(&other).unwrap();
        assert_ne!(report.latency, other_report.latency);
    }

    #[test]
    fn multi_source_ties_break_by_source_rank() {
        // Two simultaneous-burst sources: every arrival is at t=0, so
        // the merge order is exactly (source rank, per-source id) and
        // the run must stay deterministic and conserving.
        let mut s = small_scenario(60);
        s.deadline_s = 10_000.0;
        s.admission = AdmissionPolicy::Fifo;
        s.sources = vec![
            TrafficSource {
                device: "jetson-a".to_string(),
                arrivals: ArrivalProcess::Simultaneous,
                weight: None,
                mix: None,
            },
            TrafficSource {
                device: "desktop".to_string(),
                arrivals: ArrivalProcess::Simultaneous,
                weight: None,
                mix: None,
            },
        ];
        let a = serve(&s).unwrap();
        assert_eq!(a.completed, 60);
        assert_eq!(a, serve(&s).unwrap());
    }

    fn two_model_scenario(n: usize) -> ServeScenario {
        ServeScenario {
            models: vec![
                ModelDeployment {
                    name: "CLIP ViT-B/16".to_string(),
                    candidates: 64,
                },
                ModelDeployment {
                    name: "CLIP-Classifier Food-101".to_string(),
                    candidates: 0,
                },
            ],
            requests: n,
            events: vec![],
            ..ServeScenario::churn_default()
        }
    }

    #[test]
    fn weighted_mix_changes_traffic_and_stays_deterministic() {
        use s2m3_sim::workload::{ModelMix, ModelWeight};
        let mut s = two_model_scenario(300);
        s.arrivals = ArrivalProcess::Poisson { rate_per_s: 1.0 };
        let legacy = serve(&s).unwrap();
        s.mix = Some(ModelMix::Weighted {
            weights: vec![
                ModelWeight {
                    model: "CLIP ViT-B/16".to_string(),
                    weight: 1.0,
                },
                ModelWeight {
                    model: "CLIP-Classifier Food-101".to_string(),
                    weight: 9.0,
                },
            ],
        });
        let mixed = serve(&s).unwrap();
        assert_eq!(mixed.arrived, 300);
        assert_eq!(mixed.completed + mixed.shed, 300);
        assert_eq!(mixed, serve(&s).unwrap(), "same seed, same report");
        // 90% classifier traffic is far lighter than the 50/50 split.
        assert_ne!(mixed.latency, legacy.latency);
        assert!(mixed.latency.p95_s < legacy.latency.p95_s);

        // An unknown model in the mix is a scenario error.
        let mut bad = s.clone();
        bad.mix = Some(ModelMix::Weighted {
            weights: vec![ModelWeight {
                model: "nope".to_string(),
                weight: 1.0,
            }],
        });
        assert!(matches!(serve(&bad), Err(ServeError::BadScenario(_))));
    }

    #[test]
    fn deadline_classes_drive_slo_accounting_and_edf_order() {
        use s2m3_core::problem::DeadlineClass;
        use s2m3_sim::workload::ClassShare;
        // Near-capacity load with a roomy scenario deadline: the
        // uniform run rarely misses, while the 3 s interactive class
        // (below the model's own service time plus queueing) must.
        let mut s = small_scenario(250);
        s.arrivals = ArrivalProcess::Poisson { rate_per_s: 0.3 };
        s.admission = AdmissionPolicy::EarliestDeadlineFirst;
        s.deadline_s = 120.0;
        let uniform = serve(&s).unwrap();
        s.classes = vec![
            ClassShare {
                class: DeadlineClass {
                    name: "interactive".to_string(),
                    deadline_s: 3.0,
                    priority: 10,
                },
                weight: 1.0,
            },
            ClassShare {
                class: DeadlineClass {
                    name: "batch".to_string(),
                    deadline_s: 600.0,
                    priority: 0,
                },
                weight: 1.0,
            },
        ];
        let classed = serve(&s).unwrap();
        assert_eq!(classed.completed + classed.shed, classed.arrived);
        assert_eq!(classed, serve(&s).unwrap());
        // Half the stream now runs against the 3 s interactive deadline
        // instead of 120 s: miss accounting must reflect per-class SLOs.
        assert!(classed.late > uniform.late);

        // A non-positive class weight is rejected, not ignored.
        let mut bad = s.clone();
        bad.classes[0].weight = 0.0;
        assert!(matches!(serve(&bad), Err(ServeError::BadScenario(_))));
    }

    #[test]
    fn batching_relieves_a_burst_and_preserves_conservation() {
        use crate::config::BatchPolicy;
        // A simultaneous burst piles all requests onto the shared
        // encoders: exactly the regime module-level batching exists for.
        let mut s = small_scenario(80);
        s.arrivals = ArrivalProcess::Simultaneous;
        s.admission = AdmissionPolicy::Fifo;
        s.deadline_s = 10_000.0;
        let plain = serve(&s).unwrap();
        s.batch = Some(BatchPolicy {
            max_batch: 8,
            per_kind: vec![],
        });
        let batched = serve(&s).unwrap();
        assert_eq!(batched.arrived, 80);
        assert_eq!(batched.completed + batched.shed, 80);
        assert_eq!(batched, serve(&s).unwrap(), "batched runs stay seeded");
        assert!(
            batched.makespan_s < plain.makespan_s,
            "batched {:.2}s vs plain {:.2}s",
            batched.makespan_s,
            plain.makespan_s
        );
        assert!(batched.latency.p95_s < plain.latency.p95_s);
    }

    #[test]
    fn per_kind_caps_bound_the_batched_speedup() {
        use crate::config::{BatchPolicy, KindBatchCap};
        use s2m3_models::module::ModuleKind;
        let mut s = small_scenario(80);
        s.arrivals = ArrivalProcess::Simultaneous;
        s.admission = AdmissionPolicy::Fifo;
        s.deadline_s = 10_000.0;
        s.batch = Some(BatchPolicy {
            max_batch: 8,
            per_kind: vec![],
        });
        let full = serve(&s).unwrap();
        // Cap every kind at 1: batching enabled but never merging —
        // the per-kind override path must reproduce the unbatched run's
        // timing exactly.
        s.batch = Some(BatchPolicy {
            max_batch: 8,
            per_kind: ModuleKind::all()
                .into_iter()
                .map(|kind| KindBatchCap { kind, max_batch: 1 })
                .collect(),
        });
        let capped = serve(&s).unwrap();
        let mut unbatched_scenario = s.clone();
        unbatched_scenario.batch = None;
        let unbatched = serve(&unbatched_scenario).unwrap();
        assert_eq!(capped.latency, unbatched.latency);
        assert_eq!(capped.makespan_s, unbatched.makespan_s);
        assert!(full.makespan_s < capped.makespan_s);
    }

    #[test]
    fn batching_survives_churn_and_replanning() {
        use crate::config::BatchPolicy;
        let mut s = ServeScenario {
            requests: 300,
            ..ServeScenario::churn_default()
        };
        s.arrivals = ArrivalProcess::Poisson { rate_per_s: 2.0 };
        s.batch = Some(BatchPolicy {
            max_batch: 4,
            per_kind: vec![],
        });
        s.events = vec![
            FleetEvent {
                at_s: 20.0,
                kind: FleetEventKind::DeviceLeave {
                    device: "desktop".to_string(),
                },
            },
            FleetEvent {
                at_s: 60.0,
                kind: FleetEventKind::DeviceJoin {
                    device: "server".to_string(),
                },
            },
        ];
        let report = serve(&s).unwrap();
        assert_eq!(report.completed + report.shed, report.arrived);
        assert_eq!(report, serve(&s).unwrap());
        for d in &report.devices {
            assert!((0.0..=1.0).contains(&d.utilization), "{d:?}");
        }
    }

    #[test]
    fn source_weights_split_the_budget() {
        let mut s = small_scenario(200);
        s.sources = vec![
            TrafficSource {
                device: "jetson-a".to_string(),
                arrivals: ArrivalProcess::Poisson { rate_per_s: 0.4 },
                weight: Some(3.0),
                mix: None,
            },
            TrafficSource {
                device: "laptop".to_string(),
                arrivals: ArrivalProcess::Poisson { rate_per_s: 0.4 },
                weight: Some(1.0),
                mix: None,
            },
        ];
        let report = serve(&s).unwrap();
        assert_eq!(report.arrived, 200);
        assert_eq!(report.completed + report.shed, 200);
        assert_eq!(report, serve(&s).unwrap());
        // A zero weight is rejected.
        s.sources[0].weight = Some(-2.0);
        assert!(matches!(serve(&s), Err(ServeError::BadScenario(_))));
    }

    #[test]
    fn multi_source_rejects_unknown_inactive_or_leaving_sources() {
        let src = |device: &str| TrafficSource {
            device: device.to_string(),
            arrivals: ArrivalProcess::Poisson { rate_per_s: 0.5 },
            weight: None,
            mix: None,
        };
        let mut unknown = small_scenario(10);
        unknown.sources = vec![src("mars-rover")];
        assert!(matches!(serve(&unknown), Err(ServeError::BadScenario(_))));

        let mut inactive = small_scenario(10);
        inactive.sources = vec![src("server")]; // in universe, not initial
        assert!(matches!(serve(&inactive), Err(ServeError::BadScenario(_))));

        let mut leaving = small_scenario(40);
        leaving.sources = vec![src("jetson-a"), src("desktop")];
        leaving.events = vec![FleetEvent {
            at_s: 10.0,
            kind: FleetEventKind::DeviceLeave {
                device: "desktop".to_string(),
            },
        }];
        assert!(matches!(serve(&leaving), Err(ServeError::BadScenario(_))));
    }

    /// Relative error |a - b| / b, for sketch-percentile assertions.
    fn rel_err(a: f64, b: f64) -> f64 {
        if b == 0.0 {
            a.abs()
        } else {
            (a - b).abs() / b
        }
    }

    #[test]
    fn streaming_mode_matches_exact_within_sketch_error() {
        // The full churn scenario — fleet events, replans, classes —
        // exact vs memory-flat. Streaming changes only how latency
        // percentiles are aggregated (sketch vs exact sort), so every
        // counter, event, replan, window, and device row must agree
        // bit-for-bit, and percentiles within the sketch's <= 1% bound.
        let mut exact = ServeScenario::churn_default();
        exact.requests = 600;
        let mut streaming = exact.clone();
        streaming.streaming = Some(crate::config::StreamingConfig::default());
        let e = serve(&exact).unwrap();
        let s = serve(&streaming).unwrap();
        assert_eq!(s, serve(&streaming).unwrap(), "streaming is deterministic");

        let mut s_cmp = s.clone();
        s_cmp.latency = e.latency;
        for (cs, ce) in s_cmp.classes.iter_mut().zip(e.classes.iter()) {
            cs.latency = ce.latency;
        }
        assert_eq!(s_cmp, e, "streaming may differ only in latency summaries");

        assert_eq!(s.latency.completed, e.latency.completed);
        assert!(
            rel_err(s.latency.mean_s, e.latency.mean_s) < 1e-9,
            "mean is exact"
        );
        assert!(
            rel_err(s.latency.max_s, e.latency.max_s) < 1e-9,
            "max is exact"
        );
        for (got, want) in [
            (s.latency.p50_s, e.latency.p50_s),
            (s.latency.p95_s, e.latency.p95_s),
            (s.latency.p99_s, e.latency.p99_s),
        ] {
            assert!(
                rel_err(got, want) < 0.01,
                "sketch percentile {got} vs exact {want} breaks the 1% bound"
            );
        }
    }

    #[test]
    fn streaming_sink_records_every_completion() {
        let path = std::env::temp_dir().join(format!("s2m3_sink_test_{}.bin", std::process::id()));
        let mut scenario = ServeScenario::churn_default();
        scenario.requests = 300;
        scenario.streaming = Some(crate::config::StreamingConfig {
            sink: Some(path.to_string_lossy().into_owned()),
        });
        let report = serve(&scenario).unwrap();
        let rows = s2m3_data::sink::read_rows(std::fs::File::open(&path).unwrap()).unwrap();
        let _ = std::fs::remove_file(&path);

        assert_eq!(rows.len() as u64, report.completed);
        let mean = rows.iter().map(|r| r.latency_s).sum::<f64>() / rows.len() as f64;
        assert!(rel_err(mean, report.latency.mean_s) < 1e-9);
        for w in rows.windows(2) {
            assert!(
                w[0].finish_ns <= w[1].finish_ns,
                "rows land in completion order"
            );
        }
        let n_classes = report.classes.len() as u32;
        for r in &rows {
            assert!(r.finish_ns >= r.arrival_ns);
            assert!(r.device != u32::MAX, "completions carry their head device");
            if let Some(c) = r.class {
                assert!(c < n_classes);
            }
        }
        // Per-class completion counts agree with the report.
        for (ci, c) in report.classes.iter().enumerate() {
            let n = rows.iter().filter(|r| r.class == Some(ci as u32)).count();
            assert_eq!(n as u64, c.completed, "class {} row count", c.class);
        }
    }

    #[test]
    fn max_windows_caps_snapshots_without_touching_counters() {
        let mut uncapped = ServeScenario::churn_default();
        uncapped.requests = 600;
        uncapped.snapshot_every = 20;
        let mut capped = uncapped.clone();
        capped.max_windows = Some(8);
        let u = serve(&uncapped).unwrap();
        let c = serve(&capped).unwrap();
        assert!(u.windows.len() > 8);
        assert!(c.windows.len() <= 9, "cap plus at most the final snapshot");
        let mut c_cmp = c.clone();
        c_cmp.windows = u.windows.clone();
        assert_eq!(c_cmp, u, "downsampling only drops snapshots");
    }
}
