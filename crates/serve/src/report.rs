//! The serving run's output: end-of-run SLO summary, windowed snapshots,
//! fleet-event and replan history, per-device utilization.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::slo::{percentile_sorted, WindowSnapshot};

/// Latency percentile summary over all completed requests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct LatencySummary {
    /// Completed requests.
    pub completed: u64,
    /// Mean latency, seconds.
    pub mean_s: f64,
    /// Median latency, seconds.
    pub p50_s: f64,
    /// 95th percentile, seconds.
    pub p95_s: f64,
    /// 99th percentile, seconds.
    pub p99_s: f64,
    /// Maximum, seconds.
    pub max_s: f64,
}

impl LatencySummary {
    /// Builds a summary from raw latencies (unsorted is fine).
    pub fn from_latencies(mut latencies: Vec<f64>) -> Self {
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Self::from_sorted(&latencies)
    }

    /// Builds a summary from already-sorted latencies without copying
    /// or reallocating (the exact serve path sorts its buffer in place
    /// once and summarizes through here).
    pub fn from_sorted(latencies: &[f64]) -> Self {
        let n = latencies.len();
        if n == 0 {
            return LatencySummary::default();
        }
        LatencySummary {
            completed: n as u64,
            mean_s: latencies.iter().sum::<f64>() / n as f64,
            p50_s: percentile_sorted(latencies, 0.50),
            p95_s: percentile_sorted(latencies, 0.95),
            p99_s: percentile_sorted(latencies, 0.99),
            max_s: latencies[n - 1],
        }
    }

    /// Builds a summary from a streaming
    /// [`LatencySketch`](s2m3_core::sketch::LatencySketch): count,
    /// mean, and max are exact; the percentiles carry the sketch's
    /// ≤ 1% relative error bound.
    pub fn from_sketch(sketch: &s2m3_core::sketch::LatencySketch) -> Self {
        LatencySummary {
            completed: sketch.count(),
            mean_s: sketch.mean(),
            p50_s: sketch.quantile(0.50),
            p95_s: sketch.quantile(0.95),
            p99_s: sketch.quantile(0.99),
            max_s: sketch.max(),
        }
    }
}

/// One applied fleet event, as recorded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// When it took effect, seconds.
    pub at_s: f64,
    /// Human-readable description (e.g. `"desktop leaves"`).
    pub description: String,
}

/// One replan evaluation by the controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplanRecord {
    /// When the controller ran, seconds.
    pub at_s: f64,
    /// What prompted it (a fleet event description).
    pub trigger: String,
    /// Whether the old placement could no longer serve (forced switch).
    pub mandatory: bool,
    /// Requests needed to amortize the switch (`None`: never pays off).
    pub break_even_requests: Option<u64>,
    /// Observed arrival rate at decision time, requests/second.
    pub observed_rate_per_s: f64,
    /// Whether the migration was applied.
    pub accepted: bool,
    /// One-time switching cost, seconds (0 when rejected).
    pub switching_cost_s: f64,
    /// Modules moved (0 when rejected).
    pub migrations: usize,
}

/// Per-[`DeadlineClass`](s2m3_core::problem::DeadlineClass) serving
/// statistics: the scenario-level counters and latency summary, split
/// by the class each request drew from the workload's
/// [`ClassShare`](s2m3_sim::workload::ClassShare)s. Empty when the
/// scenario defines no classes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassReport {
    /// Class name (from the workload's `DeadlineClass`).
    pub class: String,
    /// Requests of this class that arrived.
    pub arrived: u64,
    /// Requests of this class that completed.
    pub completed: u64,
    /// Requests of this class shed at admission.
    pub shed: u64,
    /// Completed requests of this class past their class deadline.
    pub late: u64,
    /// Class deadline-miss rate: (late + shed) / arrived.
    pub miss_rate: f64,
    /// Latency summary over this class's completed requests.
    pub latency: LatencySummary,
}

/// Per-device serving statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceReport {
    /// Device name.
    pub device: String,
    /// Module executions the device ran to completion while active.
    pub executions: u64,
    /// Busy lane-seconds accumulated by completed executions.
    pub busy_s: f64,
    /// Seconds the device was in the active fleet.
    pub active_s: f64,
    /// Busy fraction of offered lane-seconds, `[0, 1]`.
    pub utilization: f64,
}

/// The full, deterministic output of a serving run.
///
/// Serialization note: `budget` is omitted when `None` (hand-written
/// `Serialize` below), so budget-free runs keep the exact JSON shape
/// pinned by `tests/fixtures/serve_churn_*.json`.
#[derive(Debug, Clone, PartialEq, Deserialize, Default)]
pub struct ServeReport {
    /// Scenario seed label (same seed ⇒ identical report).
    pub seed: String,
    /// Requests that arrived.
    pub arrived: u64,
    /// Requests that completed.
    pub completed: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Completed requests that finished past their deadline.
    pub late: u64,
    /// Deadline-miss rate over all arrivals: (late + shed) / arrived.
    pub miss_rate: f64,
    /// Requests re-admitted after losing their device mid-flight.
    pub retried: u64,
    /// Latency summary over completed requests.
    pub latency: LatencySummary,
    /// Completion throughput, requests per second of virtual time.
    pub throughput_per_s: f64,
    /// Virtual time when the last request finished, seconds.
    pub makespan_s: f64,
    /// Per-deadline-class statistics, in workload class order (empty
    /// without classes).
    pub classes: Vec<ClassReport>,
    /// Rolling-window SLO snapshots over the run.
    pub windows: Vec<WindowSnapshot>,
    /// Fleet events applied.
    pub events: Vec<EventRecord>,
    /// Replan evaluations (accepted and rejected).
    pub replans: Vec<ReplanRecord>,
    /// Per-device serving statistics, in name order.
    pub devices: Vec<DeviceReport>,
    /// Budget-enforcement summary; present only when the scenario ran
    /// with a [`BudgetPolicy`](crate::budget::BudgetPolicy).
    pub budget: Option<crate::budget::BudgetReport>,
}

impl Serialize for ServeReport {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut obj: Vec<(String, serde::value::Value)> = vec![
            ("seed".to_string(), serde::to_value(&self.seed)?),
            ("arrived".to_string(), serde::to_value(&self.arrived)?),
            ("completed".to_string(), serde::to_value(&self.completed)?),
            ("shed".to_string(), serde::to_value(&self.shed)?),
            ("late".to_string(), serde::to_value(&self.late)?),
            ("miss_rate".to_string(), serde::to_value(&self.miss_rate)?),
            ("retried".to_string(), serde::to_value(&self.retried)?),
            ("latency".to_string(), serde::to_value(&self.latency)?),
            (
                "throughput_per_s".to_string(),
                serde::to_value(&self.throughput_per_s)?,
            ),
            ("makespan_s".to_string(), serde::to_value(&self.makespan_s)?),
            ("classes".to_string(), serde::to_value(&self.classes)?),
            ("windows".to_string(), serde::to_value(&self.windows)?),
            ("events".to_string(), serde::to_value(&self.events)?),
            ("replans".to_string(), serde::to_value(&self.replans)?),
            ("devices".to_string(), serde::to_value(&self.devices)?),
        ];
        if let Some(budget) = &self.budget {
            obj.push(("budget".to_string(), serde::to_value(budget)?));
        }
        s.serialize_value(serde::value::Value::Object(obj))
    }
}

impl ServeReport {
    /// Number of accepted replans.
    pub fn accepted_replans(&self) -> usize {
        self.replans.iter().filter(|r| r.accepted).count()
    }

    /// JSON export.
    ///
    /// # Errors
    ///
    /// Propagates serialization failure (not expected for this type).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// A compact human-readable summary.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "serve run `{}`: {} arrived, {} completed, {} shed, {} late \
             ({} retried after device loss)",
            self.seed, self.arrived, self.completed, self.shed, self.late, self.retried
        );
        let _ = writeln!(
            out,
            "latency  p50 {:.2}s  p95 {:.2}s  p99 {:.2}s  max {:.2}s  (mean {:.2}s)",
            self.latency.p50_s,
            self.latency.p95_s,
            self.latency.p99_s,
            self.latency.max_s,
            self.latency.mean_s
        );
        let _ = writeln!(
            out,
            "deadline-miss rate {:.2}%   throughput {:.2} req/s over {:.0}s of virtual time",
            100.0 * self.miss_rate,
            self.throughput_per_s,
            self.makespan_s
        );
        for c in &self.classes {
            let _ = writeln!(
                out,
                "class  {:<12} {:>6} arrived  {:>6} completed  {:>5} shed  {:>5} late  \
                 miss {:>5.1}%  p95 {:.2}s",
                c.class,
                c.arrived,
                c.completed,
                c.shed,
                c.late,
                100.0 * c.miss_rate,
                c.latency.p95_s
            );
        }
        for e in &self.events {
            let _ = writeln!(out, "event  t={:>7.0}s  {}", e.at_s, e.description);
        }
        for r in &self.replans {
            let verdict = if r.accepted {
                format!(
                    "ACCEPTED ({} migrations, {:.1}s switching cost)",
                    r.migrations, r.switching_cost_s
                )
            } else {
                "rejected".to_string()
            };
            let be = match r.break_even_requests {
                Some(b) => b.to_string(),
                None => "∞".to_string(),
            };
            let _ = writeln!(
                out,
                "replan t={:>7.0}s  {}  break-even {} req @ {:.2} req/s  {}{}",
                r.at_s,
                r.trigger,
                be,
                r.observed_rate_per_s,
                if r.mandatory { "mandatory " } else { "" },
                verdict
            );
        }
        for d in &self.devices {
            let _ = writeln!(
                out,
                "device {:<10} {:>8} execs  busy {:>9.1}s  active {:>9.1}s  util {:>5.1}%",
                d.device,
                d.executions,
                d.busy_s,
                d.active_s,
                100.0 * d.utilization
            );
        }
        if let Some(b) = &self.budget {
            let _ = writeln!(
                out,
                "budget cap {:.2}/{:.0}s window  spend {:.2} (uncapped {:.2})  \
                 adherence {:.1}%  deferred {}  shed {}  latency price {:.1}s",
                b.cap_per_window,
                b.window_s,
                b.spend_total,
                b.shadow_spend_total,
                100.0 * b.adherence,
                b.deferred,
                b.shed,
                b.latency_price_s
            );
            for c in &b.classes {
                let _ = writeln!(
                    out,
                    "budget class {:<12} prio {:>3}  {:>6} deferred  {:>6} shed",
                    c.class, c.priority, c.deferred, c.shed
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_percentiles() {
        let s = LatencySummary::from_latencies((1..=200).map(|i| i as f64).collect());
        assert_eq!(s.completed, 200);
        assert_eq!(s.p50_s, 100.0);
        assert_eq!(s.p95_s, 190.0);
        assert_eq!(s.p99_s, 198.0);
        assert_eq!(s.max_s, 200.0);
        assert_eq!(LatencySummary::from_latencies(vec![]).completed, 0);
    }

    #[test]
    fn report_json_roundtrip_and_summary() {
        let report = ServeReport {
            seed: "t".into(),
            arrived: 10,
            completed: 8,
            shed: 2,
            late: 1,
            miss_rate: 0.3,
            retried: 1,
            latency: LatencySummary::from_latencies(vec![1.0, 2.0, 3.0]),
            throughput_per_s: 0.5,
            makespan_s: 20.0,
            classes: vec![ClassReport {
                class: "interactive".into(),
                arrived: 6,
                completed: 5,
                shed: 1,
                late: 1,
                miss_rate: 2.0 / 6.0,
                latency: LatencySummary::from_latencies(vec![1.0, 2.0]),
            }],
            windows: vec![],
            events: vec![EventRecord {
                at_s: 5.0,
                description: "desktop leaves".into(),
            }],
            replans: vec![ReplanRecord {
                at_s: 5.0,
                trigger: "desktop leaves".into(),
                mandatory: true,
                break_even_requests: Some(0),
                observed_rate_per_s: 0.4,
                accepted: true,
                switching_cost_s: 12.0,
                migrations: 2,
            }],
            devices: vec![],
            budget: None,
        };
        let json = report.to_json().unwrap();
        // `budget: None` must leave the JSON shape untouched — the
        // pre-budget golden fixtures depend on the key being absent.
        assert!(!json.contains("\"budget\""));
        let back: ServeReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
        assert_eq!(report.accepted_replans(), 1);
        let text = report.render_summary();
        assert!(text.contains("ACCEPTED"));
        assert!(text.contains("desktop leaves"));
        assert!(text.contains("p95"));
        assert!(text.contains("interactive"));
        assert!(!text.contains("budget cap"));

        let mut capped = report.clone();
        capped.budget = Some(crate::budget::BudgetReport {
            cap_per_window: 4.0,
            window_s: 10.0,
            metric: crate::budget::BudgetMetric::DeviceSeconds,
            enforcement: crate::budget::BudgetEnforcement::DeferThenShed,
            windows_total: 2,
            windows_over_cap: 0,
            adherence: 1.0,
            spend_total: 6.5,
            shadow_spend_total: 9.0,
            dispatched: 7,
            deferred: 2,
            shed: 1,
            latency_price_s: 3.25,
            classes: vec![crate::budget::BudgetClassReport {
                class: "interactive".into(),
                priority: 2,
                deferred: 2,
                shed: 1,
            }],
            windows: vec![crate::budget::BudgetWindow {
                index: 0,
                spend: 3.5,
                shadow_spend: 5.0,
                dispatched: 4,
                deferred: 2,
                shed: 1,
            }],
        });
        let json = capped.to_json().unwrap();
        assert!(json.contains("\"budget\""));
        let back: ServeReport = serde_json::from_str(&json).unwrap();
        assert_eq!(capped, back);
        let text = capped.render_summary();
        assert!(text.contains("budget cap 4.00"));
        assert!(text.contains("latency price 3.2s"));
    }
}
