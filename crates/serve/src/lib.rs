//! # s2m3-serve
//!
//! An online serving control plane over the S2M3 reproduction: the layer
//! that turns the paper's single-burst evaluation into a continuously
//! running system.
//!
//! The paper (Sec. VI-C) sketches adaptive reallocation under fleet
//! changes and reports one simultaneous multi-task burst (Table X). This
//! crate closes the loop end-to-end:
//!
//! - **request streams** — any seeded
//!   [`ArrivalProcess`](s2m3_sim::workload::ArrivalProcess), including
//!   the bursty MMPP, diurnal, and trace-replay variants;
//! - **admission control** — per-device queues under
//!   [`AdmissionPolicy`]: FIFO, earliest-deadline-first, or
//!   shed-on-overload;
//! - **discrete-event execution** — per-device lanes with module-level
//!   FIFO queues and head-priority dispatch, mirroring
//!   `s2m3_sim::engine`'s semantics;
//! - **SLO tracking** — fixed-size ring-buffer windows summarized into
//!   p50/p95/p99 latency and deadline-miss rates, plus per-device
//!   utilization;
//! - **live replanning** — [`FleetEvent`]s (join/leave/slowdown) wake a
//!   controller that calls [`s2m3_core::adaptive::replan`], accepts
//!   migrations only when their break-even clears the observed arrival
//!   rate, and charges switching costs as destination-device downtime;
//! - **budget enforcement** — an optional per-window fleet-wide cost
//!   cap ([`budget`]): dispatches reserve their route's priced cost and
//!   the lowest-priority work defers or sheds when a window runs dry.
//!
//! ## Example
//!
//! ```
//! use s2m3_serve::{serve, ServeScenario};
//!
//! let mut scenario = ServeScenario::churn_default();
//! scenario.requests = 200; // keep the doctest fast
//! scenario.events.clear();
//! let report = serve(&scenario).unwrap();
//! assert_eq!(report.arrived, 200);
//! assert_eq!(report.completed + report.shed, 200);
//! assert!(report.latency.p50_s <= report.latency.p99_s);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod accounting;
pub mod budget;
pub mod config;
pub mod engine;
pub mod queue;
pub mod report;
pub mod slab;
pub mod slo;
pub mod trace;

#[cfg(test)]
mod proptests;

pub use budget::{
    BudgetClassReport, BudgetEnforcement, BudgetMetric, BudgetPolicy, BudgetReport, BudgetWindow,
};
pub use config::{
    AdmissionPolicy, BatchPolicy, FleetEvent, FleetEventKind, KindBatchCap, ModelDeployment,
    ReplanPolicy, ServeScenario, SloReplanTrigger, StreamingConfig, TrafficSource,
};
pub use engine::{prepare, serve, ServeError, ServeSession, SharedStart};
// The unified workload layer lives in `s2m3_sim::workload`; re-export
// the pieces serving scenarios embed so configs build from one import.
pub use report::{
    ClassReport, DeviceReport, EventRecord, LatencySummary, ReplanRecord, ServeReport,
};
pub use s2m3_sim::workload::{ClassShare, ModelMix, ModelWeight, WorkloadSpec};
pub use slo::{SloWindow, WindowSnapshot};
