//! The sharded serving backend: `ServeScenario::threads ≥ 2` splits one
//! serving run across a persistent worker pool while keeping the
//! [`ServeReport`](crate::report::ServeReport) **byte-identical to the
//! sequential run at any thread count**.
//!
//! Three worker roles, each optional by thread budget:
//!
//! - **S (stream)** — pre-samples arrival batches from the merged
//!   [`WorkloadStream`] into recycled buffers, so workload generation
//!   overlaps event processing. Draw order is untouched (the stream
//!   moves to the worker whole), so this is byte-invisible.
//! - **A (accounting)** — consumes the driver's [`ARec`] stream in the
//!   exact order the sequential loop would have applied it. One
//!   producer, FIFO channel, same `Accounting::apply` consumer: byte-
//!   identical by construction.
//! - **E (encoder shard)** — the conservative (Chandy–Misra–Bryant)
//!   partition: once the last scheduled fleet event has fired, every
//!   device that hosts only encoder tasks moves — with its pending
//!   events, original keys preserved — into a second kernel driven on
//!   its own worker. Cross-shard transfers travel as timestamped
//!   messages ([`ReadyMsg`] head→shard, [`DoneMsg`] shard→head), and
//!   each side advances only below the other's published horizon
//!   ([`HorizonCell`]); the lookahead that keeps the horizons ahead of
//!   the clock is the minimum input-transfer latency onto the shard's
//!   devices. Ambiguous same-nanosecond cross-shard orderings are
//!   *detected* and degrade the run to a bit-exact sequential replay
//!   ([`DegradeFlag`]), so a tie costs speed, never bytes.
//!
//! Everything here is driven from the session thread; the module is an
//! implementation detail of [`ServeSession`].

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use rayon_lite::{ThreadPool, ThreadPoolBuilder};
use s2m3_core::resolved::ResolvedInstance;
use s2m3_sim::kernel::shard::{
    Batcher, DegradeFlag, DegradeReason, HorizonCell, StagedInbox, Stamped, HORIZON_IDLE,
};
use s2m3_sim::kernel::Driver;
use s2m3_sim::workload::{WorkloadRequest, WorkloadStream};

use super::{
    ns, BoxedErr, Online, ServeError, ServeEv, ServeScenario, ServeSession, SharedStart, TaskInfo,
    K,
};
use crate::accounting::{ARec, Accounting, LatAgg};
use crate::slo::SloWindow;

/// Ready messages buffered per flush (head → shard).
const READY_BATCH: usize = 64;
/// Done messages buffered per flush (shard → head).
const DONE_BATCH: usize = 64;
/// Accounting records buffered per send to the A worker.
const ACCT_BATCH: usize = 256;
/// Arrival records per pre-sampled feed buffer.
const FEED_BATCH: usize = 4096;
/// Feed buffers in flight (bounds S-worker read-ahead memory).
const FEED_CREDITS: usize = 4;
/// Idle spins (yield) before parking on the channel.
const SPIN_YIELDS: u32 = 64;
/// Park timeout while waiting for the peer's horizon to move.
const PARK: Duration = Duration::from_micros(100);
/// Wall-clock without any cross-shard progress before declaring
/// deadlock (degrades to the sequential replay, never hangs).
const STALL_LIMIT: Duration = Duration::from_secs(5);

/// An encoder task handed to the shard: everything `put_task` +
/// `push_ready` need to mirror the head-side spawn exactly.
#[derive(Debug, Clone, Copy)]
pub(super) struct ReadyMsg {
    pub tid: u32,
    pub req: u32,
    pub module: u32,
    pub uni: u32,
    pub units: f64,
    pub output_tx_ns: u64,
}

/// An encoder completion reported back to the head shard, stamped with
/// the shard-side finish time (the instant sequential execution would
/// have applied the fan-in).
#[derive(Debug, Clone, Copy)]
pub(super) struct DoneMsg {
    pub tid: u32,
    /// Head-readiness contribution (finish + embedding transfer), ns.
    pub contrib_ns: u64,
    /// Busy time to charge (leader of a merged batch; followers 0).
    pub dur_ns: u64,
    /// Whether the lane survived to completion (accounting gate).
    pub lane_live: bool,
}

/// Head → shard control stream.
pub(super) enum ToE {
    /// Newly spawned encoder tasks, stamped with their ready times.
    Ready(Vec<Stamped<ReadyMsg>>),
    /// Extend the shard's processing cap to `until_ns` (slice bound).
    Run { until_ns: u64 },
    /// The head is blocked: its earliest known work item sits at `s_h`
    /// and it has drained `seen` completion records so far. If `seen`
    /// matches the shard's own sent count, no completion is in flight
    /// (the channel is FIFO, so every earlier hand-off is already
    /// staged) and the shard may leap its safe bound to
    /// `min(s_h, own floor) + lookahead` in one hop instead of
    /// ratcheting there in lookahead-sized horizon steps.
    Quiet { s_h: u64, seen: u64 },
    /// Drain and exit.
    Finish,
}

/// Shard → head result stream.
pub(super) enum FromE {
    /// Encoder completions in non-decreasing τ order.
    Done(Vec<Stamped<DoneMsg>>),
    /// Progress report: `delta` events processed since the last report,
    /// shard clock at `now_ns`.
    Paused { delta: u64, now_ns: u64 },
}

/// The head side of the encoder-shard link, owned by [`Online`] so the
/// dispatch hot path can route spawns without reaching into the
/// session.
pub(super) struct EncLink {
    /// Universe devices owned by the shard.
    pub owned: Vec<bool>,
    pub to_e: Sender<ToE>,
    pub ready: Batcher<Stamped<ReadyMsg>>,
    /// Ready messages sent (or buffered) whose Done has not yet been
    /// applied — while non-zero the shard can still produce work for
    /// this side, so the published horizon must stay conservative.
    pub outstanding: u64,
}

impl EncLink {
    /// Buffers one encoder hand-off, flushing a full batch inline.
    #[inline]
    pub fn send_ready(&mut self, tau_ns: u64, msg: ReadyMsg) {
        self.outstanding += 1;
        if let Some(batch) = self.ready.push(Stamped { tau_ns, msg }) {
            let _ = self.to_e.send(ToE::Ready(batch));
        }
    }
}

/// The head side of the accounting off-load link.
pub(super) struct AcctLink {
    pub tx: Sender<Vec<ARec>>,
    pub buf: Batcher<ARec>,
}

impl AcctLink {
    #[inline]
    pub fn push(&mut self, rec: ARec) {
        if let Some(batch) = self.buf.push(rec) {
            let _ = self.tx.send(batch);
        }
    }

    pub fn flush(&mut self) {
        let batch = self.buf.take();
        if !batch.is_empty() {
            let _ = self.tx.send(batch);
        }
    }
}

/// The head side of the workload pre-sampling link. Buffers recycle:
/// every received batch returns its displaced predecessor as a credit,
/// so read-ahead memory is bounded by [`FEED_CREDITS`] buffers.
pub(super) struct FeedLink {
    pub rx: Receiver<Vec<WorkloadRequest>>,
    pub credit: Sender<Vec<WorkloadRequest>>,
}

/// Session-side state of an activated encoder shard.
pub(super) struct EncState {
    pub from_e: Receiver<FromE>,
    /// Received completions not yet merged (τ order).
    pub staged: StagedInbox<DoneMsg>,
    /// Max-monotone cache of the shard's published horizon.
    pub e_promise: u64,
    /// Events the shard has processed (cumulative).
    pub e_count: u64,
    /// Portion of `e_count` already returned to the caller.
    pub e_counted: u64,
    /// Shard clock high-water mark (reporting only).
    pub e_now_ns: u64,
    /// Last horizon published to the shard.
    pub h_last_pub: u64,
    /// Completion records drained from the shard (cumulative), echoed
    /// in [`ToE::Quiet`] so the shard can prove the channel is empty.
    pub done_seen: u64,
    /// Last `(s_h, seen)` pair sent as a [`ToE::Quiet`].
    pub last_quiet: Option<(u64, u64)>,
    /// Shard lookahead (head-side copy, for the idle window march).
    pub min_in: u64,
}

/// Everything the parallel backend keeps on the session (worker pool
/// last: channels and links must disconnect before the joins).
pub(super) struct Par {
    pub degrade: Arc<DegradeFlag>,
    pub h_cell: Arc<HorizonCell>,
    pub e_cell: Arc<HorizonCell>,
    /// First error the accounting worker hit (fatal at the next slice).
    pub a_err: Arc<Mutex<Option<ServeError>>>,
    /// Returns the accounting state at shutdown (A worker only).
    pub acct_res: Option<Receiver<Accounting>>,
    /// Replay inputs for the degrade path.
    pub scenario: ServeScenario,
    pub shared: SharedStart,
    /// Every cap ever passed to `run_until`/`run_to_idle`, in order
    /// (`u64::MAX` = to idle) — the degrade replay schedule.
    pub caps: Vec<u64>,
    /// Events already reported to the caller across completed slices.
    pub reported: u64,
    /// Virtual time of the last scheduled fleet event (shard activation
    /// point: after it, placement and routes are frozen).
    pub activate_at_ns: u64,
    pub enc_attempted: bool,
    pub enc: Option<EncState>,
    pub pool: ThreadPool,
}

/// Internal error split: degrade falls back to the sequential replay,
/// fatal surfaces to the caller.
pub(super) enum ParErr {
    Degrade,
    Fatal(ServeError),
}

/// `x` lies beyond the slice cap (`MAX` cap means "idle": only the
/// absorbing horizon counts as beyond).
#[inline]
fn above(x: u64, cap: u64) -> bool {
    if cap == u64::MAX {
        x == HORIZON_IDLE
    } else {
        x > cap
    }
}

/// Installs the parallel backend on a freshly built session.
/// `threads < 2` (and single-worker fleets that never activate a
/// shard) keep the plain sequential path.
pub(super) fn install(session: &mut ServeSession, scenario: &ServeScenario, shared: &SharedStart) {
    let threads = scenario.threads;
    if threads < 2 {
        return;
    }
    let pool = ThreadPoolBuilder::new().num_threads(threads).build();
    // One worker stays reserved for the encoder shard (spawned at
    // activation); the rest host the stream and accounting roles.
    let budget = pool.num_threads().saturating_sub(2);
    let a_err: Arc<Mutex<Option<ServeError>>> = Arc::default();
    let mut acct_res = None;
    if budget >= 1 {
        let (batch_tx, batch_rx) = channel::unbounded();
        let (credit_tx, credit_rx) = channel::unbounded();
        for _ in 0..FEED_CREDITS {
            let _ = credit_tx.send(Vec::with_capacity(FEED_BATCH));
        }
        let stream = session
            .driver
            .stream
            .take()
            .expect("stream present at install");
        pool.spawn(move || s_worker(stream, credit_rx, batch_tx));
        session.driver.feed = Some(FeedLink {
            rx: batch_rx,
            credit: credit_tx,
        });
    }
    // The accounting worker owns the SLO window, so it is incompatible
    // with the SLO-breach replan trigger (which samples the window
    // mid-run on the session thread).
    if budget >= 2 && session.driver.slo_trigger.is_none() {
        let (tx, rx) = channel::unbounded();
        let (res_tx, res_rx) = channel::unbounded();
        let acct = std::mem::replace(&mut session.driver.acct, placeholder_accounting());
        let err = Arc::clone(&a_err);
        pool.spawn(move || a_worker(acct, rx, res_tx, err));
        session.driver.acct_tx = Some(AcctLink {
            tx,
            buf: Batcher::new(ACCT_BATCH),
        });
        acct_res = Some(res_rx);
    }
    let activate_at_ns = session
        .driver
        .events
        .iter()
        .map(|e| ns(e.at_s.max(0.0)))
        .max()
        .unwrap_or(0);
    session.par = Some(Par {
        degrade: Arc::new(DegradeFlag::new()),
        h_cell: Arc::new(HorizonCell::new()),
        e_cell: Arc::new(HorizonCell::new()),
        a_err,
        acct_res,
        scenario: scenario.clone(),
        shared: shared.clone(),
        caps: Vec::new(),
        reported: 0,
        activate_at_ns,
        enc_attempted: false,
        enc: None,
        pool,
    });
}

/// An inert [`Accounting`] standing in on the driver while the real
/// state lives on the A worker. Never read: every record routes through
/// the link, the SLO trigger is disabled, and `finish` restores the
/// real state first.
fn placeholder_accounting() -> Accounting {
    Accounting {
        slo: SloWindow::new(1),
        snapshot_stride: 1,
        until_snapshot: 1,
        max_windows: None,
        last_snapshot_seen: 0,
        latencies: LatAgg::default(),
        class_stats: Vec::new(),
        usage: Vec::new(),
        executions: Vec::new(),
        sink: None,
        completed: 0,
        late: 0,
        shed: 0,
        windows: Vec::new(),
        last_completion_ns: 0,
    }
}

/// The stream worker: refills recycled buffers with the next arrival
/// batch. Exits when the stream dries up or the session drops its link.
fn s_worker(
    mut stream: WorkloadStream,
    credit: Receiver<Vec<WorkloadRequest>>,
    out: Sender<Vec<WorkloadRequest>>,
) {
    while let Ok(mut buf) = credit.recv() {
        buf.clear();
        while buf.len() < FEED_BATCH {
            match stream.next_request() {
                Some(r) => buf.push(r),
                None => break,
            }
        }
        let last = buf.len() < FEED_BATCH;
        if out.send(buf).is_err() || last {
            break;
        }
    }
}

/// The accounting worker: applies record batches in arrival order. On a
/// sink error it parks the error for the session thread, drops the sink
/// (later records keep the counters honest), and keeps consuming.
fn a_worker(
    mut acct: Accounting,
    rx: Receiver<Vec<ARec>>,
    res: Sender<Accounting>,
    err: Arc<Mutex<Option<ServeError>>>,
) {
    while let Ok(batch) = rx.recv() {
        for rec in batch {
            if let Err(e) = acct.apply(rec) {
                acct.sink = None;
                let mut slot = err.lock().expect("accounting error cell");
                if slot.is_none() {
                    *slot = Some(e);
                }
            }
        }
    }
    let _ = res.send(acct);
}

/// Tears the backend down and restores off-loaded state onto the
/// driver (shared by `finish` and drop-free shutdown paths).
pub(super) fn shutdown(driver: &mut Online, par: Par) {
    if let Some(link) = driver.enc.take() {
        let _ = link.to_e.send(ToE::Finish);
    }
    if let Some(mut link) = driver.acct_tx.take() {
        link.flush();
    }
    driver.feed = None;
    if let Some(rx) = par.acct_res.as_ref() {
        if let Ok(acct) = rx.recv() {
            driver.acct = acct;
        }
    }
    // Dropping `par` disconnects the remaining channels and joins the
    // pool (workers observe the disconnects and exit).
    drop(par);
}

/// A staged encoder hand-off on the shard, ordered by `(τ, arrival
/// rank)`: the head emits in its own processing order, so equal-τ
/// injections replay the sequential push order exactly.
struct StagedReady {
    tau_ns: u64,
    idx: u64,
    msg: ReadyMsg,
}

impl PartialEq for StagedReady {
    fn eq(&self, other: &Self) -> bool {
        self.tau_ns == other.tau_ns && self.idx == other.idx
    }
}

impl Eq for StagedReady {}

impl PartialOrd for StagedReady {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for StagedReady {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.tau_ns, self.idx).cmp(&(other.tau_ns, other.idx))
    }
}

/// The kernel driver running on the encoder shard: executes encoder
/// tasks with the head driver's exact duration arithmetic, but
/// *relocates* completion bookkeeping — instead of folding fan-in state
/// locally, every finish ships back as a τ-stamped [`DoneMsg`]. Any
/// event class the partition promised the shard would never see raises
/// the degrade flag.
struct EncDriver {
    resolved: Arc<ResolvedInstance>,
    res_of_uni: Vec<Option<u32>>,
    exec_overhead_s: Vec<f64>,
    done: Batcher<Stamped<DoneMsg>>,
    to_h: Sender<FromE>,
    /// `(lane_live, dur_ns)` captured by `task_finished` for the
    /// `encoder_finished` call that immediately follows it.
    cur: Option<(bool, u64)>,
    /// Completion records pushed into the channel (cumulative) — the
    /// shard's side of the [`ToE::Quiet`] in-flight check.
    sent_items: u64,
    degrade: Arc<DegradeFlag>,
}

impl Driver for EncDriver {
    type Custom = ServeEv;
    type Payload = TaskInfo;
    type Error = BoxedErr;

    #[inline]
    fn dispatched(
        &mut self,
        k: &mut K,
        device: usize,
        group: &[usize],
        now: u64,
    ) -> Result<u64, BoxedErr> {
        let rd = self.res_of_uni[device];
        let mut dur_s = 0.0;
        for &tid in group {
            dur_s += match rd {
                Some(rd) => self.resolved.compute_time_units(
                    k.tasks.module(tid),
                    rd,
                    k.tasks.payload(tid).units,
                ),
                None => 0.1,
            };
        }
        if group.len() > 1 {
            dur_s -= (group.len() - 1) as f64 * self.exec_overhead_s[device];
        }
        let dur_ns = ns(dur_s);
        k.tasks.payload_mut(group[0]).dur_ns = dur_ns;
        for &tid in &group[1..] {
            k.tasks.payload_mut(tid).dur_ns = 0;
        }
        Ok(now + dur_ns)
    }

    #[inline]
    fn task_finished(
        &mut self,
        k: &mut K,
        tid: usize,
        _now: u64,
        lane_live: bool,
    ) -> Result<(), BoxedErr> {
        if k.tasks.cancelled(tid) {
            // Cancels require a replan, which cannot happen after
            // activation: the partition's premise broke.
            self.degrade.raise(DegradeReason::PartitionInvalidated);
            self.cur = None;
            return Ok(());
        }
        self.cur = Some((lane_live, k.tasks.payload(tid).dur_ns));
        Ok(())
    }

    #[inline]
    fn encoder_ready_ns(&mut self, k: &mut K, tid: usize, now: u64) -> Result<u64, BoxedErr> {
        Ok(now + k.tasks.payload(tid).output_tx_ns)
    }

    fn encoder_finished(&mut self, k: &mut K, tid: usize, now: u64) -> Result<(), BoxedErr> {
        let (lane_live, dur_ns) = self.cur.take().unwrap_or((false, 0));
        let contrib_ns = now + k.tasks.payload(tid).output_tx_ns;
        let stamped = Stamped {
            tau_ns: now,
            msg: DoneMsg {
                tid: tid as u32,
                contrib_ns,
                dur_ns,
                lane_live,
            },
        };
        if let Some(batch) = self.done.push(stamped) {
            self.sent_items += batch.len() as u64;
            let _ = self.to_h.send(FromE::Done(batch));
        }
        Ok(())
    }

    fn head_done(&mut self, _k: &mut K, _req: usize, _now: u64) -> Result<(), BoxedErr> {
        self.degrade.raise(DegradeReason::PartitionInvalidated);
        Ok(())
    }

    fn custom(&mut self, _k: &mut K, _event: ServeEv, _now: u64) -> Result<(), BoxedErr> {
        self.degrade.raise(DegradeReason::PartitionInvalidated);
        Ok(())
    }
}

/// The encoder-shard worker loop: a conservative logical process. Each
/// round it (1) loads the head's horizon *then* drains the control
/// channel (the publish protocol makes every message below an observed
/// horizon visible), (2) injects staged hand-offs and processes local
/// events strictly below `horizon + lookahead`, (3) flushes completions
/// and re-publishes its own horizon. Same-nanosecond collisions between
/// an injection and a local event are exactly the cross-shard ties the
/// sequential order cannot be reconstructed from — they raise the
/// degrade flag and the worker unwinds.
struct EncWorker {
    kernel: K,
    driver: EncDriver,
    rx: Receiver<ToE>,
    staged: BinaryHeap<Reverse<StagedReady>>,
    next_idx: u64,
    h_cell: Arc<HorizonCell>,
    e_cell: Arc<HorizonCell>,
    degrade: Arc<DegradeFlag>,
    /// Lookahead: minimum input-transfer latency onto an owned device.
    min_in: u64,
    run_cap: u64,
    h_promise: u64,
    e_count: u64,
    e_reported: u64,
    last_pub: u64,
    /// Latest unevaluated [`ToE::Quiet`] (last one in a drain wins).
    pending_quiet: Option<(u64, u64)>,
    /// Monotone safe-bound floor established by matched Quiet rounds.
    /// Each bound stays valid forever: every future hand-off descends
    /// either from a head item ≥ `s_h` or from a completion this shard
    /// emits at ≥ its own floor, so arrivals are ≥ the bound.
    quiet_bound: u64,
}

impl EncWorker {
    fn stage(&mut self, batch: Vec<Stamped<ReadyMsg>>) {
        for s in batch {
            self.staged.push(Reverse(StagedReady {
                tau_ns: s.tau_ns,
                idx: self.next_idx,
                msg: s.msg,
            }));
            self.next_idx += 1;
        }
    }

    fn handle(&mut self, msg: ToE, finished: &mut bool) {
        match msg {
            ToE::Ready(batch) => self.stage(batch),
            ToE::Run { until_ns } => self.run_cap = self.run_cap.max(until_ns),
            ToE::Quiet { s_h, seen } => self.pending_quiet = Some((s_h, seen)),
            ToE::Finish => *finished = true,
        }
    }

    fn run(mut self) {
        let mut finished = false;
        let mut idle_spins = 0u32;
        'outer: loop {
            // Horizon first, channel second (Release/Acquire pairing):
            // any hand-off not yet drained after this load was sent
            // under a promise ≥ the loaded bound.
            self.h_promise = self.h_promise.max(self.h_cell.load());
            loop {
                match self.rx.try_recv() {
                    Ok(m) => self.handle(m, &mut finished),
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        finished = true;
                        break;
                    }
                }
            }
            if finished || self.degrade.raised() {
                break 'outer;
            }
            // A Quiet whose drain count matches proves the channel held
            // nothing unaccounted when the head computed `s_h` (FIFO:
            // every earlier hand-off is staged by now, every completion
            // we sent was seen). The leap must be evaluated here —
            // after the drain, before this round emits anything — while
            // `sent_items` and the staged floor are both current.
            if let Some((s_h, seen)) = self.pending_quiet.take() {
                if seen == self.driver.sent_items {
                    let floor = self
                        .kernel
                        .peek_time()
                        .unwrap_or(u64::MAX)
                        .min(self.staged.peek().map_or(u64::MAX, |Reverse(s)| s.tau_ns));
                    self.quiet_bound = self
                        .quiet_bound
                        .max(s_h.min(floor).saturating_add(self.min_in));
                }
            }
            let safe = self
                .h_promise
                .saturating_add(self.min_in)
                .max(self.quiet_bound);
            let mut progressed = false;
            loop {
                let ts = self.staged.peek().map_or(u64::MAX, |Reverse(s)| s.tau_ns);
                let te = self.kernel.peek_time().unwrap_or(u64::MAX);
                if ts < safe && ts <= self.run_cap {
                    if ts < te {
                        let Reverse(s) = self.staged.pop().expect("peeked");
                        self.kernel.put_task(
                            s.msg.tid as usize,
                            s.msg.req as usize,
                            s.msg.module,
                            s.msg.uni as usize,
                            false,
                            TaskInfo {
                                units: s.msg.units,
                                output_tx_ns: s.msg.output_tx_ns,
                                dur_ns: 0,
                            },
                        );
                        self.kernel.push_ready(s.tau_ns, s.msg.tid as usize);
                        progressed = true;
                        continue;
                    }
                    if ts == te {
                        // An injection and a local event at the same
                        // nanosecond: their sequential interleaving is
                        // unrecoverable here.
                        self.degrade.raise(DegradeReason::TimestampTie);
                        break 'outer;
                    }
                }
                if te < safe && te <= self.run_cap {
                    // `te < safe` ⇒ `safe ≥ 1`; the bound is ≥ te, so
                    // at least one event fires per chunk.
                    let bound = self.run_cap.min(safe - 1).min(ts.saturating_sub(1));
                    match self.kernel.run_until(&mut self.driver, bound) {
                        Ok(n) => {
                            self.e_count += n;
                            progressed |= n > 0;
                        }
                        Err(_) => {
                            self.degrade.raise(DegradeReason::PartitionInvalidated);
                            break 'outer;
                        }
                    }
                    if self.degrade.raised() {
                        break 'outer;
                    }
                    continue;
                }
                break;
            }
            // Flush results and the progress report *before* publishing
            // the new horizon, per the HorizonCell protocol.
            let mut sent = false;
            let batch = self.driver.done.take();
            if !batch.is_empty() {
                self.driver.sent_items += batch.len() as u64;
                let _ = self.driver.to_h.send(FromE::Done(batch));
                sent = true;
            }
            if self.e_count > self.e_reported {
                let _ = self.driver.to_h.send(FromE::Paused {
                    delta: self.e_count - self.e_reported,
                    now_ns: self.kernel.now(),
                });
                self.e_reported = self.e_count;
                sent = true;
            }
            let promise = self
                .kernel
                .peek_time()
                .unwrap_or(HORIZON_IDLE)
                .min(
                    self.staged
                        .peek()
                        .map_or(HORIZON_IDLE, |Reverse(s)| s.tau_ns),
                )
                .min(safe);
            if promise > self.last_pub {
                // Advancing the horizon with no payload in flight is
                // the null-message case: send an empty progress report
                // so a parked head wakes now instead of timing out.
                if !sent {
                    let _ = self.driver.to_h.send(FromE::Paused {
                        delta: 0,
                        now_ns: self.kernel.now(),
                    });
                }
                self.e_cell.publish(promise);
                self.e_cell.tick();
                self.last_pub = promise;
            }
            if progressed {
                idle_spins = 0;
                continue;
            }
            idle_spins += 1;
            if idle_spins < SPIN_YIELDS {
                std::thread::yield_now();
                continue;
            }
            match self.rx.recv_timeout(PARK) {
                Ok(m) => {
                    self.handle(m, &mut finished);
                    idle_spins = 0;
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => finished = true,
            }
            if finished || self.degrade.raised() {
                break;
            }
        }
    }
}

impl ServeSession {
    /// The parallel run loop: one slice per caller-visible
    /// `run_until`/`run_to_idle` call (`cap == u64::MAX` means idle).
    /// Returns the same event count the sequential slice would have.
    pub(super) fn par_run(&mut self, cap: u64) -> Result<u64, ServeError> {
        let mut par = self.par.take().expect("par_run without backend");
        par.caps.push(cap);
        match self.par_drive(&mut par, cap) {
            Ok(n) => {
                par.reported += n;
                self.par = Some(par);
                Ok(n)
            }
            Err(ParErr::Degrade) => self.par_degrade(par),
            Err(ParErr::Fatal(e)) => {
                self.par = Some(par);
                Err(e)
            }
        }
    }

    /// One slice: sequential until the activation point, the merged
    /// conservative loop afterwards.
    fn par_drive(&mut self, par: &mut Par, cap: u64) -> Result<u64, ParErr> {
        if par.degrade.raised() {
            return Err(ParErr::Degrade);
        }
        check_a(par)?;
        let mut n: u64 = 0;
        if par.enc.is_none() {
            if par.enc_attempted || cap < par.activate_at_ns {
                // Sharding declined (or not yet reachable): the slice
                // runs sequentially on this thread — S and A still
                // overlap.
                n += self.run_h(cap)?;
                self.flush_links();
                check_a(par)?;
                return Ok(n);
            }
            n += self.run_h(par.activate_at_ns)?;
            par.enc_attempted = true;
            self.try_activate(par);
            if par.enc.is_none() {
                n += self.run_h(cap)?;
                self.flush_links();
                check_a(par)?;
                return Ok(n);
            }
        }
        n += self.par_merged(par, cap)?;
        self.flush_links();
        check_a(par)?;
        Ok(n)
    }

    /// Plain sequential processing up to `cap` on the session thread.
    fn run_h(&mut self, cap: u64) -> Result<u64, ParErr> {
        let r = if cap == u64::MAX {
            self.kernel.run_until_idle(&mut self.driver)
        } else {
            self.kernel.run_until(&mut self.driver, cap)
        };
        r.map_err(|e| ParErr::Fatal(*e))
    }

    /// Flushes buffered accounting records at a slice boundary.
    fn flush_links(&mut self) {
        if let Some(link) = self.driver.acct_tx.as_mut() {
            link.flush();
        }
    }

    /// Decides whether the device set supports an encoder shard under
    /// the frozen post-churn placement, and if so splits the kernel and
    /// spawns the shard worker. Declining is always safe: the session
    /// simply keeps running sequentially.
    fn try_activate(&mut self, par: &mut Par) {
        // The SLO trigger replans between fleet events — placement
        // would not stay frozen.
        if self.driver.slo_trigger.is_some() {
            return;
        }
        let n_uni = self.driver.uni_names.len();
        let mut excluded = vec![false; n_uni];
        if let Some(ui) = self
            .driver
            .uni_index(self.driver.universe.requester().as_str())
        {
            excluded[ui] = true;
        }
        for s in &self.driver.sources {
            excluded[s.uni] = true;
        }
        for mr in self.driver.model_routes.iter().flatten() {
            excluded[mr.head_uni] = true;
        }
        let mut owned = vec![false; n_uni];
        for mr in self.driver.model_routes.iter().flatten() {
            let encs = mr.enc_start as usize..(mr.enc_start + mr.enc_len) as usize;
            for ei in encs {
                let uni = self.driver.route_encs[ei].uni;
                if !excluded[uni] {
                    owned[uni] = true;
                }
            }
        }
        if !owned.iter().any(|&o| o) {
            return;
        }
        // Lookahead floor: the shard only ever receives work delayed by
        // an input transfer; zero lookahead cannot ratchet horizons.
        let mut min_in = u64::MAX;
        for mr in self.driver.model_routes.iter().flatten() {
            let encs = mr.enc_start as usize..(mr.enc_start + mr.enc_len) as usize;
            for ei in encs {
                let e = &self.driver.route_encs[ei];
                if owned[e.uni] {
                    min_in = min_in.min(e.input_tx_ns);
                }
            }
        }
        if min_in == 0 || min_in == u64::MAX {
            return;
        }
        // A cancelled task still awaiting its completion event would
        // need accounting the shard cannot replicate; also count the
        // in-flight work the shard inherits (its completions decrement
        // `outstanding` like freshly routed ones).
        let mut outstanding = 0u64;
        for tid in 0..self.kernel.tasks.len() {
            if !owned[self.kernel.tasks.device(tid)] || self.kernel.tasks.finished(tid) {
                continue;
            }
            if self.kernel.tasks.cancelled(tid) {
                return;
            }
            outstanding += 1;
        }
        // Split: the shard's kernel is a clone keeping only owned-
        // device events (original keys — the determinism anchor), the
        // session kernel drops exactly those.
        let mut e_kernel = self.kernel.clone();
        self.kernel.retain_events_where_device(&owned, false);
        e_kernel.retain_events_where_device(&owned, true);
        let (to_e_tx, to_e_rx) = channel::unbounded();
        let (to_h_tx, to_h_rx) = channel::unbounded();
        let now = self.kernel.now();
        par.h_cell.publish(now);
        let worker = EncWorker {
            kernel: e_kernel,
            driver: EncDriver {
                resolved: Arc::clone(&self.driver.resolved),
                res_of_uni: self.driver.res_of_uni.clone(),
                exec_overhead_s: self.driver.exec_overhead_s.clone(),
                done: Batcher::new(DONE_BATCH),
                to_h: to_h_tx,
                cur: None,
                sent_items: 0,
                degrade: Arc::clone(&par.degrade),
            },
            rx: to_e_rx,
            staged: BinaryHeap::new(),
            next_idx: 0,
            h_cell: Arc::clone(&par.h_cell),
            e_cell: Arc::clone(&par.e_cell),
            degrade: Arc::clone(&par.degrade),
            min_in,
            run_cap: 0,
            h_promise: 0,
            e_count: 0,
            e_reported: 0,
            last_pub: 0,
            pending_quiet: None,
            quiet_bound: 0,
        };
        par.pool.spawn(move || worker.run());
        self.driver.enc = Some(EncLink {
            owned,
            to_e: to_e_tx,
            ready: Batcher::new(READY_BATCH),
            outstanding,
        });
        par.enc = Some(EncState {
            from_e: to_h_rx,
            staged: StagedInbox::new(),
            e_promise: 0,
            e_count: 0,
            e_counted: 0,
            e_now_ns: now,
            h_last_pub: now,
            done_seen: 0,
            last_quiet: None,
            min_in,
        });
    }

    /// The merged conservative loop on the session thread: interleaves
    /// local events and staged shard completions in global `(time,
    /// push-order)` order, publishing its own horizon each round. The
    /// slice ends when both shards have provably nothing left at or
    /// below `cap`.
    fn par_merged(&mut self, par: &mut Par, cap: u64) -> Result<u64, ParErr> {
        let Par {
            ref degrade,
            ref h_cell,
            ref e_cell,
            ref a_err,
            ref mut enc,
            ..
        } = *par;
        let st = enc.as_mut().expect("merged loop without shard");
        {
            let link = self.driver.enc.as_ref().expect("merged loop link");
            if link.to_e.send(ToE::Run { until_ns: cap }).is_err() {
                degrade.raise(DegradeReason::Deadlock);
                return Err(ParErr::Degrade);
            }
        }
        let mut n_h: u64 = 0;
        let mut idle_spins = 0u32;
        let mut last_progress = Instant::now();
        loop {
            if degrade.raised() {
                return Err(ParErr::Degrade);
            }
            if let Some(e) = a_err.lock().expect("accounting error cell").take() {
                return Err(ParErr::Fatal(e));
            }
            // Horizon before channel (Release/Acquire pairing).
            st.e_promise = st.e_promise.max(e_cell.load());
            let ep = st.e_promise;
            let mut progressed = false;
            loop {
                match st.from_e.try_recv() {
                    Ok(FromE::Done(batch)) => {
                        st.done_seen += batch.len() as u64;
                        st.staged.extend(batch);
                        progressed = true;
                    }
                    Ok(FromE::Paused { delta, now_ns }) => {
                        st.e_count += delta;
                        st.e_now_ns = st.e_now_ns.max(now_ns);
                        progressed = true;
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        // The shard exited without Finish: degrade (the
                        // flag check above catches its own reasons).
                        degrade.raise(DegradeReason::Deadlock);
                        return Err(ParErr::Degrade);
                    }
                }
            }
            loop {
                let ts = st.staged.next_tau().unwrap_or(u64::MAX);
                let th = self.kernel.peek_time().unwrap_or(u64::MAX);
                if ts <= cap && ts < th {
                    let s = st.staged.pop().expect("peeked");
                    apply_done(&mut self.kernel, &mut self.driver, s)?;
                    progressed = true;
                    continue;
                }
                if ts <= cap && ts == th && th != u64::MAX {
                    degrade.raise(DegradeReason::TimestampTie);
                    return Err(ParErr::Degrade);
                }
                if th != u64::MAX
                    && th <= cap
                    && ts == u64::MAX
                    && self.driver.enc.as_ref().is_some_and(|l| l.outstanding == 0)
                {
                    // The shard is provably empty (no hand-off
                    // outstanding, nothing staged): it cannot emit
                    // anything until this side dispatches, and any
                    // completion descending from a dispatch in this
                    // window lands at ≥ `th + lookahead`. March one
                    // lookahead-wide window at full local speed — the
                    // sparse regime needs no horizon round-trips.
                    let bound = cap.min(th.saturating_add(st.min_in).saturating_sub(1));
                    let c = self
                        .kernel
                        .run_until(&mut self.driver, bound)
                        .map_err(|e| ParErr::Fatal(*e))?;
                    n_h += c;
                    progressed |= c > 0;
                    continue;
                }
                if th <= cap && th < ep && th < ts {
                    // `th < ep` ⇒ `ep ≥ 1`, `th < ts` ⇒ `ts ≥ 1`: the
                    // bound is ≥ th, so the chunk always advances.
                    let bound = cap.min(ep - 1).min(ts.saturating_sub(1));
                    let c = self
                        .kernel
                        .run_until(&mut self.driver, bound)
                        .map_err(|e| ParErr::Fatal(*e))?;
                    n_h += c;
                    progressed |= c > 0;
                    continue;
                }
                break;
            }
            // Flush hand-offs *then* publish (HorizonCell protocol) —
            // and flush every round: a buffered Ready the shard is
            // waiting on must never outlive this iteration.
            let (outstanding, sent) = {
                let link = self.driver.enc.as_mut().expect("merged loop link");
                let batch = link.ready.take();
                let sent = !batch.is_empty();
                if sent && link.to_e.send(ToE::Ready(batch)).is_err() {
                    degrade.raise(DegradeReason::Deadlock);
                    return Err(ParErr::Degrade);
                }
                (link.outstanding, sent)
            };
            let th = self.kernel.peek_time().unwrap_or(HORIZON_IDLE);
            let ts = st.staged.next_tau().unwrap_or(HORIZON_IDLE);
            let ph = th
                .min(ts)
                .min(if outstanding > 0 { ep } else { HORIZON_IDLE });
            if ph > st.h_last_pub {
                // Null-message broadcast: a horizon advance with no
                // payload still wakes a parked shard immediately (the
                // redundant `Run` merges as a no-op on arrival).
                if !sent {
                    let link = self.driver.enc.as_ref().expect("merged loop link");
                    let _ = link.to_e.send(ToE::Run { until_ns: cap });
                }
                h_cell.publish(ph);
                h_cell.tick();
                st.h_last_pub = ph;
            }
            if !progressed && outstanding > 0 {
                // Blocked behind the shard: tell it exactly where this
                // side's own work floor sits and how many completions
                // have been drained, so it can leap its safe bound in
                // one hop (see [`ToE::Quiet`]) instead of ratcheting
                // through lookahead-sized steps.
                let quiet = (th.min(ts), st.done_seen);
                if st.last_quiet != Some(quiet) {
                    let link = self.driver.enc.as_ref().expect("merged loop link");
                    let send = ToE::Quiet {
                        s_h: quiet.0,
                        seen: quiet.1,
                    };
                    if link.to_e.send(send).is_err() {
                        degrade.raise(DegradeReason::Deadlock);
                        return Err(ParErr::Degrade);
                    }
                    st.last_quiet = Some(quiet);
                }
            }
            if above(th, cap) && above(ts, cap) && above(ep, cap) {
                let delta = st.e_count - st.e_counted;
                st.e_counted = st.e_count;
                return Ok(n_h + delta);
            }
            if progressed {
                idle_spins = 0;
                last_progress = Instant::now();
                continue;
            }
            if last_progress.elapsed() > STALL_LIMIT {
                degrade.raise(DegradeReason::Deadlock);
                return Err(ParErr::Degrade);
            }
            idle_spins += 1;
            if idle_spins < SPIN_YIELDS {
                std::thread::yield_now();
                continue;
            }
            match st.from_e.recv_timeout(PARK) {
                Ok(FromE::Done(batch)) => {
                    st.done_seen += batch.len() as u64;
                    st.staged.extend(batch);
                    idle_spins = 0;
                }
                Ok(FromE::Paused { delta, now_ns }) => {
                    st.e_count += delta;
                    st.e_now_ns = st.e_now_ns.max(now_ns);
                    idle_spins = 0;
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    degrade.raise(DegradeReason::Deadlock);
                    return Err(ParErr::Degrade);
                }
            }
        }
    }

    /// Bit-exact sequential fallback: tear the backend down, rebuild
    /// the session from the scenario, and replay every historical slice
    /// cap. Returns the current slice's event count as if it had run
    /// parallel — a degrade costs wall-clock, never bytes.
    fn par_degrade(&mut self, par: Par) -> Result<u64, ServeError> {
        // Teardown order matters for the streaming sink: every handle
        // to the old file must flush and close before the fresh session
        // re-creates (truncates) it. The inline sink drops here …
        self.driver.acct.sink = None;
        self.driver.enc = None;
        self.driver.acct_tx = None;
        self.driver.feed = None;
        let Par {
            scenario,
            shared,
            caps,
            reported,
            ..
        } = par;
        // … and the A worker's copy flushes inside the pool join above
        // (destructuring dropped the channels and pool: the unclaimed
        // accounting state — old sink included — died with them).
        let mut scenario = scenario;
        scenario.threads = 0;
        let mut fresh = ServeSession::with_shared(&scenario, &shared)?;
        let mut total: u64 = 0;
        for &c in &caps {
            total += fresh.run_h(c).map_err(|e| match e {
                ParErr::Fatal(e) => e,
                ParErr::Degrade => unreachable!("sequential replay cannot degrade"),
            })?;
        }
        *self = fresh;
        Ok(total.saturating_sub(reported))
    }
}

/// Merges one shard completion at its stamped time: the exact tail of
/// the sequential `finish_task` path for a non-cancelled encoder —
/// busy-time charge, fan-in contribution (which may arm the head), and
/// slot retirement — relocated to the shard boundary.
fn apply_done(kernel: &mut K, driver: &mut Online, s: Stamped<DoneMsg>) -> Result<(), ParErr> {
    let tid = s.msg.tid as usize;
    let tau = s.tau_ns;
    if s.msg.lane_live {
        driver.acct_infallible(ARec::Charge {
            ui: kernel.tasks.device(tid) as u32,
            dur_ns: s.msg.dur_ns,
        });
    }
    if let Some(hdi) = kernel.apply_encoder_contribution(tid, s.msg.contrib_ns, tau) {
        kernel
            .try_dispatch(hdi, tau, driver)
            .map_err(|e| ParErr::Fatal(*e))?;
    }
    kernel.retire_task(tid);
    if let Some(link) = driver.enc.as_mut() {
        link.outstanding -= 1;
    }
    Ok(())
}

/// Fatal-error check against the accounting worker's parked error.
fn check_a(par: &Par) -> Result<(), ParErr> {
    if let Some(e) = par.a_err.lock().expect("accounting error cell").take() {
        return Err(ParErr::Fatal(e));
    }
    Ok(())
}
