//! Per-request parallel routing — Algorithm 1, lines 13–19.
//!
//! These are the string-id boundary entry points, convenient for one-off
//! routing and tests. Hot loops (the serve engine's admission path, the
//! Upper bound, the replan controller) route on interned indices via
//! [`crate::resolved::ResolvedInstance::route_model`] instead, which
//! applies the same Eq. 7 rule with the same name-order tie-break.

use s2m3_models::module::{ModuleId, ModuleSpec};
use s2m3_net::device::DeviceId;

use crate::error::CoreError;
use crate::problem::{Instance, Placement, Request, Route};

/// Routes one request: every required module goes to the hosting device
/// with the smallest `t_comp(m, n)` for this request's workload (Eq. 7).
///
/// # Errors
///
/// [`CoreError::UnknownModel`] if the request's model is not deployed;
/// [`CoreError::Unrouted`] if a required module is placed nowhere.
pub fn route_request(
    instance: &Instance,
    placement: &Placement,
    request: &Request,
) -> Result<Route, CoreError> {
    let deployment = instance
        .deployment(&request.model)
        .ok_or_else(|| CoreError::UnknownModel(request.model.clone()))?;
    let mut route = Route::new(request.id);
    for m in deployment.model.modules() {
        let mut best: Option<(f64, &DeviceId)> = None;
        for n in placement.hosts(&m.id) {
            let t = instance.compute_time_for(m, n, &request.profile)?;
            let better = match best {
                None => true,
                Some((bt, bn)) => t < bt || (t == bt && n < bn),
            };
            if better {
                best = Some((t, n));
            }
        }
        let (_, n) = best.ok_or_else(|| CoreError::Unrouted(m.id.clone()))?;
        route.assign(m.id.clone(), n.clone());
    }
    Ok(route)
}

/// Routes a *sequence* of requests with load awareness: each module goes
/// to the hosting device minimizing `accumulated load + t_comp` — the
/// queue-conscious refinement that makes Sec. V-B's replicas useful under
/// bursts (plain Eq. 7 always picks the single fastest host, so replicas
/// would never absorb overflow).
///
/// # Errors
///
/// As [`route_request`].
pub fn route_requests_balanced(
    instance: &Instance,
    placement: &Placement,
    requests: &[Request],
) -> Result<Vec<Route>, CoreError> {
    let mut load: std::collections::BTreeMap<DeviceId, f64> = instance
        .fleet()
        .devices()
        .iter()
        .map(|d| (d.id.clone(), 0.0))
        .collect();
    let mut routes = Vec::with_capacity(requests.len());
    for request in requests {
        let deployment = instance
            .deployment(&request.model)
            .ok_or_else(|| CoreError::UnknownModel(request.model.clone()))?;
        let mut route = Route::new(request.id);
        for m in deployment.model.modules() {
            let mut best: Option<(f64, f64, &DeviceId)> = None;
            for n in placement.hosts(&m.id) {
                let t = instance.compute_time_for(m, n, &request.profile)?;
                let score = load.get(n).copied().unwrap_or(0.0) + t;
                let better = match &best {
                    None => true,
                    Some((bs, _, bn)) => score < *bs || (score == *bs && n < *bn),
                };
                if better {
                    best = Some((score, t, n));
                }
            }
            let (_, t, n) = best.ok_or_else(|| CoreError::Unrouted(m.id.clone()))?;
            let n = n.clone();
            *load.entry(n.clone()).or_default() += t;
            route.assign(m.id.clone(), n);
        }
        routes.push(route);
    }
    Ok(routes)
}

/// The dispatch order for a routed request's encoders: *longest first*
/// ("we send the data with a modality that takes longer in the encoding
/// first to initiate the longest encoding as early as possible").
///
/// Returns `(module id, device, t_comp)` triples, slowest encoder first.
///
/// # Errors
///
/// [`CoreError::UnknownModel`] / [`CoreError::Unrouted`] as in
/// [`route_request`].
pub fn dispatch_order(
    instance: &Instance,
    route: &Route,
    request: &Request,
) -> Result<Vec<(ModuleId, DeviceId, f64)>, CoreError> {
    let deployment = instance
        .deployment(&request.model)
        .ok_or_else(|| CoreError::UnknownModel(request.model.clone()))?;
    let mut order = Vec::new();
    for m in deployment.model.encoders() {
        let n = route
            .device_for(&m.id)
            .ok_or_else(|| CoreError::Unrouted(m.id.clone()))?;
        let t = instance.compute_time_for(m, n, &request.profile)?;
        order.push((m.id.clone(), n.clone(), t));
    }
    order.sort_by(|a, b| {
        b.2.partial_cmp(&a.2)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    Ok(order)
}

/// Looks up the head module and its routed device for a request.
///
/// # Errors
///
/// [`CoreError::UnknownModel`] / [`CoreError::Unrouted`] as in
/// [`route_request`].
pub fn head_assignment<'a>(
    instance: &'a Instance,
    route: &Route,
    request: &Request,
) -> Result<(&'a ModuleSpec, DeviceId), CoreError> {
    let deployment = instance
        .deployment(&request.model)
        .ok_or_else(|| CoreError::UnknownModel(request.model.clone()))?;
    let head = deployment.model.head();
    let n = route
        .device_for(&head.id)
        .ok_or_else(|| CoreError::Unrouted(head.id.clone()))?;
    Ok((head, n.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{greedy_place, greedy_place_with, PlacementOptions};

    #[test]
    fn routes_cover_every_model_module() {
        let i = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
        let p = greedy_place(&i).unwrap();
        let q = i.request(0, "CLIP ViT-B/16").unwrap();
        let r = route_request(&i, &p, &q).unwrap();
        assert_eq!(r.iter().count(), 3);
        for (m, n) in r.iter() {
            assert!(p.is_placed(m, n), "{m} routed to non-hosting {n}");
        }
    }

    #[test]
    fn routing_picks_fastest_replica() {
        let i = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
        // With replication the vision encoder exists on several devices;
        // routing must pick the fastest one for this profile.
        let p = greedy_place_with(&i, PlacementOptions { replicate: true }).unwrap();
        let q = i.request(0, "CLIP ViT-B/16").unwrap();
        let r = route_request(&i, &p, &q).unwrap();
        let vision: ModuleId = "vision/ViT-B-16".into();
        let chosen = r.device_for(&vision).unwrap();
        let t_chosen = i
            .compute_time_for(
                i.distinct_modules()
                    .iter()
                    .find(|m| m.id == vision)
                    .unwrap(),
                chosen,
                &q.profile,
            )
            .unwrap();
        for host in p.hosts(&vision) {
            let t = i
                .compute_time_for(
                    i.distinct_modules()
                        .iter()
                        .find(|m| m.id == vision)
                        .unwrap(),
                    host,
                    &q.profile,
                )
                .unwrap();
            assert!(t_chosen <= t + 1e-12);
        }
    }

    #[test]
    fn unplaced_module_is_unrouted_error() {
        let i = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
        let p = Placement::new();
        let q = i.request(0, "CLIP ViT-B/16").unwrap();
        assert!(matches!(
            route_request(&i, &p, &q),
            Err(CoreError::Unrouted(_))
        ));
    }

    #[test]
    fn dispatch_order_is_longest_encoder_first() {
        let i = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
        let p = greedy_place(&i).unwrap();
        let q = i.request(0, "CLIP ViT-B/16").unwrap();
        let r = route_request(&i, &p, &q).unwrap();
        let order = dispatch_order(&i, &r, &q).unwrap();
        assert_eq!(order.len(), 2);
        // 101-prompt text encoding dominates single-image vision encoding.
        assert_eq!(order[0].0.as_str(), "text/CLIP-B-16");
        assert!(order[0].2 >= order[1].2);
    }

    #[test]
    fn head_assignment_resolves() {
        let i = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
        let p = greedy_place(&i).unwrap();
        let q = i.request(0, "CLIP ViT-B/16").unwrap();
        let r = route_request(&i, &p, &q).unwrap();
        let (head, dev) = head_assignment(&i, &r, &q).unwrap();
        assert_eq!(head.id.as_str(), "head/cosine");
        assert!(p.is_placed(&head.id, &dev));
    }

    #[test]
    fn unknown_model_rejected() {
        let i = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
        let p = greedy_place(&i).unwrap();
        let mut q = i.request(0, "CLIP ViT-B/16").unwrap();
        q.model = "ghost".into();
        assert!(matches!(
            route_request(&i, &p, &q),
            Err(CoreError::UnknownModel(_))
        ));
    }
}
