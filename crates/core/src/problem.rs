//! Problem formulation: instances, requests, placements, routes (Sec. V-A).

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use s2m3_models::module::{ModuleId, ModuleKind, ModuleSpec};
use s2m3_models::zoo::{ModelSpec, Task, Zoo};
use s2m3_net::device::{DeviceId, DeviceSpec};
use s2m3_net::fleet::Fleet;

use crate::error::CoreError;

/// Default number of tokens a generative head processes per request
/// (prompt prefill plus decoded answer).
pub const DEFAULT_LLM_TOKENS: f64 = 128.0;

/// Per-request workload profile: how many work units each module kind
/// performs for one inference of this model.
///
/// Zero-shot retrieval/alignment encode one prompt per candidate class;
/// encoder-VQA encodes a single question; generative heads process
/// `llm_tokens` tokens.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestProfile {
    /// Work units for the text encoder (candidate prompts or questions).
    pub text_units: f64,
    /// Tokens processed by a generative (LLM) head.
    pub llm_tokens: f64,
}

impl RequestProfile {
    /// The canonical profile for `task` with `candidates` classes.
    pub fn for_task(task: Task, candidates: usize) -> Self {
        match task {
            Task::ImageTextRetrieval | Task::CrossModalAlignment => RequestProfile {
                text_units: candidates as f64,
                llm_tokens: 0.0,
            },
            Task::EncoderVqa => RequestProfile {
                text_units: 1.0,
                llm_tokens: 0.0,
            },
            Task::DecoderVqa | Task::ImageCaptioning => RequestProfile {
                text_units: 0.0,
                llm_tokens: DEFAULT_LLM_TOKENS,
            },
            Task::ImageClassification => RequestProfile {
                text_units: 0.0,
                llm_tokens: 0.0,
            },
        }
    }

    /// Work units module kind `kind` performs under this profile.
    pub fn units(&self, kind: ModuleKind) -> f64 {
        match kind {
            ModuleKind::VisionEncoder | ModuleKind::AudioEncoder => 1.0,
            ModuleKind::TextEncoder => self.text_units.max(1.0),
            ModuleKind::LanguageModel => self.llm_tokens.max(1.0),
            ModuleKind::DistanceHead | ModuleKind::ClassifierHead => 1.0,
        }
    }

    /// Bytes of raw user data shipped to a remote device hosting an
    /// encoder of `kind` (`t_comm(m, n_q, n)`'s payload).
    pub fn input_bytes(&self, kind: ModuleKind) -> u64 {
        match kind {
            ModuleKind::VisionEncoder => 500 * 1024,
            ModuleKind::AudioEncoder => 320 * 1024,
            ModuleKind::TextEncoder => 256 * self.text_units.max(1.0) as u64,
            // Generative heads receive the raw question/prompt.
            ModuleKind::LanguageModel => 256,
            _ => 0,
        }
    }
}

/// One model deployed in an instance, with its canonical workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Deployment {
    /// The model.
    pub model: ModelSpec,
    /// Canonical per-request workload.
    pub profile: RequestProfile,
}

/// A request's service class: the latency deadline it is held to and a
/// scheduling priority (higher dispatches first under priority-aware
/// admission policies). Workload layers attach classes by seeded
/// weighted sampling; a request without a class falls back to whatever
/// scenario-wide deadline its consumer defines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeadlineClass {
    /// Human-readable class name (e.g. `"interactive"`, `"batch"`).
    pub name: String,
    /// Per-request latency SLO, seconds (deadline = arrival + this).
    pub deadline_s: f64,
    /// Scheduling priority; larger is more urgent. The default class of
    /// consumers that predate classes is priority 0.
    pub priority: u32,
}

/// An inference request `q`: which model it needs, where it originates.
///
/// Serialization note: `class` is omitted when `None` (hand-written
/// impls below) so plans from class-free workloads keep the exact JSON
/// shape pinned by `tests/fixtures/plan_*.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Request identifier.
    pub id: u64,
    /// Model name (`k(q)`).
    pub model: String,
    /// Source device (`n_q`).
    pub source: DeviceId,
    /// Workload of this request.
    pub profile: RequestProfile,
    /// Service class, when the workload assigns one.
    pub class: Option<DeadlineClass>,
}

impl Serialize for Request {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut obj: Vec<(String, serde::value::Value)> = vec![
            ("id".to_string(), serde::to_value(&self.id)?),
            ("model".to_string(), serde::to_value(&self.model)?),
            ("source".to_string(), serde::to_value(&self.source)?),
            ("profile".to_string(), serde::to_value(&self.profile)?),
        ];
        if let Some(class) = &self.class {
            obj.push(("class".to_string(), serde::to_value(class)?));
        }
        s.serialize_value(serde::value::Value::Object(obj))
    }
}

impl<'de> serde::Deserialize<'de> for Request {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.into_value()?;
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::msg(format!("expected object for Request, got {v:?}")))?;
        let field = |name: &str| serde::value::get_field(obj, name);
        Ok(Request {
            id: serde::from_value(field("id")?)?,
            model: serde::from_value(field("model")?)?,
            source: serde::from_value(field("source")?)?,
            profile: serde::from_value(field("profile")?)?,
            class: serde::from_value(serde::value::get_field_or_null(obj, "class"))?,
        })
    }
}

/// Placement decision `x`: which devices host each module. A module may
/// be replicated on several devices.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    assignments: BTreeMap<ModuleId, BTreeSet<DeviceId>>,
}

impl Placement {
    /// Creates an empty placement.
    pub fn new() -> Self {
        Self::default()
    }

    /// Places module `m` on device `n` (`x_{m,n} = 1`).
    pub fn place(&mut self, m: ModuleId, n: DeviceId) {
        self.assignments.entry(m).or_default().insert(n);
    }

    /// Devices hosting `m` (`N_m`), empty if unplaced.
    pub fn hosts(&self, m: &ModuleId) -> impl Iterator<Item = &DeviceId> {
        self.assignments.get(m).into_iter().flatten()
    }

    /// Whether `x_{m,n} = 1`.
    pub fn is_placed(&self, m: &ModuleId, n: &DeviceId) -> bool {
        self.assignments.get(m).is_some_and(|s| s.contains(n))
    }

    /// All `(module, device)` pairs with `x = 1`, in stable order.
    pub fn iter(&self) -> impl Iterator<Item = (&ModuleId, &DeviceId)> {
        self.assignments
            .iter()
            .flat_map(|(m, ds)| ds.iter().map(move |d| (m, d)))
    }

    /// Distinct modules placed.
    pub fn modules(&self) -> impl Iterator<Item = &ModuleId> {
        self.assignments.keys()
    }

    /// Number of `(module, device)` assignments.
    pub fn len(&self) -> usize {
        self.assignments.values().map(|s| s.len()).sum()
    }

    /// Whether nothing is placed.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Keeps only the assignments for which `f(module, device)` holds,
    /// dropping modules left with no hosts. Equivalent to rebuilding
    /// the surviving placement pair by pair, without the rebuild.
    pub fn retain(&mut self, mut f: impl FnMut(&ModuleId, &DeviceId) -> bool) {
        self.assignments.retain(|m, ds| {
            ds.retain(|d| f(m, d));
            !ds.is_empty()
        });
    }
}

/// Routing decision `y^q` for one request: exactly one hosting device per
/// required module.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Route {
    /// The request this route serves.
    pub request_id: u64,
    assignments: BTreeMap<ModuleId, DeviceId>,
}

impl Route {
    /// Creates an empty route for a request.
    pub fn new(request_id: u64) -> Self {
        Route {
            request_id,
            assignments: BTreeMap::new(),
        }
    }

    /// Routes module `m` to device `n` (`y^q_{m,n} = 1`).
    pub fn assign(&mut self, m: ModuleId, n: DeviceId) {
        self.assignments.insert(m, n);
    }

    /// The device serving `m`, if routed.
    pub fn device_for(&self, m: &ModuleId) -> Option<&DeviceId> {
        self.assignments.get(m)
    }

    /// All `(module, device)` routing pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&ModuleId, &DeviceId)> {
        self.assignments.iter()
    }
}

/// A complete problem instance: the fleet `N` and the deployed models `K`
/// with their workload profiles.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Instance {
    fleet: Fleet,
    deployments: Vec<Deployment>,
}

impl Instance {
    /// Builds an instance.
    ///
    /// # Errors
    ///
    /// [`CoreError::EmptyFleet`] on an empty fleet.
    pub fn new(fleet: Fleet, deployments: Vec<Deployment>) -> Result<Self, CoreError> {
        if fleet.is_empty() {
            return Err(CoreError::EmptyFleet);
        }
        Ok(Instance { fleet, deployments })
    }

    /// Convenience: one standard-zoo model on the paper's edge-only fleet
    /// (desktop, laptop, two Jetsons; requester Jetson A), `candidates`
    /// benchmark classes.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownModel`] for names outside the standard zoo.
    pub fn single_model(name: &str, candidates: usize) -> Result<Self, CoreError> {
        Self::on_fleet(Fleet::edge_testbed(), &[(name, candidates)])
    }

    /// Convenience: several standard-zoo models on a given fleet.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownModel`] for names outside the standard zoo.
    pub fn on_fleet(fleet: Fleet, models: &[(&str, usize)]) -> Result<Self, CoreError> {
        let zoo = Zoo::standard();
        let mut deployments = Vec::new();
        for (name, candidates) in models {
            let model = zoo
                .model(name)
                .ok_or_else(|| CoreError::UnknownModel((*name).to_string()))?
                .clone();
            let profile = RequestProfile::for_task(model.task, *candidates);
            deployments.push(Deployment { model, profile });
        }
        Instance::new(fleet, deployments)
    }

    /// The device fleet.
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// An interned-index view of this instance for hot loops: dense
    /// `u32` device/module ids and flat compute/link tables. See
    /// [`crate::resolved::ResolvedInstance`].
    ///
    /// # Errors
    ///
    /// [`CoreError::EmptyFleet`] on an empty fleet.
    pub fn resolved(&self) -> Result<crate::resolved::ResolvedInstance, CoreError> {
        crate::resolved::ResolvedInstance::new(self)
    }

    /// A copy of this instance on a different fleet (Table IX sweeps).
    pub fn with_fleet(&self, fleet: Fleet) -> Result<Self, CoreError> {
        Instance::new(fleet, self.deployments.clone())
    }

    /// Deployed models with profiles.
    pub fn deployments(&self) -> &[Deployment] {
        &self.deployments
    }

    /// Looks up a deployment by model name.
    pub fn deployment(&self, model: &str) -> Option<&Deployment> {
        self.deployments.iter().find(|d| d.model.name == model)
    }

    /// The distinct module set `M = ∪_k M_k`, in stable id order.
    pub fn distinct_modules(&self) -> Vec<&ModuleSpec> {
        let mut seen = BTreeMap::new();
        for d in &self.deployments {
            for m in d.model.modules() {
                seen.entry(m.id.clone()).or_insert(m);
            }
        }
        seen.into_values().collect()
    }

    /// Work units to assume for `module` at *placement* time: the maximum
    /// over deployed models that use it (conservative for shared modules).
    pub fn placement_units(&self, module: &ModuleSpec) -> f64 {
        self.deployments
            .iter()
            .filter(|d| d.model.modules().any(|m| m.id == module.id))
            .map(|d| d.profile.units(module.kind))
            .fold(1.0, f64::max)
    }

    /// `t_comp(m, n)` with placement-time units, seconds.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownDevice`] for devices outside the fleet.
    pub fn compute_time(&self, module: &ModuleSpec, device: &DeviceId) -> Result<f64, CoreError> {
        let d = self.device(device)?;
        Ok(d.compute_time(module, self.placement_units(module)))
    }

    /// `t_comp(m, n)` for a specific request profile, seconds.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownDevice`] for devices outside the fleet.
    pub fn compute_time_for(
        &self,
        module: &ModuleSpec,
        device: &DeviceId,
        profile: &RequestProfile,
    ) -> Result<f64, CoreError> {
        let d = self.device(device)?;
        Ok(d.compute_time(module, profile.units(module.kind)))
    }

    /// Looks up a device spec.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownDevice`] if absent from the fleet.
    pub fn device(&self, id: &DeviceId) -> Result<&DeviceSpec, CoreError> {
        self.fleet
            .device(id.as_str())
            .ok_or_else(|| CoreError::UnknownDevice(id.clone()))
    }

    /// Builds a request for `model` originating at the fleet's requester.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownModel`] if `model` is not deployed here.
    pub fn request(&self, id: u64, model: &str) -> Result<Request, CoreError> {
        let d = self
            .deployment(model)
            .ok_or_else(|| CoreError::UnknownModel(model.to_string()))?;
        Ok(Request {
            id,
            model: d.model.name.clone(),
            source: self.fleet.requester().clone(),
            profile: d.profile,
            class: None,
        })
    }

    /// A *dedicated* (no-sharing) variant of this instance: every model's
    /// modules get model-qualified ids, so nothing is shared. Used for
    /// the Table X "w/o sharing" comparison.
    pub fn dedicated(&self) -> Self {
        let deployments = self
            .deployments
            .iter()
            .map(|d| {
                let encoders = d
                    .model
                    .encoders()
                    .iter()
                    .map(|m| qualify(m, &d.model.name))
                    .collect();
                let head = qualify(d.model.head(), &d.model.name);
                Deployment {
                    model: ModelSpec::new(d.model.name.clone(), d.model.task, encoders, head)
                        .expect("requalified model stays valid"),
                    profile: d.profile,
                }
            })
            .collect();
        Instance {
            fleet: self.fleet.clone(),
            deployments,
        }
    }
}

fn qualify(m: &ModuleSpec, owner: &str) -> ModuleSpec {
    let mut q = m.clone();
    q.id = ModuleId::new(format!("{owner}::{}", m.id));
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_task_semantics() {
        let retrieval = RequestProfile::for_task(Task::ImageTextRetrieval, 101);
        assert_eq!(retrieval.units(ModuleKind::TextEncoder), 101.0);
        assert_eq!(retrieval.units(ModuleKind::VisionEncoder), 1.0);
        let vqa = RequestProfile::for_task(Task::EncoderVqa, 101);
        assert_eq!(vqa.units(ModuleKind::TextEncoder), 1.0);
        let dec = RequestProfile::for_task(Task::DecoderVqa, 0);
        assert_eq!(dec.units(ModuleKind::LanguageModel), DEFAULT_LLM_TOKENS);
        let cls = RequestProfile::for_task(Task::ImageClassification, 0);
        assert_eq!(cls.units(ModuleKind::ClassifierHead), 1.0);
    }

    #[test]
    fn input_bytes_scale_with_prompts() {
        let p = RequestProfile::for_task(Task::ImageTextRetrieval, 10);
        assert_eq!(p.input_bytes(ModuleKind::TextEncoder), 2560);
        assert_eq!(p.input_bytes(ModuleKind::VisionEncoder), 500 * 1024);
        assert_eq!(p.input_bytes(ModuleKind::DistanceHead), 0);
    }

    #[test]
    fn single_model_instance_builds() {
        let i = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
        assert_eq!(i.fleet().len(), 4); // edge-only fleet
        assert_eq!(i.distinct_modules().len(), 3);
        assert!(Instance::single_model("CLIP ViT-Z/99", 10).is_err());
    }

    #[test]
    fn distinct_modules_dedupe_across_models() {
        let i = Instance::on_fleet(
            Fleet::edge_testbed(),
            &[("CLIP ViT-B/16", 101), ("Encoder-only VQA (Small)", 1)],
        )
        .unwrap();
        // Shared vision+text, cosine head + classifier head = 4 distinct.
        assert_eq!(i.distinct_modules().len(), 4);
    }

    #[test]
    fn dedicated_variant_unshares_modules() {
        let i = Instance::on_fleet(
            Fleet::edge_testbed(),
            &[("CLIP ViT-B/16", 101), ("Encoder-only VQA (Small)", 1)],
        )
        .unwrap();
        let d = i.dedicated();
        assert_eq!(d.distinct_modules().len(), 6);
        assert!(d
            .distinct_modules()
            .iter()
            .all(|m| m.id.as_str().contains("::")));
    }

    #[test]
    fn placement_units_take_max_over_sharing_models() {
        // Text encoder shared between retrieval (101 prompts) and
        // encoder-VQA (1 question): placement assumes 101.
        let i = Instance::on_fleet(
            Fleet::edge_testbed(),
            &[("CLIP ViT-B/16", 101), ("Encoder-only VQA (Small)", 1)],
        )
        .unwrap();
        let text = i
            .distinct_modules()
            .into_iter()
            .find(|m| m.kind == ModuleKind::TextEncoder)
            .unwrap()
            .clone();
        assert_eq!(i.placement_units(&text), 101.0);
    }

    #[test]
    fn placement_and_route_bookkeeping() {
        let mut p = Placement::new();
        p.place("vision/ViT-B-16".into(), "desktop".into());
        p.place("vision/ViT-B-16".into(), "laptop".into());
        p.place("head/cosine".into(), "jetson-a".into());
        assert_eq!(p.len(), 3);
        assert!(p.is_placed(&"vision/ViT-B-16".into(), &"laptop".into()));
        assert!(!p.is_placed(&"vision/ViT-B-16".into(), &"jetson-a".into()));
        assert_eq!(p.hosts(&"vision/ViT-B-16".into()).count(), 2);
        assert_eq!(p.modules().count(), 2);

        let mut r = Route::new(7);
        r.assign("vision/ViT-B-16".into(), "desktop".into());
        assert_eq!(
            r.device_for(&"vision/ViT-B-16".into()).unwrap().as_str(),
            "desktop"
        );
        assert!(r.device_for(&"head/cosine".into()).is_none());
    }

    #[test]
    fn requests_originate_at_the_requester() {
        let i = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
        let q = i.request(3, "CLIP ViT-B/16").unwrap();
        assert_eq!(q.source.as_str(), "jetson-a");
        assert_eq!(q.profile.text_units, 101.0);
        assert!(i.request(4, "nope").is_err());
    }

    #[test]
    fn compute_time_distinguishes_profiles() {
        let i = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
        let text = i
            .distinct_modules()
            .into_iter()
            .find(|m| m.kind == ModuleKind::TextEncoder)
            .unwrap()
            .clone();
        let dev: DeviceId = "laptop".into();
        let full = i.compute_time(&text, &dev).unwrap();
        let single = i
            .compute_time_for(
                &text,
                &dev,
                &RequestProfile {
                    text_units: 1.0,
                    llm_tokens: 0.0,
                },
            )
            .unwrap();
        assert!(full > 20.0 * single);
        assert!(i.compute_time(&text, &"ghost".into()).is_err());
    }
}
