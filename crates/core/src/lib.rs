//! # s2m3-core
//!
//! The paper's primary contribution: **split-and-share** deployment of
//! multi-modal models over a fleet of resource-constrained devices, with
//! module-level greedy placement and per-request parallel routing
//! (Algorithm 1 of the paper).
//!
//! ## The problem (Sec. V-A)
//!
//! Devices `n ∈ N` have memory budgets `R_n`; the distinct functional
//! modules `m ∈ M = ∪_k M_k` of all deployed models have memory needs
//! `r_m`. A placement `x_{m,n} ∈ {0,1}` decides which devices host which
//! modules; a per-request routing `y^q_{m,n}` picks one hosting device per
//! required module. The end-to-end latency of a request (Eqs. 1–3) is
//!
//! ```text
//! t_total = max over encoders m [ t_comm(input → n) + t_comp(m, n)
//!                                  + t_comm(n → head device) ]
//!           + t_comp(head)
//! ```
//!
//! — the **max**, not the sum, because S2M3 routes the modalities of a
//! single request to different devices *in parallel*.
//!
//! ## The solution (Sec. V-B)
//!
//! - [`placement::greedy_place`]: modules in descending memory order; each
//!   goes to the device with the shortest completion time (Eq. 5 for
//!   encoders — accumulated compute on the device; Eq. 6 for heads — pure
//!   compute), first fit under the memory budget, then leftover-memory
//!   replication.
//! - [`routing::route_request`]: per module, the fastest hosting device
//!   (Eq. 7), with the longest-running encoder dispatched first.
//! - [`upper::optimal_placement`]: exhaustive search over feasible
//!   placements — the paper's "Upper" baseline, used to certify that the
//!   greedy is optimal in ~94% of instances.
//! - [`objective`]: the exact analytic evaluator of Eqs. (1)–(4), shared
//!   by all of the above and by the property tests.
//! - [`resolved::ResolvedInstance`]: the interned-index data layer the
//!   hot paths run on — string ids at the boundary, dense `u32` indices
//!   and flat compute/link tables in the core (see the repository
//!   README's "Performance" section).
//!
//! ## Example
//!
//! ```
//! use s2m3_core::prelude::*;
//!
//! let instance = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
//! let placement = greedy_place(&instance).unwrap();
//! let request = instance.request(0, "CLIP ViT-B/16").unwrap();
//! let route = route_request(&instance, &placement, &request).unwrap();
//! let latency = total_latency(&instance, &route, &request).unwrap();
//! assert!(latency > 0.0 && latency < 10.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod cost;
pub mod error;
pub mod objective;
pub mod partition;
pub mod placement;
pub mod plan;
pub mod problem;
pub mod resolved;
pub mod routing;
pub mod sharing;
pub mod sketch;
pub mod upper;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::adaptive::{replan, ReplanDecision};
    pub use crate::cost::CostModel;
    pub use crate::error::CoreError;
    pub use crate::objective::{total_latency, validate};
    pub use crate::partition::greedy_place_partitioned;
    pub use crate::placement::greedy_place;
    pub use crate::plan::Plan;
    pub use crate::problem::{Instance, Placement, Request, RequestProfile, Route};
    pub use crate::resolved::ResolvedInstance;
    pub use crate::routing::route_request;
    pub use crate::sharing::SharingReport;
    pub use crate::upper::optimal_placement;
}

pub use cost::CostModel;
pub use error::CoreError;
pub use problem::{Instance, Placement, Request, RequestProfile, Route};
