//! The "Upper" baseline: brute-force optimal single-copy placement,
//! evaluated with the exact objective. Used to certify the greedy
//! (the paper reports greedy = optimal in 89/95 instances).
//!
//! The search runs entirely on [`ResolvedInstance`] indices: the DFS
//! carries a dense `u32` assignment vector and an incrementally
//! maintained remaining-memory vector, and leaves are evaluated with the
//! allocation-free [`ResolvedInstance::total_latency`] — no `Placement`
//! or `Route` maps are materialized until the single best assignment is
//! translated back to string ids at the end.

use crate::error::CoreError;
use crate::problem::{Instance, Placement};
use crate::resolved::ResolvedInstance;

/// Result of the exhaustive search.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimalResult {
    /// The best placement found.
    pub placement: Placement,
    /// Its objective value: summed canonical-request latency over all
    /// deployed models (Eq. 4a with one request per model).
    pub latency: f64,
}

/// Exhaustively searches single-copy placements (each distinct module on
/// exactly one device) under the memory constraints, evaluating Eq. (4a)
/// with one canonical request per deployed model.
///
/// Single-copy is WLOG for this objective: with one request per model and
/// no queuing, routing picks one device per module, so extra replicas
/// cannot reduce the optimum.
///
/// Complexity is `|N|^|M|`; fine for the paper-scale instances (≤ 5
/// devices, ≤ 8 distinct modules). Memory-infeasible branches are pruned.
///
/// # Errors
///
/// [`CoreError::EmptyFleet`] on an empty fleet;
/// [`CoreError::Infeasible`] when no feasible placement exists.
pub fn optimal_placement(instance: &Instance) -> Result<OptimalResult, CoreError> {
    let resolved = ResolvedInstance::new(instance)?;
    let nd = resolved.device_count();
    let nm = resolved.module_count();
    let needs: Vec<u64> = (0..nm as u32).map(|m| resolved.module_memory(m)).collect();
    let mut remaining: Vec<u64> = (0..nd as u32).map(|d| resolved.device_budget(d)).collect();

    // The DFS carries only dense indices; leaves evaluate Eq. (4a) with
    // the flat tables (single-copy ⇒ the route is the assignment itself).
    struct Search<'a> {
        resolved: &'a ResolvedInstance,
        needs: Vec<u64>,
        assignment: Vec<u32>,
        best_latency: f64,
        best_assignment: Option<Vec<u32>>,
    }

    impl Search<'_> {
        fn dfs(&mut self, idx: usize, remaining: &mut [u64]) {
            if idx == self.assignment.len() {
                let source = self.resolved.requester();
                let mut latency = 0.0;
                for k in 0..self.resolved.models().len() {
                    let profile = self.resolved.models()[k].profile;
                    latency += self
                        .resolved
                        .total_latency(k, &profile, source, |m| self.assignment[m as usize]);
                }
                // The first feasible leaf always records (even if its
                // latency is infinite or NaN under a degenerate
                // topology): memory-feasibility must never be reported
                // as Infeasible just because no leaf compared `<`.
                if self.best_assignment.is_none() || latency < self.best_latency {
                    self.best_latency = latency;
                    self.best_assignment = Some(self.assignment.clone());
                }
                return;
            }
            for d in 0..remaining.len() {
                if self.needs[idx] <= remaining[d] {
                    remaining[d] -= self.needs[idx];
                    self.assignment[idx] = d as u32;
                    self.dfs(idx + 1, remaining);
                    remaining[d] += self.needs[idx];
                }
            }
        }
    }

    let mut search = Search {
        resolved: &resolved,
        needs,
        assignment: vec![u32::MAX; nm],
        best_latency: f64::INFINITY,
        best_assignment: None,
    };
    search.dfs(0, &mut remaining);

    match search.best_assignment {
        Some(assignment) => {
            let mut placement = Placement::new();
            for (m, &d) in assignment.iter().enumerate() {
                placement.place(
                    resolved.module_name(m as u32).clone(),
                    resolved.device_name(d).clone(),
                );
            }
            Ok(OptimalResult {
                placement,
                latency: search.best_latency,
            })
        }
        None => Err(CoreError::Infeasible {
            module: if nm > 0 {
                resolved.module_name(0).clone()
            } else {
                "".into()
            },
            required_bytes: search.needs.first().copied().unwrap_or(0),
            best_remaining_bytes: (0..nd as u32)
                .map(|d| resolved.device_budget(d))
                .max()
                .unwrap_or(0),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::total_latency;
    use crate::placement::greedy_place;
    use crate::routing::route_request;
    use s2m3_net::fleet::Fleet;

    fn greedy_latency(instance: &Instance) -> f64 {
        let p = greedy_place(instance).unwrap();
        let mut sum = 0.0;
        for (i, d) in instance.deployments().iter().enumerate() {
            let q = instance.request(i as u64, &d.model.name).unwrap();
            let r = route_request(instance, &p, &q).unwrap();
            sum += total_latency(instance, &r, &q).unwrap();
        }
        sum
    }

    #[test]
    fn optimal_lower_bounds_greedy() {
        for (name, c) in [
            ("CLIP ViT-B/16", 101),
            ("CLIP ResNet-50", 10),
            ("Encoder-only VQA (Small)", 1),
            ("Flint-v0.5-1B", 1),
        ] {
            let i = Instance::single_model(name, c).unwrap();
            let opt = optimal_placement(&i).unwrap();
            let greedy = greedy_latency(&i);
            assert!(
                opt.latency <= greedy + 1e-9,
                "{name}: optimal {} > greedy {}",
                opt.latency,
                greedy
            );
        }
    }

    #[test]
    fn greedy_is_optimal_on_the_default_instance() {
        // The paper's headline: greedy achieves the optimum in ~94% of
        // instances; the default CLIP ViT-B/16 case is one of them.
        let i = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
        let opt = optimal_placement(&i).unwrap();
        let greedy = greedy_latency(&i);
        assert!(
            (greedy - opt.latency).abs() < 1e-6,
            "greedy {greedy} vs optimal {}",
            opt.latency
        );
    }

    #[test]
    fn infeasible_instance_reports_error() {
        let fleet = Fleet::standard_testbed()
            .restricted_to(&["jetson-a"])
            .unwrap();
        let i = Instance::on_fleet(fleet, &[("ImageBind", 16)]).unwrap();
        assert!(matches!(
            optimal_placement(&i),
            Err(CoreError::Infeasible { .. })
        ));
    }

    #[test]
    fn optimal_respects_memory() {
        let i = Instance::single_model("ImageBind", 16).unwrap();
        let opt = optimal_placement(&i).unwrap();
        crate::objective::validate(&i, &opt.placement, &[]).unwrap();
    }

    #[test]
    fn multi_model_optimum_covers_all_modules() {
        let i = Instance::on_fleet(
            Fleet::edge_testbed(),
            &[("CLIP ViT-B/16", 10), ("CLIP-Classifier Food-101", 0)],
        )
        .unwrap();
        let opt = optimal_placement(&i).unwrap();
        assert_eq!(opt.placement.modules().count(), i.distinct_modules().len());
    }
}
