//! The "Upper" baseline: brute-force optimal single-copy placement,
//! evaluated with the exact objective. Used to certify the greedy
//! (the paper reports greedy = optimal in 89/95 instances).

use s2m3_net::device::DeviceId;

use crate::error::CoreError;
use crate::objective::total_latency;
use crate::problem::{Instance, Placement};
use crate::routing::route_request;

/// Result of the exhaustive search.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimalResult {
    /// The best placement found.
    pub placement: Placement,
    /// Its objective value: summed canonical-request latency over all
    /// deployed models (Eq. 4a with one request per model).
    pub latency: f64,
}

/// Exhaustively searches single-copy placements (each distinct module on
/// exactly one device) under the memory constraints, evaluating Eq. (4a)
/// with one canonical request per deployed model.
///
/// Single-copy is WLOG for this objective: with one request per model and
/// no queuing, routing picks one device per module, so extra replicas
/// cannot reduce the optimum.
///
/// Complexity is `|N|^|M|`; fine for the paper-scale instances (≤ 5
/// devices, ≤ 8 distinct modules). Memory-infeasible branches are pruned.
///
/// # Errors
///
/// [`CoreError::EmptyFleet`] on an empty fleet;
/// [`CoreError::Infeasible`] when no feasible placement exists.
pub fn optimal_placement(instance: &Instance) -> Result<OptimalResult, CoreError> {
    let devices: Vec<DeviceId> = instance
        .fleet()
        .devices()
        .iter()
        .map(|d| d.id.clone())
        .collect();
    if devices.is_empty() {
        return Err(CoreError::EmptyFleet);
    }
    let modules = instance.distinct_modules();
    let needs: Vec<u64> = modules.iter().map(|m| m.memory_bytes()).collect();
    let mut remaining: Vec<u64> = instance
        .fleet()
        .devices()
        .iter()
        .map(|d| d.usable_memory_bytes())
        .collect();

    // One canonical request per deployment.
    let requests: Vec<_> = instance
        .deployments()
        .iter()
        .enumerate()
        .map(|(i, d)| instance.request(i as u64, &d.model.name))
        .collect::<Result<_, _>>()?;

    let mut assignment: Vec<usize> = vec![usize::MAX; modules.len()];
    let mut best: Option<OptimalResult> = None;

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        idx: usize,
        instance: &Instance,
        modules: &[&s2m3_models::module::ModuleSpec],
        needs: &[u64],
        devices: &[DeviceId],
        remaining: &mut Vec<u64>,
        assignment: &mut Vec<usize>,
        requests: &[crate::problem::Request],
        best: &mut Option<OptimalResult>,
    ) -> Result<(), CoreError> {
        if idx == modules.len() {
            let mut placement = Placement::new();
            for (m, &d) in modules.iter().zip(assignment.iter()) {
                placement.place(m.id.clone(), devices[d].clone());
            }
            let mut latency = 0.0;
            for q in requests {
                let route = route_request(instance, &placement, q)?;
                latency += total_latency(instance, &route, q)?;
            }
            let better = best.as_ref().is_none_or(|b| latency < b.latency);
            if better {
                *best = Some(OptimalResult { placement, latency });
            }
            return Ok(());
        }
        for d in 0..devices.len() {
            if needs[idx] <= remaining[d] {
                remaining[d] -= needs[idx];
                assignment[idx] = d;
                dfs(
                    idx + 1,
                    instance,
                    modules,
                    needs,
                    devices,
                    remaining,
                    assignment,
                    requests,
                    best,
                )?;
                remaining[d] += needs[idx];
            }
        }
        Ok(())
    }

    dfs(
        0,
        instance,
        &modules,
        &needs,
        &devices,
        &mut remaining,
        &mut assignment,
        &requests,
        &mut best,
    )?;

    best.ok_or_else(|| CoreError::Infeasible {
        module: modules
            .first()
            .map(|m| m.id.clone())
            .unwrap_or_else(|| "".into()),
        required_bytes: needs.first().copied().unwrap_or(0),
        best_remaining_bytes: instance
            .fleet()
            .devices()
            .iter()
            .map(|d| d.usable_memory_bytes())
            .max()
            .unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::total_latency;
    use crate::placement::greedy_place;
    use crate::routing::route_request;
    use s2m3_net::fleet::Fleet;

    fn greedy_latency(instance: &Instance) -> f64 {
        let p = greedy_place(instance).unwrap();
        let mut sum = 0.0;
        for (i, d) in instance.deployments().iter().enumerate() {
            let q = instance.request(i as u64, &d.model.name).unwrap();
            let r = route_request(instance, &p, &q).unwrap();
            sum += total_latency(instance, &r, &q).unwrap();
        }
        sum
    }

    #[test]
    fn optimal_lower_bounds_greedy() {
        for (name, c) in [
            ("CLIP ViT-B/16", 101),
            ("CLIP ResNet-50", 10),
            ("Encoder-only VQA (Small)", 1),
            ("Flint-v0.5-1B", 1),
        ] {
            let i = Instance::single_model(name, c).unwrap();
            let opt = optimal_placement(&i).unwrap();
            let greedy = greedy_latency(&i);
            assert!(
                opt.latency <= greedy + 1e-9,
                "{name}: optimal {} > greedy {}",
                opt.latency,
                greedy
            );
        }
    }

    #[test]
    fn greedy_is_optimal_on_the_default_instance() {
        // The paper's headline: greedy achieves the optimum in ~94% of
        // instances; the default CLIP ViT-B/16 case is one of them.
        let i = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
        let opt = optimal_placement(&i).unwrap();
        let greedy = greedy_latency(&i);
        assert!(
            (greedy - opt.latency).abs() < 1e-6,
            "greedy {greedy} vs optimal {}",
            opt.latency
        );
    }

    #[test]
    fn infeasible_instance_reports_error() {
        let fleet = Fleet::standard_testbed()
            .restricted_to(&["jetson-a"])
            .unwrap();
        let i = Instance::on_fleet(fleet, &[("ImageBind", 16)]).unwrap();
        assert!(matches!(
            optimal_placement(&i),
            Err(CoreError::Infeasible { .. })
        ));
    }

    #[test]
    fn optimal_respects_memory() {
        let i = Instance::single_model("ImageBind", 16).unwrap();
        let opt = optimal_placement(&i).unwrap();
        crate::objective::validate(&i, &opt.placement, &[]).unwrap();
    }

    #[test]
    fn multi_model_optimum_covers_all_modules() {
        let i = Instance::on_fleet(
            Fleet::edge_testbed(),
            &[("CLIP ViT-B/16", 10), ("CLIP-Classifier Food-101", 0)],
        )
        .unwrap();
        let opt = optimal_placement(&i).unwrap();
        assert_eq!(opt.placement.modules().count(), i.distinct_modules().len());
    }
}
