//! Fleet cost models: what a busy device-second costs.
//!
//! A [`CostModel`] maps each device to a spend rate per busy second of
//! lane time — joules for an energy budget (see `s2m3_sim::energy` for
//! the power profiles such rates derive from), dollars for a metered
//! deployment, or a flat `1.0` to count raw device-seconds. Consumers
//! multiply a route's per-device compute seconds by these rates to
//! price a request before running it; the serving control plane's
//! budget engine (`s2m3_serve::budget`) uses exactly that product to
//! enforce a per-window fleet-wide cap online.
//!
//! The model is deliberately small: a rate table plus a default for
//! devices it does not name, so a partial table (say, only the metered
//! cloud box) still prices every route.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use s2m3_net::device::DeviceId;

/// Per-device spend rates: cost units per busy second.
///
/// The unit is the caller's choice (J/s, $/s, or dimensionless
/// device-seconds); a model only requires that all rates share it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Spend rate per busy second, by device.
    pub rate_per_device_s: BTreeMap<DeviceId, f64>,
    /// Rate applied to devices absent from the table.
    pub default_rate_per_s: f64,
}

impl CostModel {
    /// A model charging every device the same `rate` per busy second.
    /// `uniform(1.0)` prices routes in raw device-seconds.
    pub fn uniform(rate: f64) -> Self {
        CostModel {
            rate_per_device_s: BTreeMap::new(),
            default_rate_per_s: rate,
        }
    }

    /// Sets (or overrides) one device's rate, builder-style.
    pub fn with_rate(mut self, device: impl Into<DeviceId>, rate: f64) -> Self {
        self.set_rate(device, rate);
        self
    }

    /// Sets (or overrides) one device's rate.
    pub fn set_rate(&mut self, device: impl Into<DeviceId>, rate: f64) {
        self.rate_per_device_s.insert(device.into(), rate);
    }

    /// The spend rate of `device`, per busy second.
    pub fn rate(&self, device: &DeviceId) -> f64 {
        self.rate_per_device_s
            .get(device)
            .copied()
            .unwrap_or(self.default_rate_per_s)
    }

    /// Cost of `busy_s` seconds of lane time on `device`.
    pub fn busy_cost(&self, device: &DeviceId, busy_s: f64) -> f64 {
        self.rate(device) * busy_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_prices_every_device_alike() {
        let m = CostModel::uniform(2.5);
        assert_eq!(m.rate(&"server".into()), 2.5);
        assert_eq!(m.busy_cost(&"laptop".into(), 4.0), 10.0);
    }

    #[test]
    fn named_rates_override_the_default() {
        let m = CostModel::uniform(1.0).with_rate("server", 230.0);
        assert_eq!(m.rate(&"server".into()), 230.0);
        assert_eq!(m.rate(&"jetson-a".into()), 1.0);
        assert_eq!(m.busy_cost(&"server".into(), 0.5), 115.0);
    }

    #[test]
    fn cost_model_json_roundtrip() {
        let m = CostModel::uniform(0.0)
            .with_rate("server", 230.0)
            .with_rate("desktop", 115.0);
        let json = serde_json::to_string(&m).unwrap();
        let back: CostModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
